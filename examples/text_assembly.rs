//! Write a kernel as assembly *text*, parse it, and run it both
//! functionally and on the timed core.
//!
//! ```sh
//! cargo run --release --example text_assembly
//! ```

use swque::cpu::{Core, CoreConfig};
use swque::iq::IqKind;
use swque::isa::{parse_program, Emulator, Reg};

const COLLATZ: &str = r"
; longest Collatz chain for seeds 1..=200
    li r10, 200          ; seed counter
    li r20, 0            ; best length
    li r21, 0            ; best seed
outer:
    mv r1, r10           ; n = seed
    li r2, 0             ; chain length
chain:
    li r3, 1
    beq r1, r3, done     ; n == 1 ?
    andi r4, r1, 1
    bne r4, r0, odd
    srai r1, r1, 1       ; n /= 2
    j next
odd:
    slli r5, r1, 1       ; 3n + 1 = 2n + n + 1
    add r1, r5, r1
    addi r1, r1, 1
next:
    addi r2, r2, 1
    j chain
done:
    blt r2, r20, skip    ; keep the best
    mv r20, r2
    mv r21, r10
skip:
    addi r10, r10, -1
    bne r10, r0, outer
    halt
";

fn main() {
    let program = parse_program(COLLATZ).expect("valid assembly");
    println!("parsed {} instructions", program.len());

    let mut emu = Emulator::new(&program);
    emu.run(10_000_000).expect("terminates");
    println!(
        "functional:  longest chain = {} steps (seed {})",
        emu.int_reg(Reg(20)),
        emu.int_reg(Reg(21))
    );

    let mut core = Core::new(CoreConfig::medium(), IqKind::Swque, &program);
    let r = core.run(u64::MAX);
    assert_eq!(core.emulator().int_reg(Reg(20)), emu.int_reg(Reg(20)));
    println!(
        "timed:       same answer in {} cycles at IPC {:.3} (mispredict rate {:.1}%)",
        r.cycles,
        r.ipc(),
        r.branch.mispredict_rate() * 100.0
    );
}
