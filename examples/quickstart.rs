//! Quickstart: run one benchmark kernel on SWQUE and on the AGE baseline,
//! and print the comparison the paper is about.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use swque::cpu::{Core, CoreConfig};
use swque::iq::IqKind;
use swque::workloads::suite;

fn main() {
    let kernel = suite::by_name("deepsjeng_like").expect("kernel in the suite");
    println!("kernel: {} ({} {})", kernel.name, kernel.category, kernel.class);

    let budget = 600_000u64;
    let mut results = Vec::new();
    for kind in [IqKind::Age, IqKind::Swque] {
        let program = kernel.build();
        let mut core = Core::new(CoreConfig::medium(), kind, &program);
        // Warm caches and predictors, then measure.
        let warm = core.run(200_000);
        let r = core.run(200_000 + budget).delta(&warm);
        println!(
            "  {:6}  IPC {:.3}   (MPKI {:.2}, branch mispredict {:.1}%)",
            kind.label(),
            r.ipc(),
            r.mpki(),
            r.branch.mispredict_rate() * 100.0
        );
        if let Some(sw) = r.swque {
            println!(
                "          mode residency: {:.0}% CIRC-PC / {:.0}% AGE, {} switches",
                sw.circ_pc_fraction() * 100.0,
                (1.0 - sw.circ_pc_fraction()) * 100.0,
                sw.switches
            );
        }
        results.push(r.ipc());
    }
    println!(
        "\nSWQUE speedup over AGE: {:+.1}%  (the paper reports >10% for this class)",
        (results[1] / results[0] - 1.0) * 100.0
    );
}
