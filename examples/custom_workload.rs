//! Write your own kernel with the assembler DSL and run it through the
//! cycle-level core — then check the timing model never changes
//! architectural results by comparing against the pure functional emulator.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use swque::cpu::{Core, CoreConfig};
use swque::iq::IqKind;
use swque::isa::{Assembler, Emulator, FReg, Reg};

fn main() {
    // A little dot-product-with-threshold kernel.
    let n = 4096i64;
    let mut a = Assembler::new();
    let xs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let ys: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    a.data_f64s(0x10_0000, &xs);
    a.data_f64s(0x20_0000, &ys);

    a.li(Reg(1), n); // counter
    a.li(Reg(2), 0x10_0000); // x pointer
    a.li(Reg(3), 0x20_0000); // y pointer
    a.li(Reg(4), 0); // count of products > 0
    a.label("loop");
    a.fld(FReg(1), Reg(2), 0);
    a.fld(FReg(2), Reg(3), 0);
    a.fmul(FReg(3), FReg(1), FReg(2));
    a.fadd(FReg(4), FReg(4), FReg(3)); // accumulate dot product
    a.icvtf(FReg(5), Reg::ZERO); // 0.0
    a.fcmplt(Reg(5), FReg(5), FReg(3)); // product > 0 ?
    a.add(Reg(4), Reg(4), Reg(5));
    a.addi(Reg(2), Reg(2), 8);
    a.addi(Reg(3), Reg(3), 8);
    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "loop");
    a.halt();
    let program = a.finish().expect("labels resolve");

    // Functional reference.
    let mut reference = Emulator::new(&program);
    reference.run(10_000_000).expect("terminates");

    // Timed execution on the full out-of-order core with SWQUE.
    let mut core = Core::new(CoreConfig::medium(), IqKind::Swque, &program);
    let result = core.run(u64::MAX);

    let dot = core.emulator().fp_reg(FReg(4));
    let positives = core.emulator().int_reg(Reg(4));
    assert_eq!(dot, reference.fp_reg(FReg(4)), "timing never changes results");
    assert_eq!(positives, reference.int_reg(Reg(4)));

    println!("dot(x, y)        = {dot:.6}");
    println!("positive products = {positives} of {n}");
    println!("cycles            = {}", result.cycles);
    println!("IPC               = {:.3}", result.ipc());
    println!("L1D hit rate      = {:.1}%", (1.0 - result.mem.l1d.miss_rate()) * 100.0);
    println!("\narchitectural state matches the functional emulator exactly.");
}
