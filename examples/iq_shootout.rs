//! Shootout: every issue-queue organization on one kernel per behaviour
//! class, showing where each organization wins and loses.
//!
//! ```sh
//! cargo run --release --example iq_shootout
//! ```

use swque::cpu::{Core, CoreConfig};
use swque::iq::IqKind;
use swque::workloads::suite;

fn main() {
    let kernels = ["deepsjeng_like", "bwaves_like", "omnetpp_like"];
    let kinds = [
        IqKind::Shift,
        IqKind::Circ,
        IqKind::CircPpri,
        IqKind::CircPc,
        IqKind::Rand,
        IqKind::Age,
        IqKind::Swque,
    ];

    print!("{:14}", "IQ \\ kernel");
    for name in kernels {
        print!("  {name:>16}");
    }
    println!();
    let mut shift_ipc = Vec::new();
    for kind in kinds {
        print!("{:14}", kind.label());
        for (i, name) in kernels.iter().enumerate() {
            let kernel = suite::by_name(name).expect("known kernel");
            let program = kernel.build();
            let mut core = Core::new(CoreConfig::medium(), kind, &program);
            let warm = core.run(150_000);
            let r = core.run(450_000).delta(&warm);
            if kind == IqKind::Shift {
                shift_ipc.push(r.ipc());
            }
            print!("  {:>7.3} ({:+5.1}%)", r.ipc(), (r.ipc() / shift_ipc[i] - 1.0) * 100.0);
        }
        println!();
    }
    println!("\n(percentages are relative to SHIFT; deepsjeng_like is priority-");
    println!(" sensitive, bwaves_like capacity-hungry, omnetpp_like MLP-bound)");
}
