//! Watch SWQUE's controller follow a phase-changing program: the phased
//! kernel alternates compute (priority-sensitive) and pointer-chase
//! (memory-bound) phases, and the queue reconfigures to match.
//!
//! ```sh
//! cargo run --release --example mode_switching
//! ```

use swque::cpu::{Core, CoreConfig};
use swque::iq::{IqKind, IqMode};
use swque::workloads::synthetic::{phased, PhasedParams};

fn main() {
    let program = phased(
        40,
        &PhasedParams {
            compute_iters: 2_000,
            memory_iters: 400,
            chains: 8,
            nodes: 1 << 20,
            chain_ops: 6,
            seed: 7,
        },
    );
    let mut core = Core::new(CoreConfig::medium(), IqKind::Swque, &program);

    println!("interval  insts      mode     switches   MPKI(total)");
    let mut last_mode = IqMode::Fixed;
    let mut interval = 0u64;
    while !core.finished() && core.retired() < 1_200_000 {
        core.step_cycle();
        if core.retired() >= interval * 20_000 {
            let r = core.result();
            let mode = core.iq_mode();
            let marker = if mode != last_mode { "  <- switched" } else { "" };
            println!(
                "{:>8}  {:>9}  {:>7}  {:>8}   {:>6.2}{marker}",
                interval,
                r.retired,
                mode.to_string(),
                r.swque.map(|s| s.switches).unwrap_or(0),
                r.mpki(),
            );
            last_mode = mode;
            interval += 1;
        }
    }
    let r = core.result();
    let sw = r.swque.expect("SWQUE stats");
    println!(
        "\ntotals: {} switches, {:.0}% of cycles in CIRC-PC, {:.0}% in AGE",
        sw.switches,
        sw.circ_pc_fraction() * 100.0,
        (1.0 - sw.circ_pc_fraction()) * 100.0
    );
}
