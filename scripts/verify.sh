#!/usr/bin/env bash
# Tier-1 verification gate — the exact check CI, reviewers, and builders run.
#
# The workspace is hermetic: every dependency is an in-tree path crate and
# Cargo.lock contains no registry entries, so --offline must succeed on a
# clean checkout with no network and no pre-populated ~/.cargo cache. If
# this script fails on such a machine, that is a regression, not an
# environment problem.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release --offline --workspace"
# --workspace matters twice over: it builds the harness binaries this
# script runs below (a bare `cargo build` only covers the facade crate's
# dependency closure, silently leaving stale fig/perf_gate binaries), and
# it builds the swque-lint gate.
cargo build --release --offline --workspace

echo "== tier-1: cargo test -q --offline"
cargo test -q --offline

echo "== extended: cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "== docs: cargo doc --no-deps --offline (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "== lint: swque-lint --workspace against the committed ratchet baseline"
json_tmp="$(mktemp -d)"
trap 'rm -rf "$json_tmp"' EXIT
SWQUE_JSON="$json_tmp/lint.json" ./target/release/swque-lint --workspace
./target/release/check_json "$json_tmp/lint.json"

echo "== lint: negative self-check (injected violation must fail)"
mkdir -p "$json_tmp/fake/crates/core/src"
printf 'fn t() -> std::time::Instant { std::time::Instant::now() }\n' \
    > "$json_tmp/fake/crates/core/src/injected.rs"
if ./target/release/swque-lint --root "$json_tmp/fake" > /dev/null 2>&1; then
    echo "error: swque-lint passed a tree with an injected std::time::Instant" >&2
    exit 1
fi

echo "== json: schema smoke (fig09 -> check_json, reduced budget)"
SWQUE_WARMUP=5000 SWQUE_INSTS=20000 SWQUE_JSON="$json_tmp/fig09.json" \
    ./target/release/fig09 > /dev/null
./target/release/check_json "$json_tmp/fig09.json"

echo "== perf gate: perf_gate --smoke -> check_json"
SWQUE_JSON="$json_tmp/BENCH_TIER1.json" ./target/release/perf_gate --smoke > /dev/null
./target/release/check_json "$json_tmp/BENCH_TIER1.json"

# Hermeticity (no external deps in manifests, path-only Cargo.lock) is
# enforced by the swque-lint gate above via the external-dep and
# registry-source rules — one enforcement path instead of ad-hoc greps.

echo "verify: OK"
