#!/usr/bin/env bash
# Tier-1 verification gate — the exact check CI, reviewers, and builders run.
#
# The workspace is hermetic: every dependency is an in-tree path crate and
# Cargo.lock contains no registry entries, so --offline must succeed on a
# clean checkout with no network and no pre-populated ~/.cargo cache. If
# this script fails on such a machine, that is a regression, not an
# environment problem.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release --offline --workspace"
# --workspace matters twice over: it builds the harness binaries this
# script runs below (a bare `cargo build` only covers the facade crate's
# dependency closure, silently leaving stale fig/perf_gate binaries), and
# it builds the swque-lint gate.
cargo build --release --offline --workspace

echo "== tier-1: cargo test -q --offline"
cargo test -q --offline

echo "== extended: cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "== docs: cargo doc --no-deps --offline (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "== lint: swque-lint --workspace against the committed ratchet baseline"
json_tmp="$(mktemp -d)"
trap 'rm -rf "$json_tmp"' EXIT
SWQUE_JSON="$json_tmp/lint.json" ./target/release/swque-lint --workspace
./target/release/check_json "$json_tmp/lint.json"

echo "== lint: negative self-check matrix (one injection per rule, each must fail)"
# Each injection goes into its own scratch tree with no baseline (zero debt
# allowed), so the gate must exit non-zero. A rule that silently stops
# firing is caught here, not in a post-mortem.
neg_check() {
    local rule="$1" file="$2" src="$3"
    local tree="$json_tmp/neg-$rule"
    mkdir -p "$tree/$(dirname "$file")"
    printf '%b' "$src" > "$tree/$file"
    if ./target/release/swque-lint --root "$tree" > /dev/null 2>&1; then
        echo "error: swque-lint passed a tree with an injected $rule violation" >&2
        exit 1
    fi
}
neg_check wall-clock crates/core/src/injected.rs \
    'fn t() -> std::time::Instant { std::time::Instant::now() }\n'
neg_check unordered-container crates/cpu/src/injected.rs \
    'use std::collections::HashMap;\npub fn t(m: &HashMap<u64, u8>) -> usize { m.len() }\n'
neg_check iterated-unordered crates/cpu/src/injected.rs \
    'use std::collections::HashMap;\nfn f(m: &HashMap<u64, u8>) { for k in m.keys() { let _ = k; } }\n'
neg_check truncating-cast crates/core/src/injected.rs \
    'fn f(cycle: u64) -> u32 { cycle as u32 }\n'
neg_check unchecked-arith crates/core/src/injected.rs \
    'fn f(cycle: u64, tick: u64) -> u64 { cycle - tick }\n'
neg_check interior-mutability crates/mem/src/injected.rs \
    'fn f() { let c = std::cell::RefCell::new(0u8); c.replace(1); }\n'
neg_check panic-in-lib crates/trace/src/injected.rs \
    'pub fn head(v: &[u8]) -> u8 { *v.first().unwrap() }\n'
neg_check cross-domain-arith crates/mem/src/injected.rs \
    'fn f(done_at: u64, issue_at: u64) -> u64 { done_at + issue_at }\n'
neg_check cross-domain-call crates/mem/src/injected.rs \
    '// swque-domain: at: CycleStamp(launch)\nfn launch(at: u64) { let _ = at; }\nfn f(done_at: u64) { launch(done_at); }\n'
neg_check mc-replay crates/mc/src/injected.rs \
    'const T: &str = "swque-mc-replay-v1 kind=CIRC cap=x width=1 inject=- expect=- events=-";\n'

echo "== lint: --explain smoke (every rule documents itself)"
# The rule list must stay in sync with RULES in crates/lint/src/rules.rs;
# the bad:/fix: example pair in each entry is enforced by the
# every_rule_has_a_class_and_an_explanation meta-test in that file.
for rule in no-unsafe unordered-container iterated-unordered truncating-cast \
            unchecked-arith interior-mutability wall-clock ambient-rng \
            panic-in-lib env-read cross-domain-arith cross-domain-call \
            malformed-pragma mc-replay external-dep registry-source; do
    ./target/release/swque-lint --explain "$rule" > /dev/null
done

echo "== lint: regression demo (reverting the PR-8 prefetch launch fix must be caught)"
# The dataflow pass exists to catch exactly the bug class PR 8 fixed:
# launching a prefetch DRAM request at the *completion* stamp of the
# triggering miss instead of its launch stamp. Re-introduce that bug in a
# scratch copy of crates/mem and demand a cross-domain-call finding at the
# precise call site; the fixed tree must stay clean.
demo="$json_tmp/pr8-demo"
mkdir -p "$demo/crates"
cp -r crates/mem "$demo/crates/"
./target/release/swque-lint --root "$demo" > /dev/null || {
    echo "error: the fixed prefetch tree is not lint-clean" >&2
    exit 1
}
sed -i 's/request_from(requester, pf_issue_at)/request_from(requester, done_at)/' \
    "$demo/crates/mem/src/hierarchy.rs"
bug_line="$(grep -n 'request_from(requester, done_at)' "$demo/crates/mem/src/hierarchy.rs" \
    | cut -d: -f1)"
[ -n "$bug_line" ] || {
    echo "error: regression demo could not re-introduce the PR-8 bug (call site moved?)" >&2
    exit 1
}
if ./target/release/swque-lint --root "$demo" > "$json_tmp/pr8-out.txt" 2>&1; then
    echo "error: swque-lint passed a tree with the PR-8 prefetch bug re-introduced" >&2
    exit 1
fi
grep -q "crates/mem/src/hierarchy.rs:$bug_line:.*cross-domain-call" "$json_tmp/pr8-out.txt" || {
    echo "error: PR-8 regression not attributed to hierarchy.rs:$bug_line" >&2
    cat "$json_tmp/pr8-out.txt" >&2
    exit 1
}

echo "== mc: swque-mc --smoke (bounded exhaustive check, every kind + controller)"
# Every smoke-scope state space must close ("frontier empty") with zero
# violations; the swque-mc-v1 report must validate like every other
# producer's JSON.
./target/release/swque-mc --smoke --json > "$json_tmp/mc-smoke.json"
./target/release/check_json "$json_tmp/mc-smoke.json"

echo "== mc: negative injections (planted bugs must be caught, minimized, replayable)"
# Each injection plants a real bug (the priority-correction pass removed;
# the controller's Figure-7 stabilization disabled) in a harness copy of
# the structure. The checker must exit 1, name the exact property, and
# emit a minimized self-contained replay string — which the checker
# itself re-executes before reporting, and check_json re-parses here.
mc_neg() {
    local kind="$1" cap="$2" inject="$3" property="$4"
    local out="$json_tmp/mc-neg-$inject.json"
    if ./target/release/swque-mc --kind "$kind" --capacity "$cap" \
        --inject "$inject" --json > "$out" 2> /dev/null; then
        echo "error: swque-mc passed with the $inject bug planted" >&2
        exit 1
    fi
    grep -q "\"property\":\"$property\"" "$out" || {
        echo "error: $inject not attributed to $property" >&2
        cat "$out" >&2
        exit 1
    }
    grep -q "\"replay\":\"swque-mc-replay-v1 [^\"]" "$out" || {
        echo "error: $inject produced no replayable counterexample" >&2
        cat "$out" >&2
        exit 1
    }
    ./target/release/check_json "$out"
}
mc_neg CIRC-PC 3 circ-pc-no-correct pc-age-ordered
mc_neg CTRL 0 controller-no-stabilize ctrl-instability-reduction

echo "== json: schema smoke (fig09 -> check_json, reduced budget)"
SWQUE_WARMUP=5000 SWQUE_INSTS=20000 SWQUE_JSON="$json_tmp/fig09.json" \
    ./target/release/fig09 > /dev/null
./target/release/check_json "$json_tmp/fig09.json"

echo "== perf gate: perf_gate --smoke -> check_json"
SWQUE_JSON="$json_tmp/BENCH_TIER1.json" ./target/release/perf_gate --smoke > /dev/null
./target/release/check_json "$json_tmp/BENCH_TIER1.json"

echo "== skip equivalence: skip_diff with and without SWQUE_NO_SKIP"
# Quiescence skipping (DESIGN.md §10) must be invisible in simulated
# behaviour: the full SimResult of one MLP-heavy kernel, byte for byte.
# Counters on stderr prove the skip-on run actually skipped (non-vacuity).
./target/release/skip_diff > "$json_tmp/skip-on.txt" 2> "$json_tmp/skip-on.log"
SWQUE_NO_SKIP=1 ./target/release/skip_diff > "$json_tmp/skip-off.txt" 2> /dev/null
diff -u "$json_tmp/skip-off.txt" "$json_tmp/skip-on.txt" || {
    echo "error: quiescence skipping changed simulated results" >&2
    exit 1
}
grep -q "skip_enabled=true skips=[1-9]" "$json_tmp/skip-on.log" || {
    echo "error: skip-on run took no skips — the equivalence diff is vacuous" >&2
    cat "$json_tmp/skip-on.log" >&2
    exit 1
}

echo "== multi-core: neighbor determinism smoke (2-core, thread-count and skip invariance)"
# The 2-core neighbor co-run (DESIGN.md §11) must be byte-identical however
# the host is configured: worker-thread count and quiescence skipping are
# throughput knobs, not model inputs. The contention echo on stderr feeds
# the non-vacuity greps — an interference experiment that observes no
# arbitration waits and no quota stalls is measuring nothing.
SWQUE_WARMUP=2000 SWQUE_INSTS=10000 SWQUE_NEIGHBOR_MAX=1 \
    SWQUE_JSON="$json_tmp/neighbor.json" SWQUE_THREADS=4 \
    ./target/release/neighbor > "$json_tmp/neighbor-a.txt" 2> "$json_tmp/neighbor-a.log"
SWQUE_WARMUP=2000 SWQUE_INSTS=10000 SWQUE_NEIGHBOR_MAX=1 \
    SWQUE_THREADS=1 SWQUE_NO_SKIP=1 \
    ./target/release/neighbor > "$json_tmp/neighbor-b.txt" 2> /dev/null
diff -u "$json_tmp/neighbor-a.txt" "$json_tmp/neighbor-b.txt" || {
    echo "error: multi-core results depend on thread count or quiescence skipping" >&2
    exit 1
}
./target/release/check_json "$json_tmp/neighbor.json"
grep -Eq "aggressors=1 arb_wait_cycles=[1-9][0-9]* quota_stall_cycles=[1-9]" \
    "$json_tmp/neighbor-a.log" || {
    echo "error: 2-core neighbor run saw no arbitration waits or no quota stalls" >&2
    cat "$json_tmp/neighbor-a.log" >&2
    exit 1
}

echo "== sweep: kill/resume smoke (SIGKILL mid-campaign, resume, merge, validate)"
# A small campaign is started in the background on one worker, killed hard
# as soon as its first shard lands, then resumed. The resumed run must
# finish the campaign, the merged report and a shard must validate against
# their schemas, and the committed example manifest must validate too.
sweep_out="$json_tmp/sweep"
cat > "$json_tmp/sweep-manifest.json" <<'EOF'
{"schema": "swque-sweep-manifest-v1",
 "name": "verify-smoke",
 "budget": {"warmup_insts": 2000, "max_insts": 8000, "scale": 1500},
 "axes": {"kinds": ["CIRC", "AGE"], "seeds": [0, 7, 11],
          "kernels": ["mcf_like", "omnetpp_like"]}}
EOF
./target/release/swque_sweep --manifest "$json_tmp/sweep-manifest.json" \
    --out "$sweep_out" --workers 1 > /dev/null 2>&1 &
sweep_pid=$!
# Wait for the first shard, then kill the campaign mid-run (a finished
# campaign just makes the kill a no-op; resume still covers the gate).
for _ in $(seq 1 200); do
    [ -n "$(ls "$sweep_out/shards" 2> /dev/null)" ] && break
    sleep 0.05
done
kill -9 "$sweep_pid" 2> /dev/null || true
wait "$sweep_pid" 2> /dev/null || true
./target/release/swque_sweep --manifest "$json_tmp/sweep-manifest.json" \
    --out "$sweep_out" > /dev/null
test -f "$sweep_out/campaign.json" || {
    echo "error: resumed campaign did not merge" >&2
    exit 1
}
first_shard="$(ls "$sweep_out/shards" | head -1)"
./target/release/check_json "$json_tmp/sweep-manifest.json" manifests/sensitivity.json \
    "$sweep_out/shards/$first_shard" "$sweep_out/campaign.json"

echo "== sweep: negative (corrupted shard content hash must fail merge and check_json)"
sed -i -E 's/"unit_key":"[0-9a-f]{16}"/"unit_key":"deadbeefdeadbeef"/' \
    "$sweep_out/shards/"*.json
if ./target/release/swque_sweep --manifest "$json_tmp/sweep-manifest.json" \
    --out "$sweep_out" --merge-only > /dev/null 2>&1; then
    echo "error: merge accepted a shard whose unit no longer matches its hash" >&2
    exit 1
fi
if ./target/release/check_json "$sweep_out/shards/$first_shard" > /dev/null 2>&1; then
    echo "error: check_json accepted a shard whose unit no longer matches its hash" >&2
    exit 1
fi

# Hermeticity (no external deps in manifests, path-only Cargo.lock) is
# enforced by the swque-lint gate above via the external-dep and
# registry-source rules — one enforcement path instead of ad-hoc greps.

echo "verify: OK"
