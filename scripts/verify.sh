#!/usr/bin/env bash
# Tier-1 verification gate — the exact check CI, reviewers, and builders run.
#
# The workspace is hermetic: every dependency is an in-tree path crate and
# Cargo.lock contains no registry entries, so --offline must succeed on a
# clean checkout with no network and no pre-populated ~/.cargo cache. If
# this script fails on such a machine, that is a regression, not an
# environment problem.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release --offline"
cargo build --release --offline

echo "== tier-1: cargo test -q --offline"
cargo test -q --offline

echo "== extended: cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "== docs: cargo doc --no-deps --offline (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "== json: schema smoke (fig09 -> check_json, reduced budget)"
json_tmp="$(mktemp -d)"
trap 'rm -rf "$json_tmp"' EXIT
SWQUE_WARMUP=5000 SWQUE_INSTS=20000 SWQUE_JSON="$json_tmp/fig09.json" \
    ./target/release/fig09 > /dev/null
./target/release/check_json "$json_tmp/fig09.json"

echo "== perf gate: perf_gate --smoke -> check_json"
SWQUE_JSON="$json_tmp/BENCH_TIER1.json" ./target/release/perf_gate --smoke > /dev/null
./target/release/check_json "$json_tmp/BENCH_TIER1.json"

echo "== hermeticity: no external dependency entries in any manifest"
if grep -rn --include=Cargo.toml -E '^\s*(rand|proptest|criterion)\b' . ; then
    echo "error: external dependency reference found above" >&2
    exit 1
fi
if grep -n 'source = ' Cargo.lock; then
    echo "error: Cargo.lock references a registry source" >&2
    exit 1
fi

echo "verify: OK"
