//! Observability layer for the SWQUE reproduction.
//!
//! The paper's argument is made at *interval* granularity — MPKI and FLPI
//! per 10k-instruction interval, mode residency over a run, instability
//! trips (§3.2) — but simulator statistics ([`IqStats`]-style aggregate
//! counters) only describe a run's end state. This crate provides the
//! substrate that makes interval-level dynamics inspectable:
//!
//! * [`TraceEvent`] — the typed event vocabulary: controller interval
//!   samples, cycle-stamped mode switches, per-interval IPC, dispatch-stall
//!   episodes, and memory-epoch samples.
//! * [`TraceSink`] — the event-sink trait the simulator emits into, with
//!   [`RingRecorder`] (a bounded ring buffer that drops the *oldest* events
//!   on overflow) as the standard implementation and [`NullSink`] as the
//!   explicit no-op.
//! * [`TraceHandle`] — a cheaply cloneable handle the pipeline components
//!   share. A disabled handle ([`TraceHandle::disabled`]) makes every
//!   [`record`](TraceHandle::record) call a single branch on an `Option`
//!   that is `None` — no allocation, no locking, no event construction in
//!   the callers that guard on [`enabled`](TraceHandle::enabled).
//! * [`summary::TraceSummary`] — the reduction of an event stream to the
//!   per-interval time series and mode-residency figures the experiment
//!   binaries serialize.
//! * [`json`] — a minimal JSON value type (writer **and** parser) so the
//!   bench harness can emit machine-readable results without any external
//!   dependency (the workspace is hermetic).
//!
//! # Example
//!
//! ```
//! use swque_trace::{Mode, TraceEvent, TraceHandle};
//!
//! let trace = TraceHandle::ring(1024);
//! trace.record(TraceEvent::Interval {
//!     cycle: 9_000,
//!     retired: 10_000,
//!     mpki: 0.4,
//!     flpi: 0.06,
//!     mode: Mode::CircPc,
//!     instability: 1,
//!     switched: true,
//! });
//! let events = trace.events();
//! assert_eq!(events.len(), 1);
//!
//! // A disabled handle records nothing and costs nothing.
//! let off = TraceHandle::disabled();
//! off.record(TraceEvent::ModeSwitch {
//!     cycle: 1, retired: 2, from: Mode::CircPc, to: Mode::Age,
//! });
//! assert!(off.events().is_empty());
//! ```
//!
//! [`IqStats`]: https://docs.rs/swque-core

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod summary;

pub use json::Json;
pub use summary::{IntervalSample, IpcSample, TraceSummary};

use std::cell::RefCell; // swque-lint: allow(interior-mutability) — single-threaded trace fan-in, documented on TraceHandle
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// The SWQUE operating configuration an event was observed under.
///
/// Deliberately narrower than the simulator's queue-mode vocabulary: only
/// the two configurations SWQUE switches between appear in traces (a
/// non-switching queue never emits mode events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Priority-correcting circular queue (priority-sensitive phases).
    CircPc,
    /// Random queue + age matrix (capacity-demanding phases).
    Age,
}

impl Mode {
    /// The paper's name for the configuration (also the JSON encoding).
    pub fn label(self) -> &'static str {
        match self {
            Mode::CircPc => "CIRC-PC",
            Mode::Age => "AGE",
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One timestamped observation from the simulated pipeline.
///
/// All variants carry the cycle they were observed at; instruction-indexed
/// variants also carry the retired-instruction count, so a time series can
/// be plotted against either axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// One completed controller interval (SWQUE §3.2): the metrics the
    /// mode decision was made from and the controller state after it.
    Interval {
        /// Cycle at which the interval boundary was crossed.
        cycle: u64,
        /// Retired-instruction total at the boundary.
        retired: u64,
        /// LLC misses per kilo-instruction over the interval.
        mpki: f64,
        /// Low-priority issues per issued instruction over the interval.
        flpi: f64,
        /// Mode the interval executed under (before any switch it caused).
        mode: Mode,
        /// Instability-counter value after the decision (§3.2.3).
        instability: u32,
        /// True when the decision requested a mode switch.
        switched: bool,
    },
    /// A completed mode reconfiguration (the pipeline flush happened).
    ModeSwitch {
        /// Cycle of the flush.
        cycle: u64,
        /// Retired-instruction total at the flush.
        retired: u64,
        /// Configuration before the switch.
        from: Mode,
        /// Configuration after the switch.
        to: Mode,
    },
    /// Per-interval IPC sample from the core (same interval length as the
    /// controller's, so the series align row-for-row).
    IntervalIpc {
        /// Cycle at which the interval boundary was crossed.
        cycle: u64,
        /// Retired-instruction total at the boundary.
        retired: u64,
        /// Instructions per cycle over the interval.
        ipc: f64,
    },
    /// A contiguous episode of cycles in which dispatch was blocked by a
    /// full issue queue (capacity pressure made visible). Emitters may
    /// suppress episodes below a minimum length; aggregate stall cycles
    /// remain in the run statistics regardless.
    DispatchStall {
        /// First blocked cycle of the episode.
        cycle: u64,
        /// Consecutive blocked cycles.
        cycles: u64,
    },
    /// Memory-hierarchy activity over one fixed-length cycle epoch, emitted
    /// when the epoch rolls over (quiet epochs emit nothing).
    MemEpoch {
        /// First cycle of the epoch.
        cycle: u64,
        /// Requester (core id) whose demand miss crossed the epoch
        /// boundary and triggered the sample. Always 0 on a single-core
        /// hierarchy; the *counters* below still aggregate all requesters.
        requester: u32,
        /// LLC demand misses observed during the epoch.
        llc_misses: u64,
        /// DRAM line transfers (demand + prefetch) during the epoch.
        dram_transfers: u64,
    },
}

impl TraceEvent {
    /// The cycle stamp carried by every variant.
    // swque-domain: return: CycleStamp
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Interval { cycle, .. }
            | TraceEvent::ModeSwitch { cycle, .. }
            | TraceEvent::IntervalIpc { cycle, .. }
            | TraceEvent::DispatchStall { cycle, .. }
            | TraceEvent::MemEpoch { cycle, .. } => cycle,
        }
    }

    /// Short kind label (JSON `kind` field, summary grouping).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Interval { .. } => "interval",
            TraceEvent::ModeSwitch { .. } => "mode_switch",
            TraceEvent::IntervalIpc { .. } => "interval_ipc",
            TraceEvent::DispatchStall { .. } => "dispatch_stall",
            TraceEvent::MemEpoch { .. } => "mem_epoch",
        }
    }
}

/// An event consumer. The simulator is written against this trait so
/// recording policy (ring buffer, counting, discarding) is swappable.
pub trait TraceSink {
    /// Consumes one event.
    fn record(&mut self, event: TraceEvent);

    /// A snapshot of the retained events, oldest first. Sinks that do not
    /// retain events return an empty vector.
    fn events(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Events discarded so far (ring overflow). Lossless sinks return 0.
    fn dropped(&self) -> u64 {
        0
    }
}

/// The explicit no-op sink: every event is discarded on arrival.
///
/// Exists mostly for tests and for documenting the disabled path; the
/// simulator's disabled path is [`TraceHandle::disabled`], which does not
/// even construct events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}
}

/// A bounded FIFO recorder: keeps the most recent `capacity` events,
/// dropping the **oldest** on overflow (the tail of a run is where mode
/// residency settles, so recency is the right bias) and counting what it
/// dropped so consumers can tell a complete trace from a windowed one.
#[derive(Debug, Clone, Default)]
pub struct RingRecorder {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingRecorder {
    /// Creates a recorder retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (use [`NullSink`] to discard).
    pub fn new(capacity: usize) -> RingRecorder {
        assert!(capacity > 0, "a zero-capacity ring records nothing; use NullSink"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
        RingRecorder { capacity, buf: VecDeque::with_capacity(capacity.min(4096)), dropped: 0 }
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Removes and returns all retained events, oldest first, resetting the
    /// recorder (the drop counter is also cleared).
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.dropped = 0;
        self.buf.drain(..).collect()
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    fn events(&self) -> Vec<TraceEvent> {
        self.buf.iter().copied().collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A shared, cheaply cloneable reference to a sink — or to nothing.
///
/// Every traced component (core, issue queue, memory hierarchy) holds a
/// clone; they all feed the same recorder. The handle is single-threaded by
/// design (`Rc<RefCell<…>>`): the simulator itself is single-threaded per
/// core, and suite sweeps create one handle per worker thread.
///
/// The disabled handle is the default and is free: `record` is one branch,
/// and callers that would do work just to *build* an event should guard on
/// [`enabled`](TraceHandle::enabled) first.
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Rc<RefCell<dyn TraceSink>>>); // swque-lint: allow(interior-mutability) — single-threaded by design (see type docs); events append in deterministic simulation order

impl TraceHandle {
    /// The disabled handle: records nothing, costs one branch per call.
    pub fn disabled() -> TraceHandle {
        TraceHandle(None)
    }

    /// A handle feeding a fresh [`RingRecorder`] of `capacity` events.
    pub fn ring(capacity: usize) -> TraceHandle {
        TraceHandle::with_sink(RingRecorder::new(capacity))
    }

    /// A handle feeding an arbitrary sink implementation.
    pub fn with_sink<S: TraceSink + 'static>(sink: S) -> TraceHandle {
        TraceHandle(Some(Rc::new(RefCell::new(sink)))) // swque-lint: allow(interior-mutability) — single-threaded by design (see type docs)
    }

    /// True when events are being consumed. Emitters with non-trivial event
    /// construction should guard on this.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one event (no-op when disabled).
    pub fn record(&self, event: TraceEvent) {
        if let Some(sink) = &self.0 {
            sink.borrow_mut().record(event);
        }
    }

    /// Snapshot of the retained events, oldest first (empty when disabled).
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.0 {
            Some(sink) => sink.borrow().events(),
            None => Vec::new(),
        }
    }

    /// Events the sink has discarded (0 when disabled).
    pub fn dropped(&self) -> u64 {
        match &self.0 {
            Some(sink) => sink.borrow().dropped(),
            None => 0,
        }
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(sink) => f
                .debug_struct("TraceHandle")
                .field("events", &sink.borrow().events().len())
                .field("dropped", &sink.borrow().dropped())
                .finish(),
            None => f.write_str("TraceHandle(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::IntervalIpc { cycle, retired: cycle * 2, ipc: 1.5 }
    }

    #[test]
    fn ring_retains_up_to_capacity() {
        let mut r = RingRecorder::new(4);
        assert!(r.is_empty());
        for c in 0..4 {
            r.record(ev(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.events().first(), Some(&ev(0)));
        assert_eq!(r.events().last(), Some(&ev(3)));
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let mut r = RingRecorder::new(3);
        for c in 0..10 {
            r.record(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        let kept: Vec<u64> = r.events().iter().map(TraceEvent::cycle).collect();
        assert_eq!(kept, vec![7, 8, 9], "the newest events survive");
    }

    #[test]
    fn ring_drain_empties_and_resets() {
        let mut r = RingRecorder::new(2);
        for c in 0..5 {
            r.record(ev(c));
        }
        let drained = r.drain();
        assert_eq!(drained.len(), 2);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        r.record(ev(9));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_ring_is_rejected() {
        let _ = RingRecorder::new(0);
    }

    #[test]
    fn null_sink_discards_everything() {
        let mut s = NullSink;
        s.record(ev(1));
        assert!(s.events().is_empty());
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn disabled_handle_is_a_no_op() {
        let h = TraceHandle::disabled();
        assert!(!h.enabled());
        h.record(ev(1));
        assert!(h.events().is_empty());
        assert_eq!(h.dropped(), 0);
        assert_eq!(format!("{h:?}"), "TraceHandle(disabled)");
    }

    #[test]
    fn clones_share_one_recorder() {
        let a = TraceHandle::ring(8);
        let b = a.clone();
        a.record(ev(1));
        b.record(ev(2));
        assert_eq!(a.events().len(), 2);
        assert_eq!(b.events(), a.events());
    }

    #[test]
    fn event_accessors() {
        let e = TraceEvent::ModeSwitch { cycle: 7, retired: 70, from: Mode::CircPc, to: Mode::Age };
        assert_eq!(e.cycle(), 7);
        assert_eq!(e.kind(), "mode_switch");
        assert_eq!(Mode::Age.to_string(), "AGE");
        assert_eq!(Mode::CircPc.label(), "CIRC-PC");
    }
}
