//! Reduction of an event stream to the per-interval time series and
//! residency figures the experiment binaries serialize.
//!
//! [`TraceSummary::from_events`] walks a recorded stream once and collects
//! the controller interval series, the core IPC series, switch counts, and
//! aggregate stall/memory activity. The result is plain data (`Send`, no
//! interior mutability) so suite sweeps can move it across worker threads,
//! and [`TraceSummary::to_json`] gives it the stable shape documented in
//! `DESIGN.md` (schema `swque-trace-v1`).

use crate::json::Json;
use crate::{Mode, TraceEvent};

/// One controller interval as recorded by a [`TraceEvent::Interval`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalSample {
    /// Cycle at which the interval boundary was crossed.
    pub cycle: u64,
    /// Retired-instruction total at the boundary.
    pub retired: u64,
    /// LLC misses per kilo-instruction over the interval.
    pub mpki: f64,
    /// Low-priority issues per issued instruction over the interval.
    pub flpi: f64,
    /// Mode the interval executed under.
    pub mode: Mode,
    /// Instability counter after the interval's decision.
    pub instability: u32,
    /// True when the decision requested a mode switch.
    pub switched: bool,
}

/// One per-interval IPC sample from the core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpcSample {
    /// Cycle at which the interval boundary was crossed.
    pub cycle: u64,
    /// Retired-instruction total at the boundary.
    pub retired: u64,
    /// Instructions per cycle over the interval.
    pub ipc: f64,
}

/// The digest of one run's trace: time series plus aggregate counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Events the summary was built from (post any ring-buffer loss).
    pub events: usize,
    /// Events the recorder dropped before the summary saw them; when
    /// non-zero, the series below cover a suffix window of the run, not
    /// its entirety.
    pub dropped: u64,
    /// Controller interval series, in emission order.
    pub intervals: Vec<IntervalSample>,
    /// Core IPC series, in emission order.
    pub ipc: Vec<IpcSample>,
    /// Completed mode switches observed.
    pub switches: u64,
    /// Intervals that executed under CIRC-PC.
    pub circ_pc_intervals: u64,
    /// Intervals that executed under AGE.
    pub age_intervals: u64,
    /// Dispatch-stall episodes observed (emitters may suppress short ones).
    pub stall_episodes: u64,
    /// Total blocked cycles across observed episodes.
    pub stall_cycles: u64,
    /// Memory epochs observed.
    pub mem_epochs: u64,
    /// LLC demand misses summed over observed epochs.
    pub llc_misses: u64,
}

impl TraceSummary {
    /// Builds a summary from a recorded stream. `dropped` is the
    /// recorder's loss counter ([`crate::TraceHandle::dropped`]); pass 0
    /// for a lossless stream.
    pub fn from_events(events: &[TraceEvent], dropped: u64) -> TraceSummary {
        let mut s = TraceSummary { events: events.len(), dropped, ..TraceSummary::default() };
        for ev in events {
            match *ev {
                TraceEvent::Interval {
                    cycle,
                    retired,
                    mpki,
                    flpi,
                    mode,
                    instability,
                    switched,
                } => {
                    match mode {
                        Mode::CircPc => s.circ_pc_intervals += 1,
                        Mode::Age => s.age_intervals += 1,
                    }
                    s.intervals.push(IntervalSample {
                        cycle,
                        retired,
                        mpki,
                        flpi,
                        mode,
                        instability,
                        switched,
                    });
                }
                TraceEvent::ModeSwitch { .. } => s.switches += 1,
                TraceEvent::IntervalIpc { cycle, retired, ipc } => {
                    s.ipc.push(IpcSample { cycle, retired, ipc });
                }
                TraceEvent::DispatchStall { cycles, .. } => {
                    s.stall_episodes += 1;
                    s.stall_cycles += cycles;
                }
                TraceEvent::MemEpoch { llc_misses, .. } => {
                    s.mem_epochs += 1;
                    s.llc_misses += llc_misses;
                }
            }
        }
        s
    }

    /// Fraction of observed intervals that executed under CIRC-PC
    /// (`0.0` when no interval was observed). Interval-weighted, which
    /// approximates the cycle-weighted residency of
    /// `SwqueStats::circ_pc_fraction` to within one interval.
    pub fn circ_pc_fraction(&self) -> f64 {
        let total = self.circ_pc_intervals + self.age_intervals;
        if total == 0 {
            0.0
        } else {
            self.circ_pc_intervals as f64 / total as f64
        }
    }

    /// A one-character-per-interval mode strip (`C` = CIRC-PC, `A` = AGE),
    /// the Figure 10 timeline in its most compact form.
    pub fn mode_strip(&self) -> String {
        self.intervals
            .iter()
            .map(|i| match i.mode {
                Mode::CircPc => 'C',
                Mode::Age => 'A',
            })
            .collect()
    }

    /// Serializes the summary (schema `swque-trace-v1`, documented
    /// field-by-field in `DESIGN.md`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from("swque-trace-v1")),
            ("events", Json::from(self.events)),
            ("dropped", Json::from(self.dropped)),
            ("switches", Json::from(self.switches)),
            ("circ_pc_intervals", Json::from(self.circ_pc_intervals)),
            ("age_intervals", Json::from(self.age_intervals)),
            ("circ_pc_fraction", Json::from(self.circ_pc_fraction())),
            ("mode_strip", Json::from(self.mode_strip())),
            ("stall_episodes", Json::from(self.stall_episodes)),
            ("stall_cycles", Json::from(self.stall_cycles)),
            ("mem_epochs", Json::from(self.mem_epochs)),
            ("llc_misses", Json::from(self.llc_misses)),
            (
                "intervals",
                Json::Arr(
                    self.intervals
                        .iter()
                        .map(|i| {
                            Json::obj([
                                ("cycle", Json::from(i.cycle)),
                                ("retired", Json::from(i.retired)),
                                ("mpki", Json::from(i.mpki)),
                                ("flpi", Json::from(i.flpi)),
                                ("mode", Json::from(i.mode.label())),
                                ("instability", Json::from(i.instability)),
                                ("switched", Json::from(i.switched)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "ipc",
                Json::Arr(
                    self.ipc
                        .iter()
                        .map(|i| {
                            Json::obj([
                                ("cycle", Json::from(i.cycle)),
                                ("retired", Json::from(i.retired)),
                                ("ipc", Json::from(i.ipc)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(retired: u64, mode: Mode, switched: bool) -> TraceEvent {
        TraceEvent::Interval {
            cycle: retired / 2,
            retired,
            mpki: 0.5,
            flpi: 0.02,
            mode,
            instability: 0,
            switched,
        }
    }

    #[test]
    fn summarizes_a_mixed_stream() {
        let events = vec![
            interval(10_000, Mode::CircPc, false),
            interval(20_000, Mode::CircPc, true),
            TraceEvent::ModeSwitch { cycle: 10_001, retired: 20_000, from: Mode::CircPc, to: Mode::Age },
            interval(30_000, Mode::Age, false),
            TraceEvent::IntervalIpc { cycle: 5_000, retired: 10_000, ipc: 2.0 },
            TraceEvent::DispatchStall { cycle: 400, cycles: 12 },
            TraceEvent::DispatchStall { cycle: 900, cycles: 8 },
            TraceEvent::MemEpoch { cycle: 0, requester: 0, llc_misses: 17, dram_transfers: 20 },
        ];
        let s = TraceSummary::from_events(&events, 3);
        assert_eq!(s.events, 8);
        assert_eq!(s.dropped, 3);
        assert_eq!(s.intervals.len(), 3);
        assert_eq!(s.ipc.len(), 1);
        assert_eq!(s.switches, 1);
        assert_eq!(s.circ_pc_intervals, 2);
        assert_eq!(s.age_intervals, 1);
        assert!((s.circ_pc_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.mode_strip(), "CCA");
        assert_eq!(s.stall_episodes, 2);
        assert_eq!(s.stall_cycles, 20);
        assert_eq!(s.mem_epochs, 1);
        assert_eq!(s.llc_misses, 17);
    }

    #[test]
    fn empty_stream_is_well_defined() {
        let s = TraceSummary::from_events(&[], 0);
        assert_eq!(s.circ_pc_fraction(), 0.0);
        assert_eq!(s.mode_strip(), "");
        assert_eq!(s, TraceSummary::default());
    }

    #[test]
    fn json_round_trips_and_keeps_schema_keys() {
        let s = TraceSummary::from_events(&[interval(10_000, Mode::Age, false)], 0);
        let doc = s.to_json();
        let back = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("schema").and_then(Json::as_str), Some("swque-trace-v1"));
        let iv = &back.get("intervals").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            iv.keys(),
            vec!["cycle", "retired", "mpki", "flpi", "mode", "instability", "switched"],
        );
        assert_eq!(iv.get("mode").and_then(Json::as_str), Some("AGE"));
    }
}
