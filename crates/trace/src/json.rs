//! A minimal JSON value: builder, writer, and parser.
//!
//! The workspace is hermetic (no external crates), so the structured
//! experiment output ([`SWQUE_JSON`]) needs an in-tree serializer — and the
//! verification gate needs an in-tree *parser* to validate what the
//! binaries wrote. This module provides both around one [`Json`] value
//! type.
//!
//! Scope: exactly what the bench schema needs. Objects preserve insertion
//! order (stable output diffs), numbers are `f64` (every counter in the
//! simulator fits in 53 bits; integral values print without a fraction),
//! and the parser accepts standard JSON including escapes and scientific
//! notation. Not a general-purpose JSON library — no streaming, no
//! comments, no duplicate-key detection.
//!
//! ```
//! use swque_trace::json::Json;
//!
//! let doc = Json::obj([
//!     ("schema", Json::from("swque-bench-v1")),
//!     ("rows", Json::Arr(vec![Json::from(1.0), Json::from(2.5)])),
//! ]);
//! let text = doc.to_string();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(doc, back);
//! assert_eq!(back.get("schema").and_then(Json::as_str), Some("swque-bench-v1"));
//! ```
//!
//! [`SWQUE_JSON`]: https://docs.rs/swque-bench

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always stored as `f64`; integral values print as
    /// integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is insertion order and is preserved by the
    /// writer (the parser preserves document order).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs in order.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The object's keys in order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Parses a JSON document (the whole input must be one value plus
    /// optional whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the byte offset and what was
    /// expected there.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("end of input"));
        }
        Ok(value)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    /// Writes compact JSON (no insignificant whitespace). Integral numbers
    /// print without a fractional part; non-finite numbers print as `null`
    /// (JSON has no representation for them).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) if !n.is_finite() => f.write_str("null"),
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 2f64.powi(53) => {
                write!(f, "{}", *n as i64)
            }
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure: what was expected and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input at which the failure occurred.
    pub offset: usize,
    /// What the parser was expecting there.
    pub expected: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting the parser accepts. The recursive-descent
/// parser uses one host stack frame per nesting level, so an adversarial
/// `[[[[…]]]]` input would otherwise overflow the stack; real bench
/// reports nest four or five levels deep.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting level, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, expected: &'static str) -> ParseError {
        ParseError { offset: self.pos, expected }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, expected: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("a JSON literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    /// Bumps the nesting level on container entry; errors at the cap
    /// instead of recursing toward a host stack overflow.
    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting no deeper than 128 levels"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "'['")?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "'{'")?;
        self.descend()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "':'")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("a closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("an escape character"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("four hex digits"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("four hex digits"))?;
                            self.pos = end;
                            // Surrogates are not combined (the writer never
                            // emits them; BMP coverage suffices here).
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("a valid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("valid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("a character"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("no raw control characters"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            // swque-lint: allow(panic-in-lib) — the scan above admits only ASCII digit/sign/dot/exponent bytes, which are valid UTF-8
            .expect("digits and punctuation are ASCII");
        let n: f64 = text.parse().map_err(|_| ParseError {
            offset: start,
            expected: "a number",
        })?;
        // Overflowing literals like `1e999` parse to ±infinity, which the
        // writer can only render as `null` — accepting them would break
        // parse/serialize round-tripping. Reject at the source instead.
        if !n.is_finite() {
            return Err(ParseError { offset: start, expected: "a finite number" });
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_documents() {
        let doc = Json::obj([
            ("a", Json::from(1u64)),
            ("b", Json::from(2.5)),
            ("c", Json::from("x\"y")),
            ("d", Json::Arr(vec![Json::Null, Json::from(true)])),
        ]);
        assert_eq!(doc.to_string(), r#"{"a":1,"b":2.5,"c":"x\"y","d":[null,true]}"#);
    }

    #[test]
    fn integral_floats_print_as_integers() {
        assert_eq!(Json::from(400000u64).to_string(), "400000");
        assert_eq!(Json::from(0.04).to_string(), "0.04");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null", "non-finite becomes null");
    }

    #[test]
    fn parses_what_it_writes() {
        let doc = Json::obj([
            ("schema", Json::from("swque-bench-v1")),
            ("n", Json::from(12345u64)),
            ("f", Json::from(-0.75)),
            ("nested", Json::obj([("k", Json::Arr(vec![Json::from(1u64)]))])),
            ("text", Json::from("tabs\tand\nnewlines and ünïcode")),
        ]);
        assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn parses_standard_inputs() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.0e1 , -3 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(20.0));
        assert_eq!(v.get("b"), Some(&Json::Null));
        assert_eq!(Json::parse(r#""A\n""#).unwrap(), Json::from("A\n"));
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "trail", "1 2", "\"open", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // One past the cap fails cleanly…
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.expected.contains("nesting"), "got {err}");
        // …as does a pathological input far beyond it (the original bug:
        // recursion depth proportional to input length).
        let bomb = "[".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
        let bomb = "{\"a\":".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn nesting_at_the_cap_parses() {
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
        // Depth is current nesting, not a total-container count: many
        // shallow siblings are fine.
        let wide = format!("[{}]", vec!["[]"; 500].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn overflowing_number_literals_are_rejected() {
        for bad in ["1e999", "-1e999", "1e308e", "123456789012e300"] {
            let r = Json::parse(bad);
            assert!(r.is_err(), "accepted {bad:?} as {r:?}");
        }
        // Large but finite is fine.
        assert_eq!(Json::parse("1e300").unwrap().as_f64(), Some(1e300));
    }

    /// Round-trip pin: every finite value the builder can produce must
    /// survive `to_string` → `parse` exactly. Random documents are built
    /// from the in-tree RNG; before the non-finite rejection fix, a `Num`
    /// holding infinity printed as `null` and round-tripping silently
    /// changed the document.
    #[test]
    fn prop_write_parse_round_trip() {
        use swque_rng::prop::{check, Gen};

        fn random_value(g: &mut Gen, depth: usize) -> Json {
            match g.gen_range(0u32..if depth < 4 { 8 } else { 6 }) {
                0 => Json::Null,
                1 => Json::Bool(g.bool()),
                2 => Json::from(g.gen_range(0u64..1_000_000_000)),
                3 => Json::Num(g.gen_range(0u64..2_000_000) as f64 / 1024.0 - 500.0),
                4 => Json::from(format!("s{}", g.gen_range(0u64..1000))),
                5 => Json::from("täb\t\"quote\"\nünicode \u{1F600}"),
                6 => Json::Arr(
                    (0..g.gen_range(0u64..5)).map(|_| random_value(g, depth + 1)).collect(),
                ),
                _ => Json::obj(
                    (0..g.gen_range(0u64..5))
                        .map(|i| (format!("k{i}"), random_value(g, depth + 1)))
                        .collect::<Vec<_>>(),
                ),
            }
        }

        check(256, |g| {
            let doc = random_value(g, 0);
            let text = doc.to_string();
            let back = Json::parse(&text).unwrap_or_else(|e| panic!("{e} in {text}"));
            assert_eq!(back, doc, "round-trip changed the document: {text}");
        });
    }

    #[test]
    fn accessors_and_keys() {
        let v = Json::obj([("x", Json::from(3u64)), ("y", Json::from(false))]);
        assert_eq!(v.keys(), vec!["x", "y"]);
        assert_eq!(v.get("x").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("y").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("z"), None);
        assert_eq!(Json::from(2.5).as_u64(), None, "fractional is not u64");
        assert_eq!(v.as_obj().map(<[(String, Json)]>::len), Some(2));
    }
}
