//! Sweep campaigns: declarative manifests expanded into deterministic,
//! sharded, resumable simulation work (the `swque-sweep` binary).
//!
//! A *manifest* (schema [`MANIFEST_SCHEMA`]) names a campaign, fixes a run
//! budget, and lists axis values — issue-queue kinds, processor models,
//! controller thresholds, workload layout seeds, kernels. The cartesian
//! product of the axes is expanded in a fixed nested order into a list of
//! *work units*; each unit is one `run_kernel` simulation through the same
//! harness path the figure binaries use.
//!
//! Results are *sharded*: every completed unit writes one JSON file
//! (schema [`SHARD_SCHEMA`]) named by the unit's content hash — an FNV-1a
//! 64 digest of the unit's canonical JSON, which covers every
//! code-relevant knob (axes *and* budget). Shards make campaigns
//! resumable: a re-run validates existing shards (parse, schema, key
//! match), repairs invalid ones, and only simulates what is missing, so a
//! campaign killed mid-run finishes from where it died and an edited
//! manifest reuses every unit it still shares with the old one.
//!
//! When every unit has a valid shard, the campaign *merges* (schema
//! [`CAMPAIGN_SCHEMA`]): one row per unit in expansion order, the
//! campaign-wide IPC geometric mean, and per-axis marginal geomeans. The
//! merge is strict — a missing, unparseable, or key-mismatched shard fails
//! it — and pure (a fold over shard files in a deterministic order), so
//! the merged report is byte-identical no matter how many workers produced
//! the shards or across how many interrupted runs.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use swque_core::IqKind;
use swque_trace::Json;
use swque_workloads::suite;

use crate::harness::{geomean, run_suite_on, ProcessorModel, RunSpec};

/// Schema identifier of campaign manifests.
pub const MANIFEST_SCHEMA: &str = "swque-sweep-manifest-v1";
/// Schema identifier of per-unit shard files.
pub const SHARD_SCHEMA: &str = "swque-sweep-shard-v1";
/// Schema identifier of merged campaign reports.
pub const CAMPAIGN_SCHEMA: &str = "swque-sweep-campaign-v1";

/// Run budget shared by every unit of a campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Warmup instructions excluded from measurement.
    pub warmup_insts: u64,
    /// Measured dynamic instructions after warmup.
    pub max_insts: u64,
    /// Kernel scale override (`None` = each kernel's default).
    pub scale: Option<u64>,
}

/// Axis values of a campaign (each axis contributes one factor to the
/// cartesian product; an axis omitted from the manifest holds exactly its
/// default entry).
#[derive(Debug, Clone)]
pub struct Axes {
    /// Issue-queue organizations (default: `[SWQUE]`).
    pub kinds: Vec<IqKind>,
    /// Processor models (default: `[medium]`).
    pub models: Vec<ProcessorModel>,
    /// SWQUE MPKI-threshold overrides; `None` = the model's Table 3 value
    /// (default: `[None]`).
    pub mpki_thresholds: Vec<Option<f64>>,
    /// SWQUE FLPI-threshold overrides; `None` = the model's Table 3 value
    /// (default: `[None]`).
    pub flpi_thresholds: Vec<Option<f64>>,
    /// Workload layout seeds (default: `[0]`, the canonical programs).
    pub seeds: Vec<u64>,
    /// Kernel names (default: the whole suite).
    pub kernels: Vec<String>,
}

/// A parsed campaign manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Campaign name (becomes the merged report's `name`).
    pub name: String,
    /// Run budget shared by every unit.
    pub budget: Budget,
    /// Axis values.
    pub axes: Axes,
}

/// One fully-resolved simulation request of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkUnit {
    /// Issue-queue organization.
    pub kind: IqKind,
    /// Processor model.
    pub model: ProcessorModel,
    /// MPKI-threshold override.
    pub mpki_threshold: Option<f64>,
    /// FLPI-threshold override.
    pub flpi_threshold: Option<f64>,
    /// Workload layout seed.
    pub seed: u64,
    /// Kernel name (validated against the suite at expansion time).
    pub kernel: String,
    /// The campaign budget (part of the unit so the content hash covers
    /// it: a budget change invalidates every shard, as it must).
    pub budget: Budget,
}

/// FNV-1a 64-bit digest (the shard content hash; also used elsewhere in
/// the workspace for fingerprints — small, dependency-free, and stable).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn opt_f64_json(v: Option<f64>) -> Json {
    match v {
        Some(x) => Json::from(x),
        None => Json::Null,
    }
}

fn budget_json(b: &Budget) -> Json {
    Json::obj([
        ("warmup_insts", Json::from(b.warmup_insts)),
        ("max_insts", Json::from(b.max_insts)),
        (
            "scale",
            match b.scale {
                Some(s) => Json::from(s),
                None => Json::Null,
            },
        ),
    ])
}

impl WorkUnit {
    /// The unit as canonical JSON: fixed key order, every code-relevant
    /// knob present (axes and budget). This is the hashed representation —
    /// two units are the same shard if and only if this document is
    /// byte-identical.
    pub fn canonical_json(&self) -> Json {
        Json::obj([
            ("kind", Json::from(self.kind.label())),
            ("model", Json::from(self.model.label())),
            ("mpki_threshold", opt_f64_json(self.mpki_threshold)),
            ("flpi_threshold", opt_f64_json(self.flpi_threshold)),
            ("seed", Json::from(self.seed)),
            ("kernel", Json::from(self.kernel.as_str())),
            ("budget", budget_json(&self.budget)),
        ])
    }

    /// Content hash of the unit: 16 lowercase hex digits of the FNV-1a 64
    /// digest of [`canonical_json`](Self::canonical_json). Shard files are
    /// named `<key>.json`.
    pub fn key(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical_json().to_string().as_bytes()))
    }

    /// The harness spec this unit resolves to.
    pub fn spec(&self) -> RunSpec {
        RunSpec {
            model: self.model,
            iq: self.kind,
            warmup_insts: self.budget.warmup_insts,
            max_insts: self.budget.max_insts,
            scale: self.budget.scale,
            seed: self.seed,
            mpki_threshold: self.mpki_threshold,
            flpi_threshold: self.flpi_threshold,
        }
    }
}

fn parse_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key).and_then(Json::as_u64).ok_or_else(|| format!("{key}: not an integer"))
}

fn opt_f64_axis(doc: &Json, key: &str) -> Result<Vec<Option<f64>>, String> {
    let Some(arr) = doc.get(key) else { return Ok(vec![None]) };
    let arr = arr.as_arr().ok_or_else(|| format!("axes.{key}: not an array"))?;
    if arr.is_empty() {
        return Err(format!("axes.{key}: empty axis"));
    }
    arr.iter()
        .enumerate()
        .map(|(i, v)| match v {
            Json::Null => Ok(None),
            _ => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| format!("axes.{key}[{i}]: not a number or null")),
        })
        .collect()
}

impl Manifest {
    /// Parses a manifest document (schema [`MANIFEST_SCHEMA`]). Omitted
    /// axes take their single-entry defaults; present axes must be
    /// non-empty and every value must parse (unknown kind/model labels and
    /// unknown keys are errors, not silent no-ops).
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let doc = Json::parse(text).map_err(|e| format!("manifest: parse error: {e}"))?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != MANIFEST_SCHEMA {
            return Err(format!("schema: {schema:?}, expected {MANIFEST_SCHEMA:?}"));
        }
        for key in doc.keys() {
            if !["schema", "name", "budget", "axes"].contains(&key) {
                return Err(format!("$: unknown key {key:?}"));
            }
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or("name: missing or not a string")?
            .to_string();
        let budget = doc.get("budget").ok_or("budget: missing")?;
        for key in budget.keys() {
            if !["warmup_insts", "max_insts", "scale"].contains(&key) {
                return Err(format!("budget: unknown key {key:?}"));
            }
        }
        let budget = Budget {
            warmup_insts: parse_u64(budget, "warmup_insts").map_err(|e| format!("budget.{e}"))?,
            max_insts: parse_u64(budget, "max_insts").map_err(|e| format!("budget.{e}"))?,
            scale: match budget.get("scale") {
                None | Some(Json::Null) => None,
                Some(v) => {
                    Some(v.as_u64().ok_or("budget.scale: not an integer or null")?)
                }
            },
        };
        let axes = doc.get("axes").cloned().unwrap_or_else(|| Json::obj::<&str, _>([]));
        for key in axes.keys() {
            let known = [
                "kinds",
                "models",
                "mpki_thresholds",
                "flpi_thresholds",
                "seeds",
                "kernels",
            ];
            if !known.contains(&key) {
                return Err(format!("axes: unknown key {key:?}"));
            }
        }
        let str_axis = |key: &str, default: Vec<String>| -> Result<Vec<String>, String> {
            let Some(arr) = axes.get(key) else { return Ok(default) };
            let arr = arr.as_arr().ok_or_else(|| format!("axes.{key}: not an array"))?;
            if arr.is_empty() {
                return Err(format!("axes.{key}: empty axis"));
            }
            arr.iter()
                .enumerate()
                .map(|(i, v)| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("axes.{key}[{i}]: not a string"))
                })
                .collect()
        };
        let kinds = str_axis("kinds", vec!["SWQUE".to_string()])?
            .iter()
            .map(|label| {
                IqKind::from_label(label)
                    .ok_or_else(|| format!("axes.kinds: unknown issue-queue kind {label:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let models = str_axis("models", vec!["medium".to_string()])?
            .iter()
            .map(|label| {
                ProcessorModel::from_label(label)
                    .ok_or_else(|| format!("axes.models: unknown model {label:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let seeds = match axes.get("seeds") {
            None => vec![0],
            Some(arr) => {
                let arr = arr.as_arr().ok_or("axes.seeds: not an array")?;
                if arr.is_empty() {
                    return Err("axes.seeds: empty axis".to_string());
                }
                arr.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        v.as_u64().ok_or_else(|| format!("axes.seeds[{i}]: not an integer"))
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        let default_kernels = suite::all().iter().map(|k| k.name.to_string()).collect();
        let kernels = str_axis("kernels", default_kernels)?;
        for name in &kernels {
            if suite::by_name(name).is_none() {
                return Err(format!("axes.kernels: unknown kernel {name:?}"));
            }
        }
        Ok(Manifest {
            name,
            budget,
            axes: Axes {
                kinds,
                models,
                mpki_thresholds: opt_f64_axis(&axes, "mpki_thresholds")?,
                flpi_thresholds: opt_f64_axis(&axes, "flpi_thresholds")?,
                seeds,
                kernels,
            },
        })
    }

    /// Expands the manifest into its work units — the cartesian product of
    /// the axes in the fixed nested order kind → model → MPKI threshold →
    /// FLPI threshold → seed → kernel (kernel innermost). This order *is*
    /// the campaign's unit order: merged-report rows follow it, and the
    /// `--limit` prefix used by resume tests cuts along it.
    pub fn units(&self) -> Vec<WorkUnit> {
        let mut units = Vec::new();
        for &kind in &self.axes.kinds {
            for &model in &self.axes.models {
                for &mpki in &self.axes.mpki_thresholds {
                    for &flpi in &self.axes.flpi_thresholds {
                        for &seed in &self.axes.seeds {
                            for kernel in &self.axes.kernels {
                                units.push(WorkUnit {
                                    kind,
                                    model,
                                    mpki_threshold: mpki,
                                    flpi_threshold: flpi,
                                    seed,
                                    kernel: kernel.clone(),
                                    budget: self.budget,
                                });
                            }
                        }
                    }
                }
            }
        }
        units
    }
}

/// Simulates one unit and returns its shard document. Fails (rather than
/// writing a poisoned shard) when the simulator reports a pipeline
/// invariant violation or the measured window is degenerate.
pub fn run_unit(unit: &WorkUnit) -> Result<Json, String> {
    let kernel = suite::by_name(&unit.kernel)
        .ok_or_else(|| format!("unit {}: unknown kernel {:?}", unit.key(), unit.kernel))?;
    let rows = run_suite_on(std::slice::from_ref(&kernel), &[unit.spec()], 1);
    let result = &rows[0].results[0];
    if let Some(v) = &result.invariant {
        return Err(format!("unit {} ({}): {v}", unit.key(), unit.kernel));
    }
    if result.cycles == 0 || result.retired == 0 {
        return Err(format!("unit {} ({}): empty measurement window", unit.key(), unit.kernel));
    }
    Ok(Json::obj([
        ("schema", Json::from(SHARD_SCHEMA)),
        ("unit_key", Json::from(unit.key())),
        ("unit", unit.canonical_json()),
        (
            "result",
            Json::obj([
                ("cycles", Json::from(result.cycles)),
                ("retired", Json::from(result.retired)),
                ("ipc", Json::from(result.ipc())),
                ("mpki", Json::from(result.mpki())),
                ("flpi", Json::from(result.iq.flpi())),
                (
                    "mode_switches",
                    Json::from(result.swque.map_or(0, |s| s.switches)),
                ),
            ]),
        ),
    ]))
}

/// Path of `unit`'s shard file inside `out`.
pub fn shard_path(out: &Path, unit: &WorkUnit) -> PathBuf {
    out.join("shards").join(format!("{}.json", unit.key()))
}

/// Validates the shard document stored for `unit`: declared schema,
/// `unit_key` matching the recomputed content hash, the embedded unit
/// matching the expanded one byte-for-byte, and a well-formed result.
/// `Err` describes the first problem (the resume path treats any `Err` as
/// "shard missing" and re-runs the unit; the merge path treats it as
/// fatal).
pub fn validate_shard(text: &str, unit: &WorkUnit) -> Result<Json, String> {
    let doc = Json::parse(text).map_err(|e| format!("parse error: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != SHARD_SCHEMA {
        return Err(format!("schema: {schema:?}, expected {SHARD_SCHEMA:?}"));
    }
    let key = doc.get("unit_key").and_then(Json::as_str).unwrap_or("");
    if key != unit.key() {
        return Err(format!("unit_key: {key:?} does not match content hash {:?}", unit.key()));
    }
    let embedded = doc.get("unit").ok_or("unit: missing")?;
    if embedded.to_string() != unit.canonical_json().to_string() {
        return Err("unit: embedded unit differs from the manifest expansion".to_string());
    }
    let result = doc.get("result").ok_or("result: missing")?;
    for key in ["cycles", "retired", "mode_switches"] {
        result
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("result.{key}: not an integer"))?;
    }
    for key in ["ipc", "mpki", "flpi"] {
        result
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("result.{key}: not a number"))?;
    }
    let ipc = result.get("ipc").and_then(Json::as_f64).unwrap_or(0.0);
    if !(ipc > 0.0) {
        return Err(format!("result.ipc: {ipc} not positive"));
    }
    Ok(doc)
}

/// Writes `doc` to `path` atomically: a worker-unique temporary in the
/// same directory, flushed, then renamed into place. A campaign killed
/// mid-write therefore leaves either no shard or a complete one — never a
/// truncated file a resume would have to distrust.
fn write_atomic(path: &Path, doc: &Json, tmp_tag: usize) -> Result<(), String> {
    let dir = path.parent().ok_or("shard path has no parent")?;
    let tmp = dir.join(format!(
        ".tmp-{tmp_tag}-{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("shard")
    ));
    std::fs::write(&tmp, format!("{doc}\n"))
        .map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
}

/// Outcome of [`run_campaign`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignStatus {
    /// Total units in the manifest expansion.
    pub total: usize,
    /// Units whose valid shard already existed (skipped).
    pub skipped: usize,
    /// Units simulated by this invocation.
    pub ran: usize,
    /// Invalid shards deleted and re-queued before running.
    pub repaired: usize,
    /// `Some(path)` when every unit now has a shard and the merged
    /// campaign report was written.
    pub merged: Option<PathBuf>,
}

/// Runs (or resumes) a campaign: validates existing shards under
/// `out/shards/`, repairs invalid ones, simulates the missing units on
/// `workers` threads (`limit` caps how many this invocation runs — the
/// deterministic interruption used by resume tests), and merges the
/// campaign report once every unit has a shard.
pub fn run_campaign(
    manifest: &Manifest,
    out: &Path,
    workers: usize,
    limit: Option<usize>,
) -> Result<CampaignStatus, String> {
    let units = manifest.units();
    if units.is_empty() {
        return Err("manifest expands to zero units".to_string());
    }
    let shard_dir = out.join("shards");
    std::fs::create_dir_all(&shard_dir)
        .map_err(|e| format!("create {}: {e}", shard_dir.display()))?;

    let mut pending: Vec<&WorkUnit> = Vec::new();
    let mut skipped = 0usize;
    let mut repaired = 0usize;
    for unit in &units {
        let path = shard_path(out, unit);
        match std::fs::read_to_string(&path) {
            Ok(text) => match validate_shard(&text, unit) {
                Ok(_) => skipped += 1,
                Err(why) => {
                    eprintln!(
                        "[swque-sweep] repairing shard {} ({why})",
                        path.display()
                    );
                    std::fs::remove_file(&path)
                        .map_err(|e| format!("remove {}: {e}", path.display()))?;
                    repaired += 1;
                    pending.push(unit);
                }
            },
            Err(_) => pending.push(unit),
        }
    }
    if let Some(limit) = limit {
        pending.truncate(limit);
    }

    // The same index-claiming pool shape as the harness sweep: claim order
    // is scheduling, not semantics — every shard is keyed by content, so
    // the on-disk outcome is identical for any worker count.
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let next: Mutex<usize> = Mutex::new(0);
    let done: Mutex<usize> = Mutex::new(0);
    let workers = workers.clamp(1, pending.len().max(1));
    std::thread::scope(|scope| {
        for w in 0..workers {
            let pending = &pending;
            let errors = &errors;
            let next = &next;
            let done = &done;
            scope.spawn(move || loop {
                let i = {
                    let mut n = next.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    let i = *n;
                    *n += 1;
                    i
                };
                if i >= pending.len() {
                    break;
                }
                let unit = pending[i];
                let outcome = run_unit(unit)
                    .and_then(|doc| write_atomic(&shard_path(out, unit), &doc, w));
                match outcome {
                    Ok(()) => {
                        let mut d =
                            done.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        *d += 1;
                        eprintln!(
                            "[swque-sweep] {}/{} {} {}/{} seed {} {}",
                            *d,
                            pending.len(),
                            unit.key(),
                            unit.kind.label(),
                            unit.model.label(),
                            unit.seed,
                            unit.kernel,
                        );
                    }
                    Err(e) => errors
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(e),
                }
            });
        }
    });
    let errors = errors.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(first) = errors.first() {
        return Err(format!("{} unit(s) failed; first: {first}", errors.len()));
    }
    let ran = pending.len();

    let merged = if skipped + ran == units.len() {
        let report = merge_campaign(manifest, out)?;
        let path = out.join("campaign.json");
        write_atomic(&path, &report, usize::MAX)?;
        Some(path)
    } else {
        None
    };
    Ok(CampaignStatus { total: units.len(), skipped, ran, repaired, merged })
}

/// Per-axis marginal rows: for each (axis, value) with the axis length
/// > 1, the geomean IPC over the units holding that value.
fn marginals(units: &[WorkUnit], ipc: &[f64]) -> Vec<Json> {
    let mut out = Vec::new();
    let mut axis = |name: &str, values: Vec<(String, Vec<usize>)>| {
        if values.len() < 2 {
            return;
        }
        for (value, idx) in values {
            let ipcs: Vec<f64> = idx.iter().map(|&i| ipc[i]).collect();
            out.push(Json::obj([
                ("axis", Json::from(name)),
                ("value", Json::from(value)),
                ("units", Json::from(ipcs.len())),
                ("geomean_ipc", Json::from(geomean(&ipcs))),
            ]));
        }
    };
    // Group in first-seen order so the report is deterministic. Linear
    // scans keep this dependency-free; campaigns are thousands of units at
    // most.
    let group = |label: &dyn Fn(&WorkUnit) -> String| -> Vec<(String, Vec<usize>)> {
        let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
        for (i, u) in units.iter().enumerate() {
            let l = label(u);
            match groups.iter_mut().find(|(g, _)| *g == l) {
                Some((_, idx)) => idx.push(i),
                None => groups.push((l, vec![i])),
            }
        }
        groups
    };
    let fmt_opt = |v: Option<f64>| v.map_or("default".to_string(), |x| format!("{x}"));
    axis("kind", group(&|u| u.kind.label().to_string()));
    axis("model", group(&|u| u.model.label().to_string()));
    axis("mpki_threshold", group(&|u| fmt_opt(u.mpki_threshold)));
    axis("flpi_threshold", group(&|u| fmt_opt(u.flpi_threshold)));
    axis("seed", group(&|u| u.seed.to_string()));
    axis("kernel", group(&|u| u.kernel.clone()));
    out
}

/// Merges a complete campaign into its report (schema
/// [`CAMPAIGN_SCHEMA`]). Strict: every unit's shard must exist and pass
/// [`validate_shard`] — a corrupt or stale shard fails the merge rather
/// than silently skewing the aggregates. Pure fold in unit order, so the
/// result is byte-identical regardless of how the shards were produced.
pub fn merge_campaign(manifest: &Manifest, out: &Path) -> Result<Json, String> {
    let units = manifest.units();
    let mut rows = Vec::with_capacity(units.len());
    let mut ipcs = Vec::with_capacity(units.len());
    for unit in &units {
        let path = shard_path(out, unit);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("merge: {}: {e}", path.display()))?;
        let doc = validate_shard(&text, unit)
            .map_err(|e| format!("merge: {}: {e}", path.display()))?;
        let result = doc.get("result").cloned().unwrap_or(Json::Null);
        ipcs.push(result.get("ipc").and_then(Json::as_f64).unwrap_or(0.0));
        rows.push(Json::obj([
            ("unit_key", Json::from(unit.key())),
            ("unit", unit.canonical_json()),
            ("result", result),
        ]));
    }
    Ok(Json::obj([
        ("schema", Json::from(CAMPAIGN_SCHEMA)),
        ("name", Json::from(manifest.name.as_str())),
        ("units", Json::from(units.len())),
        ("budget", budget_json(&manifest.budget)),
        ("geomean_ipc", Json::from(geomean(&ipcs))),
        ("marginals", Json::Arr(marginals(&units, &ipcs))),
        ("rows", Json::Arr(rows)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_manifest() -> Manifest {
        Manifest::parse(
            r#"{"schema":"swque-sweep-manifest-v1","name":"t",
                "budget":{"warmup_insts":1000,"max_insts":4000,"scale":1200},
                "axes":{"kinds":["CIRC","AGE"],"seeds":[0,7],
                        "kernels":["mcf_like"]}}"#,
        )
        .expect("valid manifest")
    }

    #[test]
    fn expansion_order_is_kind_model_thresholds_seed_kernel() {
        let m = mini_manifest();
        let units = m.units();
        assert_eq!(units.len(), 4);
        let labels: Vec<(String, u64)> =
            units.iter().map(|u| (u.kind.label().to_string(), u.seed)).collect();
        assert_eq!(
            labels,
            vec![
                ("CIRC".to_string(), 0),
                ("CIRC".to_string(), 7),
                ("AGE".to_string(), 0),
                ("AGE".to_string(), 7),
            ],
        );
    }

    #[test]
    fn omitted_axes_default_to_single_entries() {
        let m = Manifest::parse(
            r#"{"schema":"swque-sweep-manifest-v1","name":"d",
                "budget":{"warmup_insts":1,"max_insts":2}}"#,
        )
        .expect("valid");
        assert_eq!(m.axes.kinds, vec![IqKind::Swque]);
        assert_eq!(m.axes.models, vec![ProcessorModel::Medium]);
        assert_eq!(m.axes.mpki_thresholds, vec![None]);
        assert_eq!(m.axes.flpi_thresholds, vec![None]);
        assert_eq!(m.axes.seeds, vec![0]);
        assert_eq!(m.axes.kernels.len(), suite::all().len());
        assert_eq!(m.budget.scale, None);
    }

    #[test]
    fn manifest_rejects_unknowns() {
        let bad = [
            (r#"{"schema":"nope","name":"x","budget":{"warmup_insts":1,"max_insts":2}}"#, "schema"),
            (
                r#"{"schema":"swque-sweep-manifest-v1","name":"x",
                    "budget":{"warmup_insts":1,"max_insts":2},
                    "axes":{"kinds":["BOGUS"]}}"#,
                "axes.kinds",
            ),
            (
                r#"{"schema":"swque-sweep-manifest-v1","name":"x",
                    "budget":{"warmup_insts":1,"max_insts":2},
                    "axes":{"kernels":["missing_like"]}}"#,
                "axes.kernels",
            ),
            (
                r#"{"schema":"swque-sweep-manifest-v1","name":"x",
                    "budget":{"warmup_insts":1,"max_insts":2},
                    "axes":{"seeds":[]}}"#,
                "axes.seeds",
            ),
            (
                r#"{"schema":"swque-sweep-manifest-v1","name":"x",
                    "budget":{"warmup_insts":1,"max_insts":2},"extra":1}"#,
                "unknown key",
            ),
        ];
        for (text, needle) in bad {
            let err = Manifest::parse(text).expect_err(needle);
            assert!(err.contains(needle), "{needle}: {err}");
        }
    }

    #[test]
    fn unit_keys_are_stable_and_distinct() {
        let m = mini_manifest();
        let units = m.units();
        let keys: Vec<String> = units.iter().map(WorkUnit::key).collect();
        for k in &keys {
            assert_eq!(k.len(), 16, "16 hex digits: {k}");
        }
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len(), "distinct units, distinct keys");
        // Re-expansion reproduces the same keys (content addressing).
        assert_eq!(keys, mini_manifest().units().iter().map(WorkUnit::key).collect::<Vec<_>>());
    }

    #[test]
    fn budget_is_part_of_the_content_hash() {
        let m = mini_manifest();
        let mut changed = m.clone();
        changed.budget.max_insts += 1;
        assert_ne!(m.units()[0].key(), changed.units()[0].key());
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
