//! Shared experiment machinery: kernel runs, suite sweeps, aggregation.

use std::sync::Mutex;

use swque_core::IqKind;
use swque_cpu::{Core, CoreConfig, SimResult};
use swque_trace::{TraceHandle, TraceSummary};
use swque_workloads::{suite, Kernel};

/// Ring-buffer capacity (events) for traced runs. Sized so the default
/// instruction budgets keep a complete event stream: one interval plus one
/// IPC sample per 10k retired instructions, plus switches, stall episodes,
/// and memory epochs, leaves orders of magnitude of headroom up to
/// multi-million-instruction runs. Overflow degrades gracefully — the ring
/// keeps the newest events and reports the loss in `TraceSummary::dropped`.
pub const TRACE_CAPACITY: usize = 16_384;

/// Which of the paper's processor models to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessorModel {
    /// Table 2 base model.
    Medium,
    /// Table 4 large model.
    Large,
}

impl ProcessorModel {
    /// The corresponding core configuration.
    pub fn config(self) -> CoreConfig {
        match self {
            ProcessorModel::Medium => CoreConfig::medium(),
            ProcessorModel::Large => CoreConfig::large(),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ProcessorModel::Medium => "medium",
            ProcessorModel::Large => "large",
        }
    }

    /// Parses a label as printed by [`ProcessorModel::label`].
    pub fn from_label(label: &str) -> Option<ProcessorModel> {
        match label {
            "medium" => Some(ProcessorModel::Medium),
            "large" => Some(ProcessorModel::Large),
            _ => None,
        }
    }
}

/// One simulation request.
///
/// Construct via [`RunSpec::medium`]/[`RunSpec::large`] and override the
/// handful of fields an experiment varies; [`RunSpec::config`] resolves
/// the spec to a concrete [`CoreConfig`] with any controller-threshold
/// overrides applied:
///
/// ```
/// use swque_bench::RunSpec;
/// use swque_core::IqKind;
///
/// let spec = RunSpec {
///     warmup_insts: 1_000,
///     max_insts: 5_000,
///     scale: Some(500),          // shrink the kernel for a quick run
///     mpki_threshold: Some(12.0), // controller sensitivity axis
///     ..RunSpec::medium(IqKind::Swque)
/// };
/// assert_eq!(spec.config().iq.swque.mpki_threshold, 12.0);
/// // Untouched fields keep the paper's Table 2/3 values.
/// assert_eq!(spec.config().width, 6);
/// ```
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Processor model.
    pub model: ProcessorModel,
    /// Issue-queue organization.
    pub iq: IqKind,
    /// Warmup instructions excluded from measurement (the paper skips the
    /// first 16B instructions of each program before its 100M sample).
    pub warmup_insts: u64,
    /// Measured dynamic instructions after warmup.
    pub max_insts: u64,
    /// Kernel scale override (`None` = the kernel's default).
    pub scale: Option<u64>,
    /// Workload layout-seed perturbation, mixed into the kernel generator's
    /// base seed (`0` = the kernel's canonical program, byte-identical to
    /// pre-seed-axis builds). Sweep campaigns use this as their seed axis.
    pub seed: u64,
    /// SWQUE controller MPKI-threshold override (`None` = the paper's
    /// Table 3 value from the model config).
    pub mpki_threshold: Option<f64>,
    /// SWQUE controller base FLPI-threshold override (`None` = the paper's
    /// Table 3 value from the model config).
    pub flpi_threshold: Option<f64>,
}

impl RunSpec {
    /// A medium-model run of `iq` with the default experiment budget.
    pub fn medium(iq: IqKind) -> RunSpec {
        RunSpec {
            model: ProcessorModel::Medium,
            iq,
            warmup_insts: default_warmup(),
            max_insts: default_insts(),
            scale: None,
            seed: 0,
            mpki_threshold: None,
            flpi_threshold: None,
        }
    }

    /// A large-model run of `iq` with the default experiment budget.
    pub fn large(iq: IqKind) -> RunSpec {
        RunSpec { model: ProcessorModel::Large, ..RunSpec::medium(iq) }
    }

    /// The core configuration this spec resolves to: the model's config
    /// with any controller-threshold overrides applied.
    pub fn config(&self) -> CoreConfig {
        let mut config = self.model.config();
        if let Some(mpki) = self.mpki_threshold {
            config.iq.swque.mpki_threshold = mpki;
        }
        if let Some(flpi) = self.flpi_threshold {
            config.iq.swque.flpi_threshold = flpi;
        }
        config
    }
}

/// Default per-run measured-instruction budget. The paper simulates 100M
/// instructions per program; the default here keeps a full-suite experiment
/// in minutes and can be raised with the `SWQUE_INSTS` environment
/// variable.
pub fn default_insts() -> u64 {
    std::env::var("SWQUE_INSTS").ok().and_then(|v| v.parse().ok()).unwrap_or(400_000)
}

/// Default warmup budget (cold caches and predictors are excluded from
/// measurement); override with `SWQUE_WARMUP`.
pub fn default_warmup() -> u64 {
    std::env::var("SWQUE_WARMUP").ok().and_then(|v| v.parse().ok()).unwrap_or(300_000)
}

/// Runs `kernel` under `spec` and returns the measured-window result
/// (warmup excluded).
pub fn run_kernel(kernel: &Kernel, spec: &RunSpec) -> SimResult {
    let program = kernel.build_seeded(spec.scale, spec.seed);
    let mut core = Core::new(spec.config(), spec.iq, &program);
    let warm = core.run(spec.warmup_insts);
    if core.finished() {
        // Short program: no meaningful warmup split.
        return warm;
    }
    core.run(spec.warmup_insts + spec.max_insts).delta(&warm)
}

/// Like [`run_kernel`] but with a [`TraceHandle`] attached for the measured
/// window: warmup runs untraced (cold-cache transients would pollute the
/// series exactly the way they would pollute IPC), then a fresh
/// [`TRACE_CAPACITY`]-event ring observes the measurement and is reduced to
/// a [`TraceSummary`].
///
/// ```
/// use swque_bench::{run_kernel_traced, RunSpec};
/// use swque_core::IqKind;
/// use swque_workloads::suite;
///
/// let kernel = suite::by_name("deepsjeng_like").unwrap();
/// let spec = RunSpec {
///     warmup_insts: 2_000,
///     max_insts: 10_000,
///     scale: Some(1_000),
///     ..RunSpec::medium(IqKind::Swque)
/// };
/// let (result, trace) = run_kernel_traced(&kernel, &spec);
/// assert!(result.retired >= 9_000, "measured window excludes warmup");
/// // The summary digests the ring: IPC interval samples land every 10k
/// // retired instructions, so a short window may hold at most one.
/// assert_eq!(trace.dropped, 0);
/// ```
pub fn run_kernel_traced(kernel: &Kernel, spec: &RunSpec) -> (SimResult, TraceSummary) {
    let program = kernel.build_seeded(spec.scale, spec.seed);
    let mut core = Core::new(spec.config(), spec.iq, &program);
    let warm = core.run(spec.warmup_insts);
    if core.finished() {
        return (warm, TraceSummary::default());
    }
    let trace = TraceHandle::ring(TRACE_CAPACITY);
    core.attach_trace(&trace);
    let result = core.run(spec.warmup_insts + spec.max_insts).delta(&warm);
    let summary = TraceSummary::from_events(&trace.events(), trace.dropped());
    (result, summary)
}

/// One suite kernel's results across a set of run specs.
#[derive(Debug, Clone)]
pub struct SuiteRow {
    /// The kernel that produced this row.
    pub kernel: Kernel,
    /// One result per requested spec, in request order.
    pub results: Vec<SimResult>,
    /// One trace digest per spec when produced by [`run_suite_traced`];
    /// empty for untraced sweeps ([`run_suite`]).
    pub traces: Vec<TraceSummary>,
}

/// Runs every suite kernel under each spec (kernels in parallel across
/// threads), returning rows in suite order. Worker count follows
/// [`default_workers`], so `SWQUE_THREADS=1` forces a serial sweep.
pub fn run_suite(specs: &[RunSpec]) -> Vec<SuiteRow> {
    let kernels = suite::all();
    let workers = default_workers(kernels.len());
    sweep(&kernels, specs, false, workers)
}

/// [`run_suite`] with a trace ring attached to every run (see
/// [`run_kernel_traced`]): each returned row carries one [`TraceSummary`]
/// per spec. Trace handles live entirely inside the worker thread that
/// owns the run — only the plain-data summaries cross threads.
pub fn run_suite_traced(specs: &[RunSpec]) -> Vec<SuiteRow> {
    let kernels = suite::all();
    let workers = default_workers(kernels.len());
    sweep(&kernels, specs, true, workers)
}

/// [`run_suite`] over an explicit kernel list with an explicit worker
/// count. Row order always matches `kernels` regardless of worker count
/// or scheduling, and every run is single-threaded and deterministic, so
/// the result is identical for any `workers` value — a property pinned by
/// the `determinism` integration test. Empty kernel lists yield an empty
/// result; `workers` is clamped to `1..=kernels.len()`.
///
/// ```
/// use swque_bench::{run_suite_on, RunSpec};
/// use swque_core::IqKind;
/// use swque_workloads::suite;
///
/// let kernels = [
///     suite::by_name("deepsjeng_like").unwrap(),
///     suite::by_name("xz_like").unwrap(),
/// ];
/// let spec = RunSpec {
///     warmup_insts: 1_000,
///     max_insts: 5_000,
///     scale: Some(500),
///     ..RunSpec::medium(IqKind::Circ)
/// };
/// let rows = run_suite_on(&kernels, &[spec], 2);
/// // Row order follows the kernel list, not thread completion order.
/// assert_eq!(rows[0].kernel.name, "deepsjeng_like");
/// assert_eq!(rows[1].kernel.name, "xz_like");
/// assert_eq!(rows[0].results.len(), 1);
/// ```
pub fn run_suite_on(kernels: &[Kernel], specs: &[RunSpec], workers: usize) -> Vec<SuiteRow> {
    sweep(kernels, specs, false, workers)
}

/// [`run_suite_on`] with trace rings attached (see [`run_suite_traced`]).
pub fn run_suite_traced_on(
    kernels: &[Kernel],
    specs: &[RunSpec],
    workers: usize,
) -> Vec<SuiteRow> {
    sweep(kernels, specs, true, workers)
}

/// Worker-thread count for a sweep over `kernels` kernels: the
/// `SWQUE_THREADS` environment variable when set to a positive integer
/// (invalid or zero values are ignored), otherwise the host's available
/// parallelism; always clamped to the number of kernels.
///
/// This is the *only* place the harness reads `SWQUE_THREADS`; all the
/// sizing logic lives in the pure [`default_workers_with`], which tests
/// exercise without mutating process environment (mutating env from one
/// `#[test]` races every other test in the same process).
pub fn default_workers(kernels: usize) -> usize {
    let requested = std::env::var("SWQUE_THREADS").ok().and_then(|v| v.parse::<usize>().ok());
    default_workers_with(requested, kernels)
}

/// Pure worker-count policy behind [`default_workers`]: `requested` wins
/// when it is a positive integer (`None` or `Some(0)` fall back to the
/// host's available parallelism), and the result is always clamped to the
/// number of kernels (at least 1).
pub fn default_workers_with(requested: Option<usize>, kernels: usize) -> usize {
    let n = requested
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4));
    n.min(kernels.max(1))
}

fn sweep(kernels: &[Kernel], specs: &[RunSpec], traced: bool, workers: usize) -> Vec<SuiteRow> {
    let rows: Mutex<Vec<Option<SuiteRow>>> = Mutex::new(vec![None; kernels.len()]);
    let next: Mutex<usize> = Mutex::new(0);
    let workers = workers.clamp(1, kernels.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = {
                    let mut n = next.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    let i = *n;
                    *n += 1;
                    i
                };
                if i >= kernels.len() {
                    break;
                }
                let kernel = &kernels[i];
                let mut results = Vec::with_capacity(specs.len());
                let mut traces = Vec::new();
                for s in specs {
                    if traced {
                        let (r, t) = run_kernel_traced(kernel, s);
                        results.push(r);
                        traces.push(t);
                    } else {
                        results.push(run_kernel(kernel, s));
                    }
                }
                rows.lock().unwrap_or_else(std::sync::PoisonError::into_inner)[i] =
                    Some(SuiteRow { kernel: kernel.clone(), results, traces });
            });
        }
    });
    rows.into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        // swque-lint: allow(panic-in-lib) — the worker loop claims every index in 0..kernels.len() exactly once before exiting
        .map(|r| r.expect("every kernel filled"))
        .collect()
}

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn run_kernel_smoke() {
        let k = suite::by_name("deepsjeng_like").unwrap();
        let spec = RunSpec {
            warmup_insts: 5_000,
            max_insts: 20_000,
            scale: Some(2_000),
            ..RunSpec::medium(IqKind::Age)
        };
        let r = run_kernel(&k, &spec);
        // Commit-width granularity means the warmup snapshot may overshoot
        // by a few instructions.
        assert!(r.retired >= 19_000, "measured window present: {}", r.retired);
        assert!(r.ipc() > 0.05);
    }
}
