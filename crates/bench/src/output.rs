//! Structured JSON experiment output (schema `swque-bench-v1`).
//!
//! Every experiment binary prints its plain-text tables unconditionally and
//! *additionally* serializes a machine-readable report when the
//! [`SWQUE_JSON`](crate#environment-knobs) environment variable names an
//! output file. The serialized shape is stable and versioned (documented
//! field-by-field in `DESIGN.md`): tooling that reads `BENCH_fig09.json`
//! today keeps working until the schema string changes.
//!
//! The writer is [`swque_trace::Json`] — the workspace is hermetic, so no
//! external serializer is available, and none is needed: reports are
//! trees of strings, numbers, and arrays.

use std::path::PathBuf;

use swque_trace::{Json, TraceSummary};

use crate::harness::{default_insts, default_warmup};
use crate::table::Table;

/// Schema identifier written into every report.
pub const BENCH_SCHEMA: &str = "swque-bench-v1";

/// The `SWQUE_JSON` destination, if the caller requested JSON output.
///
/// For single-figure binaries this is the output *file*; `all_experiments`
/// instead treats it as a *directory* and gives each child binary its own
/// `BENCH_<figure>.json` inside it.
pub fn json_path() -> Option<PathBuf> {
    std::env::var_os("SWQUE_JSON").filter(|v| !v.is_empty()).map(PathBuf::from)
}

/// A structured experiment report, accumulated alongside the plain-text
/// output and serialized by [`Report::finish`].
///
/// Reports always contain all top-level keys (`tables`, `rows`, `traces`),
/// empty arrays included, so consumers can index unconditionally.
#[derive(Debug, Clone)]
pub struct Report {
    experiment: String,
    params: Vec<(String, Json)>,
    tables: Vec<Json>,
    rows: Vec<Json>,
    traces: Vec<Json>,
}

impl Report {
    /// Starts a report for `experiment` (e.g. `"fig09"`). The run budget
    /// ([`default_warmup`]/[`default_insts`]) is recorded automatically so
    /// a report is interpretable without the environment that produced it.
    pub fn new(experiment: &str) -> Report {
        Report {
            experiment: experiment.to_string(),
            params: vec![
                ("warmup_insts".to_string(), Json::from(default_warmup())),
                ("max_insts".to_string(), Json::from(default_insts())),
            ],
            tables: Vec::new(),
            rows: Vec::new(),
            traces: Vec::new(),
        }
    }

    /// Records an experiment parameter (sweep value, model, threshold …).
    pub fn param(&mut self, key: &str, value: impl Into<Json>) -> &mut Report {
        self.params.push((key.to_string(), value.into()));
        self
    }

    /// Serializes a plain-text [`Table`] verbatim: header plus string rows.
    /// This is the generic path — every figure's printed table round-trips
    /// into JSON without per-figure schema work.
    pub fn add_table(&mut self, name: &str, table: &Table) -> &mut Report {
        let header = Json::Arr(table.header().iter().map(|h| Json::from(h.as_str())).collect());
        let rows = Json::Arr(
            table
                .rows()
                .iter()
                .map(|r| Json::Arr(r.iter().map(|c| Json::from(c.as_str())).collect()))
                .collect(),
        );
        self.tables.push(Json::obj([
            ("name", Json::from(name)),
            ("header", header),
            ("rows", rows),
        ]));
        self
    }

    /// Appends one typed result row (figures with first-class schemas —
    /// fig09's per-program speedups — push objects here in addition to the
    /// generic table).
    pub fn push_row(&mut self, row: Json) -> &mut Report {
        self.rows.push(row);
        self
    }

    /// Attaches a run's trace digest under `program` (schema
    /// `swque-trace-v1`, nested verbatim).
    pub fn push_trace(&mut self, program: &str, summary: &TraceSummary) -> &mut Report {
        self.traces.push(Json::obj([
            ("program", Json::from(program)),
            ("trace", summary.to_json()),
        ]));
        self
    }

    /// The report as a JSON document (schema [`BENCH_SCHEMA`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(BENCH_SCHEMA)),
            ("experiment", Json::from(self.experiment.as_str())),
            (
                "params",
                Json::Obj(self.params.clone()),
            ),
            ("tables", Json::Arr(self.tables.clone())),
            ("rows", Json::Arr(self.rows.clone())),
            ("traces", Json::Arr(self.traces.clone())),
        ])
    }

    /// Writes the report to the `SWQUE_JSON` destination, if one was
    /// requested; otherwise does nothing. The notice goes to stderr so the
    /// plain-text tables on stdout stay paste-ready.
    ///
    /// # Panics
    ///
    /// Panics when the destination cannot be written — a silently dropped
    /// report is worse than a failed experiment run.
    pub fn finish(&self) {
        let Some(path) = json_path() else { return };
        let doc = format!("{}\n", self.to_json());
        std::fs::write(&path, doc)
            // swque-lint: allow(panic-in-lib) — documented: a silently dropped report is worse than a failed run
            .unwrap_or_else(|e| panic!("SWQUE_JSON: cannot write {}: {e}", path.display()));
        eprintln!("[swque-bench] wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_is_stable() {
        let mut t = Table::new(["program", "ipc"]);
        t.row(["xz_like", "0.40"]);
        let mut r = Report::new("fig99");
        r.param("model", "medium").add_table("main", &t);
        r.push_row(Json::obj([("program", Json::from("xz_like"))]));
        r.push_trace("xz_like", &TraceSummary::default());
        let doc = r.to_json();
        assert_eq!(
            doc.keys(),
            vec!["schema", "experiment", "params", "tables", "rows", "traces"],
        );
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(BENCH_SCHEMA));
        assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("fig99"));
        let params = doc.get("params").unwrap();
        assert!(params.get("warmup_insts").and_then(Json::as_u64).is_some());
        assert!(params.get("max_insts").and_then(Json::as_u64).is_some());
        assert_eq!(params.get("model").and_then(Json::as_str), Some("medium"));
        let table = &doc.get("tables").unwrap().as_arr().unwrap()[0];
        assert_eq!(table.keys(), vec!["name", "header", "rows"]);
        let trace = &doc.get("traces").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            trace.get("trace").unwrap().get("schema").and_then(Json::as_str),
            Some("swque-trace-v1"),
        );
        // And the whole document survives its own parser.
        let back = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn empty_report_still_has_all_keys() {
        let doc = Report::new("x").to_json();
        assert_eq!(doc.get("tables").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(doc.get("rows").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(doc.get("traces").unwrap().as_arr().unwrap().len(), 0);
    }
}
