//! Sensitivity study: how the circuit models scale with IQ size — where
//! CIRC-PC's time-sliced double tag-RAM access stops fitting in a cycle,
//! and how the SWQUE area overhead moves.

use swque_bench::{Report, Table};
use swque_circuit::area::areas;
use swque_circuit::delay::delays;
use swque_circuit::IqGeometry;

fn main() {
    let mut t = Table::new([
        "IQ entries",
        "critical path",
        "double tag access",
        "payload",
        "DTM",
        "area overhead",
        "fits?",
    ]);
    for entries in [32usize, 64, 128, 192, 256, 384, 512] {
        let g = IqGeometry::with_entries(entries);
        let d = delays(&g);
        let a = areas(&g);
        t.row([
            entries.to_string(),
            format!("{:.0}", d.critical_path()),
            format!("{:.0}%", d.double_tag_fraction() * 100.0),
            format!("{:.0}%", d.payload_fraction() * 100.0),
            format!("{:.1}%", d.dtm_overhead() * 100.0),
            format!("{:.1}%", a.overhead_fraction() * 100.0),
            if d.double_access_fits() { "yes".into() } else { "NO".to_string() },
        ]);
    }
    println!("Sensitivity: circuit scaling with IQ size (medium issue width)");
    println!("(the paper's design point is 128 entries; the double tag access");
    println!(" has large margin there and the trend shows where it would not)\n");
    println!("{t}");
    Report::new("sensitivity").add_table("circuit_scaling", &t).finish();
}
