//! Extension experiment (the paper's §2.1 future work): what would SWQUE's
//! circuit costs look like over a RAM-type wakeup (IBM POWER8 style)
//! instead of the paper's CAM-type wakeup?
//!
//! Behaviourally the two styles schedule identically (both implement
//! precise wakeup), so IPC results carry over; the difference is circuit
//! cost: the dependency matrix trades quadratic area for cheaper
//! broadcasts. This binary quantifies that trade with the same area/energy
//! models used for the paper's figures.

use swque_bench::{run_kernel, Report, RunSpec, Table};
use swque_circuit::area::areas;
use swque_circuit::energy::iq_energy;
use swque_circuit::{IqGeometry, WakeupStyle};
use swque_core::IqKind;
use swque_workloads::suite;

fn main() {
    let cam = IqGeometry::medium();
    let ram = IqGeometry { wakeup: WakeupStyle::Ram, ..IqGeometry::medium() };

    let mut t = Table::new(["metric", "CAM wakeup (paper)", "RAM wakeup (future work)"]);
    let (a_cam, a_ram) = (areas(&cam), areas(&ram));
    t.row([
        "wakeup structure area (Mlambda^2)".to_string(),
        format!("{:.1}", a_cam.wakeup / 1e6),
        format!("{:.1}", a_ram.wakeup / 1e6),
    ]);
    t.row([
        "SWQUE area overhead vs baseline IQ".to_string(),
        format!("{:.1}%", a_cam.overhead_fraction() * 100.0),
        format!("{:.1}%", a_ram.overhead_fraction() * 100.0),
    ]);

    // Energy on a representative moderate-ILP run (the mode where the
    // SWQUE-specific machinery is busiest).
    let kernel = suite::by_name("deepsjeng_like").expect("kernel");
    let r = run_kernel(&kernel, &RunSpec::medium(IqKind::Swque));
    let e_cam = iq_energy(&r, &cam, true);
    let e_ram = iq_energy(&r, &ram, true);
    t.row([
        "IQ energy (deepsjeng_like run, EU)".to_string(),
        format!("{:.0}", e_cam.total()),
        format!("{:.0}", e_ram.total()),
    ]);
    t.row([
        "  of which dynamic".to_string(),
        format!("{:.0}", e_cam.dynamic_basic + e_cam.dynamic_swque),
        format!("{:.0}", e_ram.dynamic_basic + e_ram.dynamic_swque),
    ]);
    t.row([
        "  of which static".to_string(),
        format!("{:.0}", e_cam.static_basic + e_cam.static_swque),
        format!("{:.0}", e_ram.static_basic + e_ram.static_swque),
    ]);

    println!("Extension: SWQUE over a RAM-type wakeup (paper §2.1 future work)\n");
    println!("{t}");
    Report::new("ext_ram_wakeup").add_table("ram_wakeup", &t).finish();
    println!("\n(The dependency matrix enlarges the wakeup structure — which also");
    println!(" shrinks SWQUE's *relative* overhead — while cutting broadcast energy.");
    println!(" Scheduling behaviour, and therefore every IPC result, is unchanged.)");
}
