//! Section 4.8: sensitivity of SWQUE to the mode-switch penalty (10 vs 40
//! cycles) and the measured switch rate per million cycles.

use swque_bench::{geomean, run_kernel, Report, RunSpec, Table};
use swque_core::IqKind;
use swque_workloads::suite;

fn main() {
    let mut ratios = Vec::new();
    let mut switches_per_mcycle = Vec::new();
    let mut t = Table::new(["program", "IPC (10-cycle)", "IPC (40-cycle)", "delta", "switches/Mcycle"]);
    for kernel in suite::all() {
        let base = run_kernel(&kernel, &RunSpec::medium(IqKind::Swque));
        // 40-cycle penalty variant.
        let program = kernel.build();
        let mut config = swque_cpu::CoreConfig::medium();
        config.iq.swque.switch_penalty = 40;
        let mut core = swque_cpu::Core::new(config, IqKind::Swque, &program);
        let warm = core.run(swque_bench::harness::default_warmup());
        let slow = core
            .run(swque_bench::harness::default_warmup() + swque_bench::harness::default_insts())
            .delta(&warm);

        let ratio = slow.ipc() / base.ipc();
        ratios.push(ratio);
        let rate = base.swque.map(|s| s.switches).unwrap_or(0) as f64 * 1e6 / base.cycles as f64;
        switches_per_mcycle.push(rate);
        t.row([
            kernel.name.to_string(),
            format!("{:.3}", base.ipc()),
            format!("{:.3}", slow.ipc()),
            format!("{:+.2}%", (ratio - 1.0) * 100.0),
            format!("{rate:.1}"),
        ]);
    }
    println!("Section 4.8: switch-penalty sensitivity (10 vs 40 cycles)");
    println!("(paper: only 0.02% average degradation, because transitions occur");
    println!(" ~8 times per million cycles)\n");
    Report::new("sec48").add_table("penalty_sensitivity", &t).finish();
    println!("{t}");
    println!(
        "\nGM degradation at 40 cycles: {:+.2}%   mean switch rate: {:.1}/Mcycle",
        (geomean(&ratios) - 1.0) * 100.0,
        switches_per_mcycle.iter().sum::<f64>() / switches_per_mcycle.len() as f64
    );
}
