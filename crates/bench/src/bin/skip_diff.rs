//! `skip_diff`: the quiescence-skip equivalence smoke behind verify.sh.
//!
//! Runs one pinned medium-model kernel and prints the **full**
//! [`SimResult`](swque_cpu::SimResult) `Debug` rendering — every
//! statistic field, recursively —
//! to stdout. The verify gate runs this binary twice, once with
//! `SWQUE_NO_SKIP=1` and once without, and diffs the outputs byte for
//! byte: any divergence means quiescence skipping (DESIGN.md §10) changed
//! simulated behaviour, which is a correctness bug, not a tuning issue.
//!
//! Skip counters go to stderr (outside the diff) so the gate can also
//! assert the skip-on run actually skipped — a vacuous diff of two
//! per-cycle runs proves nothing.
//!
//! Unlike the in-tree tests (which toggle skipping with `set_skip`), this
//! binary deliberately reads the decision from the process environment via
//! `Core::new` — it exists to exercise exactly that escape hatch.

use swque_core::IqKind;
use swque_cpu::{Core, CoreConfig};
use swque_workloads::suite;

/// MLP-heavy pinned kernel: long DRAM stalls make the skip path do real
/// work, so the diff exercises large jumps, not just the machinery's
/// no-op path.
const KERNEL: &str = "xz_like";
const SCALE: u64 = 6_000;
const MAX_INSTS: u64 = 60_000;

fn main() {
    let kernel = suite::by_name(KERNEL).expect("pinned kernel exists");
    let program = kernel.build_scaled(SCALE);
    let mut core = Core::new(CoreConfig::medium(), IqKind::Swque, &program);
    let result = core.run(MAX_INSTS);
    println!("{result:#?}");
    let (skips, skipped) = core.skip_stats();
    eprintln!(
        "[skip_diff] skip_enabled={} skips={skips} cycles_skipped={skipped}",
        core.skip_enabled()
    );
}
