//! Figure 10: breakdown of SWQUE's execution cycles by mode (CIRC-PC vs
//! AGE) for every program (medium model).

use swque_bench::{run_suite, RunSpec, Table};
use swque_core::IqKind;

fn main() {
    let rows = run_suite(&[RunSpec::medium(IqKind::Swque)]);
    let mut table =
        Table::new(["program", "class", "CIRC-PC cycles", "AGE cycles", "switches"]);
    for row in &rows {
        let sw = row.results[0].swque.expect("SWQUE reports mode stats");
        let frac = sw.circ_pc_fraction();
        table.row([
            row.kernel.name.to_string(),
            row.kernel.class.to_string(),
            format!("{:5.1}%", frac * 100.0),
            format!("{:5.1}%", (1.0 - frac) * 100.0),
            format!("{}", sw.switches),
        ]);
    }
    println!("Figure 10: execution-cycle breakdown by SWQUE mode (medium model)");
    println!("(paper: m-ILP programs run mostly as CIRC-PC; r-ILP and MLP as AGE)\n");
    println!("{table}");
}
