//! Figure 10: breakdown of SWQUE's execution cycles by mode (CIRC-PC vs
//! AGE) for every program (medium model).
//!
//! With `SWQUE_JSON=<file>` set, the run is traced and the report carries
//! typed per-program rows plus the interval-level trace digests; the
//! `fig10_timeline` binary renders the same data as a time series.

use swque_bench::{json_path, run_suite, run_suite_traced, Report, RunSpec, Table};
use swque_core::IqKind;
use swque_trace::Json;

fn main() {
    let json = json_path().is_some();
    let specs = [RunSpec::medium(IqKind::Swque)];
    let rows = if json { run_suite_traced(&specs) } else { run_suite(&specs) };
    let mut report = Report::new("fig10");
    let mut table =
        Table::new(["program", "class", "CIRC-PC cycles", "AGE cycles", "switches"]);
    for row in &rows {
        let sw = row.results[0].swque.expect("SWQUE reports mode stats");
        let frac = sw.circ_pc_fraction();
        table.row([
            row.kernel.name.to_string(),
            row.kernel.class.to_string(),
            format!("{:5.1}%", frac * 100.0),
            format!("{:5.1}%", (1.0 - frac) * 100.0),
            format!("{}", sw.switches),
        ]);
        if json {
            report.push_row(Json::obj([
                ("program", Json::from(row.kernel.name)),
                ("class", Json::from(row.kernel.class.to_string())),
                ("circ_pc_fraction", Json::from(frac)),
                ("switches", Json::from(sw.switches)),
                ("intervals", Json::from(sw.intervals)),
            ]));
            report.push_trace(row.kernel.name, &row.traces[0]);
        }
    }
    println!("Figure 10: execution-cycle breakdown by SWQUE mode (medium model)");
    println!("(paper: m-ILP programs run mostly as CIRC-PC; r-ILP and MLP as AGE)\n");
    println!("{table}");
    report.add_table("mode_breakdown", &table);
    report.finish();
}
