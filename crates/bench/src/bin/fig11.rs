//! Figure 11: IPC degradation relative to SHIFT for the circular-queue
//! variants CIRC-CONV, CIRC-PPRI (idealized perfect priority), and CIRC-PC
//! (the paper's realizable priority correction).

use swque_bench::{geomean, run_suite, Report, RunSpec, Table};
use swque_core::IqKind;
use swque_workloads::Category;

fn main() {
    let kinds = [IqKind::Shift, IqKind::Circ, IqKind::CircPpri, IqKind::CircPc];
    let specs: Vec<RunSpec> = kinds.iter().map(|&k| RunSpec::medium(k)).collect();
    let rows = run_suite(&specs);

    let mut table = Table::new(["IQ", "GM int degradation", "GM fp degradation"]);
    let labels = ["CIRC-CONV", "CIRC-PPRI", "CIRC-PC"];
    for (i, label) in labels.iter().enumerate() {
        let mut cells = vec![label.to_string()];
        for cat in [Category::Int, Category::Fp] {
            let ratios: Vec<f64> = rows
                .iter()
                .filter(|r| r.kernel.category == cat)
                .map(|r| r.results[i + 1].ipc() / r.results[0].ipc())
                .collect();
            cells.push(format!("{:.1}%", (1.0 - geomean(&ratios)) * 100.0));
        }
        table.row(cells);
    }
    println!("Figure 11: degradation vs SHIFT for circular-queue variants (medium)");
    println!("(paper: CIRC-PC is nearly identical to the idealized CIRC-PPRI —");
    println!(" the two-cycle RV issue path costs ~1.1% because ready wrapped");
    println!(" instructions are latency-tolerant)\n");
    println!("{table}");
    Report::new("fig11").add_table("degradation", &table).finish();
}
