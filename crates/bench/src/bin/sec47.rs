//! Section 4.7: delay analysis — the DTM's contribution to the IQ critical
//! path and whether the double (time-sliced) tag-RAM access fits in a
//! cycle.

use swque_bench::{Report, Table};
use swque_circuit::delay::delays;
use swque_circuit::IqGeometry;

fn main() {
    let mut t = Table::new([
        "geometry",
        "IQ critical path",
        "double tag access",
        "payload read",
        "DTM overhead",
        "fits?",
    ]);
    for (label, g) in [("medium (128/6)", IqGeometry::medium()), ("large (256/8)", IqGeometry::large())]
    {
        let d = delays(&g);
        t.row([
            label.to_string(),
            format!("{:.1}", d.critical_path()),
            format!("{:.0}%", d.double_tag_fraction() * 100.0),
            format!("{:.0}%", d.payload_fraction() * 100.0),
            format!("{:.1}%", d.dtm_overhead() * 100.0),
            if d.double_access_fits() { "yes".into() } else { "NO".to_string() },
        ]);
    }
    println!("Section 4.7: SWQUE delay analysis");
    println!("(paper at medium geometry: double tag access = 66% of the IQ critical");
    println!(" path, payload read = 43%, DTM adds 1.3%)\n");
    println!("{t}");
    Report::new("sec47").add_table("delay", &t).finish();
}
