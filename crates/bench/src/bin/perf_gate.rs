//! `perf_gate`: host-side throughput gate for the scheduling hot paths.
//!
//! Every other binary in this crate measures *simulated* behaviour (IPC,
//! mode residency, energy). This one measures the **simulator itself**: how
//! many simulated kilocycles per host second each issue-queue organization
//! sustains on a pinned workload. The numbers form the perf trajectory of
//! the repository — each PR that touches a hot path reruns the gate and
//! records the new `BENCH_TIER1.json`, so a scheduling-path regression
//! shows up as a dropped `sim_kcycles_per_sec` row rather than as a vague
//! "experiments feel slower".
//!
//! # Pinned workload
//!
//! The measurement is deliberately *not* configurable through the usual
//! `SWQUE_INSTS`/`SWQUE_WARMUP` knobs: trajectory points are only
//! comparable if every run simulates the same instruction stream. The gate
//! runs `deepsjeng_like` (moderate-ILP INT, the paper's headline class) on
//! the medium model for every [`IqKind`], plus one large-model AGE row —
//! the age-matrix-heavy configuration whose select/wakeup work scales
//! worst with queue capacity.
//!
//! # Modes
//!
//! * default — full budget (200k measured instructions, best of 3 reps);
//!   wall-clock a few seconds per organization.
//! * `--smoke` (or `SWQUE_PERF_SMOKE=1`) — reduced budget (20k
//!   instructions, 1 rep) for CI: validates that the gate runs and emits
//!   schema-valid JSON, not the absolute numbers.
//!
//! # Output
//!
//! Writes a `swque-bench-v1` report to `SWQUE_JSON` if set, else to
//! `BENCH_TIER1.json` in the current directory. Typed rows carry
//! `{kind, model, kernel, warmup_insts, max_insts, cycles, retired,
//! host_seconds, sim_kcycles_per_sec}`.

use std::time::Instant;

use swque_bench::{json_path, ProcessorModel, Report, Table};
use swque_core::IqKind;
use swque_cpu::{Core, SimResult};
use swque_trace::Json;
use swque_workloads::suite;

/// The pinned kernel every gate row simulates.
const GATE_KERNEL: &str = "deepsjeng_like";

struct GateBudget {
    warmup: u64,
    insts: u64,
    reps: usize,
}

fn smoke_requested() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("SWQUE_PERF_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Runs `kind` on the pinned kernel and returns the measured-window result
/// plus the best (minimum) host time across `reps` repetitions. Timing
/// covers the whole simulation including warmup — the gate tracks the cost
/// of simulating, not the paper's measurement-window convention — but the
/// reported `cycles`/`retired` are whole-run totals so the ratio is exact.
fn measure(kind: IqKind, model: ProcessorModel, budget: &GateBudget) -> (SimResult, f64) {
    let kernel = suite::by_name(GATE_KERNEL).expect("pinned gate kernel exists");
    let program = kernel.build();
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..budget.reps {
        let mut core = Core::new(model.config(), kind, &program);
        let start = Instant::now();
        let r = core.run(budget.warmup + budget.insts);
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        result = Some(r);
    }
    (result.expect("reps >= 1"), best)
}

fn main() {
    let smoke = smoke_requested();
    let budget = if smoke {
        GateBudget { warmup: 5_000, insts: 20_000, reps: 1 }
    } else {
        GateBudget { warmup: 30_000, insts: 200_000, reps: 3 }
    };

    // Every organization on the medium model, then the age-matrix-heavy
    // large-model AGE row (256 entries, 8-wide: the biggest matrices).
    let mut configs: Vec<(IqKind, ProcessorModel)> =
        IqKind::ALL.iter().map(|&k| (k, ProcessorModel::Medium)).collect();
    configs.push((IqKind::Age, ProcessorModel::Large));

    let mut report = Report::new("perf_gate");
    report
        .param("kernel", GATE_KERNEL)
        .param("smoke", smoke)
        .param("gate_warmup_insts", budget.warmup)
        .param("gate_max_insts", budget.insts)
        .param("reps", budget.reps as u64);

    let mut table =
        Table::new(["kind", "model", "sim cycles", "host ms", "sim kcycles/s"]);
    for (kind, model) in configs {
        let (r, secs) = measure(kind, model, &budget);
        let kcps = r.cycles as f64 / secs / 1000.0;
        table.row([
            kind.label().to_string(),
            model.label().to_string(),
            r.cycles.to_string(),
            format!("{:.1}", secs * 1000.0),
            format!("{kcps:.0}"),
        ]);
        report.push_row(Json::obj([
            ("kind", Json::from(kind.label())),
            ("model", Json::from(model.label())),
            ("kernel", Json::from(GATE_KERNEL)),
            ("warmup_insts", Json::from(budget.warmup)),
            ("max_insts", Json::from(budget.insts)),
            ("cycles", Json::from(r.cycles)),
            ("retired", Json::from(r.retired)),
            ("host_seconds", Json::from(secs)),
            ("sim_kcycles_per_sec", Json::from(kcps)),
        ]));
    }
    report.add_table("perf_gate", &table);
    println!("{table}");

    // Unlike the figure binaries, the gate always writes its report: a
    // trajectory point that only exists when an env var was remembered is
    // not a trajectory. SWQUE_JSON still overrides the destination.
    let path = json_path().unwrap_or_else(|| "BENCH_TIER1.json".into());
    let doc = format!("{}\n", report.to_json());
    std::fs::write(&path, doc)
        .unwrap_or_else(|e| panic!("perf_gate: cannot write {}: {e}", path.display()));
    eprintln!("[perf_gate] wrote {}", path.display());
}
