//! `perf_gate`: host-side throughput gate for the scheduling hot paths.
//!
//! Every other binary in this crate measures *simulated* behaviour (IPC,
//! mode residency, energy). This one measures the **simulator itself**: how
//! many simulated kilocycles per host second each issue-queue organization
//! sustains on a pinned workload. The numbers form the perf trajectory of
//! the repository — each PR that touches a hot path reruns the gate and
//! records the new `BENCH_TIER1.json`, so a scheduling-path regression
//! shows up as a dropped `sim_kcycles_per_sec` row rather than as a vague
//! "experiments feel slower".
//!
//! # Pinned workload
//!
//! The measurement is deliberately *not* configurable through the usual
//! `SWQUE_INSTS`/`SWQUE_WARMUP` knobs: trajectory points are only
//! comparable if every run simulates the same instruction stream. The gate
//! runs `deepsjeng_like` (moderate-ILP INT, the paper's headline class) on
//! the medium model for every [`IqKind`], plus one large-model AGE row —
//! the age-matrix-heavy configuration whose select/wakeup work scales
//! worst with queue capacity.
//!
//! # Modes
//!
//! * default — full budget (200k measured instructions, best of 3 reps);
//!   wall-clock a few seconds per organization.
//! * `--smoke` (or `SWQUE_PERF_SMOKE=1`) — reduced budget (20k
//!   instructions, 1 rep) for CI: validates that the gate runs and emits
//!   schema-valid JSON, not the absolute numbers.
//!
//! # Output
//!
//! Writes a `swque-bench-v1` report to `SWQUE_JSON` if set, else to
//! `BENCH_TIER1.json` in the current directory. Typed rows carry
//! `{kind, model, kernel, warmup_insts, max_insts, cycles, retired,
//! host_seconds, sim_kcycles_per_sec}`.

use std::time::Instant;

use swque_bench::{json_path, ProcessorModel, Report, Table};
use swque_core::IqKind;
use swque_cpu::{Core, SimResult};
use swque_isa::Program;
use swque_trace::Json;
use swque_workloads::suite;
use swque_workloads::synthetic::{pointer_chase, PointerChaseParams};

/// The pinned kernel every per-organization gate row simulates.
const GATE_KERNEL: &str = "deepsjeng_like";

/// Class representatives for the skip-speedup section: one kernel per
/// behaviour class, pinned like the gate kernel. The speedup from
/// quiescence skipping (DESIGN.md §10) is itself a tracked trajectory
/// number — stall-dominated (MLP) kernels are where the simulator used to
/// burn most of its host time ticking empty pipelines.
const SKIP_KERNELS: [(&str, &str); 4] = [
    ("deepsjeng_like", "moderate-ILP"),
    ("bwaves_like", "rich-ILP"),
    ("omnetpp_like", "MLP"),
    ("xz_like", "MLP"),
];

struct GateBudget {
    warmup: u64,
    insts: u64,
    reps: usize,
}

fn smoke_requested() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("SWQUE_PERF_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Runs `kind` on the pinned kernel and returns the measured-window result
/// plus the best (minimum) host time across `reps` repetitions. Timing
/// covers the whole simulation including warmup — the gate tracks the cost
/// of simulating, not the paper's measurement-window convention — but the
/// reported `cycles`/`retired` are whole-run totals so the ratio is exact.
fn measure(kind: IqKind, model: ProcessorModel, budget: &GateBudget) -> (SimResult, f64) {
    measure_on(kind, model, GATE_KERNEL, true, budget)
}

/// [`measure`] generalized over kernel and skip setting (the skip-speedup
/// section needs both axes; the per-organization rows pin both).
fn measure_on(
    kind: IqKind,
    model: ProcessorModel,
    kernel: &str,
    skip: bool,
    budget: &GateBudget,
) -> (SimResult, f64) {
    let kernel = suite::by_name(kernel).expect("pinned gate kernel exists");
    let program = kernel.build();
    measure_program(kind, model, &program, skip, budget.warmup + budget.insts, budget.reps)
}

/// Innermost measurement: best-of-`reps` host time for `max_insts` of
/// `program` with skipping forced on or off.
fn measure_program(
    kind: IqKind,
    model: ProcessorModel,
    program: &Program,
    skip: bool,
    max_insts: u64,
    reps: usize,
) -> (SimResult, f64) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let mut core = Core::new(model.config(), kind, program);
        core.set_skip(skip);
        let start = Instant::now();
        let r = core.run(max_insts);
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        result = Some(r);
    }
    (result.expect("reps >= 1"), best)
}

/// The latency-bound pin for the skip-speedup section: a single serial
/// dependent-miss chain over an 8 MiB ring. With one load in flight and
/// ~5 instructions per ~315-cycle round trip (IPC ≈ 0.02), nearly every
/// cycle is quiescent *and* nearly all host time used to be spent ticking
/// them — the configuration next-event skipping exists for. The suite's
/// MLP kernels keep 8 chains in flight, which is what makes them fast to
/// simulate per-cycle and caps their skip speedup (see EXPERIMENTS.md).
fn serial_chase() -> Program {
    pointer_chase(
        60_000,
        &PointerChaseParams {
            chains: 1,
            nodes: 1 << 20,
            spacing: 0,
            alu_work: 1,
            fp_work: 0,
            seed: 0xC0FFEE,
        },
    )
}

fn main() {
    let smoke = smoke_requested();
    let budget = if smoke {
        GateBudget { warmup: 5_000, insts: 20_000, reps: 1 }
    } else {
        GateBudget { warmup: 30_000, insts: 200_000, reps: 3 }
    };

    // Every organization on the medium model, then the age-matrix-heavy
    // large-model AGE row (256 entries, 8-wide: the biggest matrices).
    let mut configs: Vec<(IqKind, ProcessorModel)> =
        IqKind::ALL.iter().map(|&k| (k, ProcessorModel::Medium)).collect();
    configs.push((IqKind::Age, ProcessorModel::Large));

    let mut report = Report::new("perf_gate");
    report
        .param("kernel", GATE_KERNEL)
        .param("smoke", smoke)
        .param("gate_warmup_insts", budget.warmup)
        .param("gate_max_insts", budget.insts)
        .param("reps", budget.reps as u64);

    let mut table =
        Table::new(["kind", "model", "sim cycles", "host ms", "sim kcycles/s"]);
    for (kind, model) in configs {
        let (r, secs) = measure(kind, model, &budget);
        let kcps = r.cycles as f64 / secs / 1000.0;
        table.row([
            kind.label().to_string(),
            model.label().to_string(),
            r.cycles.to_string(),
            format!("{:.1}", secs * 1000.0),
            format!("{kcps:.0}"),
        ]);
        report.push_row(Json::obj([
            ("kind", Json::from(kind.label())),
            ("model", Json::from(model.label())),
            ("kernel", Json::from(GATE_KERNEL)),
            ("warmup_insts", Json::from(budget.warmup)),
            ("max_insts", Json::from(budget.insts)),
            ("cycles", Json::from(r.cycles)),
            ("retired", Json::from(r.retired)),
            ("host_seconds", Json::from(secs)),
            ("sim_kcycles_per_sec", Json::from(kcps)),
        ]));
    }
    report.add_table("perf_gate", &table);
    println!("{table}");

    // Skip-speedup section: the same SWQUE organization on one kernel per
    // behaviour class, with quiescence skipping off and on. Simulated
    // cycles must agree exactly (the differential tests pin the full
    // statistics; the gate re-checks the headline number on every run),
    // so the speedup is purely host time.
    let mut skip_table =
        Table::new(["kernel", "class", "off kc/s", "on kc/s", "speedup"]);
    let mut skip_rows: Vec<(String, &str, Program, u64)> = SKIP_KERNELS
        .iter()
        .map(|&(name, class)| {
            let k = suite::by_name(name).expect("pinned skip kernel exists");
            (name.to_string(), class, k.build(), budget.warmup + budget.insts)
        })
        .collect();
    // The latency-bound pin runs a quarter budget: its skip-off reference
    // simulates ~60 cycles per instruction, so a full budget would spend
    // the gate's whole wall-clock ticking one row's reference runs.
    skip_rows.push((
        "serial_chase".into(),
        "latency-bound",
        serial_chase(),
        (budget.warmup + budget.insts) / 4,
    ));
    for (kernel, class, program, max_insts) in &skip_rows {
        let (off_r, off_secs) = measure_program(
            IqKind::Swque,
            ProcessorModel::Medium,
            program,
            false,
            *max_insts,
            budget.reps,
        );
        let (on_r, on_secs) = measure_program(
            IqKind::Swque,
            ProcessorModel::Medium,
            program,
            true,
            *max_insts,
            budget.reps,
        );
        assert_eq!(
            (off_r.cycles, off_r.retired),
            (on_r.cycles, on_r.retired),
            "{kernel}: skipping changed simulated timing — the gate refuses \
             to record a speedup bought with wrong cycles"
        );
        let off_kcps = off_r.cycles as f64 / off_secs / 1000.0;
        let on_kcps = on_r.cycles as f64 / on_secs / 1000.0;
        let speedup = off_secs / on_secs;
        if !smoke && *class == "latency-bound" {
            // The headline gate: on the stall-dominated pin, skipping must
            // at least halve host time (measured ~10-20x; 2x leaves room
            // for noisy hosts). Smoke runs skip the assert — their budget
            // is too small for stable ratios.
            assert!(
                speedup >= 2.0,
                "{kernel}: skip speedup {speedup:.2}x < 2x on the \
                 latency-bound pin — the quiescence skip regressed"
            );
        }
        skip_table.row([
            kernel.to_string(),
            class.to_string(),
            format!("{off_kcps:.0}"),
            format!("{on_kcps:.0}"),
            format!("{speedup:.2}x"),
        ]);
        report.push_row(Json::obj([
            ("section", Json::from("skip_speedup")),
            ("kind", Json::from(IqKind::Swque.label())),
            ("model", Json::from(ProcessorModel::Medium.label())),
            ("kernel", Json::from(kernel.as_str())),
            ("class", Json::from(*class)),
            ("max_insts", Json::from(*max_insts)),
            ("cycles", Json::from(on_r.cycles)),
            ("host_seconds_skip_off", Json::from(off_secs)),
            ("host_seconds_skip_on", Json::from(on_secs)),
            ("kcycles_per_sec_skip_off", Json::from(off_kcps)),
            ("kcycles_per_sec_skip_on", Json::from(on_kcps)),
            ("skip_speedup", Json::from(speedup)),
        ]));
    }
    report.add_table("skip_speedup", &skip_table);
    println!("{skip_table}");

    // Unlike the figure binaries, the gate always writes its report: a
    // trajectory point that only exists when an env var was remembered is
    // not a trajectory. SWQUE_JSON still overrides the destination.
    let path = json_path().unwrap_or_else(|| "BENCH_TIER1.json".into());
    let doc = format!("{}\n", report.to_json());
    std::fs::write(&path, doc)
        .unwrap_or_else(|e| panic!("perf_gate: cannot write {}: {e}", path.display()));
    eprintln!("[perf_gate] wrote {}", path.display());
}
