//! Extension experiment (beyond the paper): how does the rearranging
//! random queue of Sakai et al. — the related-work §5 scheme that protects
//! *multiple* oldest instructions — compare against AGE and SWQUE?

use swque_bench::{geomean, run_suite, Report, RunSpec, Table};
use swque_core::IqKind;
use swque_workloads::Category;

fn main() {
    let kinds = [IqKind::Age, IqKind::Rearrange, IqKind::Swque, IqKind::Shift];
    let specs: Vec<RunSpec> = kinds.iter().map(|&k| RunSpec::medium(k)).collect();
    let rows = run_suite(&specs);

    let mut table = Table::new(["program", "class", "REARRANGE/AGE", "SWQUE/AGE", "SHIFT/AGE"]);
    let mut gms = [[Vec::new(), Vec::new(), Vec::new()], [Vec::new(), Vec::new(), Vec::new()]];
    for row in &rows {
        let age = row.results[0].ipc();
        let cat = (row.kernel.category == Category::Fp) as usize;
        let mut cells = vec![row.kernel.name.to_string(), row.kernel.class.to_string()];
        for (i, r) in row.results.iter().enumerate().skip(1) {
            let ratio = r.ipc() / age;
            gms[cat][i - 1].push(ratio);
            cells.push(format!("{:+.1}%", (ratio - 1.0) * 100.0));
        }
        table.row(cells);
    }
    for (cat, label) in [(0usize, "GM int"), (1, "GM fp")] {
        table.row([
            label.to_string(),
            String::new(),
            format!("{:+.1}%", (geomean(&gms[cat][0]) - 1.0) * 100.0),
            format!("{:+.1}%", (geomean(&gms[cat][1]) - 1.0) * 100.0),
            format!("{:+.1}%", (geomean(&gms[cat][2]) - 1.0) * 100.0),
        ]);
    }
    println!("Extension: rearranging random queue (Sakai et al.) vs AGE vs SWQUE");
    println!("(multiple-oldest protection recovers part of RAND's priority loss");
    println!(" with full capacity efficiency, but cannot reach SWQUE's CIRC-PC");
    println!(" phases — consistent with the paper's related-work discussion)\n");
    println!("{table}");
    Report::new("ext_rearrange").add_table("rearrange", &table).finish();
}
