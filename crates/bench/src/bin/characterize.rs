//! Workload characterization: instruction mix, branch behaviour, and
//! memory behaviour of every suite kernel — the numbers that justify each
//! kernel's m-ILP / r-ILP / MLP class assignment.

use swque_bench::{run_kernel, Report, RunSpec, Table};
use swque_core::IqKind;
use swque_isa::{Emulator, FuClass};
use swque_workloads::suite;

fn main() {
    let mut t = Table::new([
        "kernel", "class", "iALU%", "mul%", "ld/st%", "FP%", "br%", "mispred%", "MPKI", "IPC(AGE)",
    ]);
    for kernel in suite::all() {
        // Instruction mix from a functional run.
        let program = kernel.build_scaled(300);
        let mut emu = Emulator::new(&program);
        let mut mix = [0u64; 4];
        let mut branches = 0u64;
        let mut total = 0u64;
        while !emu.halted() && total < 60_000 {
            let r = emu.step().expect("well-formed kernel");
            mix[r.inst.op.fu_class().index()] += 1;
            branches += r.inst.op.is_control() as u64;
            total += 1;
        }
        // Timing behaviour from a measured run.
        let r = run_kernel(&kernel, &RunSpec::medium(IqKind::Age));
        let pct = |c: FuClass| 100.0 * mix[c.index()] as f64 / total as f64;
        t.row([
            kernel.name.to_string(),
            kernel.class.to_string(),
            format!("{:.0}", pct(FuClass::IntAlu)),
            format!("{:.0}", pct(FuClass::IntMulDiv)),
            format!("{:.0}", pct(FuClass::LdSt)),
            format!("{:.0}", pct(FuClass::Fpu)),
            format!("{:.1}", 100.0 * branches as f64 / total as f64),
            format!("{:.1}", r.branch.mispredict_rate() * 100.0),
            format!("{:.2}", r.mpki()),
            format!("{:.2}", r.ipc()),
        ]);
    }
    println!("Suite characterization (mix from functional runs; timing on AGE)\n");
    println!("{t}");
    Report::new("characterize").add_table("characterization", &t).finish();
    println!("\n(m-ILP kernels: load-heavy, sub-1 MPKI, branchy with real mispredicts;");
    println!(" MLP kernels: tens of MPKI; r-ILP kernels: FP-dominated, high IPC)");
}
