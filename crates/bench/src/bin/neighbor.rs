//! `neighbor`: multi-core memory-system interference (DESIGN.md §11).
//!
//! A measured SWQUE core runs a latency-sensitive pointer-chase kernel
//! while 0–3 aggressor cores run memory-hungry kernels next to it, all
//! sharing one L2, stream prefetcher, and DRAM channel via
//! [`swque_cpu::MultiCoreSim`]. The experiment reports the measured core's
//! slowdown relative to its solo run and the shared hierarchy's contention
//! counters — DRAM arbitration waits, MSHR-quota stalls, and
//! neighbor-caused LLC evictions — broken down per requester.
//!
//! The experiment models a shared [`MSHR_POOL`]-entry MSHR file statically
//! partitioned across cores (`pool / n`, floored at 1), so each core's
//! miss-level parallelism is quota-limited exactly as a banked MSHR file
//! would limit it: co-running costs a core half its miss parallelism
//! before the first cycle of channel contention. The solo scenario keeps
//! the whole pool and is bit-identical to a standalone single-core run of
//! the same configuration.
//!
//! Scenario count can be capped with `SWQUE_NEIGHBOR_MAX` (0–3, default
//! 3) — verify.sh uses 1 for its determinism smoke. Budgets follow the
//! usual `SWQUE_WARMUP`/`SWQUE_INSTS` knobs; the JSON report
//! (`SWQUE_JSON`) carries one requester-tagged row per core per scenario.
//!
//! Per-scenario contention counters are echoed to stderr as
//! `[neighbor] aggressors=<n> arb_wait_cycles=<w> quota_stall_cycles=<q>`
//! so the verify gate can assert non-vacuity without parsing tables.

use swque_bench::harness::{default_insts, default_warmup};
use swque_bench::{Report, Table};
use swque_core::IqKind;
use swque_cpu::{CoreConfig, MultiCoreSim, SimResult};
use swque_mem::SharedMemStats;
use swque_trace::Json;
use swque_workloads::suite;

/// The latency-sensitive kernel on the measured core (requester 0): a
/// pointer chase, where every DRAM arbitration wait lands on the critical
/// path.
const MEASURED: &str = "omnetpp_like";

/// Aggressor kernels, added in order: streaming (bandwidth), streaming
/// with high MLP, and a second pointer chase (LLC footprint).
const AGGRESSORS: [&str; 3] = ["lbm_like", "fotonik3d_like", "xz_like"];

/// Shared MSHR file size, statically partitioned across cores. Half the
/// medium model's single-core file: a shared L2's MSHR bank is a scarcer
/// resource than a private one, and the tighter pool makes the quota the
/// first contention point an MLP burst hits (the suite's MLP kernels keep
/// 8 misses in flight, so a 2-core split of 4 visibly binds).
const MSHR_POOL: usize = 8;

fn max_aggressors() -> usize {
    std::env::var("SWQUE_NEIGHBOR_MAX")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(AGGRESSORS.len())
        .min(AGGRESSORS.len())
}

/// Field-wise counter delta `now - earlier` of the shared-level stats
/// (measurement window exclusion, mirroring `SimResult::delta`).
fn delta_shared(now: &SharedMemStats, earlier: &SharedMemStats) -> SharedMemStats {
    let mut d = now.clone();
    d.l2 = now.l2.delta(&earlier.l2);
    d.dram_transfers -= earlier.dram_transfers;
    d.arb_wait_cycles -= earlier.arb_wait_cycles;
    d.quota_stall_cycles -= earlier.quota_stall_cycles;
    d.neighbor_evictions -= earlier.neighbor_evictions;
    for (p, e) in d.per_requester.iter_mut().zip(&earlier.per_requester) {
        p.llc_demand_misses -= e.llc_demand_misses;
        p.dram_transfers -= e.dram_transfers;
        p.arb_wait_cycles -= e.arb_wait_cycles;
        p.quota_stall_cycles -= e.quota_stall_cycles;
    }
    d
}

struct Scenario {
    aggressors: usize,
    results: Vec<SimResult>,
    shared: SharedMemStats,
    kernels: Vec<&'static str>,
}

fn run_scenario(aggressors: usize, warmup: u64, insts: u64) -> Scenario {
    let kernels: Vec<&'static str> =
        std::iter::once(MEASURED).chain(AGGRESSORS[..aggressors].iter().copied()).collect();
    let programs: Vec<_> = kernels
        .iter()
        .map(|name| suite::by_name(name).expect("pinned kernel exists").build_seeded(None, 0))
        .collect();
    // The measured core runs the paper's SWQUE queue; aggressors are plain
    // traffic generators and use the baseline SHIFT queue.
    let workloads: Vec<(IqKind, &swque_isa::Program)> = programs
        .iter()
        .enumerate()
        .map(|(i, p)| (if i == 0 { IqKind::Swque } else { IqKind::Shift }, p))
        .collect();

    let mut config = CoreConfig::medium();
    // Static MSHR partitioning: the shared pool split across cores.
    config.mem.mshrs = (MSHR_POOL / workloads.len()).max(1);

    let mut sim = MultiCoreSim::new(config, &workloads);
    let warm = sim.run(warmup);
    let warm_shared = sim.shared_stats();
    let full = sim.run(warmup + insts);
    let results: Vec<SimResult> =
        full.iter().zip(&warm).map(|(f, w)| f.delta(w)).collect();
    let shared = delta_shared(&sim.shared_stats(), &warm_shared);
    Scenario { aggressors, results, shared, kernels }
}

fn main() {
    let (warmup, insts) = (default_warmup(), default_insts());
    let mut report = Report::new("neighbor");
    report.param("measured_kernel", MEASURED);
    report.param("measured_iq", IqKind::Swque.label());

    let scenarios: Vec<Scenario> =
        (0..=max_aggressors()).map(|n| run_scenario(n, warmup, insts)).collect();
    let solo_cycles = scenarios[0].results[0].cycles;

    let mut summary = Table::new([
        "aggressors",
        "measured cycles",
        "slowdown",
        "measured IPC",
        "arb_wait_cycles",
        "quota_stall_cycles",
        "neighbor_evictions",
    ]);
    let mut per_req = Table::new([
        "aggressors",
        "requester",
        "role",
        "kernel",
        "cycles",
        "ipc",
        "llc_demand_misses",
        "dram_transfers",
        "arb_wait_cycles",
        "quota_stall_cycles",
    ]);

    for s in &scenarios {
        let measured = &s.results[0];
        summary.row([
            s.aggressors.to_string(),
            measured.cycles.to_string(),
            format!("{:.3}x", measured.cycles as f64 / solo_cycles as f64),
            format!("{:.3}", measured.ipc()),
            s.shared.arb_wait_cycles.to_string(),
            s.shared.quota_stall_cycles.to_string(),
            s.shared.neighbor_evictions.to_string(),
        ]);
        for (r, result) in s.results.iter().enumerate() {
            let role = if r == 0 { "measured" } else { "aggressor" };
            let p = &s.shared.per_requester[r];
            per_req.row([
                s.aggressors.to_string(),
                r.to_string(),
                role.to_string(),
                s.kernels[r].to_string(),
                result.cycles.to_string(),
                format!("{:.3}", result.ipc()),
                p.llc_demand_misses.to_string(),
                p.dram_transfers.to_string(),
                p.arb_wait_cycles.to_string(),
                p.quota_stall_cycles.to_string(),
            ]);
            report.push_row(Json::obj([
                ("aggressors", Json::from(s.aggressors as u64)),
                ("requester", Json::from(r as u64)),
                ("role", Json::from(role)),
                ("kernel", Json::from(s.kernels[r])),
                ("cycles", Json::from(result.cycles)),
                ("retired", Json::from(result.retired)),
                ("ipc", Json::from(result.ipc())),
                ("llc_demand_misses", Json::from(p.llc_demand_misses)),
                ("dram_transfers", Json::from(p.dram_transfers)),
                ("arb_wait_cycles", Json::from(p.arb_wait_cycles)),
                ("quota_stall_cycles", Json::from(p.quota_stall_cycles)),
            ]));
        }
        eprintln!(
            "[neighbor] aggressors={} arb_wait_cycles={} quota_stall_cycles={}",
            s.aggressors, s.shared.arb_wait_cycles, s.shared.quota_stall_cycles
        );
    }

    println!("Neighbor interference: measured SWQUE core ({MEASURED}) vs aggressors");
    println!("(shared L2/prefetcher/DRAM; MSHRs statically partitioned across cores)\n");
    println!("{summary}");
    println!("{per_req}");
    report.add_table("interference", &summary).add_table("per_requester", &per_req).finish();
}
