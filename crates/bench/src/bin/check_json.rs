//! Schema validator for structured experiment output: parses each file
//! named on the command line with the in-tree JSON parser and checks the
//! `swque-bench-v1` shape (and the nested `swque-trace-v1` shape of any
//! embedded trace digests). Used by `scripts/verify.sh` as the JSON smoke
//! step; exits non-zero with a description on the first violation.

use std::process::ExitCode;

use swque_bench::BENCH_SCHEMA;
use swque_trace::Json;

fn check_report(doc: &Json) -> Result<String, String> {
    let keys = doc.keys();
    let expect = ["schema", "experiment", "params", "tables", "rows", "traces"];
    if keys != expect {
        return Err(format!("top-level keys {keys:?}, expected {expect:?}"));
    }
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != BENCH_SCHEMA {
        return Err(format!("schema {schema:?}, expected {BENCH_SCHEMA:?}"));
    }
    let experiment = doc
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("experiment is not a string")?;
    let params = doc.get("params").ok_or("missing params")?;
    for key in ["warmup_insts", "max_insts"] {
        params
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("params.{key} is not an integer"))?;
    }
    let tables = doc.get("tables").and_then(Json::as_arr).ok_or("tables is not an array")?;
    for t in tables {
        if t.keys() != ["name", "header", "rows"] {
            return Err(format!("table keys {:?}", t.keys()));
        }
        let width = t.get("header").and_then(Json::as_arr).ok_or("table header")?.len();
        for row in t.get("rows").and_then(Json::as_arr).ok_or("table rows")? {
            let cells = row.as_arr().ok_or("table row is not an array")?;
            if cells.len() != width {
                return Err(format!("row width {} vs header {width}", cells.len()));
            }
        }
    }
    doc.get("rows").and_then(Json::as_arr).ok_or("rows is not an array")?;
    let traces = doc.get("traces").and_then(Json::as_arr).ok_or("traces is not an array")?;
    for entry in traces {
        entry.get("program").and_then(Json::as_str).ok_or("trace entry without program")?;
        let t = entry.get("trace").ok_or("trace entry without trace")?;
        let ts = t.get("schema").and_then(Json::as_str).unwrap_or("");
        if ts != "swque-trace-v1" {
            return Err(format!("trace schema {ts:?}"));
        }
        for key in ["events", "dropped", "switches", "circ_pc_intervals", "age_intervals"] {
            t.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace.{key} is not an integer"))?;
        }
        t.get("circ_pc_fraction").and_then(Json::as_f64).ok_or("trace.circ_pc_fraction")?;
        t.get("mode_strip").and_then(Json::as_str).ok_or("trace.mode_strip")?;
        let intervals = t.get("intervals").and_then(Json::as_arr).ok_or("trace.intervals")?;
        for iv in intervals {
            let want = ["cycle", "retired", "mpki", "flpi", "mode", "instability", "switched"];
            if iv.keys() != want {
                return Err(format!("interval keys {:?}", iv.keys()));
            }
        }
        t.get("ipc").and_then(Json::as_arr).ok_or("trace.ipc")?;
    }
    Ok(format!(
        "{experiment}: {} table(s), {} row(s), {} trace(s)",
        tables.len(),
        doc.get("rows").and_then(Json::as_arr).map_or(0, |r| r.len()),
        traces.len(),
    ))
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: check_json <report.json>...");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{path}: parse error: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_report(&doc) {
            Ok(desc) => println!("{path}: ok ({desc})"),
            Err(e) => {
                eprintln!("{path}: schema violation: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
