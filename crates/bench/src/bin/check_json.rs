//! Schema validator for structured tool output: parses each file named on
//! the command line with the in-tree JSON parser and checks its declared
//! schema — `swque-bench-v1` experiment reports (including the nested
//! `swque-trace-v1` shape of any embedded trace digests),
//! `swque-lint-v3` analyzer reports (the legacy `swque-lint-v2` shape,
//! whose findings lack the `domain_from`/`domain_to`/`chain` trio, and
//! the `swque-lint-v1` shape, which also lacks `rule_class`, are still
//! accepted), and the sweep
//! orchestrator's three shapes: `swque-sweep-manifest-v1` campaign
//! manifests, `swque-sweep-shard-v1` per-unit shards, and
//! `swque-sweep-campaign-v1` merged reports (shard and campaign-row
//! `unit_key`s are re-derived from the embedded unit, so a tampered or
//! stale shard fails here exactly as it fails the merge), and
//! `swque-mc-v1` model-checker reports (every violation's replay string
//! is re-parsed under the `swque-mc-replay-v1` grammar and checked
//! against the run's target and violated property). Used by
//! `scripts/verify.sh` as the JSON smoke step for every producer.
//!
//! Diagnostics name the offending JSON path (`tables[2].rows[5]`,
//! `traces[0].trace.events`, …) so a broken writer can be located without
//! diffing documents by eye. All files are checked even after a failure;
//! the exit code is non-zero if *any* file was unreadable, unparseable, or
//! schema-violating.

use std::process::ExitCode;

use swque_bench::{Manifest, BENCH_SCHEMA, CAMPAIGN_SCHEMA, MANIFEST_SCHEMA, SHARD_SCHEMA};
use swque_trace::Json;

/// Schema string of current `swque-lint` analyzer reports. Kept as a
/// literal here because the lint crate is a dev-dependency only; the unit
/// tests assert it matches `swque_lint::report::LINT_SCHEMA`.
const LINT_SCHEMA: &str = "swque-lint-v3";

/// The previous analyzer report schema (findings without the
/// `domain_from`/`domain_to`/`chain` trio), still accepted so archived
/// reports keep validating.
const LINT_SCHEMA_V2: &str = "swque-lint-v2";

/// The original analyzer report schema (findings additionally without
/// `rule_class`), likewise accepted.
const LINT_SCHEMA_V1: &str = "swque-lint-v1";

/// The analysis layers a v2+ finding may name.
const RULE_CLASSES: [&str; 4] = ["token", "ast", "reachability", "dataflow"];

/// Schema string of `swque-mc` model-checker reports. A literal because
/// the mc crate is a dev-dependency only; the unit tests assert it
/// matches `swque_mc::MC_SCHEMA`.
const MC_SCHEMA: &str = "swque-mc-v1";

/// Dispatches on the document's declared `schema` field.
fn check_report(doc: &Json) -> Result<String, String> {
    match doc.get("schema").and_then(Json::as_str).unwrap_or("") {
        BENCH_SCHEMA => check_bench_report(doc),
        LINT_SCHEMA => check_lint_report(doc, 3),
        LINT_SCHEMA_V2 => check_lint_report(doc, 2),
        LINT_SCHEMA_V1 => check_lint_report(doc, 1),
        MANIFEST_SCHEMA => check_sweep_manifest(doc),
        SHARD_SCHEMA => check_sweep_shard(doc),
        CAMPAIGN_SCHEMA => check_sweep_campaign(doc),
        MC_SCHEMA => check_mc_report(doc),
        other => Err(format!(
            "schema: {other:?}, expected {BENCH_SCHEMA:?}, {LINT_SCHEMA:?}, {LINT_SCHEMA_V2:?}, \
             {LINT_SCHEMA_V1:?}, {MANIFEST_SCHEMA:?}, {SHARD_SCHEMA:?}, {CAMPAIGN_SCHEMA:?}, \
             or {MC_SCHEMA:?}"
        )),
    }
}

/// Validates one `swque-mc-v1` model-checker report: fixed key sets at
/// every level, cross-field consistency (`closed` ⇔ `frontier == 0`,
/// declared totals vs per-run sums), and every violation's replay string
/// re-parsed under the `swque-mc-replay-v1` grammar with its `expect=`
/// clause equal to the violated property and its target equal to the
/// run's target.
fn check_mc_report(doc: &Json) -> Result<String, String> {
    use swque_core::replay::Replay;
    let keys = doc.keys();
    let expect = ["schema", "smoke", "runs", "total_states", "violations"];
    if keys != expect {
        return Err(format!("$: top-level keys {keys:?}, expected {expect:?}"));
    }
    doc.get("smoke").and_then(Json::as_bool).ok_or("smoke: not a bool")?;
    let runs = doc.get("runs").and_then(Json::as_arr).ok_or("runs: not an array")?;
    let mut states_sum = 0u64;
    let mut violation_count = 0u64;
    for (ri, run) in runs.iter().enumerate() {
        let path = format!("runs[{ri}]");
        let expect = [
            "target", "capacity", "width", "depth", "inject", "states", "deepest", "frontier",
            "closed", "violations",
        ];
        if run.keys() != expect {
            return Err(format!("{path}: keys {:?}, expected {expect:?}", run.keys()));
        }
        let target = run
            .get("target")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}.target: not a string"))?;
        run.get("inject")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}.inject: not a string"))?;
        for key in ["capacity", "width", "depth", "states", "deepest", "frontier"] {
            run.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}.{key}: not an integer"))?;
        }
        let closed = run
            .get("closed")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("{path}.closed: not a bool"))?;
        let frontier = run.get("frontier").and_then(Json::as_u64).unwrap_or(0);
        if closed != (frontier == 0) {
            return Err(format!("{path}: closed={closed} inconsistent with frontier={frontier}"));
        }
        states_sum += run.get("states").and_then(Json::as_u64).unwrap_or(0);
        let violations = run
            .get("violations")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{path}.violations: not an array"))?;
        violation_count += violations.len() as u64;
        for (vi, v) in violations.iter().enumerate() {
            let vpath = format!("{path}.violations[{vi}]");
            if v.keys() != ["property", "detail", "replay"] {
                return Err(format!(
                    "{vpath}: keys {:?}, expected property/detail/replay",
                    v.keys()
                ));
            }
            let property = v
                .get("property")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{vpath}.property: not a string"))?;
            v.get("detail")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{vpath}.detail: not a string"))?;
            let replay = v
                .get("replay")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{vpath}.replay: not a string"))?;
            let parsed = Replay::parse(replay)
                .map_err(|e| format!("{vpath}.replay: {}", e.message))?;
            if parsed.target.label() != target {
                return Err(format!(
                    "{vpath}.replay: targets {}, run explores {target}",
                    parsed.target.label()
                ));
            }
            if parsed.expect.as_deref() != Some(property) {
                return Err(format!(
                    "{vpath}.replay: expect={:?} vs violated property {property:?}",
                    parsed.expect
                ));
            }
        }
    }
    let total_states =
        doc.get("total_states").and_then(Json::as_u64).ok_or("total_states: not an integer")?;
    if total_states != states_sum {
        return Err(format!("total_states: {total_states} vs per-run sum {states_sum}"));
    }
    let declared = doc.get("violations").and_then(Json::as_u64).ok_or("violations: not an integer")?;
    if declared != violation_count {
        return Err(format!("violations: {declared} vs per-run count {violation_count}"));
    }
    Ok(format!(
        "mc report: {} run(s), {states_sum} state(s), {violation_count} violation(s)",
        runs.len()
    ))
}

/// Validates a `swque-sweep-manifest-v1` campaign manifest by handing it
/// to the real parser — the definition of valid is "the orchestrator
/// accepts it", so there is exactly one implementation of the rules.
fn check_sweep_manifest(doc: &Json) -> Result<String, String> {
    let m = Manifest::parse(&doc.to_string())?;
    Ok(format!("sweep manifest {:?}: {} unit(s)", m.name, m.units().len()))
}

/// Validates the unit object embedded in shards and campaign rows.
fn check_sweep_unit(unit: &Json, path: &str) -> Result<(), String> {
    let want = ["kind", "model", "mpki_threshold", "flpi_threshold", "seed", "kernel", "budget"];
    if unit.keys() != want {
        return Err(format!("{path}: keys {:?}, expected {want:?}", unit.keys()));
    }
    for key in ["kind", "model", "kernel"] {
        unit.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}.{key}: not a string"))?;
    }
    unit.get("seed").and_then(Json::as_u64).ok_or_else(|| format!("{path}.seed: not an integer"))?;
    for key in ["mpki_threshold", "flpi_threshold"] {
        match unit.get(key) {
            Some(Json::Null) | Some(Json::Num(_)) => {}
            _ => return Err(format!("{path}.{key}: not a number or null")),
        }
    }
    let budget = unit.get("budget").ok_or_else(|| format!("{path}.budget: missing"))?;
    for key in ["warmup_insts", "max_insts"] {
        budget
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{path}.budget.{key}: not an integer"))?;
    }
    Ok(())
}

/// Validates the result object of shards and campaign rows.
fn check_sweep_result(result: &Json, path: &str) -> Result<(), String> {
    for key in ["cycles", "retired", "mode_switches"] {
        result
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{path}.{key}: not an integer"))?;
    }
    for key in ["ipc", "mpki", "flpi"] {
        result
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}.{key}: not a number"))?;
    }
    Ok(())
}

/// The content-addressing invariant shared by shards and campaign rows:
/// `unit_key` must equal the FNV-1a 64 digest of the embedded unit's
/// serialization — the property resume and merge trust.
fn check_unit_key(doc: &Json, path: &str) -> Result<(), String> {
    let key = doc.get("unit_key").and_then(Json::as_str).unwrap_or("");
    let unit = doc.get("unit").ok_or_else(|| format!("{path}.unit: missing"))?;
    let expect = format!("{:016x}", swque_bench::sweep::fnv1a64(unit.to_string().as_bytes()));
    if key != expect {
        return Err(format!(
            "{path}.unit_key: {key:?} does not match the unit's content hash {expect:?}"
        ));
    }
    Ok(())
}

/// Validates one `swque-sweep-shard-v1` per-unit result file.
fn check_sweep_shard(doc: &Json) -> Result<String, String> {
    let keys = doc.keys();
    let expect = ["schema", "unit_key", "unit", "result"];
    if keys != expect {
        return Err(format!("$: top-level keys {keys:?}, expected {expect:?}"));
    }
    check_unit_key(doc, "$")?;
    check_sweep_unit(doc.get("unit").ok_or("unit: missing")?, "unit")?;
    check_sweep_result(doc.get("result").ok_or("result: missing")?, "result")?;
    Ok(format!(
        "sweep shard {}",
        doc.get("unit_key").and_then(Json::as_str).unwrap_or("?")
    ))
}

/// Validates one `swque-sweep-campaign-v1` merged campaign report.
fn check_sweep_campaign(doc: &Json) -> Result<String, String> {
    let keys = doc.keys();
    let expect = ["schema", "name", "units", "budget", "geomean_ipc", "marginals", "rows"];
    if keys != expect {
        return Err(format!("$: top-level keys {keys:?}, expected {expect:?}"));
    }
    let name = doc.get("name").and_then(Json::as_str).ok_or("name: not a string")?;
    let units = doc.get("units").and_then(Json::as_u64).ok_or("units: not an integer")?;
    doc.get("geomean_ipc").and_then(Json::as_f64).ok_or("geomean_ipc: not a number")?;
    let budget = doc.get("budget").ok_or("budget: missing")?;
    for key in ["warmup_insts", "max_insts"] {
        budget
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("budget.{key}: not an integer"))?;
    }
    let marginals =
        doc.get("marginals").and_then(Json::as_arr).ok_or("marginals: not an array")?;
    for (mi, m) in marginals.iter().enumerate() {
        if m.keys() != ["axis", "value", "units", "geomean_ipc"] {
            return Err(format!(
                "marginals[{mi}]: keys {:?}, expected axis/value/units/geomean_ipc",
                m.keys()
            ));
        }
        for key in ["axis", "value"] {
            m.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("marginals[{mi}].{key}: not a string"))?;
        }
        m.get("units")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("marginals[{mi}].units: not an integer"))?;
        m.get("geomean_ipc")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("marginals[{mi}].geomean_ipc: not a number"))?;
    }
    let rows = doc.get("rows").and_then(Json::as_arr).ok_or("rows: not an array")?;
    if rows.len() as u64 != units {
        return Err(format!("rows: {} row(s) vs declared units {units}", rows.len()));
    }
    for (ri, row) in rows.iter().enumerate() {
        if row.keys() != ["unit_key", "unit", "result"] {
            return Err(format!(
                "rows[{ri}]: keys {:?}, expected unit_key/unit/result",
                row.keys()
            ));
        }
        let path = format!("rows[{ri}]");
        check_unit_key(row, &path)?;
        check_sweep_unit(
            row.get("unit").ok_or_else(|| format!("{path}.unit: missing"))?,
            &format!("{path}.unit"),
        )?;
        check_sweep_result(
            row.get("result").ok_or_else(|| format!("{path}.result: missing"))?,
            &format!("{path}.result"),
        )?;
    }
    Ok(format!("sweep campaign {name:?}: {units} unit(s), {} marginal(s)", marginals.len()))
}

/// Validates one `swque-lint` analyzer report (`version` 1, 2, or 3; v2+
/// findings must carry a valid `rule_class`, v3 findings additionally the
/// `domain_from`/`domain_to`/`chain` string trio). `Err` carries a
/// diagnostic of the form `<json path>: <what is wrong>`.
fn check_lint_report(doc: &Json, version: u8) -> Result<String, String> {
    let keys = doc.keys();
    let expect = ["schema", "files_scanned", "suppressed", "status", "rules", "findings"];
    if keys != expect {
        return Err(format!("$: top-level keys {keys:?}, expected {expect:?}"));
    }
    for key in ["files_scanned", "suppressed"] {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{key}: not an integer"))?;
    }
    let status = doc.get("status").and_then(Json::as_str).unwrap_or("");
    if status != "ok" && status != "baseline-exceeded" {
        return Err(format!("status: {status:?}, expected \"ok\" or \"baseline-exceeded\""));
    }
    let rules = doc.get("rules").and_then(Json::as_arr).ok_or("rules: not an array")?;
    for (ri, r) in rules.iter().enumerate() {
        if r.keys() != ["rule", "count", "baseline"] {
            return Err(format!("rules[{ri}]: keys {:?}, expected rule/count/baseline", r.keys()));
        }
        r.get("rule")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("rules[{ri}].rule: not a string"))?;
        for key in ["count", "baseline"] {
            r.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("rules[{ri}].{key}: not an integer"))?;
        }
    }
    let findings = doc.get("findings").and_then(Json::as_arr).ok_or("findings: not an array")?;
    for (fi, f) in findings.iter().enumerate() {
        let want: &[&str] = match version {
            3.. => {
                &["rule", "rule_class", "file", "line", "col", "message", "domain_from",
                  "domain_to", "chain"]
            }
            2 => &["rule", "rule_class", "file", "line", "col", "message"],
            _ => &["rule", "file", "line", "col", "message"],
        };
        if f.keys() != want {
            return Err(format!("findings[{fi}]: keys {:?}, expected {want:?}", f.keys()));
        }
        for key in ["rule", "file", "message"] {
            f.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("findings[{fi}].{key}: not a string"))?;
        }
        if version >= 3 {
            for key in ["domain_from", "domain_to", "chain"] {
                f.get(key)
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("findings[{fi}].{key}: not a string"))?;
            }
        }
        if version >= 2 {
            let class = f.get("rule_class").and_then(Json::as_str).unwrap_or("");
            if !RULE_CLASSES.contains(&class) {
                return Err(format!(
                    "findings[{fi}].rule_class: {class:?}, expected one of {RULE_CLASSES:?}"
                ));
            }
        }
        for key in ["line", "col"] {
            f.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("findings[{fi}].{key}: not an integer"))?;
        }
    }
    Ok(format!(
        "lint v{version}: {status}, {} rule(s), {} finding(s)",
        rules.len(),
        findings.len()
    ))
}

/// The roles a requester-tagged result row may claim.
const REQUESTER_ROLES: [&str; 2] = ["measured", "aggressor"];

/// Validates one requester-tagged result row (multi-core experiments such
/// as `neighbor` emit one per core per scenario; a row is requester-tagged
/// iff it carries a `requester` key). The per-requester contention
/// counters must all be present and integer-typed so interference tooling
/// can aggregate them unconditionally.
fn check_requester_row(row: &Json, path: &str) -> Result<(), String> {
    for key in [
        "requester",
        "cycles",
        "retired",
        "llc_demand_misses",
        "dram_transfers",
        "arb_wait_cycles",
        "quota_stall_cycles",
    ] {
        row.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{path}.{key}: not an integer"))?;
    }
    row.get("kernel")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}.kernel: not a string"))?;
    row.get("ipc").and_then(Json::as_f64).ok_or_else(|| format!("{path}.ipc: not a number"))?;
    let role = row.get("role").and_then(Json::as_str).unwrap_or("");
    if !REQUESTER_ROLES.contains(&role) {
        return Err(format!("{path}.role: {role:?}, expected one of {REQUESTER_ROLES:?}"));
    }
    Ok(())
}

/// Validates one `swque-bench-v1` experiment report. `Err` carries a
/// diagnostic of the form `<json path>: <what is wrong>`.
fn check_bench_report(doc: &Json) -> Result<String, String> {
    let keys = doc.keys();
    let expect = ["schema", "experiment", "params", "tables", "rows", "traces"];
    if keys != expect {
        return Err(format!("$: top-level keys {keys:?}, expected {expect:?}"));
    }
    let experiment = doc
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("experiment: not a string")?;
    let params = doc.get("params").ok_or("params: missing")?;
    for key in ["warmup_insts", "max_insts"] {
        params
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("params.{key}: not an integer"))?;
    }
    let tables = doc.get("tables").and_then(Json::as_arr).ok_or("tables: not an array")?;
    for (ti, t) in tables.iter().enumerate() {
        if t.keys() != ["name", "header", "rows"] {
            return Err(format!("tables[{ti}]: keys {:?}, expected name/header/rows", t.keys()));
        }
        let width = t
            .get("header")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("tables[{ti}].header: not an array"))?
            .len();
        let rows = t
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("tables[{ti}].rows: not an array"))?;
        for (ri, row) in rows.iter().enumerate() {
            let cells = row
                .as_arr()
                .ok_or_else(|| format!("tables[{ti}].rows[{ri}]: not an array"))?;
            if cells.len() != width {
                return Err(format!(
                    "tables[{ti}].rows[{ri}]: width {} vs header width {width}",
                    cells.len()
                ));
            }
        }
    }
    let rows = doc.get("rows").and_then(Json::as_arr).ok_or("rows: not an array")?;
    for (ri, row) in rows.iter().enumerate() {
        if row.get("requester").is_some() {
            check_requester_row(row, &format!("rows[{ri}]"))?;
        }
    }
    let traces = doc.get("traces").and_then(Json::as_arr).ok_or("traces: not an array")?;
    for (ei, entry) in traces.iter().enumerate() {
        entry
            .get("program")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("traces[{ei}].program: missing or not a string"))?;
        let t = entry.get("trace").ok_or_else(|| format!("traces[{ei}].trace: missing"))?;
        let path = format!("traces[{ei}].trace");
        let ts = t.get("schema").and_then(Json::as_str).unwrap_or("");
        if ts != "swque-trace-v1" {
            return Err(format!("{path}.schema: {ts:?}, expected \"swque-trace-v1\""));
        }
        for key in ["events", "dropped", "switches", "circ_pc_intervals", "age_intervals"] {
            t.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}.{key}: not an integer"))?;
        }
        t.get("circ_pc_fraction")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}.circ_pc_fraction: not a number"))?;
        t.get("mode_strip")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}.mode_strip: not a string"))?;
        let intervals = t
            .get("intervals")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{path}.intervals: not an array"))?;
        for (ii, iv) in intervals.iter().enumerate() {
            let want = ["cycle", "retired", "mpki", "flpi", "mode", "instability", "switched"];
            if iv.keys() != want {
                return Err(format!(
                    "{path}.intervals[{ii}]: keys {:?}, expected {want:?}",
                    iv.keys()
                ));
            }
        }
        t.get("ipc")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{path}.ipc: not an array"))?;
    }
    Ok(format!(
        "{experiment}: {} table(s), {} row(s), {} trace(s)",
        tables.len(),
        doc.get("rows").and_then(Json::as_arr).map_or(0, |r| r.len()),
        traces.len(),
    ))
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: check_json <report.json>...");
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                failures += 1;
                continue;
            }
        };
        match Json::parse(&text) {
            Ok(doc) => match check_report(&doc) {
                Ok(desc) => println!("{path}: ok ({desc})"),
                Err(e) => {
                    eprintln!("{path}: schema violation at {e}");
                    failures += 1;
                }
            },
            Err(e) => {
                eprintln!("{path}: parse error: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("check_json: {failures} of {} file(s) failed", paths.len());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_bench::{Report, Table};

    /// A schema-valid report via the real writer.
    fn valid_doc() -> Json {
        let mut report = Report::new("unit");
        let mut table = Table::new(["a", "b"]);
        table.row(["1".to_string(), "2".to_string()]);
        report.add_table("t", &table);
        report.push_row(Json::obj([("x", Json::from(1u64))]));
        Json::parse(&report.to_json().to_string()).expect("writer output parses")
    }

    /// Replaces the member at `key` (top level) with `value`.
    fn with(doc: &Json, key: &str, value: Json) -> Json {
        let Json::Obj(pairs) = doc else { panic!("not an object") };
        Json::Obj(
            pairs
                .iter()
                .map(|(k, v)| {
                    (k.clone(), if k == key { value.clone() } else { v.clone() })
                })
                .collect(),
        )
    }

    #[test]
    fn accepts_writer_output() {
        let desc = check_report(&valid_doc()).expect("valid report");
        assert!(desc.contains("unit"), "description names the experiment: {desc}");
    }

    #[test]
    fn names_the_offending_table_row() {
        let doc = valid_doc();
        // Break the width of the only data row of the only table.
        let tables = Json::Arr(vec![Json::obj([
            ("name", Json::from("t")),
            ("header", Json::Arr(vec![Json::from("a"), Json::from("b")])),
            (
                "rows",
                Json::Arr(vec![
                    Json::Arr(vec![Json::from("1"), Json::from("2")]),
                    Json::Arr(vec![Json::from("only-one-cell")]),
                ]),
            ),
        ])]);
        let err = check_report(&with(&doc, "tables", tables)).unwrap_err();
        assert!(err.starts_with("tables[0].rows[1]:"), "path not named: {err}");
    }

    #[test]
    fn names_the_offending_param() {
        let doc = valid_doc();
        let params = Json::obj([
            ("warmup_insts", Json::from(1u64)),
            ("max_insts", Json::from("not-a-number")),
        ]);
        let err = check_report(&with(&doc, "params", params)).unwrap_err();
        assert!(err.starts_with("params.max_insts:"), "path not named: {err}");
    }

    #[test]
    fn names_the_offending_trace_field() {
        let doc = valid_doc();
        let trace = Json::obj([(
            "program",
            Json::from("k"),
        ), (
            "trace",
            Json::obj([
                ("schema", Json::from("swque-trace-v1")),
                ("events", Json::from("many")), // not an integer
            ]),
        )]);
        let err =
            check_report(&with(&doc, "traces", Json::Arr(vec![trace]))).unwrap_err();
        assert!(err.starts_with("traces[0].trace.events:"), "path not named: {err}");
    }

    /// A requester-tagged row shaped like the `neighbor` binary's output.
    fn requester_row() -> Json {
        Json::obj([
            ("aggressors", Json::from(1u64)),
            ("requester", Json::from(0u64)),
            ("role", Json::from("measured")),
            ("kernel", Json::from("omnetpp_like")),
            ("cycles", Json::from(100u64)),
            ("retired", Json::from(200u64)),
            ("ipc", Json::from(2.0)),
            ("llc_demand_misses", Json::from(5u64)),
            ("dram_transfers", Json::from(6u64)),
            ("arb_wait_cycles", Json::from(7u64)),
            ("quota_stall_cycles", Json::from(8u64)),
        ])
    }

    #[test]
    fn accepts_requester_tagged_rows() {
        let doc = with(&valid_doc(), "rows", Json::Arr(vec![requester_row()]));
        check_report(&doc).expect("requester-tagged row validates");
    }

    #[test]
    fn names_the_offending_requester_field() {
        // A missing contention counter is named precisely.
        let Json::Obj(pairs) = requester_row() else { panic!("row is an object") };
        let stripped: Vec<_> =
            pairs.iter().filter(|(k, _)| k != "arb_wait_cycles").cloned().collect();
        let doc = with(&valid_doc(), "rows", Json::Arr(vec![Json::Obj(stripped)]));
        let err = check_report(&doc).unwrap_err();
        assert!(err.starts_with("rows[0].arb_wait_cycles:"), "{err}");
        // A bogus role is rejected.
        let bad_role = with(&requester_row(), "role", Json::from("bystander"));
        let doc = with(&valid_doc(), "rows", Json::Arr(vec![bad_role]));
        let err = check_report(&doc).unwrap_err();
        assert!(err.starts_with("rows[0].role:"), "{err}");
        // Untagged rows (no `requester` key) stay schema-free.
        let doc = with(
            &valid_doc(),
            "rows",
            Json::Arr(vec![Json::obj([("x", Json::from(1u64))])]),
        );
        check_report(&doc).expect("untagged rows are unconstrained");
    }

    #[test]
    fn rejects_wrong_schema_and_missing_keys() {
        let doc = valid_doc();
        let err = check_report(&with(&doc, "schema", Json::from("bogus-v0"))).unwrap_err();
        assert!(err.starts_with("schema:"), "{err}");
        let err = check_report(&Json::obj([("schema", Json::from(BENCH_SCHEMA))])).unwrap_err();
        assert!(err.starts_with("$:"), "{err}");
    }

    /// A schema-valid lint report via the real `swque-lint` writer.
    fn valid_lint_doc() -> Json {
        use swque_lint::baseline::Baseline;
        use swque_lint::rules::scan_rust;
        let (findings, suppressed) = scan_rust(
            "crates/core/src/fixture.rs",
            "fn t() { let _ = std::time::Instant::now(); }\n",
        );
        let scan = swque_lint::Scan { findings, suppressed, files_scanned: 1 };
        let counts = scan.counts();
        let doc = swque_lint::report::report_json(&scan, &counts, &Baseline::default());
        Json::parse(&doc.to_string()).expect("lint writer output parses")
    }

    /// A minimal hand-written legacy v1 report (findings lack rule_class).
    fn v1_lint_doc() -> Json {
        Json::parse(
            r#"{"schema":"swque-lint-v1","files_scanned":1,"suppressed":0,
                "status":"baseline-exceeded",
                "rules":[{"rule":"wall-clock","count":1,"baseline":0}],
                "findings":[{"rule":"wall-clock","file":"crates/core/src/x.rs",
                             "line":1,"col":18,"message":"m"}]}"#,
        )
        .expect("literal parses")
    }

    /// A minimal hand-written legacy v2 report (findings lack the
    /// domain_from/domain_to/chain trio).
    fn v2_lint_doc() -> Json {
        Json::parse(
            r#"{"schema":"swque-lint-v2","files_scanned":1,"suppressed":0,
                "status":"baseline-exceeded",
                "rules":[{"rule":"wall-clock","count":1,"baseline":0}],
                "findings":[{"rule":"wall-clock","rule_class":"token",
                             "file":"crates/core/src/x.rs",
                             "line":1,"col":18,"message":"m"}]}"#,
        )
        .expect("literal parses")
    }

    #[test]
    fn schema_literal_matches_the_lint_crate() {
        assert_eq!(LINT_SCHEMA, swque_lint::report::LINT_SCHEMA);
        assert_eq!(LINT_SCHEMA_V2, swque_lint::report::LINT_SCHEMA_V2);
        assert_eq!(LINT_SCHEMA_V1, swque_lint::report::LINT_SCHEMA_V1);
    }

    #[test]
    fn accepts_lint_writer_output() {
        let desc = check_report(&valid_lint_doc()).expect("valid lint report");
        assert!(desc.contains("baseline-exceeded"), "unbaselined finding shows: {desc}");
        assert!(desc.contains("1 finding(s)"), "{desc}");
        assert!(desc.contains("lint v3"), "writer output is v3: {desc}");
    }

    #[test]
    fn accepts_legacy_lint_reports() {
        let desc = check_report(&v1_lint_doc()).expect("valid legacy v1 report");
        assert!(desc.contains("lint v1"), "{desc}");
        let desc = check_report(&v2_lint_doc()).expect("valid legacy v2 report");
        assert!(desc.contains("lint v2"), "{desc}");
    }

    #[test]
    fn lint_migration_round_trips_through_the_validator() {
        for old in [v1_lint_doc(), v2_lint_doc()] {
            let v3 = swque_lint::report::migrate_report(&old).expect("migrates");
            let desc = check_report(&v3).expect("migrated report validates as v3");
            assert!(desc.contains("lint v3"), "{desc}");
            // Same counts either way; only the schema and finding keys grow.
            assert_eq!(v3.get("findings").unwrap().as_arr().unwrap().len(), 1);
            let f = &v3.get("findings").unwrap().as_arr().unwrap()[0];
            assert_eq!(f.get("rule_class").and_then(Json::as_str), Some("token"));
            assert_eq!(f.get("domain_from").and_then(Json::as_str), Some(""));
            assert_eq!(f.get("chain").and_then(Json::as_str), Some(""));
        }
    }

    #[test]
    fn rejects_malformed_lint_findings() {
        let doc = valid_lint_doc();
        // A v3 finding without the domain trio is a key-set violation.
        let stripped = Json::Arr(vec![Json::obj([
            ("rule", Json::from("wall-clock")),
            ("rule_class", Json::from("token")),
            ("file", Json::from("x.rs")),
            ("line", Json::from(1u64)),
            ("col", Json::from(1u64)),
            ("message", Json::from("m")),
        ])]);
        let err = check_report(&with(&doc, "findings", stripped)).unwrap_err();
        assert!(err.starts_with("findings[0]:"), "{err}");
        // A present-but-bogus class is named precisely.
        let bogus = Json::Arr(vec![Json::obj([
            ("rule", Json::from("wall-clock")),
            ("rule_class", Json::from("vibes")),
            ("file", Json::from("x.rs")),
            ("line", Json::from(1u64)),
            ("col", Json::from(1u64)),
            ("message", Json::from("m")),
            ("domain_from", Json::from("")),
            ("domain_to", Json::from("")),
            ("chain", Json::from("")),
        ])]);
        let err = check_report(&with(&doc, "findings", bogus)).unwrap_err();
        assert!(err.starts_with("findings[0].rule_class:"), "{err}");
        // A non-string domain key is named precisely too.
        let non_string = Json::Arr(vec![Json::obj([
            ("rule", Json::from("wall-clock")),
            ("rule_class", Json::from("token")),
            ("file", Json::from("x.rs")),
            ("line", Json::from(1u64)),
            ("col", Json::from(1u64)),
            ("message", Json::from("m")),
            ("domain_from", Json::from(1u64)),
            ("domain_to", Json::from("")),
            ("chain", Json::from("")),
        ])]);
        let err = check_report(&with(&doc, "findings", non_string)).unwrap_err();
        assert!(err.starts_with("findings[0].domain_from:"), "{err}");
    }

    /// A schema-valid shard document shaped like the real orchestrator's
    /// output (hand-built so the test needs no simulation run; the
    /// `sweep` integration test covers the real writer).
    fn valid_shard_doc() -> Json {
        let unit = Json::obj([
            ("kind", Json::from("SWQUE")),
            ("model", Json::from("medium")),
            ("mpki_threshold", Json::Null),
            ("flpi_threshold", Json::from(0.04)),
            ("seed", Json::from(3u64)),
            ("kernel", Json::from("mcf_like")),
            (
                "budget",
                Json::obj([
                    ("warmup_insts", Json::from(1000u64)),
                    ("max_insts", Json::from(4000u64)),
                    ("scale", Json::Null),
                ]),
            ),
        ]);
        let key = format!(
            "{:016x}",
            swque_bench::sweep::fnv1a64(unit.to_string().as_bytes())
        );
        Json::obj([
            ("schema", Json::from(SHARD_SCHEMA)),
            ("unit_key", Json::from(key)),
            ("unit", unit),
            (
                "result",
                Json::obj([
                    ("cycles", Json::from(100u64)),
                    ("retired", Json::from(200u64)),
                    ("ipc", Json::from(2.0)),
                    ("mpki", Json::from(1.5)),
                    ("flpi", Json::from(0.1)),
                    ("mode_switches", Json::from(4u64)),
                ]),
            ),
        ])
    }

    #[test]
    fn accepts_valid_sweep_shard() {
        let desc = check_report(&valid_shard_doc()).expect("valid shard");
        assert!(desc.contains("sweep shard"), "{desc}");
    }

    #[test]
    fn rejects_shard_with_tampered_unit_key() {
        let doc = with(&valid_shard_doc(), "unit_key", Json::from("0000000000000000"));
        let err = check_report(&doc).unwrap_err();
        assert!(err.contains("content hash"), "{err}");
    }

    #[test]
    fn rejects_shard_whose_unit_was_edited_after_hashing() {
        // Mutate the embedded unit but keep the old key: the recomputed
        // digest no longer matches.
        let doc = valid_shard_doc();
        let Some(unit) = doc.get("unit") else { panic!("unit present") };
        let edited = with(unit, "seed", Json::from(4u64));
        let err = check_report(&with(&doc, "unit", edited)).unwrap_err();
        assert!(err.contains("content hash"), "{err}");
    }

    #[test]
    fn validates_campaign_reports_and_row_counts() {
        let shard = valid_shard_doc();
        let row = Json::obj([
            ("unit_key", shard.get("unit_key").cloned().unwrap_or(Json::Null)),
            ("unit", shard.get("unit").cloned().unwrap_or(Json::Null)),
            ("result", shard.get("result").cloned().unwrap_or(Json::Null)),
        ]);
        let campaign = Json::obj([
            ("schema", Json::from(CAMPAIGN_SCHEMA)),
            ("name", Json::from("t")),
            ("units", Json::from(1u64)),
            (
                "budget",
                Json::obj([
                    ("warmup_insts", Json::from(1000u64)),
                    ("max_insts", Json::from(4000u64)),
                    ("scale", Json::Null),
                ]),
            ),
            ("geomean_ipc", Json::from(2.0)),
            ("marginals", Json::Arr(vec![])),
            ("rows", Json::Arr(vec![row])),
        ]);
        let desc = check_report(&campaign).expect("valid campaign");
        assert!(desc.contains("1 unit(s)"), "{desc}");
        // Declared unit count must match the row count.
        let err = check_report(&with(&campaign, "units", Json::from(2u64))).unwrap_err();
        assert!(err.starts_with("rows:"), "{err}");
    }

    #[test]
    fn validates_manifests_through_the_real_parser() {
        let doc = Json::parse(
            r#"{"schema":"swque-sweep-manifest-v1","name":"m",
                "budget":{"warmup_insts":10,"max_insts":20},
                "axes":{"kinds":["AGE","SWQUE"]}}"#,
        )
        .expect("literal parses");
        let desc = check_report(&doc).expect("valid manifest");
        assert!(desc.contains("sweep manifest"), "{desc}");
        let err = check_report(&with(
            &doc,
            "axes",
            Json::obj([("kinds", Json::Arr(vec![Json::from("BOGUS")]))]),
        ))
        .unwrap_err();
        assert!(err.contains("axes.kinds"), "{err}");
    }

    #[test]
    fn names_the_offending_lint_field() {
        let doc = valid_lint_doc();
        let err = check_report(&with(&doc, "status", Json::from("maybe"))).unwrap_err();
        assert!(err.starts_with("status:"), "{err}");
        let err = check_report(&with(&doc, "rules", Json::Arr(vec![Json::obj([
            ("rule", Json::from("no-unsafe")),
            ("count", Json::from("zero")),
            ("baseline", Json::from(0u64)),
        ])])))
        .unwrap_err();
        assert!(err.starts_with("rules[0].count:"), "{err}");
        let err = check_report(&with(&doc, "findings", Json::Arr(vec![Json::obj([
            ("rule", Json::from("wall-clock")),
            ("file", Json::from("x.rs")),
            ("line", Json::from(1u64)),
        ])])))
        .unwrap_err();
        assert!(err.starts_with("findings[0]:"), "{err}");
    }

    /// A schema-valid model-checker report via the real `swque-mc` writer.
    fn valid_mc_doc(replay: &str) -> Json {
        use swque_mc::{McRun, McViolation};
        let run = McRun {
            target: "CIRC-PC".to_string(),
            capacity: 3,
            width: 2,
            depth: 24,
            inject: "circ-pc-no-correct".to_string(),
            states: 412,
            deepest: 11,
            frontier: 0,
            closed: true,
            violations: vec![McViolation {
                property: "pc-age-ordered".to_string(),
                detail: "granted seq 1001 after younger seq 1002".to_string(),
                replay: replay.to_string(),
            }],
        };
        swque_mc::report(true, &[run])
    }

    const MC_REPLAY: &str = "swque-mc-replay-v1 kind=CIRC-PC cap=3 width=2 \
                             inject=circ-pc-no-correct expect=pc-age-ordered events=d-.-,s2";

    #[test]
    fn mc_schema_literal_matches_the_mc_crate() {
        assert_eq!(MC_SCHEMA, swque_mc::MC_SCHEMA);
    }

    #[test]
    fn accepts_mc_writer_output_and_round_trips() {
        let doc = valid_mc_doc(MC_REPLAY);
        let desc = check_report(&doc).expect("valid mc report");
        assert!(desc.contains("1 run(s)"), "{desc}");
        assert!(desc.contains("412 state(s)"), "{desc}");
        assert!(desc.contains("1 violation(s)"), "{desc}");
        // The compact rendering survives the in-tree parser byte-for-byte.
        let text = doc.to_string();
        let back = Json::parse(&text).expect("round trip");
        assert_eq!(back.to_string(), text);
        check_report(&back).expect("parsed copy still validates");
    }

    #[test]
    fn rejects_mc_cross_field_inconsistencies() {
        let doc = valid_mc_doc(MC_REPLAY);
        // Declared totals must match the per-run sums.
        let err = check_report(&with(&doc, "total_states", Json::from(9u64))).unwrap_err();
        assert!(err.starts_with("total_states:"), "{err}");
        let err = check_report(&with(&doc, "violations", Json::from(0u64))).unwrap_err();
        assert!(err.starts_with("violations:"), "{err}");
        // `closed` must agree with `frontier`.
        let text = doc.to_string().replace("\"frontier\":0", "\"frontier\":7");
        let err = check_report(&Json::parse(&text).unwrap()).unwrap_err();
        assert!(err.contains("inconsistent with frontier=7"), "{err}");
    }

    #[test]
    fn rejects_mc_replays_that_do_not_match_their_run() {
        // Replay fails the grammar outright (assembled with `format!` so
        // the broken trace is invisible to the `mc-replay` lint rule).
        let magic = swque_core::replay::REPLAY_MAGIC;
        let bad = valid_mc_doc(&format!("{magic} kind=CIRC-PC cap=3"));
        let err = check_report(&bad).unwrap_err();
        assert!(err.starts_with("runs[0].violations[0].replay:"), "{err}");
        // Replay parses but names a different target than the run.
        let wrong_target = valid_mc_doc(
            "swque-mc-replay-v1 kind=SHIFT cap=3 width=2 inject=circ-pc-no-correct \
             expect=pc-age-ordered events=d-.-,s2",
        );
        let err = check_report(&wrong_target).unwrap_err();
        assert!(err.contains("targets SHIFT"), "{err}");
        // Replay's expect clause disagrees with the violated property.
        let wrong_expect = valid_mc_doc(
            "swque-mc-replay-v1 kind=CIRC-PC cap=3 width=2 inject=circ-pc-no-correct \
             expect=oldest-first events=d-.-,s2",
        );
        let err = check_report(&wrong_expect).unwrap_err();
        assert!(err.contains("violated property"), "{err}");
    }
}
