//! Schema validator for structured tool output: parses each file named on
//! the command line with the in-tree JSON parser and checks its declared
//! schema — `swque-bench-v1` experiment reports (including the nested
//! `swque-trace-v1` shape of any embedded trace digests) and
//! `swque-lint-v2` analyzer reports (the legacy `swque-lint-v1` shape,
//! whose findings lack `rule_class`, is still accepted). Used by
//! `scripts/verify.sh` as the JSON smoke step for both producers.
//!
//! Diagnostics name the offending JSON path (`tables[2].rows[5]`,
//! `traces[0].trace.events`, …) so a broken writer can be located without
//! diffing documents by eye. All files are checked even after a failure;
//! the exit code is non-zero if *any* file was unreadable, unparseable, or
//! schema-violating.

use std::process::ExitCode;

use swque_bench::BENCH_SCHEMA;
use swque_trace::Json;

/// Schema string of current `swque-lint` analyzer reports. Kept as a
/// literal here because the lint crate is a dev-dependency only; the unit
/// tests assert it matches `swque_lint::report::LINT_SCHEMA`.
const LINT_SCHEMA: &str = "swque-lint-v2";

/// The legacy analyzer report schema (findings without `rule_class`),
/// still accepted so archived reports keep validating.
const LINT_SCHEMA_V1: &str = "swque-lint-v1";

/// The analysis layers a v2 finding may name.
const RULE_CLASSES: [&str; 3] = ["token", "ast", "reachability"];

/// Dispatches on the document's declared `schema` field.
fn check_report(doc: &Json) -> Result<String, String> {
    match doc.get("schema").and_then(Json::as_str).unwrap_or("") {
        BENCH_SCHEMA => check_bench_report(doc),
        LINT_SCHEMA => check_lint_report(doc, 2),
        LINT_SCHEMA_V1 => check_lint_report(doc, 1),
        other => Err(format!(
            "schema: {other:?}, expected {BENCH_SCHEMA:?}, {LINT_SCHEMA:?}, or {LINT_SCHEMA_V1:?}"
        )),
    }
}

/// Validates one `swque-lint` analyzer report (`version` 1 or 2; v2
/// findings must carry a valid `rule_class`). `Err` carries a diagnostic
/// of the form `<json path>: <what is wrong>`.
fn check_lint_report(doc: &Json, version: u8) -> Result<String, String> {
    let keys = doc.keys();
    let expect = ["schema", "files_scanned", "suppressed", "status", "rules", "findings"];
    if keys != expect {
        return Err(format!("$: top-level keys {keys:?}, expected {expect:?}"));
    }
    for key in ["files_scanned", "suppressed"] {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{key}: not an integer"))?;
    }
    let status = doc.get("status").and_then(Json::as_str).unwrap_or("");
    if status != "ok" && status != "baseline-exceeded" {
        return Err(format!("status: {status:?}, expected \"ok\" or \"baseline-exceeded\""));
    }
    let rules = doc.get("rules").and_then(Json::as_arr).ok_or("rules: not an array")?;
    for (ri, r) in rules.iter().enumerate() {
        if r.keys() != ["rule", "count", "baseline"] {
            return Err(format!("rules[{ri}]: keys {:?}, expected rule/count/baseline", r.keys()));
        }
        r.get("rule")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("rules[{ri}].rule: not a string"))?;
        for key in ["count", "baseline"] {
            r.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("rules[{ri}].{key}: not an integer"))?;
        }
    }
    let findings = doc.get("findings").and_then(Json::as_arr).ok_or("findings: not an array")?;
    for (fi, f) in findings.iter().enumerate() {
        let want: &[&str] = if version >= 2 {
            &["rule", "rule_class", "file", "line", "col", "message"]
        } else {
            &["rule", "file", "line", "col", "message"]
        };
        if f.keys() != want {
            return Err(format!("findings[{fi}]: keys {:?}, expected {want:?}", f.keys()));
        }
        for key in ["rule", "file", "message"] {
            f.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("findings[{fi}].{key}: not a string"))?;
        }
        if version >= 2 {
            let class = f.get("rule_class").and_then(Json::as_str).unwrap_or("");
            if !RULE_CLASSES.contains(&class) {
                return Err(format!(
                    "findings[{fi}].rule_class: {class:?}, expected one of {RULE_CLASSES:?}"
                ));
            }
        }
        for key in ["line", "col"] {
            f.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("findings[{fi}].{key}: not an integer"))?;
        }
    }
    Ok(format!(
        "lint v{version}: {status}, {} rule(s), {} finding(s)",
        rules.len(),
        findings.len()
    ))
}

/// Validates one `swque-bench-v1` experiment report. `Err` carries a
/// diagnostic of the form `<json path>: <what is wrong>`.
fn check_bench_report(doc: &Json) -> Result<String, String> {
    let keys = doc.keys();
    let expect = ["schema", "experiment", "params", "tables", "rows", "traces"];
    if keys != expect {
        return Err(format!("$: top-level keys {keys:?}, expected {expect:?}"));
    }
    let experiment = doc
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("experiment: not a string")?;
    let params = doc.get("params").ok_or("params: missing")?;
    for key in ["warmup_insts", "max_insts"] {
        params
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("params.{key}: not an integer"))?;
    }
    let tables = doc.get("tables").and_then(Json::as_arr).ok_or("tables: not an array")?;
    for (ti, t) in tables.iter().enumerate() {
        if t.keys() != ["name", "header", "rows"] {
            return Err(format!("tables[{ti}]: keys {:?}, expected name/header/rows", t.keys()));
        }
        let width = t
            .get("header")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("tables[{ti}].header: not an array"))?
            .len();
        let rows = t
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("tables[{ti}].rows: not an array"))?;
        for (ri, row) in rows.iter().enumerate() {
            let cells = row
                .as_arr()
                .ok_or_else(|| format!("tables[{ti}].rows[{ri}]: not an array"))?;
            if cells.len() != width {
                return Err(format!(
                    "tables[{ti}].rows[{ri}]: width {} vs header width {width}",
                    cells.len()
                ));
            }
        }
    }
    doc.get("rows").and_then(Json::as_arr).ok_or("rows: not an array")?;
    let traces = doc.get("traces").and_then(Json::as_arr).ok_or("traces: not an array")?;
    for (ei, entry) in traces.iter().enumerate() {
        entry
            .get("program")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("traces[{ei}].program: missing or not a string"))?;
        let t = entry.get("trace").ok_or_else(|| format!("traces[{ei}].trace: missing"))?;
        let path = format!("traces[{ei}].trace");
        let ts = t.get("schema").and_then(Json::as_str).unwrap_or("");
        if ts != "swque-trace-v1" {
            return Err(format!("{path}.schema: {ts:?}, expected \"swque-trace-v1\""));
        }
        for key in ["events", "dropped", "switches", "circ_pc_intervals", "age_intervals"] {
            t.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}.{key}: not an integer"))?;
        }
        t.get("circ_pc_fraction")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}.circ_pc_fraction: not a number"))?;
        t.get("mode_strip")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}.mode_strip: not a string"))?;
        let intervals = t
            .get("intervals")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{path}.intervals: not an array"))?;
        for (ii, iv) in intervals.iter().enumerate() {
            let want = ["cycle", "retired", "mpki", "flpi", "mode", "instability", "switched"];
            if iv.keys() != want {
                return Err(format!(
                    "{path}.intervals[{ii}]: keys {:?}, expected {want:?}",
                    iv.keys()
                ));
            }
        }
        t.get("ipc")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{path}.ipc: not an array"))?;
    }
    Ok(format!(
        "{experiment}: {} table(s), {} row(s), {} trace(s)",
        tables.len(),
        doc.get("rows").and_then(Json::as_arr).map_or(0, |r| r.len()),
        traces.len(),
    ))
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: check_json <report.json>...");
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                failures += 1;
                continue;
            }
        };
        match Json::parse(&text) {
            Ok(doc) => match check_report(&doc) {
                Ok(desc) => println!("{path}: ok ({desc})"),
                Err(e) => {
                    eprintln!("{path}: schema violation at {e}");
                    failures += 1;
                }
            },
            Err(e) => {
                eprintln!("{path}: parse error: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("check_json: {failures} of {} file(s) failed", paths.len());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_bench::{Report, Table};

    /// A schema-valid report via the real writer.
    fn valid_doc() -> Json {
        let mut report = Report::new("unit");
        let mut table = Table::new(["a", "b"]);
        table.row(["1".to_string(), "2".to_string()]);
        report.add_table("t", &table);
        report.push_row(Json::obj([("x", Json::from(1u64))]));
        Json::parse(&report.to_json().to_string()).expect("writer output parses")
    }

    /// Replaces the member at `key` (top level) with `value`.
    fn with(doc: &Json, key: &str, value: Json) -> Json {
        let Json::Obj(pairs) = doc else { panic!("not an object") };
        Json::Obj(
            pairs
                .iter()
                .map(|(k, v)| {
                    (k.clone(), if k == key { value.clone() } else { v.clone() })
                })
                .collect(),
        )
    }

    #[test]
    fn accepts_writer_output() {
        let desc = check_report(&valid_doc()).expect("valid report");
        assert!(desc.contains("unit"), "description names the experiment: {desc}");
    }

    #[test]
    fn names_the_offending_table_row() {
        let doc = valid_doc();
        // Break the width of the only data row of the only table.
        let tables = Json::Arr(vec![Json::obj([
            ("name", Json::from("t")),
            ("header", Json::Arr(vec![Json::from("a"), Json::from("b")])),
            (
                "rows",
                Json::Arr(vec![
                    Json::Arr(vec![Json::from("1"), Json::from("2")]),
                    Json::Arr(vec![Json::from("only-one-cell")]),
                ]),
            ),
        ])]);
        let err = check_report(&with(&doc, "tables", tables)).unwrap_err();
        assert!(err.starts_with("tables[0].rows[1]:"), "path not named: {err}");
    }

    #[test]
    fn names_the_offending_param() {
        let doc = valid_doc();
        let params = Json::obj([
            ("warmup_insts", Json::from(1u64)),
            ("max_insts", Json::from("not-a-number")),
        ]);
        let err = check_report(&with(&doc, "params", params)).unwrap_err();
        assert!(err.starts_with("params.max_insts:"), "path not named: {err}");
    }

    #[test]
    fn names_the_offending_trace_field() {
        let doc = valid_doc();
        let trace = Json::obj([(
            "program",
            Json::from("k"),
        ), (
            "trace",
            Json::obj([
                ("schema", Json::from("swque-trace-v1")),
                ("events", Json::from("many")), // not an integer
            ]),
        )]);
        let err =
            check_report(&with(&doc, "traces", Json::Arr(vec![trace]))).unwrap_err();
        assert!(err.starts_with("traces[0].trace.events:"), "path not named: {err}");
    }

    #[test]
    fn rejects_wrong_schema_and_missing_keys() {
        let doc = valid_doc();
        let err = check_report(&with(&doc, "schema", Json::from("bogus-v0"))).unwrap_err();
        assert!(err.starts_with("schema:"), "{err}");
        let err = check_report(&Json::obj([("schema", Json::from(BENCH_SCHEMA))])).unwrap_err();
        assert!(err.starts_with("$:"), "{err}");
    }

    /// A schema-valid lint report via the real `swque-lint` writer.
    fn valid_lint_doc() -> Json {
        use swque_lint::baseline::Baseline;
        use swque_lint::rules::scan_rust;
        let (findings, suppressed) = scan_rust(
            "crates/core/src/fixture.rs",
            "fn t() { let _ = std::time::Instant::now(); }\n",
        );
        let scan = swque_lint::Scan { findings, suppressed, files_scanned: 1 };
        let counts = scan.counts();
        let doc = swque_lint::report::report_json(&scan, &counts, &Baseline::default());
        Json::parse(&doc.to_string()).expect("lint writer output parses")
    }

    /// A minimal hand-written legacy v1 report (findings lack rule_class).
    fn v1_lint_doc() -> Json {
        Json::parse(
            r#"{"schema":"swque-lint-v1","files_scanned":1,"suppressed":0,
                "status":"baseline-exceeded",
                "rules":[{"rule":"wall-clock","count":1,"baseline":0}],
                "findings":[{"rule":"wall-clock","file":"crates/core/src/x.rs",
                             "line":1,"col":18,"message":"m"}]}"#,
        )
        .expect("literal parses")
    }

    #[test]
    fn schema_literal_matches_the_lint_crate() {
        assert_eq!(LINT_SCHEMA, swque_lint::report::LINT_SCHEMA);
        assert_eq!(LINT_SCHEMA_V1, swque_lint::report::LINT_SCHEMA_V1);
    }

    #[test]
    fn accepts_lint_writer_output() {
        let desc = check_report(&valid_lint_doc()).expect("valid lint report");
        assert!(desc.contains("baseline-exceeded"), "unbaselined finding shows: {desc}");
        assert!(desc.contains("1 finding(s)"), "{desc}");
        assert!(desc.contains("lint v2"), "writer output is v2: {desc}");
    }

    #[test]
    fn accepts_legacy_v1_reports() {
        let desc = check_report(&v1_lint_doc()).expect("valid legacy report");
        assert!(desc.contains("lint v1"), "{desc}");
    }

    #[test]
    fn v1_migration_round_trips_through_the_validator() {
        let v1 = v1_lint_doc();
        let v2 = swque_lint::report::migrate_report(&v1).expect("migrates");
        let desc = check_report(&v2).expect("migrated report validates as v2");
        assert!(desc.contains("lint v2"), "{desc}");
        // Same counts either way; only the schema and rule_class differ.
        assert_eq!(v2.get("findings").unwrap().as_arr().unwrap().len(), 1);
        let f = &v2.get("findings").unwrap().as_arr().unwrap()[0];
        assert_eq!(f.get("rule_class").and_then(Json::as_str), Some("token"));
    }

    #[test]
    fn rejects_v2_finding_without_rule_class() {
        let doc = valid_lint_doc();
        let stripped = Json::Arr(vec![Json::obj([
            ("rule", Json::from("wall-clock")),
            ("file", Json::from("x.rs")),
            ("line", Json::from(1u64)),
            ("col", Json::from(1u64)),
            ("message", Json::from("m")),
        ])]);
        let err = check_report(&with(&doc, "findings", stripped)).unwrap_err();
        assert!(err.starts_with("findings[0]:"), "{err}");
        // A present-but-bogus class is named precisely.
        let bogus = Json::Arr(vec![Json::obj([
            ("rule", Json::from("wall-clock")),
            ("rule_class", Json::from("vibes")),
            ("file", Json::from("x.rs")),
            ("line", Json::from(1u64)),
            ("col", Json::from(1u64)),
            ("message", Json::from("m")),
        ])]);
        let err = check_report(&with(&doc, "findings", bogus)).unwrap_err();
        assert!(err.starts_with("findings[0].rule_class:"), "{err}");
    }

    #[test]
    fn names_the_offending_lint_field() {
        let doc = valid_lint_doc();
        let err = check_report(&with(&doc, "status", Json::from("maybe"))).unwrap_err();
        assert!(err.starts_with("status:"), "{err}");
        let err = check_report(&with(&doc, "rules", Json::Arr(vec![Json::obj([
            ("rule", Json::from("no-unsafe")),
            ("count", Json::from("zero")),
            ("baseline", Json::from(0u64)),
        ])])))
        .unwrap_err();
        assert!(err.starts_with("rules[0].count:"), "{err}");
        let err = check_report(&with(&doc, "findings", Json::Arr(vec![Json::obj([
            ("rule", Json::from("wall-clock")),
            ("file", Json::from("x.rs")),
            ("line", Json::from(1u64)),
        ])])))
        .unwrap_err();
        assert!(err.starts_with("findings[0]:"), "{err}");
    }
}
