//! Figure 12: IQ energy consumption of SWQUE relative to the idealized
//! shifting queue (I-SHIFT), split into static/dynamic × basic/SWQUE-
//! specific, aggregated over the whole suite (medium model).

use swque_bench::{run_suite, Report, RunSpec, Table};
use swque_circuit::energy::{iq_energy, EnergyBreakdown};
use swque_circuit::IqGeometry;
use swque_core::IqKind;

fn main() {
    let specs = vec![RunSpec::medium(IqKind::Shift), RunSpec::medium(IqKind::Swque)];
    let rows = run_suite(&specs);
    let g = IqGeometry::medium();

    let mut ishift = EnergyBreakdown::default();
    let mut swque = EnergyBreakdown::default();
    for row in &rows {
        let a = iq_energy(&row.results[0], &g, false);
        let b = iq_energy(&row.results[1], &g, true);
        ishift.static_basic += a.static_basic;
        ishift.dynamic_basic += a.dynamic_basic;
        swque.static_basic += b.static_basic;
        swque.dynamic_basic += b.dynamic_basic;
        swque.static_swque += b.static_swque;
        swque.dynamic_swque += b.dynamic_swque;
    }

    let base = ishift.total();
    let mut table = Table::new(["component", "I-SHIFT", "SWQUE"]);
    table.row([
        "static (basic)".to_string(),
        format!("{:.3}", ishift.static_basic / base),
        format!("{:.3}", swque.static_basic / base),
    ]);
    table.row([
        "dynamic (basic)".to_string(),
        format!("{:.3}", ishift.dynamic_basic / base),
        format!("{:.3}", swque.dynamic_basic / base),
    ]);
    table.row([
        "static (SWQUE-specific)".to_string(),
        "-".to_string(),
        format!("{:.4}", swque.static_swque / base),
    ]);
    table.row([
        "dynamic (SWQUE-specific)".to_string(),
        "-".to_string(),
        format!("{:.4}", swque.dynamic_swque / base),
    ]);
    table.row([
        "total".to_string(),
        "1.000".to_string(),
        format!("{:.3}", swque.relative_to(&ishift)),
    ]);
    println!("Figure 12: IQ energy relative to I-SHIFT (suite aggregate, medium)");
    println!("(paper: SWQUE totals only ~0.5% above I-SHIFT; the SWQUE-specific");
    println!(" slices are nearly invisible)\n");
    println!("{table}");
    Report::new("fig12").add_table("energy", &table).finish();
}
