//! Ablations of SWQUE's design choices, each tied to a claim the paper
//! makes in prose:
//!
//! * §3.2.2: "This AGE-favoring policy achieves better performance than
//!   the CIRC-favoring policy" — toggle `SwqueParams::age_favoring`.
//! * §3.2.3: the instability counter exists to stop mode oscillation —
//!   toggle `SwqueParams::stabilize`.
//! * Table 3's switch interval (10k instructions) — sweep it.
//! * The FLPI region size (unspecified in the paper) — sweep the fraction.

use swque_bench::{geomean, harness, Report, Table};
use swque_core::IqKind;
use swque_cpu::{Core, CoreConfig};
use swque_workloads::suite;

fn run_suite_with(configure: &dyn Fn(&mut CoreConfig)) -> f64 {
    let mut ratios = Vec::new();
    for kernel in suite::all() {
        let program = kernel.build();
        let mut config = CoreConfig::medium();
        configure(&mut config);
        let mut core = Core::new(config, IqKind::Swque, &program);
        let warm = core.run(harness::default_warmup());
        let r = core.run(harness::default_warmup() + harness::default_insts()).delta(&warm);
        ratios.push(r.ipc());
    }
    geomean(&ratios)
}

fn main() {
    let baseline = run_suite_with(&|_| {});
    let mut t = Table::new(["ablation", "GM IPC", "vs default"]);
    let mut row = |name: &str, ipc: f64| {
        println!("  measured: {name}");
        t.row([name.to_string(), format!("{ipc:.3}"), format!("{:+.1}%", (ipc / baseline - 1.0) * 100.0)]);
    };
    row("default (Table 3, AGE-favoring, stabilized)", baseline);

    let circ_favoring = run_suite_with(&|c| c.iq.swque.age_favoring = false);
    row("CIRC-favoring disagreement policy (§3.2.2)", circ_favoring);

    let unstabilized = run_suite_with(&|c| c.iq.swque.stabilize = false);
    row("no instability counter (§3.2.3)", unstabilized);

    for interval in [2_000u64, 50_000] {
        let v = run_suite_with(&|c| c.iq.swque.interval_insts = interval);
        row(&format!("switch interval = {interval} insts"), v);
    }

    for frac in [0.25f64, 0.125] {
        let v = run_suite_with(&|c| c.iq.flpi_region_frac = frac);
        row(&format!("FLPI region = {frac} of the queue"), v);
    }

    println!("\nAblations of SWQUE design choices (suite GM IPC, medium model)\n");
    println!("{t}");
    Report::new("ablations").add_table("ablations", &t).finish();
}
