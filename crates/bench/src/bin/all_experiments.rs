//! Runs every paper experiment in sequence (the full evaluation of
//! Section 4). Output is EXPERIMENTS.md-ready plain text.
//!
//! Budget knobs: `SWQUE_INSTS` (measured instructions per run, default
//! 400k) and `SWQUE_WARMUP` (warmup instructions, default 300k).
//!
//! With `SWQUE_JSON=<dir>` set, the value is treated as a *directory*
//! (created if missing) and every child experiment writes its structured
//! report to `<dir>/BENCH_<experiment>.json` — one `swque-bench-v1`
//! document per figure/table, ready for downstream tooling.

use std::process::Command;

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let json_dir = swque_bench::json_path();
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("SWQUE_JSON: cannot create {}: {e}", dir.display()));
    }
    let experiments = [
        "tables", "fig08", "fig09", "fig10", "fig10_timeline", "fig11", "fig12", "fig13",
        "fig14", "tab06", "sec47", "sec48",
    ];
    for exp in experiments {
        println!("\n=============================================================");
        println!("== {exp}");
        println!("=============================================================\n");
        let mut cmd = Command::new(exe_dir.join(exp));
        match &json_dir {
            Some(dir) => cmd.env("SWQUE_JSON", dir.join(format!("BENCH_{exp}.json"))),
            // Children must not misread the (empty/absent) variable as a
            // file path of their own.
            None => cmd.env_remove("SWQUE_JSON"),
        };
        let status = cmd.status().unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        assert!(status.success(), "{exp} failed");
    }
    if let Some(dir) = &json_dir {
        println!("\nStructured reports written to {}/BENCH_*.json", dir.display());
    }
}
