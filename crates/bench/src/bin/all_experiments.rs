//! Runs every paper experiment in sequence (the full evaluation of
//! Section 4). Output is EXPERIMENTS.md-ready plain text.
//!
//! Budget knobs: `SWQUE_INSTS` (measured instructions per run, default
//! 400k) and `SWQUE_WARMUP` (warmup instructions, default 300k).

use std::process::Command;

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let experiments = [
        "tables", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "tab06",
        "sec47", "sec48",
    ];
    for exp in experiments {
        println!("\n=============================================================");
        println!("== {exp}");
        println!("=============================================================\n");
        let status = Command::new(exe_dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        assert!(status.success(), "{exp} failed");
    }
}
