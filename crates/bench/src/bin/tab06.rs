//! Table 6: SWQUE's additional cost and the cost-neutral comparison —
//! giving AGE the same extra area as 17% more entries (150) instead.

use swque_bench::{geomean, run_suite, Report, RunSpec, Table};
use swque_circuit::area::cost_summary;
use swque_circuit::IqGeometry;
use swque_core::IqKind;
use swque_workloads::Category;

fn main() {
    // Cost rows from the area model.
    let cost = cost_summary(&IqGeometry::medium());
    let mut t = Table::new(["row", "value"]);
    t.row(["additional area (14nm)", &format!("{:.4} mm^2", cost.additional_mm2)]);
    t.row(["vs. Skylake core", &format!("{:.3}%", cost.vs_core * 100.0)]);
    t.row(["vs. Skylake chip", &format!("{:.3}%", cost.vs_chip * 100.0)]);

    // Cost-neutral performance: AGE with 150 entries vs SWQUE with 128,
    // both against the 128-entry AGE baseline.
    let specs = vec![
        RunSpec::medium(IqKind::Age),   // baseline 128
        RunSpec::medium(IqKind::Swque), // SWQUE 128
    ];
    let rows = run_suite(&specs);
    // The 150-entry AGE needs a custom config; run it per kernel.
    let mut ratios_swque = [Vec::new(), Vec::new()];
    let mut ratios_age150 = [Vec::new(), Vec::new()];
    for row in &rows {
        let cat = (row.kernel.category == Category::Fp) as usize;
        ratios_swque[cat].push(row.results[1].ipc() / row.results[0].ipc());
        let mut config = swque_cpu::CoreConfig::medium();
        config.iq.capacity = 150;
        let program = row.kernel.build();
        let mut core = swque_cpu::Core::new(config, IqKind::Age, &program);
        let warm = core.run(swque_bench::harness::default_warmup());
        let r = core
            .run(swque_bench::harness::default_warmup() + swque_bench::harness::default_insts())
            .delta(&warm);
        ratios_age150[cat].push(r.ipc() / row.results[0].ipc());
    }
    t.row([
        "perf: SWQUE (128 entries) over baseline AGE".to_string(),
        format!(
            "{:+.1}% (INT), {:+.1}% (FP)",
            (geomean(&ratios_swque[0]) - 1.0) * 100.0,
            (geomean(&ratios_swque[1]) - 1.0) * 100.0
        ),
    ]);
    t.row([
        "perf: AGE (150 entries) over baseline AGE".to_string(),
        format!(
            "{:+.1}% (INT), {:+.1}% (FP)",
            (geomean(&ratios_age150[0]) - 1.0) * 100.0,
            (geomean(&ratios_age150[1]) - 1.0) * 100.0
        ),
    ]);
    println!("Table 6: additional costs and cost-neutral performance comparison");
    println!("(paper: +9.8%/+3.7% for SWQUE vs -0.6%/-0.1% for simply enlarging AGE —");
    println!(" spending the area on more entries does not help)\n");
    Report::new("tab06").add_table("cost", &t).finish();
    println!("{t}");
}
