//! Figure 8: IPC degradation relative to SHIFT for CIRC, RAND, AGE and
//! SWQUE (geometric mean over the INT and FP suites, medium model).

use swque_bench::{geomean, run_suite, Report, RunSpec, Table};
use swque_core::IqKind;
use swque_workloads::Category;

fn main() {
    let kinds = [IqKind::Shift, IqKind::Circ, IqKind::Rand, IqKind::Age, IqKind::Swque];
    let specs: Vec<RunSpec> = kinds.iter().map(|&k| RunSpec::medium(k)).collect();
    let rows = run_suite(&specs);

    let mut table = Table::new(["IQ", "GM int degradation", "GM fp degradation"]);
    for (i, kind) in kinds.iter().enumerate().skip(1) {
        let mut cells = vec![kind.label().to_string()];
        for cat in [Category::Int, Category::Fp] {
            let ratios: Vec<f64> = rows
                .iter()
                .filter(|r| r.kernel.category == cat)
                .map(|r| r.results[i].ipc() / r.results[0].ipc())
                .collect();
            let degradation = (1.0 - geomean(&ratios)) * 100.0;
            cells.push(format!("{degradation:.1}%"));
        }
        table.row(cells);
    }
    println!("Figure 8: performance degradation relative to SHIFT (medium model)");
    println!("(longer = worse; the paper reports >10% for CIRC/RAND, ~8% AGE-INT,");
    println!(" and SWQUE within 0.8% (INT) / 2.4% (FP) of SHIFT)\n");
    println!("{table}");
    Report::new("fig08").add_table("degradation", &table).finish();
}
