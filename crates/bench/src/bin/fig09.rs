//! Figure 9: per-program speedup of SWQUE over AGE, for the medium
//! (default) and large processor models, with the paper's m-ILP / r-ILP /
//! MLP class annotations.
//!
//! With `SWQUE_JSON=<file>` set, the run is traced and the report carries
//! typed per-program rows (`rows`) plus the SWQUE medium-model trace
//! digests (`traces`: per-interval mode residency, schema
//! `swque-trace-v1`).

use swque_bench::{geomean, json_path, run_suite, run_suite_traced, Report, RunSpec, Table};
use swque_core::IqKind;
use swque_trace::Json;
use swque_workloads::Category;

fn main() {
    let specs = vec![
        RunSpec::medium(IqKind::Age),
        RunSpec::medium(IqKind::Swque),
        RunSpec::large(IqKind::Age),
        RunSpec::large(IqKind::Swque),
    ];
    let json = json_path().is_some();
    let rows = if json { run_suite_traced(&specs) } else { run_suite(&specs) };

    let mut report = Report::new("fig09");
    let mut table = Table::new(["program", "class", "speedup (medium)", "speedup (large)"]);
    let mut gm = [[Vec::new(), Vec::new()], [Vec::new(), Vec::new()]]; // [cat][model]
    for row in &rows {
        let medium = row.results[1].ipc() / row.results[0].ipc();
        let large = row.results[3].ipc() / row.results[2].ipc();
        let cat = (row.kernel.category == Category::Fp) as usize;
        gm[cat][0].push(medium);
        gm[cat][1].push(large);
        table.row([
            row.kernel.name.to_string(),
            row.kernel.class.to_string(),
            format!("{:+.1}%", (medium - 1.0) * 100.0),
            format!("{:+.1}%", (large - 1.0) * 100.0),
        ]);
        if json {
            report.push_row(Json::obj([
                ("program", Json::from(row.kernel.name)),
                ("class", Json::from(row.kernel.class.to_string())),
                ("ipc_age_medium", Json::from(row.results[0].ipc())),
                ("ipc_swque_medium", Json::from(row.results[1].ipc())),
                ("ipc_age_large", Json::from(row.results[2].ipc())),
                ("ipc_swque_large", Json::from(row.results[3].ipc())),
                ("speedup_medium", Json::from(medium)),
                ("speedup_large", Json::from(large)),
            ]));
            // The SWQUE medium-model run (spec index 1) carries the
            // interval series the figure's narrative is about.
            report.push_trace(row.kernel.name, &row.traces[1]);
        }
    }
    for (cat, label) in [(0, "GM int"), (1, "GM fp")] {
        table.row([
            label.to_string(),
            String::new(),
            format!("{:+.1}%", (geomean(&gm[cat][0]) - 1.0) * 100.0),
            format!("{:+.1}%", (geomean(&gm[cat][1]) - 1.0) * 100.0),
        ]);
    }
    println!("Figure 9: SWQUE speedup over AGE (medium and large models)");
    println!("(paper averages: +9.7% INT / +2.9% FP medium; +13.4% / +4.0% large)\n");
    println!("{table}");
    report.add_table("speedup", &table);
    report.finish();
}
