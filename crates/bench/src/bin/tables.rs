//! Tables 2–5: configuration tables (2–4) rendered from the actual config
//! structs, and the transistor-density comparison (Table 5).

use swque_bench::{Report, Table};
use swque_circuit::area::density;
use swque_core::SwqueParams;
use swque_cpu::CoreConfig;

fn table2(report: &mut Report) {
    let c = CoreConfig::medium();
    let mut t = Table::new(["parameter", "value"]);
    t.row(["Pipeline width", &format!("{}-instruction fetch/decode/issue/commit", c.width)]);
    t.row(["Reorder buffer", &format!("{} entries", c.rob_entries)]);
    t.row(["IQ", &format!("{} entries", c.iq.capacity)]);
    t.row(["Load/store queue", &format!("{} entries", c.lsq_entries)]);
    t.row(["Physical registers", &format!("{}(int) + {}(fp)", c.phys_int, c.phys_fp)]);
    t.row([
        "Branch prediction".to_string(),
        format!(
            "{}-bit history {}K-entry PHT gshare, {}K-set {}-way BTB, {}-cycle misprediction penalty",
            c.predictor.history_bits,
            c.predictor.pht_entries / 1024,
            c.predictor.btb_sets / 1024,
            c.predictor.btb_ways,
            c.frontend_depth
        ),
    ]);
    t.row([
        "Function units".to_string(),
        format!(
            "{} iALU, {} iMULT/DIV, {} Ld/St, {} FPU",
            c.fu_counts[0], c.fu_counts[1], c.fu_counts[2], c.fu_counts[3]
        ),
    ]);
    t.row([
        "L1 I-cache".to_string(),
        format!("{}KB, {}-way, {}B line", c.mem.l1i.size_bytes >> 10, c.mem.l1i.ways, c.mem.l1i.line_bytes),
    ]);
    t.row([
        "L1 D-cache".to_string(),
        format!(
            "{}KB, {}-way, {}B line, 2 ports, {}-cycle hit, non-blocking",
            c.mem.l1d.size_bytes >> 10, c.mem.l1d.ways, c.mem.l1d.line_bytes, c.mem.l1d.hit_latency
        ),
    ]);
    t.row([
        "L2 cache".to_string(),
        format!(
            "{}MB, {}-way, {}B line, {}-cycle hit",
            c.mem.l2.size_bytes >> 20, c.mem.l2.ways, c.mem.l2.line_bytes, c.mem.l2.hit_latency
        ),
    ]);
    t.row([
        "Main memory".to_string(),
        format!("{}-cycle min latency, {}B/cycle bandwidth", c.mem.dram_latency, c.mem.dram_bytes_per_cycle),
    ]);
    let p = c.mem.prefetch.expect("medium model has a prefetcher");
    t.row([
        "Data prefetch".to_string(),
        format!(
            "stream-based: {}-stream tracked, {}-line distance, {}-line degree, prefetch to L2",
            p.streams, p.distance, p.degree
        ),
    ]);
    println!("Table 2: base processor configuration\n\n{t}");
    report.add_table("table2", &t);
}

fn table3(report: &mut Report) {
    let p = SwqueParams::default();
    let mut t = Table::new(["parameter", "value"]);
    t.row(["Switch interval", &format!("{} instructions", p.interval_insts)]);
    t.row(["Switch penalty", &format!("{} cycles", p.switch_penalty)]);
    t.row(["Switch MPKI threshold", &format!("{}", p.mpki_threshold)]);
    t.row(["FLPI threshold", &format!("{}", p.flpi_threshold)]);
    t.row(["Instability counter threshold", &format!("{}", p.instability_threshold)]);
    t.row(["Reduction of FLPI threshold at instability", &format!("{}", p.flpi_reduction)]);
    t.row(["Instability counter reset interval", &format!("{} instructions", p.reset_interval_insts)]);
    println!("Table 3: parameters for SWQUE\n\n{t}");
    report.add_table("table3", &t);
}

fn table4(report: &mut Report) {
    let m = CoreConfig::medium();
    let l = CoreConfig::large();
    let mut t = Table::new(["parameter", "medium", "large"]);
    t.row(["Fetch/decode/issue/commit width", &m.width.to_string(), &l.width.to_string()]);
    t.row(["IQ size", &m.iq.capacity.to_string(), &l.iq.capacity.to_string()]);
    t.row(["Load/store queue size", &m.lsq_entries.to_string(), &l.lsq_entries.to_string()]);
    t.row(["Reorder buffer size", &m.rob_entries.to_string(), &l.rob_entries.to_string()]);
    t.row([
        "Physical regs (int+fp)".to_string(),
        format!("{}+{}", m.phys_int, m.phys_fp),
        format!("{}+{}", l.phys_int, l.phys_fp),
    ]);
    t.row(["Number of iALUs", &m.fu_counts[0].to_string(), &l.fu_counts[0].to_string()]);
    t.row(["Number of FPUs", &m.fu_counts[3].to_string(), &l.fu_counts[3].to_string()]);
    println!("Table 4: medium/large processor models\n\n{t}");
    report.add_table("table4", &t);
}

fn table5(report: &mut Report) {
    let mut t = Table::new(["design", "circuit", "tr. density (x10^-3 / lambda^2)"]);
    t.row(["this model", "tag RAM", &format!("{:.3}", density::TAG_RAM)]);
    t.row(["this model", "wakeup logic", &format!("{:.3}", density::WAKEUP)]);
    t.row(["this model", "select logic", &format!("{:.3}", density::SELECT)]);
    t.row(["this model", "age matrix", &format!("{:.3}", density::AGE_MATRIX)]);
    t.row(["Sun Micro", "512KB L2 cache", &format!("{:.3}", density::REF_L2_CACHE)]);
    t.row(["Fujitsu", "54-bit FP multiplier", &format!("{:.3}", density::REF_MULTIPLIER)]);
    t.row(["Intel", "processor (Skylake)", &format!("{:.3}", density::REF_SKYLAKE)]);
    println!("Table 5: transistor density comparison\n\n{t}");
    report.add_table("table5", &t);
    println!("(IQ circuits are sparser than the dense L2 but comparable to or denser");
    println!(" than logic arrays and the whole Skylake chip — the layout is reasonable)");
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let mut report = Report::new("tables");
    match which.as_str() {
        "table2" => table2(&mut report),
        "table3" => table3(&mut report),
        "table4" => table4(&mut report),
        "table5" => table5(&mut report),
        _ => {
            table2(&mut report);
            println!();
            table3(&mut report);
            println!();
            table4(&mut report);
            println!();
            table5(&mut report);
        }
    }
    report.finish();
}
