//! Figure 14: enhancing AGE with multiple age matrices (§4.9) — average
//! speedup over single-matrix AGE for SWQUE-1AM, AGE-multiAM and
//! SWQUE-multiAM, on the medium (7 matrices) and large (9 matrices) models.

use swque_bench::{geomean, run_suite, Report, RunSpec, Table};
use swque_core::IqKind;
use swque_workloads::Category;

fn main() {
    let kinds = [IqKind::Age, IqKind::Swque, IqKind::AgeMulti, IqKind::SwqueMulti];
    let mut specs = Vec::new();
    for &k in &kinds {
        specs.push(RunSpec::medium(k));
    }
    for &k in &kinds {
        specs.push(RunSpec::large(k));
    }
    let rows = run_suite(&specs);

    let mut table =
        Table::new(["model", "category", "SWQUE-1AM", "AGE-multiAM", "SWQUE-multiAM"]);
    for (model, off) in [("medium (7 AM)", 0usize), ("large (9 AM)", 4)] {
        for cat in [Category::Int, Category::Fp] {
            let gm = |idx: usize| {
                let ratios: Vec<f64> = rows
                    .iter()
                    .filter(|r| r.kernel.category == cat)
                    .map(|r| r.results[off + idx].ipc() / r.results[off].ipc())
                    .collect();
                (geomean(&ratios) - 1.0) * 100.0
            };
            table.row([
                model.to_string(),
                format!("{cat}"),
                format!("{:+.1}%", gm(1)),
                format!("{:+.1}%", gm(2)),
                format!("{:+.1}%", gm(3)),
            ]);
        }
    }
    println!("Figure 14: speedup over single-age-matrix AGE (medium & large)");
    println!("(paper: AGE-multiAM gains only ~1.4%; SWQUE's INT advantage persists");
    println!(" because CIRC-PC, not the age matrix, is its speedup source)\n");
    println!("{table}");
    Report::new("fig14").add_table("multi_am", &table).finish();
}
