//! Figure 13: relative size of each circuit in SWQUE (medium geometry).

use swque_bench::{Report, Table};
use swque_circuit::area::areas;
use swque_circuit::IqGeometry;

fn main() {
    let a = areas(&IqGeometry::medium());
    let total: f64 = a.figure13_rows().iter().map(|r| r.1).sum();
    let mut table = Table::new(["circuit", "relative size", "bar"]);
    for (name, area) in a.figure13_rows() {
        let frac = area / total;
        let bar = "#".repeat((frac * 120.0).round() as usize);
        table.row([name.to_string(), format!("{:5.1}%", frac * 100.0), bar]);
    }
    println!("Figure 13: relative size of each circuit in SWQUE (128-entry, 6-wide)");
    println!("(paper: the age matrix dominates; the tag RAM is small — which is");
    println!(" why its time-sliced double access fits in a cycle)\n");
    println!("{table}");
    Report::new("fig13").add_table("area", &table).finish();
    println!(
        "\nSWQUE area overhead vs baseline IQ: {:.1}% (paper: 17%)",
        a.overhead_fraction() * 100.0
    );
}
