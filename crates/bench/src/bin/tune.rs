//! Development aid: prints per-kernel IPC for every issue-queue scheme so
//! the workload parameters can be validated against the paper's expected
//! shape (not itself a paper figure).

use swque_bench::{run_suite, Report, RunSpec, Table};
use swque_core::IqKind;

fn main() {
    let kinds = [
        IqKind::Shift,
        IqKind::Circ,
        IqKind::CircPpri,
        IqKind::CircPc,
        IqKind::Rand,
        IqKind::Age,
        IqKind::Swque,
    ];
    let specs: Vec<RunSpec> = kinds.iter().map(|&k| RunSpec::medium(k)).collect();
    let rows = run_suite(&specs);

    let mut header: Vec<String> = vec!["kernel".into(), "class".into()];
    header.extend(kinds.iter().map(|k| k.label().to_string()));
    header.push("SWQUE/AGE".into());
    header.push("%CIRC-PC".into());
    header.push("MPKI".into());
    header.push("FLPI".into());
    let mut t = Table::new(header);
    for row in &rows {
        let mut cells = vec![row.kernel.name.to_string(), row.kernel.class.to_string()];
        for r in &row.results {
            cells.push(format!("{:.3}", r.ipc()));
        }
        let age = row.results[5].ipc();
        let swque = row.results[6].ipc();
        cells.push(format!("{:+.1}%", (swque / age - 1.0) * 100.0));
        let sw = row.results[6].swque.unwrap();
        cells.push(format!("{:.0}%", sw.circ_pc_fraction() * 100.0));
        cells.push(format!("{:.2}", row.results[5].mpki()));
        cells.push(format!("{:.4}", row.results[5].iq.flpi()));
        t.row(cells);
    }
    println!("{t}");
    Report::new("tune").add_table("per_kernel_ipc", &t).finish();
}
