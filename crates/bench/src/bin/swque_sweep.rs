//! Campaign sweep orchestrator: expands a declarative manifest (schema
//! `swque-sweep-manifest-v1`) into deterministic work units, runs them
//! sharded across worker threads, and merges the completed campaign into a
//! `swque-sweep-campaign-v1` report. Shards are content-addressed, so an
//! interrupted campaign resumes from where it died: re-run the same
//! command and only the missing units are simulated. See
//! `swque_bench::sweep` for the machinery and `DESIGN.md` §9 for the
//! manifest grammar and both output schemas.

use std::path::PathBuf;
use std::process::ExitCode;

use swque_bench::sweep::{merge_campaign, run_campaign, Manifest};
use swque_bench::{default_workers, Table};

const USAGE: &str = "usage: swque_sweep --manifest <file> --out <dir> \
                     [--workers N] [--limit K] [--merge-only]";

struct Args {
    manifest: PathBuf,
    out: PathBuf,
    workers: Option<usize>,
    limit: Option<usize>,
    merge_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut manifest = None;
    let mut out = None;
    let mut workers = None;
    let mut limit = None;
    let mut merge_only = false;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or(format!("{flag}: missing value"));
        match flag.as_str() {
            "--manifest" => manifest = Some(PathBuf::from(value("--manifest")?)),
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--workers" => {
                workers = Some(
                    value("--workers")?
                        .parse::<usize>()
                        .map_err(|e| format!("--workers: {e}"))?,
                );
            }
            "--limit" => {
                limit = Some(
                    value("--limit")?.parse::<usize>().map_err(|e| format!("--limit: {e}"))?,
                );
            }
            "--merge-only" => merge_only = true,
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(Args {
        manifest: manifest.ok_or(format!("--manifest is required\n{USAGE}"))?,
        out: out.ok_or(format!("--out is required\n{USAGE}"))?,
        workers,
        limit,
        merge_only,
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let text = std::fs::read_to_string(&args.manifest)
        .map_err(|e| format!("{}: {e}", args.manifest.display()))?;
    let manifest = Manifest::parse(&text)?;
    let units = manifest.units();
    println!("campaign {:?}: {} unit(s)", manifest.name, units.len());

    if args.merge_only {
        let report = merge_campaign(&manifest, &args.out)?;
        let path = args.out.join("campaign.json");
        std::fs::write(&path, format!("{report}\n"))
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("merged {}", path.display());
        return Ok(());
    }

    // Workers: explicit flag, else the harness policy (`SWQUE_THREADS` or
    // host parallelism), clamped to the unit count.
    let workers = args.workers.unwrap_or_else(|| default_workers(units.len()));
    let status = run_campaign(&manifest, &args.out, workers, args.limit)?;

    let mut table = Table::new(["total", "skipped", "ran", "repaired", "merged"]);
    table.row([
        status.total.to_string(),
        status.skipped.to_string(),
        status.ran.to_string(),
        status.repaired.to_string(),
        status.merged.as_ref().map_or("no".to_string(), |p| p.display().to_string()),
    ]);
    print!("{table}");
    if status.merged.is_none() {
        println!(
            "campaign incomplete: {}/{} shard(s) present — re-run to resume",
            status.skipped + status.ran,
            status.total,
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("swque_sweep: {e}");
            ExitCode::FAILURE
        }
    }
}
