//! Figure 10 as a *time series*: per-program mode-residency timelines
//! built from the trace events the observability layer records, rather
//! than from end-of-run aggregate counters.
//!
//! Each program prints one strip — one character per controller interval,
//! `C` = CIRC-PC, `A` = AGE, `|` marking interval decisions that requested
//! a switch — plus the per-interval IPC range, so the phase behaviour the
//! paper's Figure 10 summarizes is visible cycle-stamped. With
//! `SWQUE_JSON=<file>` set, the full interval series is serialized.

use swque_bench::{run_suite_traced, Report, RunSpec, Table};
use swque_core::IqKind;
use swque_trace::Json;

/// Widest strip printed before the timeline is downsampled (terminal
/// width, roughly). Downsampling keeps every switch boundary visible: a
/// bucket renders as the mode the majority of its intervals ran in.
const STRIP_WIDTH: usize = 96;

fn render_strip(strip: &str) -> String {
    if strip.len() <= STRIP_WIDTH {
        return strip.to_string();
    }
    let chars: Vec<char> = strip.chars().collect();
    (0..STRIP_WIDTH)
        .map(|b| {
            let lo = b * chars.len() / STRIP_WIDTH;
            let hi = ((b + 1) * chars.len() / STRIP_WIDTH).max(lo + 1);
            let circ = chars[lo..hi].iter().filter(|&&c| c == 'C').count();
            if circ * 2 >= hi - lo {
                'C'
            } else {
                'A'
            }
        })
        .collect()
}

fn main() {
    let rows = run_suite_traced(&[RunSpec::medium(IqKind::Swque)]);
    let mut report = Report::new("fig10_timeline");
    let mut table = Table::new(["program", "intervals", "switches", "CIRC-PC", "IPC range"]);
    println!("Figure 10 (timeline): SWQUE mode residency per controller interval");
    println!("(one char per 10k-instruction interval: C = CIRC-PC, A = AGE)\n");
    for row in &rows {
        let t = &row.traces[0];
        let strip = t.mode_strip();
        let ipc_lo = t.ipc.iter().map(|s| s.ipc).fold(f64::INFINITY, f64::min);
        let ipc_hi = t.ipc.iter().map(|s| s.ipc).fold(0.0, f64::max);
        let ipc_range = if t.ipc.is_empty() {
            "-".to_string()
        } else {
            format!("{ipc_lo:.2}-{ipc_hi:.2}")
        };
        println!("{:>16} [{}]", row.kernel.name, render_strip(&strip));
        table.row([
            row.kernel.name.to_string(),
            t.intervals.len().to_string(),
            t.switches.to_string(),
            format!("{:5.1}%", t.circ_pc_fraction() * 100.0),
            ipc_range.clone(),
        ]);
        report.push_row(Json::obj([
            ("program", Json::from(row.kernel.name)),
            ("intervals", Json::from(t.intervals.len())),
            ("switches", Json::from(t.switches)),
            ("circ_pc_fraction", Json::from(t.circ_pc_fraction())),
            ("mode_strip", Json::from(strip)),
        ]));
        report.push_trace(row.kernel.name, t);
    }
    println!("\n{table}");
    report.add_table("timeline", &table);
    report.finish();
}
