//! Plain-text result tables (the experiment binaries print these in the
//! shape of the paper's figures).

use std::fmt;

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Column headers, in display order.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Data rows, in insertion order (each padded to the header width).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "ipc"]);
        t.row(["deepsjeng_like", "2.31"]);
        t.row(["xz_like", "0.40"]);
        let s = t.to_string();
        assert!(s.contains("deepsjeng_like  2.31"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only"]);
        assert!(t.to_string().contains("only"));
    }
}
