//! Golden test pinning the structured-output schema: a small traced run is
//! serialized exactly the way the figure binaries do it, re-parsed with the
//! in-tree parser, and its key sets compared against the documented
//! `swque-bench-v1` / `swque-trace-v1` shapes. A change that reshapes the
//! JSON must update this test, DESIGN.md, and the schema version together.

use swque_bench::{run_kernel_traced, Report, RunSpec, Table, BENCH_SCHEMA};
use swque_core::IqKind;
use swque_trace::Json;
use swque_workloads::suite;

fn small_spec() -> RunSpec {
    RunSpec {
        warmup_insts: 5_000,
        max_insts: 40_000,
        scale: Some(2_000),
        ..RunSpec::medium(IqKind::Swque)
    }
}

#[test]
fn bench_report_schema_is_pinned() {
    let kernel = suite::by_name("mcf_like").expect("suite kernel");
    let (result, trace) = run_kernel_traced(&kernel, &small_spec());
    assert!(result.retired >= 30_000, "measured window ran");

    let mut table = Table::new(["program", "ipc"]);
    table.row([kernel.name.to_string(), format!("{:.3}", result.ipc())]);
    let mut report = Report::new("golden");
    report.param("model", "medium");
    report.add_table("main", &table);
    report.push_row(Json::obj([
        ("program", Json::from(kernel.name)),
        ("ipc", Json::from(result.ipc())),
    ]));
    report.push_trace(kernel.name, &trace);

    // Serialize and re-parse: the golden shape is checked on the wire
    // format, not on the in-memory builder.
    let doc = Json::parse(&report.to_json().to_string()).expect("own output parses");

    assert_eq!(
        doc.keys(),
        vec!["schema", "experiment", "params", "tables", "rows", "traces"],
    );
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(BENCH_SCHEMA));
    assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("golden"));
    assert_eq!(
        doc.get("params").unwrap().keys(),
        vec!["warmup_insts", "max_insts", "model"],
    );

    let tables = doc.get("tables").and_then(Json::as_arr).unwrap();
    assert_eq!(tables.len(), 1);
    assert_eq!(tables[0].keys(), vec!["name", "header", "rows"]);
    assert_eq!(
        tables[0].get("header").and_then(Json::as_arr).unwrap().len(),
        tables[0].get("rows").and_then(Json::as_arr).unwrap()[0]
            .as_arr()
            .unwrap()
            .len(),
        "row width matches header",
    );

    let traces = doc.get("traces").and_then(Json::as_arr).unwrap();
    assert_eq!(traces[0].keys(), vec!["program", "trace"]);
    let t = traces[0].get("trace").unwrap();
    assert_eq!(
        t.keys(),
        vec![
            "schema",
            "events",
            "dropped",
            "switches",
            "circ_pc_intervals",
            "age_intervals",
            "circ_pc_fraction",
            "mode_strip",
            "stall_episodes",
            "stall_cycles",
            "mem_epochs",
            "llc_misses",
            "intervals",
            "ipc",
        ],
    );
    assert_eq!(t.get("schema").and_then(Json::as_str), Some("swque-trace-v1"));

    // The run is long enough for real interval content; pin its row shape.
    let intervals = t.get("intervals").and_then(Json::as_arr).unwrap();
    assert!(!intervals.is_empty(), "40k measured insts cross interval boundaries");
    for iv in intervals {
        assert_eq!(
            iv.keys(),
            vec!["cycle", "retired", "mpki", "flpi", "mode", "instability", "switched"],
        );
        let mode = iv.get("mode").and_then(Json::as_str).unwrap();
        assert!(mode == "CIRC-PC" || mode == "AGE", "mode label: {mode}");
    }
    let ipc = t.get("ipc").and_then(Json::as_arr).unwrap();
    assert!(!ipc.is_empty(), "IPC series recorded");
    for s in ipc {
        assert_eq!(s.keys(), vec!["cycle", "retired", "ipc"]);
        assert!(s.get("ipc").and_then(Json::as_f64).unwrap() > 0.0);
    }

    // Trace residency reconciles with the aggregate mode statistics: the
    // interval-weighted fraction approximates the cycle-weighted one.
    let sw = result.swque.expect("SWQUE stats");
    assert_eq!(
        t.get("switches").and_then(Json::as_u64),
        Some(sw.switches),
        "trace switches match SwqueStats (trace attached for the whole window)",
    );
}
