//! Parallel-sweep determinism: `run_suite`'s worker pool must be a pure
//! throughput optimization. Every simulation is single-threaded and
//! seeded, and rows are written back by kernel index, so the sweep result
//! must be identical — not just statistically close — for any worker
//! count, any scheduling interleave, and the `SWQUE_THREADS` override.
//!
//! `SimResult`/`TraceSummary` are plain data without `PartialEq`; the
//! comparison goes through their `Debug` rendering, which covers every
//! field and makes a mismatch diff readable.

use swque_bench::{
    default_workers_with, run_suite_on, run_suite_traced_on, RunSpec, SuiteRow,
};
use swque_core::IqKind;
use swque_workloads::suite;

/// A cheap spec set: two organizations, tiny scaled programs.
fn specs() -> Vec<RunSpec> {
    [IqKind::Circ, IqKind::Age]
        .into_iter()
        .map(|iq| RunSpec {
            warmup_insts: 2_000,
            max_insts: 8_000,
            scale: Some(1_500),
            ..RunSpec::medium(iq)
        })
        .collect()
}

fn fingerprint(rows: &[SuiteRow]) -> String {
    rows.iter()
        .map(|row| {
            format!("{}: {:?} {:?}\n", row.kernel.name, row.results, row.traces)
        })
        .collect()
}

#[test]
fn parallel_sweep_matches_single_worker() {
    let kernels = suite::all();
    let kernels = &kernels[..kernels.len().min(3)];
    let specs = specs();
    let serial = fingerprint(&run_suite_on(kernels, &specs, 1));
    for workers in [2, 4, 16] {
        let parallel = fingerprint(&run_suite_on(kernels, &specs, workers));
        assert_eq!(serial, parallel, "rows differ with {workers} workers");
    }
}

#[test]
fn traced_parallel_sweep_matches_single_worker() {
    let kernels = suite::all();
    let kernels = &kernels[..kernels.len().min(2)];
    let specs = specs();
    let serial = fingerprint(&run_suite_traced_on(kernels, &specs, 1));
    let parallel = fingerprint(&run_suite_traced_on(kernels, &specs, 8));
    assert_eq!(serial, parallel, "traced rows differ across worker counts");
}

#[test]
fn empty_and_single_kernel_lists() {
    let specs = specs();
    assert!(run_suite_on(&[], &specs, 4).is_empty(), "no kernels, no rows");
    let kernels = suite::all();
    let rows = run_suite_on(&kernels[..1], &specs, 4);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].kernel.name, kernels[0].name);
    assert_eq!(rows[0].results.len(), specs.len(), "one result per spec");
    // A sweep with zero requested workers still runs (clamped to 1).
    let rows0 = run_suite_on(&kernels[..1], &specs, 0);
    assert_eq!(fingerprint(&rows0), fingerprint(&rows));
}

/// `SWQUE_THREADS` steers the default worker count and, being a pure
/// throughput knob, must not change results. The environment is read at
/// exactly one place (`default_workers`); everything after that read is
/// the pure `default_workers_with`, which this test exercises directly —
/// no `std::env::set_var`, so the test cannot race other tests in the
/// same process over shared process state.
#[test]
fn worker_override_resolution_is_pure() {
    // Respected when positive, clamped to the kernel count.
    assert_eq!(default_workers_with(Some(3), 8), 3);
    assert_eq!(default_workers_with(Some(3), 2), 2, "clamped to kernel count");
    // Zero (or an unparsable value, which the env read maps to `None`)
    // falls back to host parallelism — always at least one worker.
    assert!(default_workers_with(Some(0), 64) >= 1);
    assert!(default_workers_with(None, 64) >= 1);
    // Degenerate kernel counts never produce a zero-worker sweep.
    assert_eq!(default_workers_with(Some(5), 0), 1);

    // An override-forced single worker is the same sweep as an explicit
    // one — and single- vs multi-worker equality is already pinned above,
    // so the override provably cannot change results.
    let kernels = suite::all();
    let specs = specs();
    let forced = fingerprint(&run_suite_on(&kernels, &specs, default_workers_with(Some(1), kernels.len())));
    let explicit = fingerprint(&run_suite_on(&kernels, &specs, 1));
    assert_eq!(forced, explicit);
}
