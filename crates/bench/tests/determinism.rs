//! Parallel-sweep determinism: `run_suite`'s worker pool must be a pure
//! throughput optimization. Every simulation is single-threaded and
//! seeded, and rows are written back by kernel index, so the sweep result
//! must be identical — not just statistically close — for any worker
//! count, any scheduling interleave, and the `SWQUE_THREADS` override.
//!
//! `SimResult`/`TraceSummary` are plain data without `PartialEq`; the
//! comparison goes through their `Debug` rendering, which covers every
//! field and makes a mismatch diff readable.

use swque_bench::{
    default_workers, run_suite, run_suite_on, run_suite_traced_on, ProcessorModel, RunSpec,
    SuiteRow,
};
use swque_core::IqKind;
use swque_workloads::suite;

/// A cheap spec set: two organizations, tiny scaled programs.
fn specs() -> Vec<RunSpec> {
    [IqKind::Circ, IqKind::Age]
        .into_iter()
        .map(|iq| RunSpec {
            model: ProcessorModel::Medium,
            iq,
            warmup_insts: 2_000,
            max_insts: 8_000,
            scale: Some(1_500),
        })
        .collect()
}

fn fingerprint(rows: &[SuiteRow]) -> String {
    rows.iter()
        .map(|row| {
            format!("{}: {:?} {:?}\n", row.kernel.name, row.results, row.traces)
        })
        .collect()
}

#[test]
fn parallel_sweep_matches_single_worker() {
    let kernels = suite::all();
    let kernels = &kernels[..kernels.len().min(3)];
    let specs = specs();
    let serial = fingerprint(&run_suite_on(kernels, &specs, 1));
    for workers in [2, 4, 16] {
        let parallel = fingerprint(&run_suite_on(kernels, &specs, workers));
        assert_eq!(serial, parallel, "rows differ with {workers} workers");
    }
}

#[test]
fn traced_parallel_sweep_matches_single_worker() {
    let kernels = suite::all();
    let kernels = &kernels[..kernels.len().min(2)];
    let specs = specs();
    let serial = fingerprint(&run_suite_traced_on(kernels, &specs, 1));
    let parallel = fingerprint(&run_suite_traced_on(kernels, &specs, 8));
    assert_eq!(serial, parallel, "traced rows differ across worker counts");
}

#[test]
fn empty_and_single_kernel_lists() {
    let specs = specs();
    assert!(run_suite_on(&[], &specs, 4).is_empty(), "no kernels, no rows");
    let kernels = suite::all();
    let rows = run_suite_on(&kernels[..1], &specs, 4);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].kernel.name, kernels[0].name);
    assert_eq!(rows[0].results.len(), specs.len(), "one result per spec");
    // A sweep with zero requested workers still runs (clamped to 1).
    let rows0 = run_suite_on(&kernels[..1], &specs, 0);
    assert_eq!(fingerprint(&rows0), fingerprint(&rows));
}

/// `SWQUE_THREADS` steers the default worker count and, being a pure
/// throughput knob, must not change results. Environment mutation makes
/// this test order-sensitive, so everything env-related lives in this one
/// test function.
#[test]
fn swque_threads_env_override() {
    // Respected when positive, clamped to the kernel count.
    std::env::set_var("SWQUE_THREADS", "3");
    assert_eq!(default_workers(8), 3);
    assert_eq!(default_workers(2), 2, "clamped to kernel count");
    // Ignored when invalid or zero.
    std::env::set_var("SWQUE_THREADS", "0");
    assert!(default_workers(64) >= 1);
    std::env::set_var("SWQUE_THREADS", "lots");
    assert!(default_workers(64) >= 1);

    // A full run_suite under a forced single worker matches the explicit
    // single-worker sweep over the same kernels.
    std::env::set_var("SWQUE_THREADS", "1");
    let specs = specs();
    let via_env = fingerprint(&run_suite(&specs));
    std::env::remove_var("SWQUE_THREADS");
    let explicit = fingerprint(&run_suite_on(&suite::all(), &specs, 1));
    assert_eq!(via_env, explicit);
}
