//! Sweep-campaign robustness: shards are content-addressed and resume is
//! strict, so a campaign must (a) merge byte-identically for any worker
//! count, (b) skip completed shards on re-run, (c) repair a shard
//! truncated by a mid-write kill and still produce the identical merged
//! report, and (d) refuse to merge a tampered shard.
//!
//! Each test owns a unique scratch directory (process id + test tag) so
//! the suite can run concurrently in one process.

use std::path::PathBuf;

use swque_bench::sweep::{merge_campaign, run_campaign, shard_path, Manifest, CAMPAIGN_SCHEMA};
use swque_trace::Json;

/// Four cheap units: 2 kinds x 2 seeds over one kernel, tiny budget.
fn mini_manifest() -> Manifest {
    Manifest::parse(
        r#"{"schema":"swque-sweep-manifest-v1","name":"mini",
            "budget":{"warmup_insts":500,"max_insts":2000,"scale":800},
            "axes":{"kinds":["CIRC","AGE"],"seeds":[0,7],
                    "kernels":["mcf_like"]}}"#,
    )
    .expect("valid manifest")
}

/// A fresh scratch directory for `tag`, cleaned from any earlier run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swque-sweep-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn read(path: &PathBuf) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn campaign_runs_merges_and_validates() {
    let m = mini_manifest();
    let out = scratch("merge");
    let status = run_campaign(&m, &out, 2, None).expect("campaign runs");
    assert_eq!((status.total, status.skipped, status.ran, status.repaired), (4, 0, 4, 0));
    let merged = status.merged.expect("complete campaign merges");
    let doc = Json::parse(&read(&merged)).expect("campaign.json parses");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(CAMPAIGN_SCHEMA));
    assert_eq!(doc.get("units").and_then(Json::as_u64), Some(4));
    assert_eq!(doc.get("rows").and_then(Json::as_arr).map(|r| r.len()), Some(4));
    // Axes with one value (model, thresholds, kernel) contribute no
    // marginal rows; kind and seed contribute two each.
    let marginals = doc.get("marginals").and_then(Json::as_arr).expect("marginals");
    let axes: Vec<&str> =
        marginals.iter().filter_map(|m| m.get("axis").and_then(Json::as_str)).collect();
    assert_eq!(axes, ["kind", "kind", "seed", "seed"]);
    assert!(doc.get("geomean_ipc").and_then(Json::as_f64).expect("geomean") > 0.0);
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn merged_report_is_byte_identical_for_any_worker_count() {
    let m = mini_manifest();
    let mut reports = Vec::new();
    for workers in [1usize, 3, 16] {
        let out = scratch(&format!("workers{workers}"));
        let status = run_campaign(&m, &out, workers, None).expect("campaign runs");
        reports.push(read(&status.merged.expect("merged")));
        let _ = std::fs::remove_dir_all(&out);
    }
    assert_eq!(reports[0], reports[1], "1 vs 3 workers");
    assert_eq!(reports[0], reports[2], "1 vs 16 workers");
}

#[test]
fn resume_skips_completed_shards_by_content_hash() {
    let m = mini_manifest();
    let out = scratch("resume");
    // Interrupted campaign: only the first two units run.
    let partial = run_campaign(&m, &out, 2, Some(2)).expect("partial run");
    assert_eq!((partial.ran, partial.skipped), (2, 0));
    assert!(partial.merged.is_none(), "incomplete campaign must not merge");
    // The shard files the partial run produced, by content hash.
    let units = m.units();
    let first_shards: Vec<String> =
        units[..2].iter().map(|u| read(&shard_path(&out, u))).collect();
    // Resume: the two existing shards are recognized and skipped.
    let resumed = run_campaign(&m, &out, 2, None).expect("resume");
    assert_eq!((resumed.skipped, resumed.ran, resumed.repaired), (2, 2, 0));
    resumed.merged.expect("now complete");
    for (u, before) in units[..2].iter().zip(&first_shards) {
        assert_eq!(&read(&shard_path(&out, u)), before, "skipped shard untouched");
    }
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn kill_mid_write_truncation_is_repaired_and_report_identical() {
    let m = mini_manifest();
    let out = scratch("repair");
    let status = run_campaign(&m, &out, 2, None).expect("first full run");
    let golden = read(&status.merged.expect("merged"));
    // Simulate a shard left truncated by a hard kill: half a document.
    let victim = shard_path(&out, &m.units()[1]);
    let text = read(&victim);
    std::fs::write(&victim, &text[..text.len() / 2]).expect("truncate shard");
    // Resume detects the invalid shard, re-runs exactly that unit, and the
    // merged report comes out byte-identical.
    let resumed = run_campaign(&m, &out, 2, None).expect("resume after truncation");
    assert_eq!((resumed.skipped, resumed.ran, resumed.repaired), (3, 1, 1));
    assert_eq!(read(&resumed.merged.expect("merged again")), golden);
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn tampered_shard_fails_the_merge() {
    let m = mini_manifest();
    let out = scratch("tamper");
    run_campaign(&m, &out, 2, None).expect("full run").merged.expect("merged");
    // Flip the recorded IPC without re-hashing: the embedded unit still
    // matches its key, but the result is now unattested... the merge
    // cannot catch a result edit by hash (results are not hashed), so
    // tamper with the *unit* — the attested part — and the key check must
    // fail both resume-validation and merge.
    let victim = shard_path(&out, &m.units()[0]);
    let doc = read(&victim);
    let tampered = doc.replacen("\"seed\":0", "\"seed\":1", 1);
    assert_ne!(doc, tampered, "test edited something");
    std::fs::write(&victim, tampered).expect("tamper shard");
    let err = merge_campaign(&m, &out).expect_err("merge must fail");
    assert!(err.contains("unit"), "names the mismatch: {err}");
    let _ = std::fs::remove_dir_all(&out);
}
