//! Micro-benchmarks of the issue-queue primitives: dispatch / wakeup /
//! select cycles for every organization, and the age-matrix query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use swque_core::{AgeMatrix, DispatchReq, IqConfig, IqKind, IssueBudget};
use swque_isa::FuClass;

/// One synthetic scheduling round: fill half the queue with a mix of ready
/// and waiting entries, broadcast some tags, then drain with selects.
fn scheduling_round(kind: IqKind, config: &IqConfig) -> u64 {
    let mut q = kind.build(config);
    let mut seq = 0u64;
    let mut issued = 0u64;
    for round in 0..8u64 {
        while q.has_space() && q.len() < config.capacity / 2 {
            let waiting = seq % 3 == 0;
            let srcs = if waiting { [Some((seq % 200 + 1) as u16), None] } else { [None, None] };
            let fu = match seq % 4 {
                0 => FuClass::IntAlu,
                1 => FuClass::LdSt,
                2 => FuClass::Fpu,
                _ => FuClass::IntAlu,
            };
            q.dispatch(DispatchReq::new(seq, seq, Some((seq % 400) as u16), srcs, fu)).unwrap();
            seq += 1;
        }
        for t in 0..8u16 {
            q.wakeup((round as u16 * 8 + t) % 200 + 1);
        }
        for _ in 0..6 {
            let mut b = IssueBudget::new(6, [3, 1, 2, 2]);
            issued += q.select(&mut b).len() as u64;
        }
    }
    issued
}

fn bench_queues(c: &mut Criterion) {
    let config = IqConfig::default();
    let mut group = c.benchmark_group("scheduling_round");
    for kind in IqKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| scheduling_round(black_box(k), &config));
        });
    }
    group.finish();
}

fn bench_age_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("age_matrix");
    for entries in [128usize, 256] {
        group.bench_with_input(
            BenchmarkId::new("oldest_ready", entries),
            &entries,
            |b, &n| {
                let mut m = AgeMatrix::new(n);
                for i in 0..n {
                    m.allocate(i);
                }
                let requests: Vec<usize> = (0..n).step_by(3).collect();
                b.iter(|| black_box(m.oldest_ready(requests.iter().copied())));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_queues, bench_age_matrix);
criterion_main!(benches);
