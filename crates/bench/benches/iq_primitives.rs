//! Micro-benchmarks of the issue-queue primitives: dispatch / wakeup /
//! select cycles for every organization, and the age-matrix query.
//!
//! Runs on the in-tree harness (`swque_rng::timer`) instead of criterion;
//! `cargo bench -p swque-bench --bench iq_primitives [filter]`.

use std::hint::black_box;

use swque_rng::timer::Bench;

use swque_core::{AgeMatrix, DispatchReq, IqConfig, IqKind, IssueBudget};
use swque_isa::FuClass;

/// One synthetic scheduling round: fill half the queue with a mix of ready
/// and waiting entries, broadcast some tags, then drain with selects.
fn scheduling_round(kind: IqKind, config: &IqConfig) -> u64 {
    let mut q = kind.build(config);
    let mut seq = 0u64;
    let mut issued = 0u64;
    for round in 0..8u64 {
        while q.has_space() && q.len() < config.capacity / 2 {
            let waiting = seq % 3 == 0;
            let srcs = if waiting { [Some((seq % 200 + 1) as u16), None] } else { [None, None] };
            let fu = match seq % 4 {
                0 => FuClass::IntAlu,
                1 => FuClass::LdSt,
                2 => FuClass::Fpu,
                _ => FuClass::IntAlu,
            };
            q.dispatch(DispatchReq::new(seq, seq, Some((seq % 400) as u16), srcs, fu)).unwrap();
            seq += 1;
        }
        for t in 0..8u16 {
            q.wakeup((round as u16 * 8 + t) % 200 + 1);
        }
        for _ in 0..6 {
            let mut b = IssueBudget::new(6, [3, 1, 2, 2]);
            issued += q.select(&mut b).len() as u64;
        }
    }
    issued
}

fn bench_queues(b: &mut Bench) {
    let config = IqConfig::default();
    b.group("scheduling_round");
    for kind in IqKind::ALL {
        b.bench(kind.label(), || scheduling_round(black_box(kind), &config));
    }
}

fn bench_age_matrix(b: &mut Bench) {
    b.group("age_matrix");
    for entries in [128usize, 256] {
        let mut m = AgeMatrix::new(entries);
        for i in 0..entries {
            m.allocate(i);
        }
        let requests: Vec<usize> = (0..entries).step_by(3).collect();
        b.bench(&format!("oldest_ready/{entries}"), || {
            black_box(m.oldest_ready(requests.iter().copied()))
        });
    }
}

fn main() {
    let mut b = Bench::from_env();
    bench_queues(&mut b);
    bench_age_matrix(&mut b);
    b.finish();
}
