//! One reduced-scale bench target per paper figure/table, so
//! `cargo bench` exercises the code path behind every experiment. The full
//! experiments live in `src/bin/` (fig08…fig14, tables, tab06, sec47,
//! sec48); these benches run miniature instances (one kernel per class,
//! thousands of instructions) to keep `cargo bench` minutes-scale.
//!
//! Runs on the in-tree harness (`swque_rng::timer`) instead of criterion;
//! `cargo bench -p swque-bench --bench experiments [filter]`.

use std::hint::black_box;

use swque_rng::timer::Bench;

use swque_circuit::area::{areas, cost_summary};
use swque_circuit::delay::delays;
use swque_circuit::energy::iq_energy;
use swque_circuit::IqGeometry;
use swque_core::IqKind;
use swque_cpu::{Core, CoreConfig, SimResult};
use swque_workloads::suite;

/// A miniature measured run (5k warmup + 15k measured instructions).
fn mini_run(kernel: &str, kind: IqKind, config: CoreConfig) -> SimResult {
    let k = suite::by_name(kernel).expect("kernel exists");
    let program = k.build_scaled(3_000);
    let mut core = Core::new(config, kind, &program);
    let warm = core.run(5_000);
    core.run(20_000).delta(&warm)
}

fn config_with_penalty(penalty: u64) -> CoreConfig {
    let mut c = CoreConfig::medium();
    c.iq.swque.switch_penalty = penalty;
    c
}

fn bench_figures(b: &mut Bench) {
    b.group("figures");
    b.sample_size(10);

    // Figure 8: conventional IQs vs SHIFT on an m-ILP kernel.
    b.bench("fig08_degradation_vs_shift", || {
        for kind in [IqKind::Shift, IqKind::Circ, IqKind::Rand, IqKind::Age, IqKind::Swque] {
            black_box(mini_run("deepsjeng_like", kind, CoreConfig::medium()));
        }
    });

    // Figure 9: SWQUE vs AGE on medium and large models.
    b.bench("fig09_swque_speedup", || {
        black_box(mini_run("deepsjeng_like", IqKind::Age, CoreConfig::medium()));
        black_box(mini_run("deepsjeng_like", IqKind::Swque, CoreConfig::medium()));
        black_box(mini_run("deepsjeng_like", IqKind::Age, CoreConfig::large()));
        black_box(mini_run("deepsjeng_like", IqKind::Swque, CoreConfig::large()));
    });

    // Figure 10: mode-residency measurement.
    b.bench("fig10_mode_breakdown", || {
        let r = mini_run("omnetpp_like", IqKind::Swque, CoreConfig::medium());
        black_box(r.swque.expect("swque stats").circ_pc_fraction())
    });

    // Figure 11: circular-queue variants.
    b.bench("fig11_circ_variants", || {
        for kind in [IqKind::Shift, IqKind::Circ, IqKind::CircPpri, IqKind::CircPc] {
            black_box(mini_run("leela_like", kind, CoreConfig::medium()));
        }
    });

    // Figure 12: energy model over a run.
    let fig12_run = mini_run("deepsjeng_like", IqKind::Swque, CoreConfig::medium());
    let geometry = IqGeometry::medium();
    b.bench("fig12_energy", || black_box(iq_energy(&fig12_run, &geometry, true).total()));

    // Figure 13 + Table 5: area model.
    b.bench("fig13_tab05_area", || {
        let a = areas(&IqGeometry::medium());
        black_box((a.figure13_rows(), a.overhead_fraction()))
    });

    // Figure 14: multi-age-matrix variants.
    b.bench("fig14_multi_am", || {
        for kind in [IqKind::Age, IqKind::AgeMulti, IqKind::SwqueMulti] {
            black_box(mini_run("cam4_like", kind, CoreConfig::medium()));
        }
    });
}

fn bench_tables_and_sections(b: &mut Bench) {
    b.group("tables_sections");
    b.sample_size(10);

    // Table 6: cost model + cost-neutral AGE-150 run.
    b.bench("tab06_cost_neutral", || {
        black_box(cost_summary(&IqGeometry::medium()));
        let mut config = CoreConfig::medium();
        config.iq.capacity = 150;
        black_box(mini_run("x264_like", IqKind::Age, config));
    });

    // Section 4.7: delay fractions.
    b.bench("sec47_delays", || {
        let d = delays(&IqGeometry::medium());
        black_box((d.double_tag_fraction(), d.payload_fraction(), d.dtm_overhead()))
    });

    // Section 4.8: switch-penalty sensitivity.
    b.bench("sec48_switch_penalty", || {
        black_box(mini_run("pop2_like", IqKind::Swque, config_with_penalty(10)));
        black_box(mini_run("pop2_like", IqKind::Swque, config_with_penalty(40)));
    });
}

fn main() {
    let mut b = Bench::from_env();
    bench_figures(&mut b);
    bench_tables_and_sections(&mut b);
    b.finish();
}
