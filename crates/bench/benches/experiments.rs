//! One reduced-scale bench target per paper figure/table, so
//! `cargo bench` exercises the code path behind every experiment. The full
//! experiments live in `src/bin/` (fig08…fig14, tables, tab06, sec47,
//! sec48); these benches run miniature instances (one kernel per class,
//! thousands of instructions) to keep `cargo bench` minutes-scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use swque_circuit::area::{areas, cost_summary};
use swque_circuit::delay::delays;
use swque_circuit::energy::iq_energy;
use swque_circuit::IqGeometry;
use swque_core::IqKind;
use swque_cpu::{Core, CoreConfig, SimResult};
use swque_workloads::suite;

/// A miniature measured run (5k warmup + 15k measured instructions).
fn mini_run(kernel: &str, kind: IqKind, config: CoreConfig) -> SimResult {
    let k = suite::by_name(kernel).expect("kernel exists");
    let program = k.build_scaled(3_000);
    let mut core = Core::new(config, kind, &program);
    let warm = core.run(5_000);
    core.run(20_000).delta(&warm)
}

fn config_with_penalty(penalty: u64) -> CoreConfig {
    let mut c = CoreConfig::medium();
    c.iq.swque.switch_penalty = penalty;
    c
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    // Figure 8: conventional IQs vs SHIFT on an m-ILP kernel.
    g.bench_function("fig08_degradation_vs_shift", |b| {
        b.iter(|| {
            for kind in [IqKind::Shift, IqKind::Circ, IqKind::Rand, IqKind::Age, IqKind::Swque] {
                black_box(mini_run("deepsjeng_like", kind, CoreConfig::medium()));
            }
        })
    });

    // Figure 9: SWQUE vs AGE on medium and large models.
    g.bench_function("fig09_swque_speedup", |b| {
        b.iter(|| {
            black_box(mini_run("deepsjeng_like", IqKind::Age, CoreConfig::medium()));
            black_box(mini_run("deepsjeng_like", IqKind::Swque, CoreConfig::medium()));
            black_box(mini_run("deepsjeng_like", IqKind::Age, CoreConfig::large()));
            black_box(mini_run("deepsjeng_like", IqKind::Swque, CoreConfig::large()));
        })
    });

    // Figure 10: mode-residency measurement.
    g.bench_function("fig10_mode_breakdown", |b| {
        b.iter(|| {
            let r = mini_run("omnetpp_like", IqKind::Swque, CoreConfig::medium());
            black_box(r.swque.expect("swque stats").circ_pc_fraction())
        })
    });

    // Figure 11: circular-queue variants.
    g.bench_function("fig11_circ_variants", |b| {
        b.iter(|| {
            for kind in [IqKind::Shift, IqKind::Circ, IqKind::CircPpri, IqKind::CircPc] {
                black_box(mini_run("leela_like", kind, CoreConfig::medium()));
            }
        })
    });

    // Figure 12: energy model over a run.
    g.bench_function("fig12_energy", |b| {
        let r = mini_run("deepsjeng_like", IqKind::Swque, CoreConfig::medium());
        let geometry = IqGeometry::medium();
        b.iter(|| black_box(iq_energy(&r, &geometry, true).total()))
    });

    // Figure 13 + Table 5: area model.
    g.bench_function("fig13_tab05_area", |b| {
        b.iter(|| {
            let a = areas(&IqGeometry::medium());
            black_box((a.figure13_rows(), a.overhead_fraction()))
        })
    });

    // Figure 14: multi-age-matrix variants.
    g.bench_function("fig14_multi_am", |b| {
        b.iter(|| {
            for kind in [IqKind::Age, IqKind::AgeMulti, IqKind::SwqueMulti] {
                black_box(mini_run("cam4_like", kind, CoreConfig::medium()));
            }
        })
    });

    g.finish();
}

fn bench_tables_and_sections(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables_sections");
    g.sample_size(10);

    // Table 6: cost model + cost-neutral AGE-150 run.
    g.bench_function("tab06_cost_neutral", |b| {
        b.iter(|| {
            black_box(cost_summary(&IqGeometry::medium()));
            let mut config = CoreConfig::medium();
            config.iq.capacity = 150;
            black_box(mini_run("x264_like", IqKind::Age, config));
        })
    });

    // Section 4.7: delay fractions.
    g.bench_function("sec47_delays", |b| {
        b.iter(|| {
            let d = delays(&IqGeometry::medium());
            black_box((d.double_tag_fraction(), d.payload_fraction(), d.dtm_overhead()))
        })
    });

    // Section 4.8: switch-penalty sensitivity.
    g.bench_function("sec48_switch_penalty", |b| {
        b.iter(|| {
            black_box(mini_run("pop2_like", IqKind::Swque, config_with_penalty(10)));
            black_box(mini_run("pop2_like", IqKind::Swque, config_with_penalty(40)));
        })
    });

    g.finish();
}

criterion_group!(benches, bench_figures, bench_tables_and_sections);
criterion_main!(benches);
