//! Synthetic benchmark kernels standing in for the SPEC2017 programs the
//! SWQUE paper evaluates.
//!
//! The paper runs all SPECspeed 2017 programs except `gcc` and `wrf`
//! (which did not run on its simulator) with refspeed inputs on an
//! Alpha-ISA SimpleScalar derivative. Neither the binaries nor the
//! toolchain are available here, so this crate provides one synthetic
//! kernel per program, written in the repo ISA and engineered to land in
//! the behaviour class the paper's Figure 9 annotation assigns to that
//! program:
//!
//! * **moderate ILP (m-ILP)** — modest parallelism with latency-critical
//!   dependence chains; the issue queue rarely fills, so *priority
//!   correctness* dominates (CIRC-PC's home turf).
//! * **rich ILP (r-ILP)** — wide independent parallelism that fills the
//!   queue; *capacity efficiency* dominates (AGE's home turf).
//! * **MLP** — memory-level parallelism from overlapped last-level-cache
//!   misses; again capacity-hungry (AGE's home turf).
//!
//! Every kernel is a deterministic parameterization of one of the generator
//! archetypes in [`synthetic`]; the [`suite`] module names them
//! `<spec-program>_like` and records their class so the experiment harness
//! can annotate results the way the paper's figures do.
//!
//! # Example
//!
//! ```
//! use swque_workloads::suite;
//!
//! let kernel = suite::by_name("deepsjeng_like").expect("known kernel");
//! let program = kernel.build_scaled(100); // small instance
//! assert!(!program.is_empty());
//!
//! let mut emu = swque_isa::Emulator::new(&program);
//! emu.run(10_000_000).expect("kernel terminates");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernel;
pub mod suite;
pub mod synthetic;

pub use kernel::{Category, IlpClass, Kernel};
