//! Rich-ILP FP archetype: wide independent floating-point streaming.
//!
//! Every unrolled element is independent of the others, so the window fills
//! with ready FP work that the two FPUs drain slowly: the issue queue runs
//! near capacity and the FLPI metric reads high. Capacity efficiency is all
//! that matters, so AGE ≈ SWQUE and CIRC-style allocation loses (paper
//! §4.2's rich-ILP FP programs).

use swque_rng::Rng;

use swque_isa::{Assembler, FReg, Program, Reg};

/// Parameters for [`stream_fp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamFpParams {
    /// Independent input arrays (1–4), each walked sequentially.
    pub arrays: usize,
    /// Bytes per array (power of two). Larger than the LLC makes the kernel
    /// memory-flavoured (the stream prefetcher covers most of it).
    pub footprint: u64,
    /// Independent FP ops per loaded element.
    pub fp_ops_per_elem: usize,
    /// Elements processed per iteration (unroll factor).
    pub unroll: usize,
    /// Data seed.
    pub seed: u64,
}

impl Default for StreamFpParams {
    fn default() -> StreamFpParams {
        StreamFpParams {
            arrays: 2,
            footprint: 1 << 20,
            fp_ops_per_elem: 2,
            unroll: 8,
            seed: 0xF10A7,
        }
    }
}

/// Generates a streaming rich-ILP FP kernel of `iters` iterations.
///
/// # Panics
///
/// Panics if `arrays` exceeds 4, `unroll` is 0, or `footprint` is not a
/// power of two large enough for one unrolled stride.
pub fn stream_fp(iters: u64, p: &StreamFpParams) -> Program {
    assert!((1..=4).contains(&p.arrays), "arrays out of range"); // swque-lint: allow(panic-in-lib) — documented `# Panics` parameter contract
    assert!(p.unroll > 0, "unroll must be positive");
    assert!(p.footprint.is_power_of_two() && p.footprint >= (p.unroll as u64) * 8); // swque-lint: allow(panic-in-lib) — documented `# Panics` parameter contract
    let mut rng = Rng::seed_from_u64(p.seed);
    let mut a = Assembler::new();

    // Seed only the first page of each array with seed-dependent values;
    // the rest reads as zero, which is fine for FP streaming arithmetic.
    let bases: Vec<u64> = (0..p.arrays).map(|k| 0x200_0000 + (k as u64) * 0x100_0000).collect();
    for (k, &b) in bases.iter().enumerate() {
        let vals: Vec<f64> =
            (0..512).map(|i| 1.0 + (i as f64) * rng.gen_range(0.1..0.5) + k as f64).collect();
        a.data_f64s(b, &vals);
    }

    a.li(Reg(1), iters as i64);
    for (k, &b) in bases.iter().enumerate() {
        a.li(Reg(24 + k as u8), b as i64); // stream pointers
    }
    a.li(Reg(4), (p.footprint - 1) as i64); // wrap mask
    a.data_f64s(0x1000, &[1.5, 0.25]);
    a.li(Reg(5), 0x1000);
    a.fld(FReg(1), Reg(5), 0); // multiplicand
    a.fld(FReg(2), Reg(5), 8); // addend

    a.label("loop");
    for u in 0..p.unroll {
        let arr = u % p.arrays;
        let ptr = Reg(24 + arr as u8);
        let v = FReg(8 + (u % 8) as u8);
        a.fld(v, ptr, (u as i64 / p.arrays as i64) * 8);
        for op in 0..p.fp_ops_per_elem {
            // Independent per element: each op feeds the next for THIS
            // element only (short chains of latency-4 ops).
            if op % 2 == 0 {
                a.fmul(v, v, FReg(1));
            } else {
                a.fadd(v, v, FReg(2));
            }
        }
        // Fold into per-lane accumulators (independent across lanes).
        let acc = FReg(16 + (u % 8) as u8);
        a.fadd(acc, acc, v);
    }
    // Advance and wrap the stream pointers.
    let stride = ((p.unroll / p.arrays).max(1) * 8) as i64;
    for k in 0..p.arrays {
        let ptr = Reg(24 + k as u8);
        a.addi(ptr, ptr, stride);
        // Wrap within the footprint: ptr = base + ((ptr - base) & mask).
        a.li(Reg(6), bases[k] as i64);
        a.sub(Reg(7), ptr, Reg(6));
        a.and(Reg(7), Reg(7), Reg(4));
        a.add(ptr, Reg(6), Reg(7));
    }
    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "loop");
    a.halt();
    // swque-lint: allow(panic-in-lib) — every label branched to is defined above; a dangling label is a generator bug caught by the suite tests
    a.finish().expect("generator emits valid labels")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::Emulator;

    #[test]
    fn accumulators_accumulate() {
        let p = stream_fp(50, &StreamFpParams::default());
        let mut emu = Emulator::new(&p);
        emu.run(5_000_000).unwrap();
        let acc: f64 = (0..8u8).map(|i| emu.fp_reg(FReg(16 + i))).sum();
        assert!(acc != 0.0 && acc.is_finite());
    }

    #[test]
    fn stream_pointers_stay_in_bounds() {
        let params = StreamFpParams { footprint: 1 << 14, ..StreamFpParams::default() };
        let p = stream_fp(5000, &params);
        let mut emu = Emulator::new(&p);
        emu.run(20_000_000).unwrap();
        for k in 0..2u8 {
            let base = 0x200_0000 + (k as u64) * 0x100_0000;
            let ptr = emu.int_reg(Reg(24 + k));
            assert!(ptr >= base && ptr < base + (1 << 14), "pointer {k} wrapped: {ptr:#x}");
        }
    }

    #[test]
    fn unroll_scales_body_size() {
        let small = stream_fp(1, &StreamFpParams { unroll: 4, ..StreamFpParams::default() });
        let big = stream_fp(1, &StreamFpParams { unroll: 12, ..StreamFpParams::default() });
        assert!(big.len() > small.len());
    }
}
