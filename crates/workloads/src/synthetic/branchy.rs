//! Moderate-ILP integer archetype: branchy search/compute loops.
//!
//! The generated loop carries several dependence chains (the critical
//! paths) alongside bursts of independent latency-tolerant work. The issue
//! queue stays lightly occupied, so an IQ with correct age priority keeps
//! the chains moving at one op per cycle, while a position-priority queue
//! lets young independent work displace older chain ops whenever the ALUs
//! are contended — exactly the gap CIRC-PC closes (paper §4.2).

use swque_rng::Rng;

use swque_isa::{Assembler, Program, Reg};

use super::{emit_biased_branch, emit_indep_alu, emit_lcg_step, emit_rand_load};

/// Parameters for [`branchy_search`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchyParams {
    /// Parallel loop-carried integer chains (1–8).
    pub chains: usize,
    /// Dependent single-cycle ops per chain per iteration.
    pub chain_ops: usize,
    /// Independent single-cycle ops per iteration.
    pub indep_ops: usize,
    /// Pseudo-random loads per iteration (within `footprint`).
    pub loads: usize,
    /// Stores per iteration.
    pub stores: usize,
    /// Data-dependent conditional branches per iteration.
    pub branches: usize,
    /// Branch taken-probability numerator out of 8 (e.g. 6 ⇒ 75%).
    pub taken_bias: i64,
    /// Data footprint in bytes (power of two; keep below the L2 to stay
    /// out of MLP territory).
    pub footprint: u64,
    /// Layout seed.
    pub seed: u64,
}

impl Default for BranchyParams {
    fn default() -> BranchyParams {
        BranchyParams {
            chains: 3,
            chain_ops: 6,
            indep_ops: 8,
            loads: 2,
            stores: 1,
            branches: 3,
            taken_bias: 6,
            footprint: 64 << 10,
            seed: 0x5EED,
        }
    }
}

/// Work items scheduled within one loop iteration.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Chain { chain: usize },
    Indep(usize),
    Load(usize),
    Store,
    Branch(usize),
}

/// Generates a branchy moderate-ILP integer kernel of `iters` iterations.
///
/// # Panics
///
/// Panics if `chains` exceeds 8 or `footprint` is not a power of two ≥ 8.
pub fn branchy_search(iters: u64, p: &BranchyParams) -> Program {
    assert!((1..=8).contains(&p.chains), "chains out of range"); // swque-lint: allow(panic-in-lib) — documented `# Panics` parameter contract
    assert!(p.footprint.is_power_of_two() && p.footprint >= 8);
    let mut rng = Rng::seed_from_u64(p.seed);
    let mut a = Assembler::new();

    // Initial data: fill the footprint with LCG noise so loads are defined.
    let words: Vec<u64> = {
        let mut x = p.seed | 1;
        (0..p.footprint / 8)
            .map(|_| {
                x = x.wrapping_mul(super::LCG_MUL as u64).wrapping_add(super::LCG_ADD as u64);
                x
            })
            .collect()
    };
    let base = 0x10_0000u64;
    a.data_u64s(base, &words);

    a.li(Reg(1), iters as i64);
    a.li(Reg(2), (p.seed | 1) as i64);
    a.li(Reg(3), base as i64);
    for c in 0..p.chains {
        a.li(Reg(16 + c as u8), c as i64 + 1);
    }
    a.label("loop");
    emit_lcg_step(&mut a);

    // Build and shuffle the iteration's work list. Chain ops keep their
    // intra-chain order (they are dependent); everything else lands at a
    // seed-determined position, giving each kernel instance its own shape.
    let mut slots: Vec<Slot> = Vec::new();
    for chain in 0..p.chains {
        for _ in 0..p.chain_ops {
            slots.push(Slot::Chain { chain });
        }
    }
    for j in 0..p.indep_ops {
        slots.push(Slot::Indep(j));
    }
    for l in 0..p.loads {
        slots.push(Slot::Load(l));
    }
    for _ in 0..p.stores {
        slots.push(Slot::Store);
    }
    for b in 0..p.branches {
        slots.push(Slot::Branch(b));
    }
    rng.shuffle(&mut slots);
    // Restore intra-chain op order after the shuffle.
    let mut chain_progress = vec![0usize; p.chains];
    let mut label_id = 0u32;
    for slot in &slots {
        match *slot {
            Slot::Chain { chain } => {
                let r = Reg(16 + chain as u8);
                let step = chain_progress[chain];
                chain_progress[chain] += 1;
                if step % 2 == 0 {
                    a.addi(r, r, 1 + chain as i64);
                } else {
                    a.xori(r, r, 0x2F + chain as i64);
                }
            }
            Slot::Indep(j) => emit_indep_alu(&mut a, j),
            Slot::Load(l) => emit_rand_load(&mut a, 5 + 3 * l as i64, p.footprint),
            Slot::Store => {
                // Store the last loaded value back at a random slot.
                let mask = (p.footprint - 1) & !7;
                a.srli(Reg(4), Reg(2), 23);
                a.andi(Reg(4), Reg(4), mask as i64);
                a.add(Reg(4), Reg(4), Reg(3));
                a.st(Reg(6), Reg(4), 0);
            }
            Slot::Branch(b) => {
                let label = format!("br{label_id}");
                label_id += 1;
                emit_biased_branch(&mut a, &label, 11 + 2 * b as i64, p.taken_bias, 2);
            }
        }
    }

    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "loop");
    a.halt();
    // swque-lint: allow(panic-in-lib) — every label branched to is defined above; a dangling label is a generator bug caught by the suite tests
    a.finish().expect("generator emits valid labels")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::Emulator;

    #[test]
    fn runs_to_completion_and_touches_memory() {
        let p = branchy_search(100, &BranchyParams::default());
        let mut emu = Emulator::new(&p);
        emu.run(5_000_000).unwrap();
        assert!(emu.retired() > 100 * 20, "a real body executes per iteration");
    }

    #[test]
    fn different_seeds_give_different_layouts() {
        let a = branchy_search(10, &BranchyParams::default());
        let b = branchy_search(10, &BranchyParams { seed: 999, ..BranchyParams::default() });
        assert_ne!(a.insts, b.insts);
        assert_eq!(a.insts.len(), b.insts.len(), "same work, different order");
    }

    #[test]
    fn chain_accumulators_progress() {
        let p = branchy_search(50, &BranchyParams::default());
        let mut emu = Emulator::new(&p);
        emu.run(5_000_000).unwrap();
        let moved = (0..3u8).filter(|&c| emu.int_reg(Reg(16 + c)) != (c + 1) as u64).count();
        assert!(moved >= 2, "chains progressed ({moved}/3 moved from their seeds)");
    }

    #[test]
    #[should_panic(expected = "chains out of range")]
    fn too_many_chains_rejected() {
        let _ = branchy_search(1, &BranchyParams { chains: 9, ..BranchyParams::default() });
    }
}
