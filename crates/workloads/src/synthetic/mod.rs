//! Parameterized synthetic-kernel generators.
//!
//! Four archetypes cover the behaviour classes of the paper's benchmark
//! suite; every named kernel in [`crate::suite`] is a tuned instance of one
//! of these:
//!
//! * [`branchy_search`] — integer moderate-ILP: loop-carried dependence
//!   chains, data-dependent branches, cache-resident data.
//! * [`pointer_chase`] — MLP: parallel pointer chains over a footprint far
//!   exceeding the LLC, so misses overlap and window capacity limits
//!   memory-level parallelism.
//! * [`stream_fp`] — rich-ILP FP: wide independent floating-point work over
//!   streaming arrays; the issue queue fills and capacity efficiency
//!   dominates.
//! * [`fp_recurrence`] — moderate-ILP FP: latency-critical loop-carried FP
//!   chains with latency-tolerant side work.
//!
//! All generators are deterministic given their parameters: layout
//! randomness comes from the in-tree seeded [`swque_rng::Rng`], whose
//! output stream is pinned forever, so a (kernel, parameters) pair denotes
//! the same instruction trace in every checkout. The golden-trace tests in
//! `tests/golden_trace.rs` enforce this.
//!
//! # Register conventions
//!
//! `r1` outer counter, `r2` LCG state, `r3` data base, `r4`–`r7` temps,
//! `r8`–`r15` independent-op destinations, `r16`–`r23` chain accumulators,
//! `r24`–`r27` secondary pointers. FP registers follow the same split.

mod branchy;
mod chase_clump;
mod phased;
mod pointer;
mod recurrence;
mod stream;

pub use branchy::{branchy_search, BranchyParams};
pub use chase_clump::{chase_clump, ChaseClumpParams};
pub use phased::{phased, PhasedParams};
pub use pointer::{pointer_chase, PointerChaseParams};
pub use recurrence::{fp_recurrence, FpRecurrenceParams};
pub use stream::{stream_fp, StreamFpParams};

use swque_isa::{Assembler, Reg};

/// LCG constants used for in-program pseudo-randomness.
pub(crate) const LCG_MUL: i64 = 6364136223846793005;
pub(crate) const LCG_ADD: i64 = 1442695040888963407;

/// Emits one LCG step: `r2 = r2 * LCG_MUL + LCG_ADD` (one `mul`, one
/// `addi`). The multiply also exercises the iMULT unit.
pub(crate) fn emit_lcg_step(a: &mut Assembler) {
    a.li(Reg(7), LCG_MUL);
    a.mul(Reg(2), Reg(2), Reg(7));
    a.addi(Reg(2), Reg(2), LCG_ADD);
}

/// Emits a data-dependent conditional branch that is taken with probability
/// `bias/8`, judged from LCG bits at `shift`. The not-taken path executes
/// `skipped` extra independent ops. Returns having defined the join label.
pub(crate) fn emit_biased_branch(
    a: &mut Assembler,
    label: &str,
    shift: i64,
    bias: i64,
    skipped: usize,
) {
    a.srli(Reg(5), Reg(2), shift);
    a.andi(Reg(5), Reg(5), 7);
    a.slti(Reg(5), Reg(5), bias);
    a.bne(Reg(5), Reg::ZERO, label);
    for j in 0..skipped {
        a.xori(Reg(8 + (j % 8) as u8), Reg(1), 0x55 + j as i64);
    }
    a.label(label);
}

/// Emits a pseudo-random load within `[base_reg, base_reg + footprint)`
/// (footprint must be a power of two ≥ 8); the loaded value lands in `r6`.
pub(crate) fn emit_rand_load(a: &mut Assembler, shift: i64, footprint: u64) {
    debug_assert!(footprint.is_power_of_two() && footprint >= 8);
    let mask = (footprint - 1) & !7;
    a.srli(Reg(4), Reg(2), shift);
    a.andi(Reg(4), Reg(4), mask as i64);
    a.add(Reg(4), Reg(4), Reg(3));
    a.ld(Reg(6), Reg(4), 0);
}

/// Emits one independent single-cycle ALU op into a rotating destination.
pub(crate) fn emit_indep_alu(a: &mut Assembler, j: usize) {
    let dst = Reg(8 + (j % 8) as u8);
    match j % 3 {
        0 => a.xori(dst, Reg(1), 0x1234 + j as i64),
        1 => a.addi(dst, Reg(1), 7 + j as i64),
        _ => a.ori(dst, Reg(1), 0x0F0F ^ j as i64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::Emulator;

    /// Every generator must produce terminating, deterministic programs.
    #[test]
    fn archetypes_terminate_and_are_deterministic() {
        let programs: Vec<(&str, swque_isa::Program, swque_isa::Program)> = vec![
            (
                "branchy",
                branchy_search(50, &BranchyParams::default()),
                branchy_search(50, &BranchyParams::default()),
            ),
            (
                "pointer",
                pointer_chase(20, &PointerChaseParams { nodes: 1 << 10, ..Default::default() }),
                pointer_chase(20, &PointerChaseParams { nodes: 1 << 10, ..Default::default() }),
            ),
            ("stream", stream_fp(30, &StreamFpParams::default()), stream_fp(30, &StreamFpParams::default())),
            (
                "recurrence",
                fp_recurrence(40, &FpRecurrenceParams::default()),
                fp_recurrence(40, &FpRecurrenceParams::default()),
            ),
            ("phased", phased(4, &PhasedParams::default()), phased(4, &PhasedParams::default())),
        ];
        for (name, p1, p2) in programs {
            assert_eq!(p1.insts, p2.insts, "{name}: generator must be deterministic");
            let mut emu = Emulator::new(&p1);
            let retired = emu.run(20_000_000).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(retired > 100, "{name}: does real work");
        }
    }
}
