//! Moderate-ILP FP archetype: latency-critical loop-carried FP recurrences.
//!
//! A few floating-point chains (each op is latency-4) carry across
//! iterations; the side work is latency-tolerant. With only two FPUs, a
//! chain op that loses arbitration to younger side work delays the whole
//! recurrence — the FP flavour of the priority-sensitivity that CIRC-PC
//! exploits (paper §4.2's moderate-ILP FP programs).

use swque_rng::Rng;

use swque_isa::{Assembler, FReg, Program, Reg};

use super::{emit_biased_branch, emit_indep_alu, emit_lcg_step};

/// Parameters for [`fp_recurrence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpRecurrenceParams {
    /// Loop-carried FP chains (1–8).
    pub chains: usize,
    /// Dependent FP ops per chain per iteration.
    pub chain_ops: usize,
    /// Independent FP ops per iteration (latency-tolerant).
    pub indep_fp: usize,
    /// Independent integer ops per iteration.
    pub indep_int: usize,
    /// Cache-resident FP loads per iteration.
    pub loads: usize,
    /// Biased data-dependent branches per iteration.
    pub branches: usize,
    /// Layout seed.
    pub seed: u64,
}

impl Default for FpRecurrenceParams {
    fn default() -> FpRecurrenceParams {
        FpRecurrenceParams {
            chains: 2,
            chain_ops: 3,
            indep_fp: 3,
            indep_int: 4,
            loads: 2,
            branches: 1,
            seed: 0xFACADE,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    Chain(usize),
    IndepFp(usize),
    IndepInt(usize),
    Load(usize),
    Branch(usize),
}

/// Generates an FP-recurrence moderate-ILP kernel of `iters` iterations.
///
/// # Panics
///
/// Panics if `chains` is outside `1..=8`.
pub fn fp_recurrence(iters: u64, p: &FpRecurrenceParams) -> Program {
    assert!((1..=8).contains(&p.chains), "chains out of range"); // swque-lint: allow(panic-in-lib) — documented `# Panics` parameter contract
    let mut rng = Rng::seed_from_u64(p.seed);
    let mut a = Assembler::new();

    let base = 0x40_0000u64;
    let table: Vec<f64> = (0..1024).map(|i| 0.5 + (i as f64) * 0.125).collect();
    a.data_f64s(base, &table);
    a.data_f64s(0x1000, &[1.0000001, 0.99999, 0.5]);

    a.li(Reg(1), iters as i64);
    a.li(Reg(2), (p.seed | 1) as i64);
    a.li(Reg(3), base as i64);
    a.li(Reg(5), 0x1000);
    a.fld(FReg(1), Reg(5), 0); // near-1 multiplier keeps chains finite
    a.fld(FReg(2), Reg(5), 8);
    a.fld(FReg(3), Reg(5), 16);
    for c in 0..p.chains {
        a.fmul(FReg(16 + c as u8), FReg(1), FReg(2));
    }

    a.label("loop");
    emit_lcg_step(&mut a);

    let mut slots: Vec<Slot> = Vec::new();
    for c in 0..p.chains {
        for _ in 0..p.chain_ops {
            slots.push(Slot::Chain(c));
        }
    }
    for j in 0..p.indep_fp {
        slots.push(Slot::IndepFp(j));
    }
    for j in 0..p.indep_int {
        slots.push(Slot::IndepInt(j));
    }
    for l in 0..p.loads {
        slots.push(Slot::Load(l));
    }
    for b in 0..p.branches {
        slots.push(Slot::Branch(b));
    }
    rng.shuffle(&mut slots);

    let mut chain_step = vec![0usize; p.chains];
    let mut label_id = 0u32;
    for slot in &slots {
        match *slot {
            Slot::Chain(c) => {
                let r = FReg(16 + c as u8);
                let step = chain_step[c];
                chain_step[c] += 1;
                if step % 2 == 0 {
                    a.fmul(r, r, FReg(1)); // ×(1+ε): bounded growth
                } else {
                    a.fadd(r, r, FReg(3));
                }
            }
            Slot::IndepFp(j) => {
                let dst = FReg(8 + (j % 8) as u8);
                a.fmul(dst, FReg(2), FReg(3));
            }
            Slot::IndepInt(j) => emit_indep_alu(&mut a, j),
            Slot::Load(l) => {
                a.srli(Reg(4), Reg(2), 7 + 3 * l as i64);
                a.andi(Reg(4), Reg(4), 0x1FF8);
                a.add(Reg(4), Reg(4), Reg(3));
                a.fld(FReg(4 + (l % 4) as u8), Reg(4), 0);
            }
            Slot::Branch(b) => {
                let label = format!("fb{label_id}");
                label_id += 1;
                emit_biased_branch(&mut a, &label, 17 + 2 * b as i64, 6, 1);
            }
        }
    }

    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "loop");
    a.halt();
    // swque-lint: allow(panic-in-lib) — every label branched to is defined above; a dangling label is a generator bug caught by the suite tests
    a.finish().expect("generator emits valid labels")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::Emulator;

    #[test]
    fn chains_stay_finite_over_long_runs() {
        let p = fp_recurrence(10_000, &FpRecurrenceParams::default());
        let mut emu = Emulator::new(&p);
        emu.run(50_000_000).unwrap();
        for c in 0..2u8 {
            let v = emu.fp_reg(FReg(16 + c));
            assert!(v.is_finite() && v != 0.0, "chain {c} = {v}");
        }
    }

    #[test]
    fn layout_varies_with_seed() {
        let a = fp_recurrence(5, &FpRecurrenceParams::default());
        let b = fp_recurrence(5, &FpRecurrenceParams { seed: 1, ..FpRecurrenceParams::default() });
        assert_ne!(a.insts, b.insts);
    }
}
