//! Moderate-ILP archetype v2: latency-critical cache-resident pointer
//! chains contending with latency-tolerant young loads on the load ports.
//!
//! This is the workload shape where issue priority decides performance
//! (paper §1 and §4.2's moderate-ILP programs):
//!
//! * A few **chase chains** walk small, cache-resident pointer rings. Each
//!   link's load feeds the next, so the chain advances one load every few
//!   cycles — the critical path. Chain loads sit in the issue queue long
//!   before their operand arrives, so when they *do* become ready they are
//!   among the oldest instructions present.
//! * A stream of **young gather loads** (sequential, immediate-offset, no
//!   address dependence) is ready the moment it dispatches and keeps the
//!   two load ports near saturation. Their results feed only
//!   latency-tolerant side work.
//!
//! With age-correct priority (SHIFT, CIRC-PC), a ready chain load always
//! beats the young gathers and the chain runs at cache-hit speed. With
//! position-random priority (RAND, and AGE beyond its single protected
//! oldest), ready chain loads repeatedly lose the port race to younger
//! gathers, and every lost cycle lengthens the program's critical path.

use swque_rng::Rng;

use swque_isa::{Assembler, FReg, Program, Reg};

use super::{emit_biased_branch, emit_indep_alu, emit_lcg_step};

/// Parameters for [`chase_clump`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaseClumpParams {
    /// Critical pointer-chase chains (1–6).
    pub chains: usize,
    /// Chase loads per chain per iteration.
    pub links: usize,
    /// Dependent ALU ops appended to each link (critical integer work that
    /// becomes ready the moment the chase load returns, contending for the
    /// ALUs alongside the next link's contention for the load ports).
    pub link_alu: usize,
    /// Young sequential gather loads per iteration (load-port pressure).
    pub young_loads: usize,
    /// Byte stride between consecutive young gather loads. 8 walks densely
    /// (cache friendly); 64+ touches a fresh line per load so the gathers
    /// keep missing the L1 in steady state, which sustains the load-port
    /// backlog that makes priority matter.
    pub young_stride: u64,
    /// Dependent ALU ops consuming gathered values per iteration.
    pub clump_deps: usize,
    /// Independent integer filler ops per iteration.
    pub filler_int: usize,
    /// Independent FP filler ops per iteration.
    pub filler_fp: usize,
    /// Loop-carried FP-chain ops per iteration (FP-flavoured kernels):
    /// a dependent `fmul`/`fadd` recurrence on `f20`.
    pub fp_chain_ops: usize,
    /// Data-dependent biased branches per iteration.
    pub branches: usize,
    /// Branch taken-probability numerator out of 8.
    pub taken_bias: i64,
    /// Hard-to-predict branches per iteration whose condition derives from
    /// a *gathered* value: they are data-random (gshare cannot learn them)
    /// and resolve late (after the feeding load). Their mispredictions
    /// periodically collapse the in-flight window, which is what keeps real
    /// moderate-ILP programs' issue queues lightly occupied.
    pub hard_branches: usize,
    /// Taken-probability numerator (out of 8) for hard branches; values
    /// near 4–6 give realistic moderate-ILP misprediction distances.
    pub hard_bias: i64,
    /// Chase-ring bytes (power of two; keep it L1-resident so links run at
    /// hit latency).
    pub ring_bytes: u64,
    /// Gather-buffer bytes (power of two; L2-resident).
    pub gather_bytes: u64,
    /// Layout seed.
    pub seed: u64,
}

impl Default for ChaseClumpParams {
    fn default() -> ChaseClumpParams {
        ChaseClumpParams {
            chains: 2,
            links: 4,
            link_alu: 2,
            young_loads: 18,
            young_stride: 64,
            clump_deps: 6,
            filler_int: 4,
            filler_fp: 4,
            fp_chain_ops: 0,
            branches: 1,
            taken_bias: 7,
            hard_branches: 1,
            hard_bias: 6,
            ring_bytes: 16 << 10,
            gather_bytes: 256 << 10,
            seed: 0xC1A5,
        }
    }
}

/// Generates a chase-and-clump moderate-ILP kernel of `iters` iterations.
///
/// # Panics
///
/// Panics if `chains` is outside `1..=4` or a footprint is not a power of
/// two ≥ 64.
pub fn chase_clump(iters: u64, p: &ChaseClumpParams) -> Program {
    assert!((1..=6).contains(&p.chains), "chains out of range"); // swque-lint: allow(panic-in-lib) — documented `# Panics` parameter contract
    assert!(p.ring_bytes.is_power_of_two() && p.ring_bytes >= 64);
    assert!(p.gather_bytes.is_power_of_two() && p.gather_bytes >= 64); // swque-lint: allow(panic-in-lib) — documented `# Panics` parameter contract
    let mut rng = Rng::seed_from_u64(p.seed);
    let mut a = Assembler::new();

    // Chase ring: Sattolo single cycle over the L1-resident nodes.
    let ring_base = 0x10_0000u64;
    let nodes = (p.ring_bytes / 8) as usize;
    let mut perm: Vec<u32> = (0..nodes as u32).collect();
    for i in (1..nodes).rev() {
        let j = rng.gen_range(0..i);
        perm.swap(i, j);
    }
    let ring: Vec<u64> = perm.iter().map(|&n| ring_base + n as u64 * 8).collect();
    a.data_u64s(ring_base, &ring);

    // Gather buffer: LCG noise, so hard-branch conditions derived from
    // gathered values are unlearnable by the direction predictor.
    let gather_base = 0x80_0000u64;
    let mut x = p.seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let gather_words: Vec<u64> = (0..p.gather_bytes / 8)
        .map(|_| {
            x = x.wrapping_mul(super::LCG_MUL as u64).wrapping_add(super::LCG_ADD as u64);
            x
        })
        .collect();
    a.data_u64s(gather_base, &gather_words);
    a.data_f64s(0x1000, &[1.25, 0.75]);

    a.li(Reg(1), iters as i64);
    a.li(Reg(2), (p.seed | 1) as i64);
    a.li(Reg(25), gather_base as i64); // gather cursor
    a.li(Reg(26), (p.gather_bytes - 1) as i64); // gather wrap mask
    a.li(Reg(27), gather_base as i64);
    for c in 0..p.chains {
        let start = (nodes / p.chains) * c;
        a.li(Reg(16 + c as u8), (ring_base + start as u64 * 8) as i64);
    }
    a.li(Reg(5), 0x1000);
    a.fld(FReg(1), Reg(5), 0);
    a.fld(FReg(2), Reg(5), 8);
    if p.fp_chain_ops > 0 {
        a.fmul(FReg(20), FReg(1), FReg(2));
    }

    a.label("loop");
    emit_lcg_step(&mut a);

    // Interleave chase links round-robin with the young work so every part
    // of the iteration sees port contention.
    let total_links = p.chains * p.links;
    let young_per_link = p.young_loads.div_ceil(total_links.max(1));
    let deps_per_link = p.clump_deps.div_ceil(total_links.max(1));
    let mut young_emitted = 0usize;
    let mut deps_emitted = 0usize;
    let mut fill_int = 0usize;
    let mut fill_fp = 0usize;
    for link in 0..p.links {
        for c in 0..p.chains {
            let r = Reg(16 + c as u8);
            a.ld(r, r, 0); // critical: p = *p
            // Critical ALU tail of the link: dependent on the loaded
            // pointer, net-zero change so the walk stays on the ring.
            for w in 0..p.link_alu {
                if w % 2 == 0 {
                    a.addi(r, r, 24);
                } else {
                    a.addi(r, r, -24);
                }
            }
            if p.link_alu % 2 == 1 {
                a.addi(r, r, -24); // balance an odd tail
            }
            // Young gathers: ready at dispatch, contend for the ports.
            for _ in 0..young_per_link {
                if young_emitted < p.young_loads {
                    let dst = Reg(8 + (young_emitted % 4) as u8);
                    a.ld(dst, Reg(25), (young_emitted as u64 * p.young_stride) as i64);
                    young_emitted += 1;
                }
            }
            for _ in 0..deps_per_link {
                if deps_emitted < p.clump_deps {
                    let src = Reg(8 + (deps_emitted % 4) as u8);
                    let dst = Reg(12 + (deps_emitted % 4) as u8);
                    a.add(dst, src, Reg(2));
                    deps_emitted += 1;
                }
            }
            if fill_int < p.filler_int && link % 2 == 0 {
                emit_indep_alu(&mut a, fill_int);
                fill_int += 1;
            }
            if fill_fp < p.filler_fp && link % 2 == 1 {
                let dst = FReg(8 + (fill_fp % 8) as u8);
                a.fmul(dst, FReg(1), FReg(2));
                fill_fp += 1;
            }
        }
    }
    while fill_int < p.filler_int {
        emit_indep_alu(&mut a, fill_int);
        fill_int += 1;
    }
    while fill_fp < p.filler_fp {
        let dst = FReg(8 + (fill_fp % 8) as u8);
        a.fmul(dst, FReg(1), FReg(2));
        fill_fp += 1;
    }

    // Advance the gather cursor and wrap inside the buffer.
    a.addi(Reg(25), Reg(25), (p.young_loads as u64 * p.young_stride) as i64);
    a.sub(Reg(4), Reg(25), Reg(27));
    a.and(Reg(4), Reg(4), Reg(26));
    a.add(Reg(25), Reg(27), Reg(4));

    let mut label_id = 0u32;
    for b in 0..p.branches {
        let label = format!("cc{label_id}");
        label_id += 1;
        emit_biased_branch(&mut a, &label, 19 + 2 * b as i64, p.taken_bias, 1);
    }
    // Hard branches: condition bits come from a gathered value, so the
    // direction is data-random and resolution waits for the load.
    for b in 0..p.hard_branches {
        let label = format!("cch{label_id}");
        label_id += 1;
        let src = Reg(8 + (b % 4) as u8); // a gather destination
        a.srli(Reg(5), src, 2 + b as i64);
        a.andi(Reg(5), Reg(5), 7);
        a.slti(Reg(5), Reg(5), p.hard_bias);
        a.bne(Reg(5), Reg::ZERO, &label);
        a.xori(Reg(14), Reg(1), 0x3C3);
        a.label(&label);
    }

    // Loop-carried FP recurrence (kept finite by a near-one multiplier).
    for op in 0..p.fp_chain_ops {
        if op % 2 == 0 {
            a.fmul(FReg(20), FReg(20), FReg(2)); // x0.75
        } else {
            a.fadd(FReg(20), FReg(20), FReg(1)); // +1.25
        }
    }

    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "loop");
    a.halt();
    // swque-lint: allow(panic-in-lib) — every label branched to is defined above; a dangling label is a generator bug caught by the suite tests
    a.finish().expect("generator emits valid labels")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::Emulator;

    #[test]
    fn chains_stay_on_their_ring() {
        let params = ChaseClumpParams::default();
        let p = chase_clump(200, &params);
        let mut emu = Emulator::new(&p);
        emu.run(10_000_000).unwrap();
        let base = 0x10_0000u64;
        let end = base + params.ring_bytes;
        for c in 0..params.chains as u8 {
            let v = emu.int_reg(Reg(16 + c));
            assert!(v >= base && v < end, "chain {c} escaped: {v:#x}");
        }
    }

    #[test]
    fn gather_cursor_wraps_in_bounds() {
        let params = ChaseClumpParams { gather_bytes: 1 << 12, ..ChaseClumpParams::default() };
        let p = chase_clump(5_000, &params);
        let mut emu = Emulator::new(&p);
        emu.run(30_000_000).unwrap();
        let cursor = emu.int_reg(Reg(25));
        assert!(cursor >= 0x80_0000 && cursor < 0x80_0000 + (1 << 12));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = chase_clump(10, &ChaseClumpParams::default());
        let b = chase_clump(10, &ChaseClumpParams::default());
        assert_eq!(a.insts, b.insts);
    }
}
