//! MLP archetype: parallel pointer chases over an LLC-busting footprint.
//!
//! Each chain performs a dependent load ring-walk (`p = *p`), so one miss
//! per chain can be outstanding; with many chains, misses overlap — if the
//! machine's window reaches far enough to *start* them all. The chase loads
//! are deliberately spread out with filler work, so a capacity-inefficient
//! queue (CIRC's holes) cannot reach the later chains' loads and loses
//! memory-level parallelism, while a full-capacity queue (AGE) overlaps
//! them all (paper §1's MLP argument and §4.2's MLP programs).

use swque_rng::Rng;

use swque_isa::{Assembler, FReg, Program, Reg};

use super::emit_indep_alu;

/// Parameters for [`pointer_chase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerChaseParams {
    /// Parallel chase chains (MLP degree); at most 8.
    pub chains: usize,
    /// Ring nodes; footprint = `nodes * 8` bytes (use ≫ LLC capacity).
    pub nodes: u64,
    /// Independent filler ops between consecutive chase loads — this is
    /// what makes window capacity matter.
    pub spacing: usize,
    /// Dependent ALU ops applied to each loaded pointer (adds latency to
    /// the chain without changing the address).
    pub alu_work: usize,
    /// Independent FP ops per iteration (for FP-categorised MLP kernels
    /// like `fotonik3d`).
    pub fp_work: usize,
    /// Ring-permutation seed.
    pub seed: u64,
}

impl Default for PointerChaseParams {
    fn default() -> PointerChaseParams {
        PointerChaseParams {
            chains: 8,
            nodes: 1 << 20, // 8 MiB, 4x the paper's 2 MB LLC
            spacing: 14,
            alu_work: 1,
            fp_work: 0,
            seed: 0xC0FFEE,
        }
    }
}

/// Builds a random ring permutation (a single cycle) with Sattolo's
/// algorithm and returns the node table: `table[i]` is the *address* of the
/// successor of node `i`.
fn ring_table(nodes: u64, base: u64, rng: &mut Rng) -> Vec<u64> {
    let n = nodes as usize;
    let mut perm: Vec<u32> = (0..n as u32).collect();
    // Sattolo: guarantees a single cycle covering all nodes.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i);
        perm.swap(i, j);
    }
    // perm is a cyclic permutation; successor of node i is perm[i].
    perm.iter().map(|&next| base + next as u64 * 8).collect()
}

/// Generates a pointer-chase MLP kernel of `iters` iterations (each
/// iteration advances every chain one node).
///
/// # Panics
///
/// Panics if `chains` exceeds 8 or `nodes < chains * 8`.
pub fn pointer_chase(iters: u64, p: &PointerChaseParams) -> Program {
    assert!((1..=8).contains(&p.chains), "chains out of range"); // swque-lint: allow(panic-in-lib) — documented `# Panics` parameter contract
    assert!(p.nodes >= p.chains as u64 * 8, "ring too small for the chains");
    let mut rng = Rng::seed_from_u64(p.seed);
    let base = 0x100_0000u64;
    let table = ring_table(p.nodes, base, &mut rng);

    let mut a = Assembler::new();
    a.data_u64s(base, &table);
    if p.fp_work > 0 {
        a.data_f64s(0x1000, &[1.0 + 1.0 / 3.0, 0.75, 2.5]);
    }

    a.li(Reg(1), iters as i64);
    // Start the chains at evenly spaced ring phases.
    for k in 0..p.chains {
        let start = (p.nodes / p.chains as u64) * k as u64;
        a.li(Reg(16 + k as u8), (base + start * 8) as i64);
    }
    if p.fp_work > 0 {
        a.li(Reg(4), 0x1000);
        a.fld(FReg(1), Reg(4), 0);
        a.fld(FReg(2), Reg(4), 8);
    }

    a.label("loop");
    let mut indep = 0usize;
    for k in 0..p.chains {
        let r = Reg(16 + k as u8);
        a.ld(r, r, 0); // p = *p : the chase
        for w in 0..p.alu_work {
            // Dependent no-net-change work: lengthens the chain's latency
            // footprint without corrupting the pointer.
            a.addi(r, r, 8 + w as i64);
            a.addi(r, r, -(8 + w as i64));
        }
        for _ in 0..p.spacing {
            emit_indep_alu(&mut a, indep);
            indep += 1;
        }
        for f in 0..p.fp_work {
            let dst = FReg(8 + (f % 8) as u8);
            a.fmul(dst, FReg(1), FReg(2));
        }
    }
    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "loop");
    a.halt();
    // swque-lint: allow(panic-in-lib) — every label branched to is defined above; a dangling label is a generator bug caught by the suite tests
    a.finish().expect("generator emits valid labels")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::Emulator;

    fn small() -> PointerChaseParams {
        PointerChaseParams { nodes: 1 << 12, ..PointerChaseParams::default() }
    }

    #[test]
    fn chains_walk_the_ring_without_escaping() {
        let p = pointer_chase(64, &small());
        let mut emu = Emulator::new(&p);
        emu.run(10_000_000).unwrap();
        let base = 0x100_0000u64;
        let end = base + (1u64 << 12) * 8;
        for k in 0..8u8 {
            let ptr = emu.int_reg(Reg(16 + k));
            assert!(ptr >= base && ptr < end, "chain {k} stayed on the ring: {ptr:#x}");
            assert_eq!(ptr % 8, 0, "aligned node address");
        }
    }

    #[test]
    fn ring_is_a_single_cycle() {
        let mut rng = Rng::seed_from_u64(7);
        let n = 256u64;
        let base = 0u64;
        let table = ring_table(n, base, &mut rng);
        // Follow the ring; we must visit all nodes before returning to 0.
        let mut seen = vec![false; n as usize];
        let mut at = 0u64;
        for _ in 0..n {
            assert!(!seen[at as usize], "revisited node {at} early: not a single cycle");
            seen[at as usize] = true;
            at = table[at as usize] / 8;
        }
        assert_eq!(at, 0, "returned to start after exactly n steps");
    }

    #[test]
    fn distinct_chains_start_at_distinct_phases() {
        let p = pointer_chase(1, &small());
        let mut emu = Emulator::new(&p);
        // Execute only the initialization (1 counter li + 8 chain li).
        for _ in 0..9 {
            emu.step().unwrap();
        }
        let mut starts: Vec<u64> = (0..8u8).map(|k| emu.int_reg(Reg(16 + k))).collect();
        starts.dedup();
        assert_eq!(starts.len(), 8);
    }

    #[test]
    fn fp_variant_executes_fp_work() {
        let params = PointerChaseParams { fp_work: 2, ..small() };
        let p = pointer_chase(16, &params);
        let mut emu = Emulator::new(&p);
        emu.run(5_000_000).unwrap();
        assert_ne!(emu.fp_reg(FReg(8)), 0.0);
    }
}
