//! Phase-alternating archetype: moderate-ILP compute phases interleaved
//! with memory-intensive pointer-chase phases.
//!
//! This is the stress case for SWQUE's mode controller (paper §3.2): the
//! right configuration differs per phase, so the controller must follow the
//! program — and the §4.8 switch-rate measurement needs a workload that
//! actually changes phase.

use swque_rng::Rng;

use swque_isa::{Assembler, Program, Reg};

use super::{emit_biased_branch, emit_indep_alu, emit_lcg_step, emit_rand_load};

/// Parameters for [`phased`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhasedParams {
    /// Iterations of the compute (m-ILP) inner loop per phase.
    pub compute_iters: u64,
    /// Iterations of the memory (MLP) inner loop per phase.
    pub memory_iters: u64,
    /// Parallel chase chains in the memory phase (≤ 8).
    pub chains: usize,
    /// Ring nodes for the memory phase (footprint = `nodes * 8`).
    pub nodes: u64,
    /// Compute-phase dependent chain ops per iteration.
    pub chain_ops: usize,
    /// Seed for ring layout.
    pub seed: u64,
}

impl Default for PhasedParams {
    fn default() -> PhasedParams {
        PhasedParams {
            compute_iters: 4_000,
            memory_iters: 600,
            chains: 8,
            nodes: 1 << 20,
            chain_ops: 6,
            seed: 0xA5A5,
        }
    }
}

/// Generates a kernel alternating compute and memory phases `phases` times.
///
/// # Panics
///
/// Panics if `chains` exceeds 8.
pub fn phased(phases: u64, p: &PhasedParams) -> Program {
    assert!((1..=8).contains(&p.chains), "chains out of range"); // swque-lint: allow(panic-in-lib) — documented `# Panics` parameter contract
    let mut rng = Rng::seed_from_u64(p.seed);
    let base = 0x100_0000u64;
    // Ring for the memory phase (Sattolo single cycle).
    let n = p.nodes as usize;
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i);
        perm.swap(i, j);
    }
    let table: Vec<u64> = perm.iter().map(|&next| base + next as u64 * 8).collect();

    let mut a = Assembler::new();
    a.data_u64s(base, &table);
    // Small compute-phase footprint.
    let small: Vec<u64> = (0..4096).map(|i| i * 3 + 1).collect();
    a.data_u64s(0x40_0000, &small);

    a.li(Reg(28), phases as i64);
    a.li(Reg(2), (p.seed | 1) as i64);
    a.label("phase");

    // ---- compute (m-ILP) phase ----
    a.li(Reg(1), p.compute_iters as i64);
    a.li(Reg(3), 0x40_0000);
    for c in 0..3u8 {
        a.li(Reg(16 + c), c as i64 + 1);
    }
    a.label("compute");
    emit_lcg_step(&mut a);
    for c in 0..3u8 {
        for op in 0..p.chain_ops {
            if op % 2 == 0 {
                a.addi(Reg(16 + c), Reg(16 + c), 1);
            } else {
                a.xori(Reg(16 + c), Reg(16 + c), 0x33);
            }
        }
    }
    for j in 0..6 {
        emit_indep_alu(&mut a, j);
    }
    emit_rand_load(&mut a, 9, 32 << 10);
    emit_biased_branch(&mut a, "pc0", 13, 6, 2);
    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "compute");

    // ---- memory (MLP) phase ----
    a.li(Reg(1), p.memory_iters as i64);
    for k in 0..p.chains {
        let start = (p.nodes / p.chains as u64) * k as u64;
        a.li(Reg(16 + k as u8), (base + start * 8) as i64);
    }
    a.label("memory");
    let mut indep = 0usize;
    for k in 0..p.chains {
        let r = Reg(16 + k as u8);
        a.ld(r, r, 0);
        for _ in 0..12 {
            emit_indep_alu(&mut a, indep);
            indep += 1;
        }
    }
    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "memory");

    a.addi(Reg(28), Reg(28), -1);
    a.bne(Reg(28), Reg::ZERO, "phase");
    a.halt();
    // swque-lint: allow(panic-in-lib) — every label branched to is defined above; a dangling label is a generator bug caught by the suite tests
    a.finish().expect("generator emits valid labels")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::Emulator;

    #[test]
    fn alternates_and_terminates() {
        let params =
            PhasedParams { compute_iters: 50, memory_iters: 20, nodes: 1 << 10, ..Default::default() };
        let p = phased(3, &params);
        let mut emu = Emulator::new(&p);
        let retired = emu.run(10_000_000).unwrap();
        // 3 phases × (50 compute + 20 memory) iterations of real bodies.
        assert!(retired > 3 * (50 * 20 + 20 * 50));
    }

    #[test]
    fn phase_counts_scale_length() {
        let params = PhasedParams { nodes: 1 << 10, ..Default::default() };
        let p2 = phased(2, &params);
        let mut emu = Emulator::new(&p2);
        // Memory-phase chase pointers must stay on the ring.
        emu.run(200_000_000).unwrap();
        let end = 0x100_0000u64 + (1u64 << 10) * 8;
        for k in 0..8u8 {
            let v = emu.int_reg(Reg(16 + k));
            assert!(v < end, "register {k} within data bounds");
        }
    }
}
