//! Kernel metadata: name, SPEC counterpart, and behaviour class.

use std::fmt;

use swque_isa::Program;

/// Integer or floating-point program (the paper averages the two groups
/// separately: "GM int" and "GM fp").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// SPECspeed 2017 INT counterpart.
    Int,
    /// SPECspeed 2017 FP counterpart.
    Fp,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::Int => write!(f, "INT"),
            Category::Fp => write!(f, "FP"),
        }
    }
}

/// The paper's Figure 9 behaviour annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IlpClass {
    /// Moderate ILP: priority-sensitive, low capacity demand.
    ModerateIlp,
    /// Rich ILP: capacity-demanding through instruction parallelism.
    RichIlp,
    /// Memory-level parallelism: capacity-demanding through overlapped LLC
    /// misses.
    Mlp,
}

impl fmt::Display for IlpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpClass::ModerateIlp => write!(f, "m-ILP"),
            IlpClass::RichIlp => write!(f, "r-ILP"),
            IlpClass::Mlp => write!(f, "MLP"),
        }
    }
}

/// A named, classed benchmark kernel.
#[derive(Clone)]
pub struct Kernel {
    /// Kernel name, `<spec-program>_like`.
    pub name: &'static str,
    /// The SPEC2017 program this kernel stands in for.
    pub spec_name: &'static str,
    /// INT or FP group.
    pub category: Category,
    /// Figure 9 behaviour class.
    pub class: IlpClass,
    /// Default scale (outer iterations) for full experiments.
    pub default_scale: u64,
    pub(crate) builder: fn(u64, u64) -> Program,
}

impl Kernel {
    /// Builds the kernel at its default experiment scale.
    pub fn build(&self) -> Program {
        (self.builder)(self.default_scale, 0)
    }

    /// Builds the kernel with `scale` outer iterations (use small values
    /// for tests).
    pub fn build_scaled(&self, scale: u64) -> Program {
        (self.builder)(scale.max(1), 0)
    }

    /// Builds the kernel with an explicit scale (`None` = the default) and
    /// a layout-seed perturbation. `seed` is mixed into the generator's
    /// canonical seed, so distinct seeds yield distinct memory layouts and
    /// branch patterns of the *same* workload archetype; `seed == 0` is
    /// byte-identical to [`build`](Self::build)/[`build_scaled`](Self::build_scaled)
    /// (golden-trace pins stay valid). Sweep campaigns use this as their
    /// seed axis.
    pub fn build_seeded(&self, scale: Option<u64>, seed: u64) -> Program {
        (self.builder)(scale.unwrap_or(self.default_scale).max(1), seed)
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("name", &self.name)
            .field("spec_name", &self.spec_name)
            .field("category", &self.category)
            .field("class", &self.class)
            .field("default_scale", &self.default_scale)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Category::Int.to_string(), "INT");
        assert_eq!(IlpClass::ModerateIlp.to_string(), "m-ILP");
        assert_eq!(IlpClass::RichIlp.to_string(), "r-ILP");
        assert_eq!(IlpClass::Mlp.to_string(), "MLP");
    }
}
