//! The benchmark suite: one kernel per SPECspeed 2017 program the paper
//! evaluates (all except `gcc` and `wrf`, which the paper also excludes).
//!
//! Class assignments follow the paper's Figure 9 annotation scheme
//! (m-ILP / r-ILP / MLP). The per-program classes are not printed in the
//! paper's text, so they are synthesized here from the paper's statements
//! (seven moderate-ILP INT programs with deepsjeng/exchange2/leela/mcf
//! called out; FP split roughly half moderate-ILP with the rest rich-ILP
//! and MLP) and the programs' well-known behaviour.

use swque_isa::Program;

use crate::kernel::{Category, IlpClass, Kernel};
use crate::synthetic::{
    chase_clump, phased, pointer_chase, stream_fp, ChaseClumpParams, PhasedParams,
    PointerChaseParams, StreamFpParams,
};

macro_rules! kernels {
    ($( $name:ident, $spec:literal, $cat:ident, $class:ident, $scale:literal ; )+) => {
        /// All suite kernels in the paper's presentation order (INT first).
        pub fn all() -> Vec<Kernel> {
            vec![
                $(Kernel {
                    name: concat!($spec, "_like"),
                    spec_name: $spec,
                    category: Category::$cat,
                    class: IlpClass::$class,
                    default_scale: $scale,
                    builder: $name,
                },)+
            ]
        }
    };
}

kernels! {
    perlbench, "perlbench", Int, ModerateIlp, 40_000;
    mcf,       "mcf",       Int, ModerateIlp, 35_000;
    omnetpp,   "omnetpp",   Int, Mlp,         8_000;
    xalancbmk, "xalancbmk", Int, ModerateIlp, 40_000;
    x264,      "x264",      Int, ModerateIlp, 35_000;
    deepsjeng, "deepsjeng", Int, ModerateIlp, 40_000;
    leela,     "leela",     Int, ModerateIlp, 40_000;
    exchange2, "exchange2", Int, ModerateIlp, 35_000;
    xz,        "xz",        Int, Mlp,         8_000;
    bwaves,    "bwaves",    Fp,  RichIlp,     30_000;
    cactubssn, "cactuBSSN", Fp,  RichIlp,     30_000;
    lbm,       "lbm",       Fp,  Mlp,         8_000;
    cam4,      "cam4",      Fp,  ModerateIlp, 40_000;
    pop2,      "pop2",      Fp,  ModerateIlp, 35_000;
    imagick,   "imagick",   Fp,  ModerateIlp, 40_000;
    nab,       "nab",       Fp,  ModerateIlp, 40_000;
    fotonik3d, "fotonik3d", Fp,  Mlp,         8_000;
    roms,      "roms",      Fp,  RichIlp,     30_000;
}

/// Looks a kernel up by its `<spec>_like` name (or bare SPEC name).
pub fn by_name(name: &str) -> Option<Kernel> {
    all()
        .into_iter()
        .find(|k| k.name == name || k.spec_name == name || k.spec_name.to_lowercase() == name)
}

/// The INT kernels, in order.
pub fn int_programs() -> Vec<Kernel> {
    all().into_iter().filter(|k| k.category == Category::Int).collect()
}

/// The FP kernels, in order.
pub fn fp_programs() -> Vec<Kernel> {
    all().into_iter().filter(|k| k.category == Category::Fp).collect()
}

/// Mixes a sweep-campaign seed perturbation into a kernel's canonical
/// layout seed. `seed == 0` is the identity, so default builds stay
/// byte-identical to the golden-trace pins; non-zero seeds are spread by a
/// golden-ratio multiply so consecutive sweep seeds decorrelate.
fn mix(base: u64, seed: u64) -> u64 {
    base ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

// ---- INT kernels ----

fn perlbench(scale: u64, seed: u64) -> Program {
    // Interpreter dispatch: mild contention, small SWQUE gain.
    chase_clump(
        scale,
        &ChaseClumpParams {
            chains: 4,
            links: 3,
            link_alu: 2,
            young_loads: 11,
            young_stride: 8,
            clump_deps: 6,
            hard_branches: 2,
            ring_bytes: 16 << 10,
            gather_bytes: 256 << 10,
            seed: mix(0x9E81, seed),
            ..ChaseClumpParams::default()
        },
    )
}

fn mcf(scale: u64, seed: u64) -> Program {
    // Graph walking with heavy port contention: a big SWQUE winner (>10%).
    chase_clump(
        scale,
        &ChaseClumpParams {
            chains: 6,
            links: 3,
            link_alu: 3,
            young_loads: 14,
            young_stride: 8,
            clump_deps: 8,
            hard_branches: 2,
            ring_bytes: 16 << 10,
            gather_bytes: 512 << 10,
            seed: mix(0x3CF, seed),
            ..ChaseClumpParams::default()
        },
    )
}

fn omnetpp(scale: u64, seed: u64) -> Program {
    pointer_chase(
        scale,
        &PointerChaseParams {
            chains: 8,
            nodes: 1 << 20, // 8 MiB of nodes
            spacing: 14,
            alu_work: 1,
            fp_work: 0,
            seed: mix(0x03E7, seed),
        },
    )
}

fn xalancbmk(scale: u64, seed: u64) -> Program {
    // DOM traversal: mild contention, small SWQUE gain.
    chase_clump(
        scale,
        &ChaseClumpParams {
            chains: 3,
            links: 3,
            link_alu: 2,
            young_loads: 11,
            young_stride: 8,
            clump_deps: 6,
            hard_branches: 2,
            ring_bytes: 16 << 10,
            gather_bytes: 512 << 10,
            seed: mix(0xA1A, seed),
            ..ChaseClumpParams::default()
        },
    )
}

fn x264(scale: u64, seed: u64) -> Program {
    // Motion search: significant but sub-10% SWQUE gain.
    chase_clump(
        scale,
        &ChaseClumpParams {
            chains: 4,
            links: 3,
            link_alu: 3,
            young_loads: 13,
            young_stride: 8,
            clump_deps: 8,
            hard_branches: 2,
            ring_bytes: 16 << 10,
            gather_bytes: 512 << 10,
            seed: mix(0x264, seed),
            ..ChaseClumpParams::default()
        },
    )
}

fn deepsjeng(scale: u64, seed: u64) -> Program {
    // Game-tree search: the paper's biggest SWQUE winner class (>10%).
    chase_clump(
        scale,
        &ChaseClumpParams {
            chains: 6,
            links: 3,
            link_alu: 3,
            young_loads: 14,
            young_stride: 8,
            clump_deps: 8,
            hard_branches: 2,
            ring_bytes: 16 << 10,
            gather_bytes: 512 << 10,
            seed: mix(0xD339, seed),
            ..ChaseClumpParams::default()
        },
    )
}

fn leela(scale: u64, seed: u64) -> Program {
    // MCTS playouts: large SWQUE gain (>10% in the paper).
    chase_clump(
        scale,
        &ChaseClumpParams {
            chains: 5,
            links: 3,
            link_alu: 3,
            young_loads: 12,
            young_stride: 8,
            clump_deps: 8,
            hard_branches: 2,
            ring_bytes: 16 << 10,
            gather_bytes: 512 << 10,
            seed: mix(0x1EE1A, seed),
            ..ChaseClumpParams::default()
        },
    )
}

fn exchange2(scale: u64, seed: u64) -> Program {
    // Recursive puzzle solver: large SWQUE gain (>10%).
    chase_clump(
        scale,
        &ChaseClumpParams {
            chains: 6,
            links: 3,
            link_alu: 3,
            young_loads: 14,
            young_stride: 8,
            clump_deps: 8,
            hard_branches: 2,
            ring_bytes: 16 << 10,
            gather_bytes: 512 << 10,
            seed: mix(0xEC2, seed),
            ..ChaseClumpParams::default()
        },
    )
}

fn xz(scale: u64, seed: u64) -> Program {
    pointer_chase(
        scale,
        &PointerChaseParams {
            chains: 7,
            nodes: 1 << 21, // 16 MiB of nodes
            spacing: 16,
            alu_work: 2,
            fp_work: 0,
            seed: mix(0x7A, seed),
        },
    )
}

// ---- FP kernels ----

fn bwaves(scale: u64, seed: u64) -> Program {
    stream_fp(
        scale,
        &StreamFpParams {
            arrays: 2,
            footprint: 8 << 20,
            fp_ops_per_elem: 4,
            unroll: 10,
            seed: mix(0xB3A, seed),
        },
    )
}

fn cactubssn(scale: u64, seed: u64) -> Program {
    stream_fp(
        scale,
        &StreamFpParams {
            arrays: 3,
            footprint: 1 << 20,
            fp_ops_per_elem: 4,
            unroll: 12,
            seed: mix(0xCAC, seed),
        },
    )
}

fn lbm(scale: u64, seed: u64) -> Program {
    // Streaming with a footprint far beyond the LLC and little compute:
    // bandwidth-bound, MPKI stays high even with the prefetcher.
    pointer_chase(
        scale,
        &PointerChaseParams {
            chains: 8,
            nodes: 1 << 21,
            spacing: 10,
            alu_work: 0,
            fp_work: 2,
            seed: mix(0x1B, seed),
        },
    )
}

fn cam4(scale: u64, seed: u64) -> Program {
    // Atmosphere physics: mixed FP/pointer code, moderate gain.
    chase_clump(
        scale,
        &ChaseClumpParams {
            chains: 5,
            links: 3,
            link_alu: 3,
            young_loads: 12,
            young_stride: 8,
            clump_deps: 8,
            filler_fp: 4,
            fp_chain_ops: 2,
            hard_branches: 2,
            ring_bytes: 16 << 10,
            gather_bytes: 512 << 10,
            seed: mix(0xCA4, seed),
            ..ChaseClumpParams::default()
        },
    )
}

fn pop2(scale: u64, seed: u64) -> Program {
    phased(
        (scale / 4000).max(2),
        &PhasedParams {
            compute_iters: 3_000,
            memory_iters: 500,
            chains: 8,
            nodes: 1 << 20,
            chain_ops: 6,
            seed: mix(0x909, seed),
        },
    )
}

fn imagick(scale: u64, seed: u64) -> Program {
    // Image kernels: FP-flavoured, mild pointer contention.
    chase_clump(
        scale,
        &ChaseClumpParams {
            chains: 5,
            links: 3,
            link_alu: 3,
            young_loads: 12,
            young_stride: 8,
            clump_deps: 8,
            filler_fp: 4,
            fp_chain_ops: 2,
            hard_branches: 2,
            ring_bytes: 16 << 10,
            gather_bytes: 512 << 10,
            seed: mix(0x1AC, seed),
            ..ChaseClumpParams::default()
        },
    )
}

fn nab(scale: u64, seed: u64) -> Program {
    // Molecular dynamics: FP recurrences over neighbour lists.
    chase_clump(
        scale,
        &ChaseClumpParams {
            chains: 5,
            links: 3,
            link_alu: 3,
            young_loads: 12,
            young_stride: 8,
            clump_deps: 8,
            filler_fp: 4,
            fp_chain_ops: 3,
            hard_branches: 2,
            ring_bytes: 16 << 10,
            gather_bytes: 512 << 10,
            seed: mix(0xAB, seed),
            ..ChaseClumpParams::default()
        },
    )
}

fn fotonik3d(scale: u64, seed: u64) -> Program {
    pointer_chase(
        scale,
        &PointerChaseParams {
            chains: 8,
            nodes: 1 << 20,
            spacing: 12,
            alu_work: 1,
            fp_work: 1,
            seed: mix(0xF07, seed),
        },
    )
}

fn roms(scale: u64, seed: u64) -> Program {
    stream_fp(
        scale,
        &StreamFpParams {
            arrays: 2,
            footprint: 2 << 20,
            fp_ops_per_elem: 3,
            unroll: 12,
            seed: mix(0x80, seed),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::Emulator;

    #[test]
    fn suite_has_the_papers_program_counts() {
        assert_eq!(all().len(), 18, "SPECspeed 2017 minus gcc and wrf");
        assert_eq!(int_programs().len(), 9);
        assert_eq!(fp_programs().len(), 9);
        let m_ilp_int = int_programs()
            .iter()
            .filter(|k| k.class == IlpClass::ModerateIlp)
            .count();
        assert_eq!(m_ilp_int, 7, "paper: seven moderate-ILP INT programs");
        let m_ilp_fp =
            fp_programs().iter().filter(|k| k.class == IlpClass::ModerateIlp).count();
        assert!(
            m_ilp_fp * 2 >= fp_programs().len() - 1 && m_ilp_fp * 2 <= fp_programs().len() + 1,
            "paper: moderate-ILP is about half of FP ({m_ilp_fp}/9)"
        );
    }

    #[test]
    fn lookup_by_both_names() {
        assert!(by_name("deepsjeng_like").is_some());
        assert!(by_name("deepsjeng").is_some());
        assert!(by_name("cactuBSSN").is_some());
        assert!(by_name("gcc").is_none(), "excluded by the paper");
        assert!(by_name("wrf").is_none(), "excluded by the paper");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all().iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    /// FNV-1a fingerprint of a program's text and initial data image.
    fn fingerprint(p: &swque_isa::Program) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(format!("{:?}", p.insts).as_bytes());
        eat(&p.entry.to_le_bytes());
        for (base, bytes) in &p.data {
            eat(&base.to_le_bytes());
            eat(bytes);
        }
        h
    }

    #[test]
    fn seed_zero_is_the_canonical_program_and_seeds_differ() {
        for k in all() {
            let base = fingerprint(&k.build_scaled(30));
            let zero = fingerprint(&k.build_seeded(Some(30), 0));
            assert_eq!(base, zero, "{}: seed 0 must be identity", k.name);
            let other = fingerprint(&k.build_seeded(Some(30), 1));
            assert_ne!(base, other, "{}: seed 1 must perturb the program", k.name);
        }
    }

    #[test]
    fn every_kernel_builds_and_runs_at_small_scale() {
        for k in all() {
            let p = k.build_scaled(30);
            let mut emu = Emulator::new(&p);
            let retired = emu
                .run(50_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert!(retired > 100, "{}: retired {retired}", k.name);
        }
    }

    #[test]
    fn default_scales_give_experiment_sized_runs() {
        // Spot-check one kernel per archetype: the default scale must yield
        // at least ~500k dynamic instructions so experiments have substance.
        for name in ["deepsjeng_like", "omnetpp_like", "bwaves_like", "cam4_like"] {
            let k = by_name(name).unwrap();
            let p = k.build();
            let mut emu = Emulator::new(&p);
            // Run up to 1M instructions; reaching the cap is fine — we only
            // need to know the program is at least that long.
            match emu.run(1_000_000) {
                Ok(retired) => assert!(retired > 500_000, "{name}: {retired}"),
                Err(swque_isa::EmuError::StepLimit(_)) => {}
                Err(e) => panic!("{name}: {e}"),
            }
        }
    }
}
