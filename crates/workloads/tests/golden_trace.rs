//! Golden-trace regression tests: the first 64 instructions of every
//! synthetic kernel, at a fixed seed, are pinned as literal text.
//!
//! These tests are the workspace's trace-determinism contract. The
//! generators draw layout randomness from `swque_rng::Rng`, whose output
//! stream is itself pinned (see `output_stream_is_pinned_forever` in
//! `swque-rng`); together the two layers guarantee that a (kernel,
//! parameters) pair names the same instruction trace in every checkout,
//! on every toolchain, forever. Any change to the PRNG constants, the
//! sampling algorithms (`gen_range`, `shuffle`), or the generators' draw
//! order fails here loudly — which is exactly the point: a silent trace
//! change would invalidate every measured figure without anyone noticing.
//!
//! If you change a generator *on purpose*, regenerate the constants:
//!
//! ```text
//! SWQUE_GOLDEN_DUMP=1 cargo test -p swque-workloads --test golden_trace -- --nocapture
//! ```
//!
//! and paste the printed blocks over the `GOLDEN_*` constants — then say
//! so in your PR, because you are re-baselining every experiment.

use swque_isa::Program;
use swque_workloads::synthetic::{
    branchy_search, chase_clump, fp_recurrence, phased, pointer_chase, stream_fp, BranchyParams,
    ChaseClumpParams, FpRecurrenceParams, PhasedParams, PointerChaseParams, StreamFpParams,
};

/// Renders the first `n` instructions, one per line, via `Inst`'s
/// unambiguous `Display` form.
fn head(p: &Program, n: usize) -> String {
    p.insts.iter().take(n).map(|i| i.to_string()).collect::<Vec<_>>().join("\n")
}

/// The pinned kernel instances. Sizes are reduced where the default
/// footprint would make test-time program generation slow (the trace
/// prefix still exercises the full RNG draw order of each generator).
fn kernels() -> Vec<(&'static str, Program)> {
    vec![
        ("branchy", branchy_search(8, &BranchyParams::default())),
        ("chase_clump", chase_clump(8, &ChaseClumpParams::default())),
        ("phased", phased(2, &PhasedParams { nodes: 1 << 10, ..PhasedParams::default() })),
        (
            "pointer",
            pointer_chase(8, &PointerChaseParams { nodes: 1 << 12, ..PointerChaseParams::default() }),
        ),
        ("recurrence", fp_recurrence(8, &FpRecurrenceParams::default())),
        ("stream", stream_fp(8, &StreamFpParams::default())),
    ]
}

fn golden(name: &str) -> &'static str {
    match name {
        "branchy" => GOLDEN_BRANCHY,
        "chase_clump" => GOLDEN_CHASE_CLUMP,
        "phased" => GOLDEN_PHASED,
        "pointer" => GOLDEN_POINTER,
        "recurrence" => GOLDEN_RECURRENCE,
        "stream" => GOLDEN_STREAM,
        _ => unreachable!("unknown kernel {name}"),
    }
}

/// Regeneration helper (not an assertion): prints the current traces in
/// paste-ready form when SWQUE_GOLDEN_DUMP=1.
#[test]
fn dump_traces_when_requested() {
    if std::env::var("SWQUE_GOLDEN_DUMP").is_err() {
        return;
    }
    for (name, p) in kernels() {
        println!("const GOLDEN_{}: &str = \"\\", name.to_uppercase());
        for line in head(&p, 64).lines() {
            println!("{line}\\n\\");
        }
        println!("\";\n");
    }
}

#[test]
fn every_kernel_trace_prefix_is_pinned() {
    for (name, p) in kernels() {
        let got = head(&p, 64);
        let want = golden(name).trim_end_matches('\n');
        assert!(
            got == want,
            "{name}: generated trace diverged from the golden prefix.\n\
             If this is an intentional generator/RNG change, re-baseline with\n\
             SWQUE_GOLDEN_DUMP=1 (see module docs).\n\
             --- golden ---\n{want}\n--- generated ---\n{got}\n"
        );
    }
}

/// The pinned prefixes double as a cross-check that generation is stable
/// within a process (catches accidental global state in the generators).
#[test]
fn regeneration_is_bit_identical() {
    let first = kernels();
    let second = kernels();
    for ((name, a), (_, b)) in first.iter().zip(second.iter()) {
        assert_eq!(a.insts, b.insts, "{name}: same params, same program");
    }
}

const GOLDEN_BRANCHY: &str = "\
li r1, 8\n\
li r2, 24301\n\
li r3, 1048576\n\
li r16, 1\n\
li r17, 2\n\
li r18, 3\n\
li r7, 6364136223846793005\n\
mul r2, r2, r7\n\
addi r2, r2, 1442695040888963407\n\
addi r16, r16, 1\n\
xori r11, r1, 4663\n\
addi r18, r18, 3\n\
xori r16, r16, 47\n\
xori r18, r18, 49\n\
ori r13, r1, 3850\n\
addi r17, r17, 2\n\
addi r18, r18, 3\n\
ori r10, r1, 3853\n\
addi r16, r16, 1\n\
xori r17, r17, 48\n\
xori r18, r18, 49\n\
addi r17, r17, 2\n\
addi r12, r1, 11\n\
srli r5, r2, 15\n\
andi r5, r5, 7\n\
slti r5, r5, 6\n\
bne r5, r0, 29\n\
xori r8, r1, 85\n\
xori r9, r1, 86\n\
xori r17, r17, 48\n\
xori r16, r16, 47\n\
srli r5, r2, 13\n\
andi r5, r5, 7\n\
slti r5, r5, 6\n\
bne r5, r0, 37\n\
xori r8, r1, 85\n\
xori r9, r1, 86\n\
addi r16, r16, 1\n\
xori r14, r1, 4666\n\
srli r4, r2, 5\n\
andi r4, r4, 65528\n\
add r4, r4, r3\n\
ld r6, r4, 0\n\
xori r16, r16, 47\n\
addi r18, r18, 3\n\
xori r8, r1, 4660\n\
addi r17, r17, 2\n\
xori r17, r17, 48\n\
xori r18, r18, 49\n\
addi r9, r1, 8\n\
srli r4, r2, 23\n\
andi r4, r4, 65528\n\
add r4, r4, r3\n\
st r4, r6, 0\n\
addi r15, r1, 14\n\
srli r4, r2, 8\n\
andi r4, r4, 65528\n\
add r4, r4, r3\n\
ld r6, r4, 0\n\
srli r5, r2, 11\n\
andi r5, r5, 7\n\
slti r5, r5, 6\n\
bne r5, r0, 65\n\
xori r8, r1, 85\n\
";

const GOLDEN_CHASE_CLUMP: &str = "\
li r1, 8\n\
li r2, 49573\n\
li r25, 8388608\n\
li r26, 262143\n\
li r27, 8388608\n\
li r16, 1048576\n\
li r17, 1056768\n\
li r5, 4096\n\
fld f1, r5, 0\n\
fld f2, r5, 8\n\
li r7, 6364136223846793005\n\
mul r2, r2, r7\n\
addi r2, r2, 1442695040888963407\n\
ld r16, r16, 0\n\
addi r16, r16, 24\n\
addi r16, r16, -24\n\
ld r8, r25, 0\n\
ld r9, r25, 64\n\
ld r10, r25, 128\n\
add r12, r8, r2\n\
xori r8, r1, 4660\n\
ld r17, r17, 0\n\
addi r17, r17, 24\n\
addi r17, r17, -24\n\
ld r11, r25, 192\n\
ld r8, r25, 256\n\
ld r9, r25, 320\n\
add r13, r9, r2\n\
addi r9, r1, 8\n\
ld r16, r16, 0\n\
addi r16, r16, 24\n\
addi r16, r16, -24\n\
ld r10, r25, 384\n\
ld r11, r25, 448\n\
ld r8, r25, 512\n\
add r14, r10, r2\n\
fmul f8, f1, f2\n\
ld r17, r17, 0\n\
addi r17, r17, 24\n\
addi r17, r17, -24\n\
ld r9, r25, 576\n\
ld r10, r25, 640\n\
ld r11, r25, 704\n\
add r15, r11, r2\n\
fmul f9, f1, f2\n\
ld r16, r16, 0\n\
addi r16, r16, 24\n\
addi r16, r16, -24\n\
ld r8, r25, 768\n\
ld r9, r25, 832\n\
ld r10, r25, 896\n\
add r12, r8, r2\n\
ori r10, r1, 3853\n\
ld r17, r17, 0\n\
addi r17, r17, 24\n\
addi r17, r17, -24\n\
ld r11, r25, 960\n\
ld r8, r25, 1024\n\
ld r9, r25, 1088\n\
add r13, r9, r2\n\
xori r11, r1, 4663\n\
ld r16, r16, 0\n\
addi r16, r16, 24\n\
addi r16, r16, -24\n\
";

const GOLDEN_PHASED: &str = "\
li r28, 2\n\
li r2, 42405\n\
li r1, 4000\n\
li r3, 4194304\n\
li r16, 1\n\
li r17, 2\n\
li r18, 3\n\
li r7, 6364136223846793005\n\
mul r2, r2, r7\n\
addi r2, r2, 1442695040888963407\n\
addi r16, r16, 1\n\
xori r16, r16, 51\n\
addi r16, r16, 1\n\
xori r16, r16, 51\n\
addi r16, r16, 1\n\
xori r16, r16, 51\n\
addi r17, r17, 1\n\
xori r17, r17, 51\n\
addi r17, r17, 1\n\
xori r17, r17, 51\n\
addi r17, r17, 1\n\
xori r17, r17, 51\n\
addi r18, r18, 1\n\
xori r18, r18, 51\n\
addi r18, r18, 1\n\
xori r18, r18, 51\n\
addi r18, r18, 1\n\
xori r18, r18, 51\n\
xori r8, r1, 4660\n\
addi r9, r1, 8\n\
ori r10, r1, 3853\n\
xori r11, r1, 4663\n\
addi r12, r1, 11\n\
ori r13, r1, 3850\n\
srli r4, r2, 9\n\
andi r4, r4, 32760\n\
add r4, r4, r3\n\
ld r6, r4, 0\n\
srli r5, r2, 13\n\
andi r5, r5, 7\n\
slti r5, r5, 6\n\
bne r5, r0, 44\n\
xori r8, r1, 85\n\
xori r9, r1, 86\n\
addi r1, r1, -1\n\
bne r1, r0, 7\n\
li r1, 600\n\
li r16, 16777216\n\
li r17, 16778240\n\
li r18, 16779264\n\
li r19, 16780288\n\
li r20, 16781312\n\
li r21, 16782336\n\
li r22, 16783360\n\
li r23, 16784384\n\
ld r16, r16, 0\n\
xori r8, r1, 4660\n\
addi r9, r1, 8\n\
ori r10, r1, 3853\n\
xori r11, r1, 4663\n\
addi r12, r1, 11\n\
ori r13, r1, 3850\n\
xori r14, r1, 4666\n\
addi r15, r1, 14\n\
";

const GOLDEN_POINTER: &str = "\
li r1, 8\n\
li r16, 16777216\n\
li r17, 16781312\n\
li r18, 16785408\n\
li r19, 16789504\n\
li r20, 16793600\n\
li r21, 16797696\n\
li r22, 16801792\n\
li r23, 16805888\n\
ld r16, r16, 0\n\
addi r16, r16, 8\n\
addi r16, r16, -8\n\
xori r8, r1, 4660\n\
addi r9, r1, 8\n\
ori r10, r1, 3853\n\
xori r11, r1, 4663\n\
addi r12, r1, 11\n\
ori r13, r1, 3850\n\
xori r14, r1, 4666\n\
addi r15, r1, 14\n\
ori r8, r1, 3847\n\
xori r9, r1, 4669\n\
addi r10, r1, 17\n\
ori r11, r1, 3844\n\
xori r12, r1, 4672\n\
addi r13, r1, 20\n\
ld r17, r17, 0\n\
addi r17, r17, 8\n\
addi r17, r17, -8\n\
ori r14, r1, 3841\n\
xori r15, r1, 4675\n\
addi r8, r1, 23\n\
ori r9, r1, 3870\n\
xori r10, r1, 4678\n\
addi r11, r1, 26\n\
ori r12, r1, 3867\n\
xori r13, r1, 4681\n\
addi r14, r1, 29\n\
ori r15, r1, 3864\n\
xori r8, r1, 4684\n\
addi r9, r1, 32\n\
ori r10, r1, 3861\n\
xori r11, r1, 4687\n\
ld r18, r18, 0\n\
addi r18, r18, 8\n\
addi r18, r18, -8\n\
addi r12, r1, 35\n\
ori r13, r1, 3858\n\
xori r14, r1, 4690\n\
addi r15, r1, 38\n\
ori r8, r1, 3887\n\
xori r9, r1, 4693\n\
addi r10, r1, 41\n\
ori r11, r1, 3884\n\
xori r12, r1, 4696\n\
addi r13, r1, 44\n\
ori r14, r1, 3881\n\
xori r15, r1, 4699\n\
addi r8, r1, 47\n\
ori r9, r1, 3878\n\
ld r19, r19, 0\n\
addi r19, r19, 8\n\
addi r19, r19, -8\n\
xori r10, r1, 4702\n\
";

const GOLDEN_RECURRENCE: &str = "\
li r1, 8\n\
li r2, 16435935\n\
li r3, 4194304\n\
li r5, 4096\n\
fld f1, r5, 0\n\
fld f2, r5, 8\n\
fld f3, r5, 16\n\
fmul f16, f1, f2\n\
fmul f17, f1, f2\n\
li r7, 6364136223846793005\n\
mul r2, r2, r7\n\
addi r2, r2, 1442695040888963407\n\
fmul f17, f17, f1\n\
addi r9, r1, 8\n\
srli r4, r2, 7\n\
andi r4, r4, 8184\n\
add r4, r4, r3\n\
fld f4, r4, 0\n\
xori r8, r1, 4660\n\
srli r5, r2, 17\n\
andi r5, r5, 7\n\
slti r5, r5, 6\n\
bne r5, r0, 24\n\
xori r8, r1, 85\n\
fmul f16, f16, f1\n\
srli r4, r2, 10\n\
andi r4, r4, 8184\n\
add r4, r4, r3\n\
fld f5, r4, 0\n\
fmul f8, f2, f3\n\
ori r10, r1, 3853\n\
fmul f9, f2, f3\n\
fadd f16, f16, f3\n\
fadd f17, f17, f3\n\
xori r11, r1, 4663\n\
fmul f16, f16, f1\n\
fmul f10, f2, f3\n\
fmul f17, f17, f1\n\
addi r1, r1, -1\n\
bne r1, r0, 9\n\
halt\n\
";

const GOLDEN_STREAM: &str = "\
li r1, 8\n\
li r24, 33554432\n\
li r25, 50331648\n\
li r4, 1048575\n\
li r5, 4096\n\
fld f1, r5, 0\n\
fld f2, r5, 8\n\
fld f8, r24, 0\n\
fmul f8, f8, f1\n\
fadd f8, f8, f2\n\
fadd f16, f16, f8\n\
fld f9, r25, 0\n\
fmul f9, f9, f1\n\
fadd f9, f9, f2\n\
fadd f17, f17, f9\n\
fld f10, r24, 8\n\
fmul f10, f10, f1\n\
fadd f10, f10, f2\n\
fadd f18, f18, f10\n\
fld f11, r25, 8\n\
fmul f11, f11, f1\n\
fadd f11, f11, f2\n\
fadd f19, f19, f11\n\
fld f12, r24, 16\n\
fmul f12, f12, f1\n\
fadd f12, f12, f2\n\
fadd f20, f20, f12\n\
fld f13, r25, 16\n\
fmul f13, f13, f1\n\
fadd f13, f13, f2\n\
fadd f21, f21, f13\n\
fld f14, r24, 24\n\
fmul f14, f14, f1\n\
fadd f14, f14, f2\n\
fadd f22, f22, f14\n\
fld f15, r25, 24\n\
fmul f15, f15, f1\n\
fadd f15, f15, f2\n\
fadd f23, f23, f15\n\
addi r24, r24, 32\n\
li r6, 33554432\n\
sub r7, r24, r6\n\
and r7, r7, r4\n\
add r24, r6, r7\n\
addi r25, r25, 32\n\
li r6, 50331648\n\
sub r7, r25, r6\n\
and r7, r7, r4\n\
add r25, r6, r7\n\
addi r1, r1, -1\n\
bne r1, r0, 7\n\
halt\n\
";

