//! Property tests over the workload generators: arbitrary in-range
//! parameters must always yield terminating, memory-bounded programs.
//!
//! Ported from `proptest` to the in-tree harness (`swque_rng::prop`);
//! each property keeps at least its original case count (24).

use swque_rng::prop::check;

use swque_isa::Emulator;
use swque_workloads::synthetic::{
    branchy_search, chase_clump, fp_recurrence, pointer_chase, stream_fp, BranchyParams,
    ChaseClumpParams, FpRecurrenceParams, PointerChaseParams, StreamFpParams,
};

/// chase_clump over its whole parameter space: terminates, chains stay
/// on their ring, the gather cursor stays in its buffer.
#[test]
fn chase_clump_parameter_space() {
    check(24, |g| {
        let chains = g.gen_range(1usize..7);
        let links = g.gen_range(1usize..5);
        let link_alu = g.gen_range(0usize..4);
        let young = g.gen_range(0usize..17);
        let stride = *g.rng().choose(&[8u64, 64, 128]).unwrap();
        let hard = g.gen_range(0usize..4);
        let seed = g.u64();
        let p = ChaseClumpParams {
            chains,
            links,
            link_alu,
            young_loads: young,
            young_stride: stride,
            hard_branches: hard,
            ring_bytes: 4 << 10,
            gather_bytes: 16 << 10,
            seed,
            ..ChaseClumpParams::default()
        };
        let program = chase_clump(40, &p);
        let mut emu = Emulator::new(&program);
        let retired = emu.run(5_000_000).expect("terminates");
        assert!(retired > 40, "does real work");
        for c in 0..chains as u8 {
            let ptr = emu.int_reg(swque_isa::Reg(16 + c));
            assert!(
                (0x10_0000..0x10_0000 + (4u64 << 10)).contains(&ptr),
                "chain {c} on ring: {ptr:#x}"
            );
        }
        let cursor = emu.int_reg(swque_isa::Reg(25));
        assert!(
            (0x80_0000..0x80_0000 + (16u64 << 10)).contains(&cursor),
            "gather cursor in bounds: {cursor:#x}"
        );
    });
}

/// Every archetype terminates for arbitrary seeds.
#[test]
fn all_archetypes_terminate_for_any_seed() {
    check(24, |g| {
        let seed = g.u64();
        let programs = [
            branchy_search(20, &BranchyParams { seed, ..BranchyParams::default() }),
            pointer_chase(
                10,
                &PointerChaseParams { seed, nodes: 1 << 9, ..PointerChaseParams::default() },
            ),
            stream_fp(15, &StreamFpParams { seed, ..StreamFpParams::default() }),
            fp_recurrence(15, &FpRecurrenceParams { seed, ..FpRecurrenceParams::default() }),
        ];
        for program in &programs {
            let mut emu = Emulator::new(program);
            assert!(emu.run(5_000_000).is_ok());
        }
    });
}

/// Scale is linear-ish: doubling iterations roughly doubles the dynamic
/// instruction count (the loops have fixed bodies).
#[test]
fn scale_controls_dynamic_length() {
    check(24, |g| {
        let seed = g.u64();
        let p = ChaseClumpParams {
            ring_bytes: 4 << 10,
            gather_bytes: 16 << 10,
            seed,
            ..ChaseClumpParams::default()
        };
        let run = |iters| {
            let program = chase_clump(iters, &p);
            let mut emu = Emulator::new(&program);
            emu.run(20_000_000).expect("terminates")
        };
        let short = run(50) as f64;
        let long = run(100) as f64;
        let ratio = long / short;
        assert!((1.8..2.2).contains(&ratio), "iters scale dynamic length: {ratio:.2}");
    });
}
