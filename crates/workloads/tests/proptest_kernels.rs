//! Property tests over the workload generators: arbitrary in-range
//! parameters must always yield terminating, memory-bounded programs.

use proptest::prelude::*;

use swque_isa::Emulator;
use swque_workloads::synthetic::{
    branchy_search, chase_clump, fp_recurrence, pointer_chase, stream_fp, BranchyParams,
    ChaseClumpParams, FpRecurrenceParams, PointerChaseParams, StreamFpParams,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// chase_clump over its whole parameter space: terminates, chains stay
    /// on their ring, the gather cursor stays in its buffer.
    #[test]
    fn chase_clump_parameter_space(
        chains in 1usize..=6,
        links in 1usize..=4,
        link_alu in 0usize..=3,
        young in 0usize..=16,
        stride in prop_oneof![Just(8u64), Just(64), Just(128)],
        hard in 0usize..=3,
        seed in any::<u64>(),
    ) {
        let p = ChaseClumpParams {
            chains,
            links,
            link_alu,
            young_loads: young,
            young_stride: stride,
            hard_branches: hard,
            ring_bytes: 4 << 10,
            gather_bytes: 16 << 10,
            seed,
            ..ChaseClumpParams::default()
        };
        let program = chase_clump(40, &p);
        let mut emu = Emulator::new(&program);
        let retired = emu.run(5_000_000).expect("terminates");
        prop_assert!(retired > 40, "does real work");
        for c in 0..chains as u8 {
            let ptr = emu.int_reg(swque_isa::Reg(16 + c));
            prop_assert!(
                (0x10_0000..0x10_0000 + (4u64 << 10)).contains(&ptr),
                "chain {c} on ring: {ptr:#x}"
            );
        }
        let cursor = emu.int_reg(swque_isa::Reg(25));
        prop_assert!(
            (0x80_0000..0x80_0000 + (16u64 << 10)).contains(&cursor),
            "gather cursor in bounds: {cursor:#x}"
        );
    }

    /// Every archetype terminates for arbitrary seeds.
    #[test]
    fn all_archetypes_terminate_for_any_seed(seed in any::<u64>()) {
        let programs = [
            branchy_search(20, &BranchyParams { seed, ..BranchyParams::default() }),
            pointer_chase(
                10,
                &PointerChaseParams { seed, nodes: 1 << 9, ..PointerChaseParams::default() },
            ),
            stream_fp(15, &StreamFpParams { seed, ..StreamFpParams::default() }),
            fp_recurrence(15, &FpRecurrenceParams { seed, ..FpRecurrenceParams::default() }),
        ];
        for program in &programs {
            let mut emu = Emulator::new(program);
            prop_assert!(emu.run(5_000_000).is_ok());
        }
    }

    /// Scale is linear-ish: doubling iterations roughly doubles the dynamic
    /// instruction count (the loops have fixed bodies).
    #[test]
    fn scale_controls_dynamic_length(seed in any::<u64>()) {
        let p = ChaseClumpParams {
            ring_bytes: 4 << 10,
            gather_bytes: 16 << 10,
            seed,
            ..ChaseClumpParams::default()
        };
        let run = |iters| {
            let program = chase_clump(iters, &p);
            let mut emu = Emulator::new(&program);
            emu.run(20_000_000).expect("terminates")
        };
        let short = run(50) as f64;
        let long = run(100) as f64;
        let ratio = long / short;
        prop_assert!((1.8..2.2).contains(&ratio), "iters scale dynamic length: {ratio:.2}");
    }
}
