//! Branch target buffer.

/// One BTB way: tag plus stored target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    tag: u64,
    target: u64,
    /// Larger = more recently used.
    lru: u64,
    valid: bool,
}

/// A set-associative branch target buffer with true-LRU replacement.
///
/// Defaults mirror the paper's Table 2: 2K sets × 4 ways.
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<Vec<Way>>,
    clock: u64,
}

impl Btb {
    /// Creates a BTB with `num_sets` sets (power of two) of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two or `ways == 0`.
    pub fn new(num_sets: usize, ways: usize) -> Btb {
        assert!(num_sets.is_power_of_two(), "BTB set count must be a power of two"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
        assert!(ways > 0, "BTB needs at least one way");
        Btb {
            sets: vec![vec![Way { tag: 0, target: 0, lru: 0, valid: false }; ways]; num_sets],
            clock: 0,
        }
    }

    fn set_index(&self, pc: u64) -> usize {
        (pc & (self.sets.len() as u64 - 1)) as usize
    }

    /// Looks up the stored target for `pc`, refreshing LRU on a hit.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        let idx = self.set_index(pc);
        self.clock += 1;
        let clock = self.clock;
        let set = &mut self.sets[idx];
        for way in set.iter_mut() {
            if way.valid && way.tag == pc {
                way.lru = clock;
                return Some(way.target);
            }
        }
        None
    }

    /// Inserts or updates the target for `pc`, evicting LRU on conflict.
    pub fn insert(&mut self, pc: u64, target: u64) {
        let idx = self.set_index(pc);
        self.clock += 1;
        let clock = self.clock;
        let set = &mut self.sets[idx];
        // Hit: update in place.
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == pc) {
            way.target = target;
            way.lru = clock;
            return;
        }
        // Miss: fill an invalid way, else evict LRU (invalid sorts first).
        let Some(victim) = set.iter_mut().min_by_key(|w| (w.valid, w.lru)) else {
            return; // zero ways: nowhere to store the target
        };
        *victim = Way { tag: pc, target, lru: clock, valid: true };
    }
}

impl Default for Btb {
    /// Table 2 parameters: 2K sets, 4 ways.
    fn default() -> Btb {
        Btb::new(2048, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::default();
        assert_eq!(btb.lookup(0x100), None);
        btb.insert(0x100, 0x500);
        assert_eq!(btb.lookup(0x100), Some(0x500));
    }

    #[test]
    fn update_in_place_changes_target() {
        let mut btb = Btb::default();
        btb.insert(0x100, 0x500);
        btb.insert(0x100, 0x600);
        assert_eq!(btb.lookup(0x100), Some(0x600));
    }

    #[test]
    fn lru_eviction_in_a_full_set() {
        // 1 set, 2 ways: pcs all collide.
        let mut btb = Btb::new(1, 2);
        btb.insert(1, 11);
        btb.insert(2, 22);
        btb.lookup(1); // make pc=1 the MRU
        btb.insert(3, 33); // evicts pc=2
        assert_eq!(btb.lookup(1), Some(11));
        assert_eq!(btb.lookup(2), None);
        assert_eq!(btb.lookup(3), Some(33));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut btb = Btb::new(2, 1);
        btb.insert(0, 100); // set 0
        btb.insert(1, 101); // set 1
        assert_eq!(btb.lookup(0), Some(100));
        assert_eq!(btb.lookup(1), Some(101));
    }
}
