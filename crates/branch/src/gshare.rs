//! Gshare direction predictor.

/// A gshare predictor: global history XORed with the branch pc indexes a
/// table of 2-bit saturating counters.
///
/// Defaults mirror the paper's Table 2: 12-bit history, 4K-entry PHT.
#[derive(Debug, Clone)]
pub struct Gshare {
    history_bits: u32,
    history: u64,
    pht: Vec<u8>,
}

impl Gshare {
    /// Creates a gshare predictor with `history_bits` of global history and
    /// a PHT of `pht_entries` 2-bit counters (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `pht_entries` is not a power of two or `history_bits > 32`.
    pub fn new(history_bits: u32, pht_entries: usize) -> Gshare {
        assert!(pht_entries.is_power_of_two(), "PHT size must be a power of two"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
        assert!(history_bits <= 32, "history length out of range");
        Gshare {
            history_bits,
            history: 0,
            // Weakly taken initial state: loops predict taken quickly.
            pht: vec![2; pht_entries],
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (self.pht.len() - 1) as u64;
        ((pc ^ self.history) & mask) as usize
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.pht[self.index(pc)] >= 2
    }

    /// Trains the counter and shifts the outcome into global history.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.pht[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        let mask = (1u64 << self.history_bits) - 1;
        self.history = ((self.history << 1) | taken as u64) & mask;
    }

    /// Current global history register value (for tests/debugging).
    pub fn history(&self) -> u64 {
        self.history
    }
}

impl Default for Gshare {
    /// Table 2 parameters: 12-bit history, 4K-entry PHT.
    fn default() -> Gshare {
        Gshare::new(12, 4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_an_always_taken_branch() {
        let mut g = Gshare::default();
        for _ in 0..16 {
            g.update(0x400, true);
        }
        assert!(g.predict(0x400));
    }

    #[test]
    fn learns_an_always_not_taken_branch() {
        let mut g = Gshare::default();
        for _ in 0..16 {
            g.update(0x404, false);
        }
        assert!(!g.predict(0x404));
    }

    #[test]
    fn learns_an_alternating_pattern_through_history() {
        // T,N,T,N... is perfectly predictable with >= 1 bit of history once
        // each history context's counter saturates.
        let mut g = Gshare::new(12, 4096);
        let mut taken = true;
        for _ in 0..256 {
            let p = g.predict(0x40);
            let _ = p;
            g.update(0x40, taken);
            taken = !taken;
        }
        // Measure accuracy over the next 64 branches.
        let mut correct = 0;
        for _ in 0..64 {
            if g.predict(0x40) == taken {
                correct += 1;
            }
            g.update(0x40, taken);
            taken = !taken;
        }
        assert!(correct >= 60, "alternating branch should be near-perfect, got {correct}/64");
    }

    #[test]
    fn history_register_masks_to_width() {
        let mut g = Gshare::new(4, 16);
        for _ in 0..100 {
            g.update(0, true);
        }
        assert_eq!(g.history(), 0xF);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_pht_rejected() {
        let _ = Gshare::new(12, 1000);
    }
}
