//! Branch prediction substrate for the SWQUE reproduction.
//!
//! Implements the front-end predictor of the paper's Table 2 baseline:
//! a **gshare** direction predictor (12-bit global history, 4K-entry 2-bit
//! pattern history table) and a **branch target buffer** (2K sets × 4 ways,
//! LRU). The 10-cycle misprediction penalty is enforced by the core model in
//! `swque-cpu`, not here.
//!
//! # Example
//!
//! ```
//! use swque_branch::{BranchKind, BranchOutcome, BranchPredictor, PredictorConfig};
//!
//! let mut bp = BranchPredictor::new(PredictorConfig::default());
//! // Train a always-taken loop branch at pc 0x40.
//! for _ in 0..8 {
//!     let p = bp.predict(0x40, BranchKind::Conditional);
//!     bp.update(0x40, BranchKind::Conditional, p, BranchOutcome { taken: true, target: 0x10 });
//! }
//! let p = bp.predict(0x40, BranchKind::Conditional);
//! assert!(p.taken && p.target == Some(0x10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod gshare;
mod predictor;

pub use btb::Btb;
pub use gshare::Gshare;
pub use predictor::{
    BranchKind, BranchOutcome, BranchPredictor, BranchStats, Prediction, PredictorConfig,
};
