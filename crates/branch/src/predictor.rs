//! Combined front-end predictor: gshare direction + BTB targets.

use crate::btb::Btb;
use crate::gshare::Gshare;

/// What kind of control-flow instruction is being predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKind {
    /// Conditional branch: direction from gshare, target from the BTB.
    Conditional,
    /// Direct unconditional jump or call: always taken; the target is known
    /// at decode, so target prediction cannot miss.
    DirectJump,
    /// Indirect jump (`jr`): always taken, target only from the BTB.
    IndirectJump,
}

/// The actual outcome of a branch, used for training and for checking the
/// prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Whether the branch redirected control flow.
    pub taken: bool,
    /// Where it went if taken (the fall-through pc otherwise).
    pub target: u64,
}

/// A front-end prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target if taken. `None` means the front end has no target
    /// (BTB miss), which counts as a misprediction for taken branches.
    pub target: Option<u64>,
}

impl Prediction {
    /// Whether this prediction matches the real `outcome` for a branch whose
    /// decode-known target is `known_target` (direct jumps/branches encode
    /// their target, so only the direction can mispredict for them once
    /// decoded; indirect jumps rely on the BTB).
    pub fn correct(&self, kind: BranchKind, outcome: BranchOutcome) -> bool {
        if self.taken != outcome.taken {
            return false;
        }
        if !outcome.taken {
            return true;
        }
        match kind {
            // Direct control flow: target is available from the instruction
            // at decode; the BTB only accelerates fetch. Treat a direction
            // hit as a full hit (SimpleScalar models direct targets as
            // decode-resolvable).
            BranchKind::Conditional | BranchKind::DirectJump => true,
            BranchKind::IndirectJump => self.target == Some(outcome.target),
        }
    }
}

/// Configuration for [`BranchPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Global history length in bits.
    pub history_bits: u32,
    /// Number of PHT entries (power of two).
    pub pht_entries: usize,
    /// Number of BTB sets (power of two).
    pub btb_sets: usize,
    /// BTB associativity.
    pub btb_ways: usize,
}

impl Default for PredictorConfig {
    /// The paper's Table 2: 12-bit-history 4K-entry gshare, 2K-set 4-way BTB.
    fn default() -> PredictorConfig {
        PredictorConfig { history_bits: 12, pht_entries: 4096, btb_sets: 2048, btb_ways: 4 }
    }
}

/// Prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Branches predicted.
    pub predicted: u64,
    /// Mispredictions (direction or indirect-target).
    pub mispredicted: u64,
}

impl BranchStats {
    /// Counter difference `self - earlier` (for measurement windows that
    /// exclude warmup).
    pub fn delta(&self, earlier: &BranchStats) -> BranchStats {
        BranchStats {
            predicted: self.predicted.saturating_sub(earlier.predicted),
            mispredicted: self.mispredicted.saturating_sub(earlier.mispredicted),
        }
    }

    /// Misprediction rate in `[0, 1]`; zero when nothing was predicted.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predicted == 0 {
            0.0
        } else {
            self.mispredicted as f64 / self.predicted as f64
        }
    }
}

/// The combined front-end branch predictor.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    gshare: Gshare,
    btb: Btb,
    stats: BranchStats,
}

impl BranchPredictor {
    /// Creates a predictor from `config`.
    pub fn new(config: PredictorConfig) -> BranchPredictor {
        BranchPredictor {
            gshare: Gshare::new(config.history_bits, config.pht_entries),
            btb: Btb::new(config.btb_sets, config.btb_ways),
            stats: BranchStats::default(),
        }
    }

    /// Predicts the control-flow instruction at `pc`.
    pub fn predict(&mut self, pc: u64, kind: BranchKind) -> Prediction {
        let target = self.btb.lookup(pc);
        let taken = match kind {
            BranchKind::Conditional => self.gshare.predict(pc),
            BranchKind::DirectJump | BranchKind::IndirectJump => true,
        };
        Prediction { taken, target }
    }

    /// Trains the predictor with the real outcome and records whether the
    /// earlier `prediction` was correct. Returns `true` on a misprediction.
    pub fn update(
        &mut self,
        pc: u64,
        kind: BranchKind,
        prediction: Prediction,
        outcome: BranchOutcome,
    ) -> bool {
        if kind == BranchKind::Conditional {
            self.gshare.update(pc, outcome.taken);
        }
        if outcome.taken {
            self.btb.insert(pc, outcome.target);
        }
        let miss = !prediction.correct(kind, outcome);
        self.stats.predicted += 1;
        self.stats.mispredicted += miss as u64;
        miss
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }
}

impl Default for BranchPredictor {
    fn default() -> BranchPredictor {
        BranchPredictor::new(PredictorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_branch_converges_to_correct() {
        let mut bp = BranchPredictor::default();
        let outcome = BranchOutcome { taken: true, target: 0x10 };
        let mut last_miss = true;
        for _ in 0..16 {
            let p = bp.predict(0x40, BranchKind::Conditional);
            last_miss = bp.update(0x40, BranchKind::Conditional, p, outcome);
        }
        assert!(!last_miss, "trained loop branch should predict correctly");
    }

    #[test]
    fn indirect_jump_needs_btb_target() {
        let mut bp = BranchPredictor::default();
        let outcome = BranchOutcome { taken: true, target: 0x999 };
        let p = bp.predict(0x80, BranchKind::IndirectJump);
        assert!(p.taken && p.target.is_none());
        assert!(bp.update(0x80, BranchKind::IndirectJump, p, outcome), "cold jr mispredicts");
        let p2 = bp.predict(0x80, BranchKind::IndirectJump);
        assert_eq!(p2.target, Some(0x999));
        assert!(!bp.update(0x80, BranchKind::IndirectJump, p2, outcome));
    }

    #[test]
    fn indirect_jump_with_changing_target_mispredicts() {
        let mut bp = BranchPredictor::default();
        let o1 = BranchOutcome { taken: true, target: 0x100 };
        let o2 = BranchOutcome { taken: true, target: 0x200 };
        let p = bp.predict(0x80, BranchKind::IndirectJump);
        bp.update(0x80, BranchKind::IndirectJump, p, o1);
        let p = bp.predict(0x80, BranchKind::IndirectJump);
        assert!(bp.update(0x80, BranchKind::IndirectJump, p, o2), "target changed");
    }

    #[test]
    fn direct_jump_direction_is_always_taken() {
        let mut bp = BranchPredictor::default();
        let p = bp.predict(0x44, BranchKind::DirectJump);
        assert!(p.taken);
        let miss =
            bp.update(0x44, BranchKind::DirectJump, p, BranchOutcome { taken: true, target: 7 });
        assert!(!miss, "direct jumps resolve their target at decode");
    }

    #[test]
    fn stats_accumulate() {
        let mut bp = BranchPredictor::default();
        for i in 0..10 {
            let p = bp.predict(0x40, BranchKind::Conditional);
            bp.update(
                0x40,
                BranchKind::Conditional,
                p,
                BranchOutcome { taken: i % 2 == 0, target: 0x10 },
            );
        }
        assert_eq!(bp.stats().predicted, 10);
        assert!(bp.stats().mispredict_rate() > 0.0);
    }

    #[test]
    fn not_taken_correct_prediction_ignores_target() {
        let p = Prediction { taken: false, target: None };
        assert!(p.correct(
            BranchKind::Conditional,
            BranchOutcome { taken: false, target: 0xdead }
        ));
    }
}
