//! A lightweight in-tree property-testing harness (replaces `proptest`).
//!
//! A property is an ordinary `#[test]` whose body calls [`check`] with a
//! case count and a closure; the closure draws random inputs from a
//! [`Gen`] and asserts with the standard `assert!` family. Each case runs
//! under its own deterministically derived seed, so a red run is
//! reproducible by simply rerunning the test — and a single failing case
//! can be replayed directly:
//!
//! ```text
//! property failed at case 17/128 (case seed 0x1234abcd5678ef00)
//! replay just this case with: SWQUE_PROP_SEED=0x1234abcd5678ef00 SWQUE_PROP_CASES=1
//! ```
//!
//! # Environment knobs
//!
//! * `SWQUE_PROP_CASES=<n>` — multiply/override the per-test case count:
//!   a plain integer replaces the count requested by the test.
//! * `SWQUE_PROP_SEED=<hex or dec>` — base seed. Case 0 uses exactly this
//!   seed (so the replay recipe above works); later cases derive from it.
//!
//! # Design notes
//!
//! Unlike `proptest` there is no shrinking: cases here are small by
//! construction (the closure draws sizes from bounded ranges), and the
//! derived-seed replay loop covers the debugging need. What is preserved
//! from the original suites is the *case budget* — every ported property
//! runs at least as many cases as its `proptest` predecessor.
//!
//! ```
//! use swque_rng::prop::check;
//!
//! check(64, |g| {
//!     let xs: Vec<u32> = g.vec(0..20, |g| g.gen_range(0u32..1000));
//!     let mut sorted = xs.clone();
//!     sorted.sort_unstable();
//!     sorted.sort_unstable(); // sorting twice equals sorting once
//!     let mut once = xs;
//!     once.sort_unstable();
//!     assert_eq!(sorted, once);
//! });
//! ```

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::{splitmix64, Rng, UniformRange};

/// Default base seed when `SWQUE_PROP_SEED` is unset. Arbitrary but fixed:
/// the suite is fully deterministic run-to-run.
const DEFAULT_BASE_SEED: u64 = 0x5EED_0F_CA5E_5340;

/// Per-case random input source handed to property closures.
///
/// `Gen` derefs to [`Rng`], so every `Rng` method (`gen_range`, `shuffle`,
/// `choose`, …) is available, plus collection helpers that mirror the
/// `proptest::collection` strategies the ported suites used.
pub struct Gen {
    rng: Rng,
    case_seed: u64,
}

impl Gen {
    /// The seed this case runs under (what the failure report prints).
    pub fn case_seed(&self) -> u64 {
        self.case_seed
    }

    /// A uniformly random `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniformly random `u32`.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    /// A uniformly random `u16`.
    pub fn u16(&mut self) -> u16 {
        (self.rng.next_u64() >> 48) as u16
    }

    /// A uniformly random `u8`.
    pub fn u8(&mut self) -> u8 {
        (self.rng.next_u64() >> 56) as u8
    }

    /// A uniformly random `i32`.
    pub fn i32(&mut self) -> i32 {
        self.rng.next_u32() as i32
    }

    /// A uniformly random `i16`.
    pub fn i16(&mut self) -> i16 {
        self.u16() as i16
    }

    /// A uniformly random `bool`.
    pub fn bool(&mut self) -> bool {
        self.rng.next_bool()
    }

    /// A uniform value in `range` (same types as [`Rng::gen_range`]).
    pub fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        self.rng.gen_range(range)
    }

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// produced by `f` — the analogue of `proptest::collection::vec`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.rng.gen_range(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// `Some(f(g))` with probability ~1/2 — the analogue of
    /// `proptest::option::of`.
    pub fn option<T>(&mut self, mut f: impl FnMut(&mut Gen) -> T) -> Option<T> {
        if self.bool() {
            Some(f(self))
        } else {
            None
        }
    }

    /// Picks an index with probability proportional to `weights[i]` — the
    /// analogue of `prop_oneof!` with weights. Returns the chosen index.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "weighted() needs a positive total weight"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
        let mut roll = self.rng.bounded(total);
        for (i, &w) in weights.iter().enumerate() {
            if roll < w as u64 {
                return i;
            }
            roll -= w as u64;
        }
        unreachable!("roll < total by construction"); // swque-lint: allow(panic-in-lib) — bounded(total) returns a value below total, so some weight absorbs the roll
    }

    /// Direct access to the underlying [`Rng`] (for APIs taking `&mut Rng`).
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

impl std::ops::Deref for Gen {
    type Target = Rng;
    fn deref(&self) -> &Rng {
        &self.rng
    }
}

impl std::ops::DerefMut for Gen {
    fn deref_mut(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

/// How many cases to run given the test's request, honouring
/// `SWQUE_PROP_CASES`.
fn effective_cases(requested: usize) -> usize {
    // swque-lint: allow(env-read) — SWQUE_PROP_CASES is the documented case-budget knob
    match std::env::var("SWQUE_PROP_CASES") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            // swque-lint: allow(panic-in-lib) — a garbled case budget must fail the test run loudly, not shrink coverage silently
            .unwrap_or_else(|_| panic!("SWQUE_PROP_CASES must be an integer, got {v:?}"))
            .max(1),
        Err(_) => requested,
    }
}

/// The base seed, honouring `SWQUE_PROP_SEED` (hex with `0x` prefix, or
/// decimal).
fn base_seed() -> u64 {
    // swque-lint: allow(env-read) — SWQUE_PROP_SEED is the documented failing-case replay knob
    match std::env::var("SWQUE_PROP_SEED") {
        Ok(v) => {
            let t = v.trim();
            let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => t.parse::<u64>(),
            };
            // swque-lint: allow(panic-in-lib) — a garbled replay seed must fail loudly, not silently test a different case
            parsed.unwrap_or_else(|_| panic!("SWQUE_PROP_SEED must be hex or decimal, got {v:?}"))
        }
        Err(_) => DEFAULT_BASE_SEED,
    }
}

/// Runs `property` for `cases` deterministic cases (subject to the
/// environment knobs above). On the first failing case, reports the case
/// index and seed with a one-line replay recipe, then re-raises the
/// original panic so the test harness still shows the assertion message.
pub fn check(cases: usize, property: impl Fn(&mut Gen)) {
    let cases = effective_cases(cases);
    let base = base_seed();
    let mut derive = base;
    for case in 0..cases {
        // Case 0 runs under the base seed itself so a reported case seed
        // can be replayed verbatim via SWQUE_PROP_SEED; later cases use
        // the SplitMix64 stream off the base.
        let case_seed = if case == 0 { base } else { splitmix64(&mut derive) };
        let mut gen = Gen { rng: Rng::seed_from_u64(case_seed), case_seed };
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut gen)));
        if let Err(payload) = outcome {
            eprintln!("property failed at case {case}/{cases} (case seed {case_seed:#018x})");
            eprintln!(
                "replay just this case with: SWQUE_PROP_SEED={case_seed:#x} SWQUE_PROP_CASES=1"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_and_seeds() {
        use std::cell::RefCell;
        let seeds: RefCell<Vec<u64>> = RefCell::new(Vec::new());
        check(50, |g| seeds.borrow_mut().push(g.case_seed()));
        let seeds = seeds.into_inner();
        assert_eq!(seeds.len(), 50);
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 50, "every case gets its own seed");
        // And the whole schedule is deterministic.
        let again: RefCell<Vec<u64>> = RefCell::new(Vec::new());
        check(50, |g| again.borrow_mut().push(g.case_seed()));
        assert_eq!(seeds, again.into_inner());
    }

    #[test]
    fn failing_property_still_panics() {
        let result = catch_unwind(|| {
            check(10, |_g| panic!("intended failure"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn vec_respects_length_bounds() {
        check(100, |g| {
            let v: Vec<u8> = g.vec(2..9, |g| g.u8());
            assert!((2..9).contains(&v.len()));
        });
    }

    #[test]
    fn weighted_hits_every_bucket_and_respects_zero_weights() {
        let mut g = Gen { rng: Rng::seed_from_u64(1), case_seed: 1 };
        let mut counts = [0u32; 4];
        for _ in 0..4_000 {
            counts[g.weighted(&[4, 0, 3, 1])] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight never chosen");
        assert!(counts[0] > counts[2] && counts[2] > counts[3], "{counts:?}");
        assert!(counts[3] > 0);
    }
}
