//! A minimal wall-clock bench harness (replaces `criterion` for the
//! `crates/bench/benches/` targets).
//!
//! Bench binaries are plain `main()` programs (`harness = false`); each
//! builds a [`Bench`], registers closures, and gets per-benchmark
//! min/median/mean timings printed to stdout:
//!
//! ```text
//! scheduling_round/SHIFT        median   41.2 µs/iter  (min 40.8, mean 41.9; 20 samples × 32 iters)
//! ```
//!
//! There is deliberately no statistics engine, HTML report, or baseline
//! store: the experiment binaries under `crates/bench/src/bin/` own the
//! paper's measurements, and these benches exist to (a) exercise every
//! experiment code path from `cargo bench` and (b) give a quick relative
//! signal on the scheduling primitives. The median over ≥10 samples is
//! robust enough for both.
//!
//! # CLI / environment
//!
//! Cargo passes bench binaries extra arguments; the harness understands:
//!
//! * a positional `<filter>` — only run benchmarks whose
//!   `group/name` contains the substring (same convention as criterion);
//! * `--test` — run each benchmark body exactly once and print nothing
//!   but a PASS line (used by `cargo test --benches` smoke runs);
//! * `--bench` (ignored; cargo adds it).
//! * `SWQUE_BENCH_SAMPLES=<n>` — samples per benchmark (default 10).
//! * `SWQUE_BENCH_TARGET_MS=<n>` — target milliseconds per sample batch
//!   (default 20); iteration count per sample is calibrated to this.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-export so bench files need only `use swque_rng::timer::*`.
pub use std::hint::black_box as bb;

/// A registry-free bench harness: call [`Bench::bench`] for each
/// benchmark; results print immediately.
pub struct Bench {
    filter: Option<String>,
    group: String,
    samples: usize,
    target_ms: u64,
    test_mode: bool,
    ran: usize,
}

impl Default for Bench {
    fn default() -> Bench {
        Bench::from_env()
    }
}

impl Bench {
    /// Builds a harness from CLI args and environment (see module docs).
    pub fn from_env() -> Bench {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Cargo's harness flags; meaningless here.
                "--bench" | "--nocapture" | "--quiet" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        let env_usize = |key: &str, default: usize| {
            std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
        };
        Bench {
            filter,
            group: String::new(),
            samples: env_usize("SWQUE_BENCH_SAMPLES", 10).max(3),
            target_ms: env_usize("SWQUE_BENCH_TARGET_MS", 20) as u64,
            test_mode,
            ran: 0,
        }
    }

    /// Starts a named group; subsequent benchmarks print as
    /// `group/name`.
    pub fn group(&mut self, name: &str) -> &mut Bench {
        self.group = name.to_string();
        self
    }

    /// Overrides the per-benchmark sample count (criterion's
    /// `sample_size` analogue).
    pub fn sample_size(&mut self, samples: usize) -> &mut Bench {
        self.samples = samples.max(3);
        self
    }

    /// Times `f`, printing one result line. The closure's return value is
    /// passed through [`black_box`] so the computation cannot be
    /// optimized away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        let full = if self.group.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.group, name)
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        self.ran += 1;
        if self.test_mode {
            black_box(f());
            println!("{full}: PASS (1 iter, --test mode)");
            return;
        }

        // Calibrate: time single iterations until we know roughly how many
        // fit the per-sample target.
        let target = Duration::from_millis(self.target_ms.max(1));
        let mut one = Duration::ZERO;
        let mut warmup_iters = 0u32;
        let warmup_deadline = Instant::now() + target;
        while Instant::now() < warmup_deadline || warmup_iters < 1 {
            let t0 = Instant::now();
            black_box(f());
            one += t0.elapsed();
            warmup_iters += 1;
            if warmup_iters >= 1_000 {
                break;
            }
        }
        let per_iter = one / warmup_iters.max(1);
        let iters_per_sample =
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32;

        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            sample_ns.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        let min = sample_ns[0];
        let median = sample_ns[sample_ns.len() / 2];
        let mean = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;
        println!(
            "{full:<44} median {:>10}/iter  (min {}, mean {}; {} samples × {} iters)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(mean),
            self.samples,
            iters_per_sample,
        );
    }

    /// Prints a summary; call last from `main`. Warns when a filter
    /// matched nothing (a typo would otherwise silently pass).
    pub fn finish(&self) {
        if self.ran == 0 {
            match &self.filter {
                Some(f) => println!("warning: filter {f:?} matched no benchmarks"),
                None => println!("warning: no benchmarks registered"),
            }
        }
    }
}

/// Human-scaled duration: ns → µs → ms → s with three significant digits.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_bench(test_mode: bool) -> Bench {
        Bench {
            filter: None,
            group: String::new(),
            samples: 3,
            target_ms: 1,
            test_mode,
            ran: 0,
        }
    }

    #[test]
    fn bench_runs_the_closure_and_counts_it() {
        let mut b = quiet_bench(true);
        let mut calls = 0u32;
        b.bench("counted", || calls += 1);
        assert_eq!(calls, 1, "--test mode runs exactly once");
        assert_eq!(b.ran, 1);
    }

    #[test]
    fn filter_skips_nonmatching_names() {
        let mut b = quiet_bench(true);
        b.filter = Some("match_me".to_string());
        let mut calls = 0u32;
        b.group("g");
        b.bench("other", || calls += 1);
        b.bench("match_me_exactly", || calls += 10);
        assert_eq!(calls, 10);
        assert_eq!(b.ran, 1);
    }

    #[test]
    fn timed_mode_reports_multiple_iterations() {
        let mut b = quiet_bench(false);
        let mut calls = 0u64;
        b.bench("fast", || calls += 1);
        assert!(calls > 3, "warmup + 3 samples all execute the closure: {calls}");
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(999.0), "999.0 ns");
        assert_eq!(fmt_ns(1_500.0), "1.5 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_200_000_000.0), "3.20 s");
    }
}
