//! In-tree deterministic randomness substrate.
//!
//! Everything stochastic in this workspace — synthetic-workload layout,
//! property-test case generation, tie-breaking experiments — flows through
//! [`Rng`], a seedable [xoshiro256\*\*] generator whose output is **pinned
//! forever**: the golden tests at the bottom of this file assert exact
//! output words, so any change to the algorithm or its constants fails
//! loudly. That is the determinism guarantee the paper reproduction needs
//! (and which `rand::StdRng` explicitly disclaims across versions): a
//! workload trace generated from seed `s` today is bit-identical to the
//! trace generated from `s` by any past or future checkout.
//!
//! The crate also hosts the two dev-tool substrates that previously pulled
//! external dependencies:
//!
//! * [`prop`] — a lightweight property-testing harness (seeded case
//!   generation, configurable case counts, failing-seed reporting) that
//!   replaces `proptest`.
//! * [`timer`] — a minimal wall-clock bench harness that replaces
//!   `criterion` for the `crates/bench/benches/` targets.
//!
//! # Algorithm
//!
//! State initialization uses SplitMix64 (Steele, Lea & Flood), the
//! recommended seeder for the xoshiro family: it guarantees the 256-bit
//! state is never all-zero and decorrelates nearby seeds. The generator
//! itself is xoshiro256\*\* 1.0 (Blackman & Vigna, 2018): 256 bits of
//! state, period 2^256 − 1, passes BigCrush, and needs only shifts, xors,
//! rotates and one multiply per output — fast enough to build multi-million
//! node ring permutations inside unit tests.
//!
//! [xoshiro256\*\*]: https://prng.di.unimi.it/
//!
//! # Example
//!
//! ```
//! use swque_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let die = rng.gen_range(1u64..7);
//! assert!((1..7).contains(&die));
//!
//! let mut deck: Vec<u32> = (0..52).collect();
//! rng.shuffle(&mut deck);
//! assert_eq!(deck.len(), 52);
//!
//! // Same seed ⇒ same stream, forever.
//! assert_eq!(
//!     Rng::seed_from_u64(42).next_u64(),
//!     Rng::seed_from_u64(42).next_u64(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prop;
pub mod timer;

use std::ops::Range;

/// One SplitMix64 step: advances `*state` and returns the next output.
///
/// Public because the property harness uses it to derive independent
/// per-case seeds from a base seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable, deterministic pseudo-random number generator
/// (xoshiro256\*\*, SplitMix64-seeded).
///
/// Not cryptographic, and deliberately so: the point is speed and a
/// bit-stable output stream (see the crate docs). Cloning an `Rng` clones
/// the stream position; two clones produce identical outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose 256-bit state is expanded from `seed` by
    /// four SplitMix64 steps.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Returns the next 64 uniformly random bits (xoshiro256\*\* output
    /// function `rotl(s1 * 5, 7) * 9`).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 uniformly random bits (the upper half of
    /// [`next_u64`](Rng::next_u64), which are the strongest bits of the
    /// \*\* scrambler).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly random bool.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        // The top bit: xoshiro's lowest bits are its weakest.
        self.next_u64() >> 63 == 1
    }

    /// Returns a uniform value in `[0, bound)` via Lemire's
    /// multiply-shift. The modulo bias is at most `bound / 2^64` — far
    /// below anything a simulation could observe — in exchange for a
    /// rejection-free (therefore fixed-consumption, therefore trivially
    /// reproducible) mapping: every call consumes exactly one stream word.
    #[inline]
    pub fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bounded(0) is meaningless");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform value in `range` (half-open, must be non-empty).
    ///
    /// Supported types: all primitive unsigned/signed integers, `usize`,
    /// and `f64`. Every call consumes exactly one stream word regardless
    /// of type or range.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    #[inline]
    pub fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Fisher–Yates shuffles `slice` in place (consumes `len - 1` stream
    /// words for `len ≥ 2`, otherwise none).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Returns a uniformly chosen element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded(slice.len() as u64) as usize])
        }
    }

    /// Fills `dest` with random bytes (consumes `ceil(len / 8)` stream
    /// words).
    pub fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a half-open range.
pub trait UniformRange: Copy {
    /// Samples a uniform value in `range`; panics if the range is empty.
    fn sample(rng: &mut Rng, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            #[inline]
            fn sample(rng: &mut Rng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on empty range"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition of gen_range
                let span = (range.end - range.start) as u64;
                range.start + rng.bounded(span) as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            #[inline]
            fn sample(rng: &mut Rng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on empty range"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition of gen_range
                // Width fits in u64 even for i64::MIN..i64::MAX.
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add(rng.bounded(span) as $t)
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

impl UniformRange for f64 {
    #[inline]
    fn sample(rng: &mut Rng, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range on empty range"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition of gen_range
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// THE determinism anchor for the whole workspace. These words were
    /// produced by this implementation at the commit that introduced it
    /// and must never change: every golden workload trace in
    /// `crates/workloads/tests/golden_trace.rs` is downstream of them. If
    /// this test fails, you have changed the PRNG algorithm or constants —
    /// revert, or knowingly re-pin every golden artifact in the tree.
    #[test]
    fn output_stream_is_pinned_forever() {
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            [
                0x99EC_5F36_CB75_F2B4,
                0xBF6E_1F78_4956_452A,
                0x1A5F_849D_4933_E6E0,
                0x6AA5_94F1_262D_2D2C,
            ],
        );
        let mut r = Rng::seed_from_u64(0x5EED);
        let seeded: Vec<u64> = (0..2).map(|_| r.next_u64()).collect();
        assert_eq!(seeded, [0xEF33_F170_5524_4B74, 0xE1F5_9111_2FB5_051B]);
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference output for seed 0 from the published SplitMix64 code.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(8);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds_for_every_supported_type() {
        let mut r = Rng::seed_from_u64(123);
        for _ in 0..10_000 {
            let u = r.gen_range(10u64..20);
            assert!((10..20).contains(&u));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let s = r.gen_range(0usize..3);
            assert!(s < 3);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_both_endpoints_of_small_ranges() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn gen_range_handles_extreme_signed_span() {
        let mut r = Rng::seed_from_u64(11);
        for _ in 0..1_000 {
            let v = r.gen_range(i64::MIN..i64::MAX);
            assert!(v < i64::MAX);
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut r = Rng::seed_from_u64(42);
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "100 elements almost surely move");

        let mut v2: Vec<u32> = (0..100).collect();
        let mut r2 = Rng::seed_from_u64(42);
        r2.shuffle(&mut v2);
        assert_eq!(v, v2, "same seed, same permutation");
    }

    #[test]
    fn choose_is_none_on_empty_and_uniformish_otherwise() {
        let mut r = Rng::seed_from_u64(5);
        assert_eq!(r.choose::<u8>(&[]), None);
        let items = [0usize, 1, 2];
        let mut counts = [0u32; 3];
        for _ in 0..3_000 {
            counts[*r.choose(&items).unwrap()] += 1;
        }
        for c in counts {
            assert!(c > 700, "roughly uniform: {counts:?}");
        }
    }

    #[test]
    fn fill_populates_every_byte_position() {
        let mut r = Rng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        // One fill of an odd length exercises the partial final chunk;
        // across a few fills every position should see a nonzero byte.
        let mut ever_nonzero = [false; 37];
        for _ in 0..16 {
            r.fill(&mut buf);
            for (i, &b) in buf.iter().enumerate() {
                ever_nonzero[i] |= b != 0;
            }
        }
        assert_eq!(ever_nonzero, [true; 37]);
    }

    #[test]
    fn bounded_respects_bound_one() {
        let mut r = Rng::seed_from_u64(77);
        for _ in 0..100 {
            assert_eq!(r.bounded(1), 0);
        }
    }
}
