//! Queue-level differential oracle for the bitset wakeup/select rewrite.
//!
//! `swque-core`'s hot paths (wakeup broadcast, select scans, age-matrix
//! resolution) run on packed `u64` bit planes. This test proves the rewrite
//! is *cycle-exact* against the scalar semantics it replaced: for every
//! rewired organization, a from-scratch scalar reference model — per-slot
//! CAM-scan wakeup, per-position select loops, explicit boolean age
//! matrices, exactly the shape of the pre-rewrite code — is driven through
//! the same random dispatch/wakeup/select/squash/flush sequence as the real
//! queue, and the two must produce identical grant streams (payload, seq,
//! fu, rank, two-cycle flag, *order*) and identical occupancy/space
//! observables after every single operation.
//!
//! Module-level oracles (`ScalarSlotArray`, `ScalarAgeMatrix` in the crate)
//! already pin the data structures; this test pins the *composition* — the
//! plane-combining select scans in CIRC/CIRC-PPRI/CIRC-PC/RAND/AGE/
//! AGE-multiAM/REARRANGE. End-to-end cycle counts are additionally pinned
//! by `swque-cpu`'s `golden_cycles` test.

use std::collections::BTreeMap;

use swque_core::{
    BucketSpec, DispatchReq, Grant, IqConfig, IqKind, IssueBudget, IssueQueue, Tag,
};
use swque_isa::FuClass;
use swque_rng::prop::{check, Gen};

// ---------------------------------------------------------------------------
// Scalar reference substrate: per-slot storage with CAM-scan wakeup.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct RefSlot {
    valid: bool,
    seq: u64,
    payload: u64,
    dst: Option<Tag>,
    srcs: [Option<Tag>; 2],
    fu: FuClass,
    reverse: bool,
    pending_rv: bool,
    bucket: u8,
}

const EMPTY: RefSlot = RefSlot {
    valid: false,
    seq: 0,
    payload: 0,
    dst: None,
    srcs: [None, None],
    fu: FuClass::IntAlu,
    reverse: false,
    pending_rv: false,
    bucket: 0,
};

impl RefSlot {
    fn ready(&self) -> bool {
        self.valid && self.srcs[0].is_none() && self.srcs[1].is_none()
    }
}

struct RefSlots {
    slots: Vec<RefSlot>,
    len: usize,
}

impl RefSlots {
    fn new(capacity: usize) -> RefSlots {
        RefSlots { slots: vec![EMPTY; capacity], len: 0 }
    }

    fn insert(&mut self, pos: usize, req: DispatchReq, reverse: bool, bucket: u8) {
        assert!(!self.slots[pos].valid);
        self.slots[pos] = RefSlot {
            valid: true,
            seq: req.seq,
            payload: req.payload,
            dst: req.dst,
            srcs: req.srcs,
            fu: req.fu,
            reverse,
            pending_rv: false,
            bucket,
        };
        self.len += 1;
    }

    fn remove(&mut self, pos: usize) {
        assert!(self.slots[pos].valid);
        self.slots[pos].valid = false;
        self.slots[pos].pending_rv = false;
        self.slots[pos].reverse = false;
        self.len -= 1;
    }

    /// The scalar CAM broadcast: every slot compares both sources.
    fn wakeup(&mut self, tag: Tag) {
        for slot in &mut self.slots {
            if !slot.valid {
                continue;
            }
            for src in &mut slot.srcs {
                if *src == Some(tag) {
                    *src = None;
                }
            }
        }
    }

    fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.len = 0;
    }

    fn first_free(&self) -> Option<usize> {
        self.slots.iter().position(|s| !s.valid)
    }

    fn grant(&mut self, pos: usize, rank: usize, two_cycle: bool) -> Grant {
        let s = self.slots[pos];
        self.remove(pos);
        Grant { payload: s.payload, seq: s.seq, dst: s.dst, fu: s.fu, rank, two_cycle }
    }
}

/// Explicit boolean age matrix (the paper's figure, literally).
struct RefAgeMatrix {
    older: Vec<Vec<bool>>,
    valid: Vec<bool>,
}

impl RefAgeMatrix {
    fn new(capacity: usize) -> RefAgeMatrix {
        RefAgeMatrix { older: vec![vec![false; capacity]; capacity], valid: vec![false; capacity] }
    }

    fn allocate(&mut self, i: usize) {
        for j in 0..self.valid.len() {
            self.older[i][j] = self.valid[j];
        }
        for r in 0..self.valid.len() {
            if r != i {
                self.older[r][i] = false;
            }
        }
        self.valid[i] = true;
    }

    fn deallocate(&mut self, i: usize) {
        for row in &mut self.older {
            row[i] = false;
        }
        self.valid[i] = false;
    }

    fn clear(&mut self) {
        for row in &mut self.older {
            row.fill(false);
        }
        self.valid.fill(false);
    }

    fn oldest_ready(&self, req: &[bool]) -> Option<usize> {
        (0..self.valid.len()).find(|&i| {
            req[i]
                && self.valid[i]
                && (0..self.valid.len())
                    .all(|j| !(self.older[i][j] && req[j] && self.valid[j]))
        })
    }
}

// ---------------------------------------------------------------------------
// Scalar reference queues: the pre-rewrite select loops, verbatim shape.
// ---------------------------------------------------------------------------

/// The operations a reference model mirrors; grants are the ground truth.
trait RefQueue {
    fn has_space(&self) -> bool;
    fn len(&self) -> usize;
    fn dispatch(&mut self, req: DispatchReq) -> bool;
    fn wakeup(&mut self, tag: Tag);
    fn select(&mut self, budget: &mut IssueBudget) -> Vec<Grant>;
    fn flush(&mut self);
    fn squash_younger(&mut self, seq: u64);
}

struct RefCirc {
    slots: RefSlots,
    head: usize,
    region: usize,
    perfect: bool,
}

impl RefCirc {
    fn new(capacity: usize, perfect: bool) -> RefCirc {
        RefCirc { slots: RefSlots::new(capacity), head: 0, region: 0, perfect }
    }

    fn cap(&self) -> usize {
        self.slots.slots.len()
    }

    fn tail(&self) -> usize {
        (self.head + self.region) % self.cap()
    }

    fn depth(&self, pos: usize) -> usize {
        (pos + self.cap() - self.head) % self.cap()
    }

    fn advance_head(&mut self) {
        while self.region > 0 && !self.slots.slots[self.head].valid {
            self.head = (self.head + 1) % self.cap();
            self.region -= 1;
        }
        if self.region == 0 {
            self.head = self.tail();
        }
    }
}

impl RefQueue for RefCirc {
    fn has_space(&self) -> bool {
        self.region < self.cap()
    }

    fn len(&self) -> usize {
        self.slots.len
    }

    fn dispatch(&mut self, req: DispatchReq) -> bool {
        if !self.has_space() {
            return false;
        }
        let pos = self.tail();
        let reverse = self.head + self.region >= self.cap();
        self.slots.insert(pos, req, reverse, 0);
        self.region += 1;
        true
    }

    fn wakeup(&mut self, tag: Tag) {
        self.slots.wakeup(tag);
    }

    fn select(&mut self, budget: &mut IssueBudget) -> Vec<Grant> {
        let cap = self.cap();
        let mut grants = Vec::new();
        for i in 0..cap {
            if budget.exhausted() {
                break;
            }
            let pos = if self.perfect { (self.head + i) % cap } else { i };
            let slot = self.slots.slots[pos];
            if slot.ready() && budget.try_take(slot.fu) {
                let rank = self.depth(pos);
                grants.push(self.slots.grant(pos, rank, false));
            }
        }
        self.advance_head();
        grants
    }

    fn flush(&mut self) {
        self.slots.clear();
        self.head = 0;
        self.region = 0;
    }

    fn squash_younger(&mut self, seq: u64) {
        let cap = self.cap();
        while self.region > 0 {
            let pos = (self.head + self.region - 1) % cap;
            let slot = self.slots.slots[pos];
            if slot.seq <= seq {
                break;
            }
            if slot.valid {
                self.slots.remove(pos);
            }
            self.region -= 1;
        }
        self.advance_head();
    }
}

struct RefCircPc {
    slots: RefSlots,
    head: usize,
    region: usize,
    pending: Vec<usize>,
    issue_width: usize,
}

impl RefCircPc {
    fn new(capacity: usize, issue_width: usize) -> RefCircPc {
        RefCircPc {
            slots: RefSlots::new(capacity),
            head: 0,
            region: 0,
            pending: Vec::new(),
            issue_width,
        }
    }

    fn cap(&self) -> usize {
        self.slots.slots.len()
    }

    fn tail(&self) -> usize {
        (self.head + self.region) % self.cap()
    }

    fn wrapped(&self) -> bool {
        self.head + self.region > self.cap()
    }

    fn depth(&self, pos: usize) -> usize {
        (pos + self.cap() - self.head) % self.cap()
    }

    fn advance_head(&mut self) {
        while self.region > 0 && !self.slots.slots[self.head].valid {
            self.head = (self.head + 1) % self.cap();
            self.region -= 1;
        }
        if self.region == 0 {
            self.head = self.tail();
        }
    }

    fn is_rv(&self, pos: usize) -> bool {
        self.slots.slots[pos].reverse && self.wrapped()
    }
}

impl RefQueue for RefCircPc {
    fn has_space(&self) -> bool {
        self.region < self.cap()
    }

    fn len(&self) -> usize {
        self.slots.len
    }

    fn dispatch(&mut self, req: DispatchReq) -> bool {
        if !self.has_space() {
            return false;
        }
        let pos = self.tail();
        let reverse = self.head + self.region >= self.cap();
        self.slots.insert(pos, req, reverse, 0);
        self.region += 1;
        true
    }

    fn wakeup(&mut self, tag: Tag) {
        self.slots.wakeup(tag);
    }

    fn select(&mut self, budget: &mut IssueBudget) -> Vec<Grant> {
        let cap = self.cap();
        let mut grants = Vec::new();
        // S_NR.
        for pos in 0..cap {
            if budget.exhausted() {
                break;
            }
            let slot = self.slots.slots[pos];
            if slot.ready() && !slot.pending_rv && !self.is_rv(pos) && budget.try_take(slot.fu) {
                let rank = self.depth(pos);
                grants.push(self.slots.grant(pos, rank, false));
            }
        }
        // DTM merge of last cycle's PTL tags.
        let pending = std::mem::take(&mut self.pending);
        for pos in pending {
            let slot = self.slots.slots[pos];
            if !slot.valid || !slot.pending_rv {
                continue;
            }
            if budget.try_take(slot.fu) {
                let rank = self.depth(pos);
                grants.push(self.slots.grant(pos, rank, true));
            } else {
                self.slots.slots[pos].pending_rv = false;
            }
        }
        // S_RV.
        let mut picked = 0;
        for pos in 0..cap {
            if picked == self.issue_width {
                break;
            }
            let slot = self.slots.slots[pos];
            if slot.valid && slot.ready() && !slot.pending_rv && self.is_rv(pos) {
                self.slots.slots[pos].pending_rv = true;
                self.pending.push(pos);
                picked += 1;
            }
        }
        self.advance_head();
        grants
    }

    fn flush(&mut self) {
        self.slots.clear();
        self.pending.clear();
        self.head = 0;
        self.region = 0;
    }

    fn squash_younger(&mut self, seq: u64) {
        let cap = self.cap();
        while self.region > 0 {
            let pos = (self.head + self.region - 1) % cap;
            let slot = self.slots.slots[pos];
            if slot.seq <= seq {
                break;
            }
            if slot.valid {
                self.slots.remove(pos);
            }
            self.region -= 1;
        }
        self.pending.retain(|&pos| {
            let s = self.slots.slots[pos];
            s.valid && s.pending_rv
        });
        self.advance_head();
    }
}

struct RefRand {
    slots: RefSlots,
    matrices: Vec<RefAgeMatrix>,
    groups: [(u8, u8); 3],
    bucket_load: Vec<usize>,
}

fn group_of(fu: FuClass) -> usize {
    match fu {
        FuClass::IntAlu | FuClass::IntMulDiv => 0,
        FuClass::LdSt => 1,
        FuClass::Fpu => 2,
    }
}

impl RefRand {
    fn new(capacity: usize, spec: BucketSpec, matrices: usize) -> RefRand {
        RefRand {
            slots: RefSlots::new(capacity),
            matrices: (0..matrices).map(|_| RefAgeMatrix::new(capacity)).collect(),
            groups: [
                (0, spec.int as u8),
                (spec.int as u8, spec.mem as u8),
                ((spec.int + spec.mem) as u8, spec.fp as u8),
            ],
            bucket_load: vec![0; matrices.max(1)],
        }
    }

    fn steer(&self, fu: FuClass) -> u8 {
        if self.matrices.len() <= 1 {
            return 0;
        }
        let (first, count) = self.groups[group_of(fu)];
        (first..first + count).min_by_key(|&b| self.bucket_load[b as usize]).unwrap()
    }

    fn remove_entry(&mut self, pos: usize) {
        let bucket = self.slots.slots[pos].bucket as usize;
        self.slots.remove(pos);
        if let Some(m) = self.matrices.get_mut(bucket) {
            m.deallocate(pos);
        }
        if !self.matrices.is_empty() {
            self.bucket_load[bucket] -= 1;
        }
    }

    fn grant_at(&mut self, pos: usize, rank: usize) -> Grant {
        let s = self.slots.slots[pos];
        self.remove_entry(pos);
        Grant { payload: s.payload, seq: s.seq, dst: s.dst, fu: s.fu, rank, two_cycle: false }
    }
}

impl RefQueue for RefRand {
    fn has_space(&self) -> bool {
        self.slots.len < self.slots.slots.len()
    }

    fn len(&self) -> usize {
        self.slots.len
    }

    fn dispatch(&mut self, req: DispatchReq) -> bool {
        let Some(pos) = self.slots.first_free() else { return false };
        let bucket = self.steer(req.fu);
        self.slots.insert(pos, req, false, bucket);
        if let Some(m) = self.matrices.get_mut(bucket as usize) {
            m.allocate(pos);
        }
        if !self.matrices.is_empty() {
            self.bucket_load[bucket as usize] += 1;
        }
        true
    }

    fn wakeup(&mut self, tag: Tag) {
        self.slots.wakeup(tag);
    }

    fn select(&mut self, budget: &mut IssueBudget) -> Vec<Grant> {
        let mut grants = Vec::new();
        for m in 0..self.matrices.len() {
            if budget.exhausted() {
                break;
            }
            let req: Vec<bool> = self.slots.slots.iter().map(|s| s.ready()).collect();
            let Some(pos) = self.matrices[m].oldest_ready(&req) else { continue };
            let fu = self.slots.slots[pos].fu;
            if budget.try_take(fu) {
                grants.push(self.grant_at(pos, 0));
            }
        }
        for pos in 0..self.slots.slots.len() {
            if budget.exhausted() {
                break;
            }
            let slot = self.slots.slots[pos];
            if slot.ready() && budget.try_take(slot.fu) {
                grants.push(self.grant_at(pos, pos));
            }
        }
        grants
    }

    fn flush(&mut self) {
        self.slots.clear();
        for m in &mut self.matrices {
            m.clear();
        }
        self.bucket_load.fill(0);
    }

    fn squash_younger(&mut self, seq: u64) {
        let doomed: Vec<usize> = (0..self.slots.slots.len())
            .filter(|&p| self.slots.slots[p].valid && self.slots.slots[p].seq > seq)
            .collect();
        for pos in doomed {
            self.remove_entry(pos);
        }
    }
}

struct RefRearrange {
    slots: RefSlots,
    old: BTreeMap<u64, usize>,
    old_capacity: usize,
    move_width: usize,
}

impl RefRearrange {
    fn new(capacity: usize) -> RefRearrange {
        RefRearrange { slots: RefSlots::new(capacity), old: BTreeMap::new(), old_capacity: 16, move_width: 4 }
    }

    fn rearrange(&mut self) {
        let mut candidates: Vec<(u64, usize)> = (0..self.slots.slots.len())
            .filter(|&p| self.slots.slots[p].valid)
            .map(|p| (self.slots.slots[p].seq, p))
            .filter(|(seq, _)| !self.old.contains_key(seq))
            .collect();
        candidates.sort_unstable();
        for (seq, pos) in candidates.into_iter().take(self.move_width) {
            if self.old.len() >= self.old_capacity {
                break;
            }
            self.old.insert(seq, pos);
        }
    }

    fn grant_at(&mut self, pos: usize, rank: usize) -> Grant {
        let s = self.slots.slots[pos];
        self.old.remove(&s.seq);
        self.slots.remove(pos);
        Grant { payload: s.payload, seq: s.seq, dst: s.dst, fu: s.fu, rank, two_cycle: false }
    }
}

impl RefQueue for RefRearrange {
    fn has_space(&self) -> bool {
        self.slots.len < self.slots.slots.len()
    }

    fn len(&self) -> usize {
        self.slots.len
    }

    fn dispatch(&mut self, req: DispatchReq) -> bool {
        let Some(pos) = self.slots.first_free() else { return false };
        self.slots.insert(pos, req, false, 0);
        true
    }

    fn wakeup(&mut self, tag: Tag) {
        self.slots.wakeup(tag);
    }

    fn select(&mut self, budget: &mut IssueBudget) -> Vec<Grant> {
        self.rearrange();
        let mut grants = Vec::new();
        let old_positions: Vec<usize> = self.old.values().copied().collect();
        for pos in old_positions {
            if budget.exhausted() {
                break;
            }
            let slot = self.slots.slots[pos];
            if slot.ready() && budget.try_take(slot.fu) {
                grants.push(self.grant_at(pos, 0));
            }
        }
        for pos in 0..self.slots.slots.len() {
            if budget.exhausted() {
                break;
            }
            let slot = self.slots.slots[pos];
            if slot.valid && slot.ready() && !self.old.contains_key(&slot.seq) {
                if budget.try_take(slot.fu) {
                    grants.push(self.grant_at(pos, pos));
                }
            }
        }
        grants
    }

    fn flush(&mut self) {
        self.slots.clear();
        self.old.clear();
    }

    fn squash_younger(&mut self, seq: u64) {
        let doomed: Vec<usize> = (0..self.slots.slots.len())
            .filter(|&p| self.slots.slots[p].valid && self.slots.slots[p].seq > seq)
            .collect();
        for pos in doomed {
            let s = self.slots.slots[pos].seq;
            self.old.remove(&s);
            self.slots.remove(pos);
        }
    }
}

// ---------------------------------------------------------------------------
// The lockstep driver.
// ---------------------------------------------------------------------------

const FUS: [FuClass; 4] = [FuClass::IntAlu, FuClass::IntMulDiv, FuClass::LdSt, FuClass::Fpu];

fn random_req(g: &mut Gen, seq: u64) -> DispatchReq {
    let mk = |g: &mut Gen| -> Option<Tag> { g.bool().then(|| g.gen_range(0u64..16) as Tag) };
    let srcs = [mk(g), mk(g)];
    let fu = FUS[g.gen_range(0u64..4) as usize];
    DispatchReq::new(seq, seq * 3 + 1, Some((seq % 16) as Tag), srcs, fu)
}

/// Drives `real` and `reference` through an identical random op sequence,
/// asserting identical grants and observables at every step.
fn drive(g: &mut Gen, mut real: Box<dyn IssueQueue>, reference: &mut dyn RefQueue) {
    let mut seq = 0u64;
    let mut dispatched: Vec<u64> = Vec::new();
    let ops = g.gen_range(20usize..250);
    for step in 0..ops {
        match g.gen_range(0u32..100) {
            // Dispatch a random instruction.
            0..=39 => {
                assert_eq!(real.has_space(), reference.has_space(), "step {step}: has_space");
                let req = random_req(g, seq);
                seq += 1;
                let real_ok = real.dispatch(req).is_ok();
                let ref_ok = reference.dispatch(req);
                assert_eq!(real_ok, ref_ok, "step {step}: dispatch outcome");
                if real_ok {
                    dispatched.push(req.seq);
                }
            }
            // Broadcast a tag.
            40..=59 => {
                let tag = g.gen_range(0u64..16) as Tag;
                real.wakeup(tag);
                reference.wakeup(tag);
            }
            // Select with a random budget.
            60..=89 => {
                let width = g.gen_range(0u64..5) as usize;
                let fu_free = [
                    g.gen_range(0u64..3) as usize,
                    g.gen_range(0u64..3) as usize,
                    g.gen_range(0u64..3) as usize,
                    g.gen_range(0u64..3) as usize,
                ];
                let mut b_real = IssueBudget::new(width, fu_free);
                let mut b_ref = IssueBudget::new(width, fu_free);
                let g_real = real.select(&mut b_real);
                let g_ref = reference.select(&mut b_ref);
                assert_eq!(g_real, g_ref, "step {step}: grant stream ({})", real.name());
                assert_eq!(b_real, b_ref, "step {step}: leftover budget");
            }
            // Branch-misprediction squash to a random dispatched seq.
            90..=95 => {
                let bound = if dispatched.is_empty() {
                    0
                } else {
                    dispatched[g.gen_range(0u64..dispatched.len() as u64) as usize]
                };
                real.squash_younger(bound);
                reference.squash_younger(bound);
            }
            // Full flush.
            _ => {
                real.flush();
                reference.flush();
            }
        }
        assert_eq!(real.len(), reference.len(), "step {step}: len");
        assert_eq!(real.has_space(), reference.has_space(), "step {step}: has_space");
    }
}

fn config(capacity: usize, issue_width: usize) -> IqConfig {
    IqConfig { capacity, issue_width, buckets: BucketSpec::medium(), ..IqConfig::default() }
}

fn run_kind(kind: IqKind, cases: usize) {
    check(cases, move |g| {
        let capacity = g.gen_range(2usize..70);
        let issue_width = g.gen_range(1usize..5);
        let cfg = config(capacity, issue_width);
        let real = kind.build(&cfg);
        let mut reference: Box<dyn RefQueue> = match kind {
            IqKind::Circ => Box::new(RefCirc::new(capacity, false)),
            IqKind::CircPpri => Box::new(RefCirc::new(capacity, true)),
            IqKind::CircPc => Box::new(RefCircPc::new(capacity, issue_width)),
            IqKind::Rand => Box::new(RefRand::new(capacity, cfg.buckets, 0)),
            IqKind::Age => {
                Box::new(RefRand::new(capacity, BucketSpec { int: 1, mem: 0, fp: 0 }, 1))
            }
            IqKind::AgeMulti => {
                Box::new(RefRand::new(capacity, cfg.buckets, cfg.buckets.total()))
            }
            IqKind::Rearrange => Box::new(RefRearrange::new(capacity)),
            other => panic!("no scalar reference for {other}"),
        };
        drive(g, real, reference.as_mut());
    });
}

#[test]
fn circ_matches_scalar_reference() {
    run_kind(IqKind::Circ, 48);
}

#[test]
fn circ_ppri_matches_scalar_reference() {
    run_kind(IqKind::CircPpri, 48);
}

#[test]
fn circ_pc_matches_scalar_reference() {
    run_kind(IqKind::CircPc, 48);
}

#[test]
fn rand_matches_scalar_reference() {
    run_kind(IqKind::Rand, 48);
}

#[test]
fn age_matches_scalar_reference() {
    run_kind(IqKind::Age, 48);
}

#[test]
fn age_multi_matches_scalar_reference() {
    run_kind(IqKind::AgeMulti, 48);
}

#[test]
fn rearrange_matches_scalar_reference() {
    run_kind(IqKind::Rearrange, 48);
}
