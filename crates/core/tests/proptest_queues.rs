//! Property-based tests over the issue-queue organizations: random
//! operation sequences must preserve the structural invariants of every
//! scheme, and the age matrix must agree with a sequence-number oracle.
//!
//! Ported from `proptest` to the in-tree harness (`swque_rng::prop`);
//! each property keeps at least its original case count (64).

use swque_rng::prop::{check, Gen};

use swque_core::{AgeMatrix, DispatchReq, IqConfig, IqKind, IssueBudget, Tag};
use swque_isa::FuClass;

/// A randomly generated queue operation.
#[derive(Debug, Clone)]
enum Op {
    Dispatch { wait_tag: Option<Tag>, fu: u8 },
    Wakeup(Tag),
    Select { width: u8 },
    SquashTail { keep_frac: u8 },
    Flush,
}

/// Mirrors the original weighted `prop_oneof!` strategy
/// (4 dispatch : 3 wakeup : 3 select : 1 squash : 1 flush).
fn random_op(g: &mut Gen) -> Op {
    match g.weighted(&[4, 3, 3, 1, 1]) {
        0 => Op::Dispatch {
            wait_tag: g.option(|g| g.gen_range(1u16..24)),
            fu: g.gen_range(0u8..4),
        },
        1 => Op::Wakeup(g.gen_range(1u16..24)),
        2 => Op::Select { width: g.gen_range(1u8..7) },
        3 => Op::SquashTail { keep_frac: g.gen_range(0u8..8) },
        _ => Op::Flush,
    }
}

fn fu_of(i: u8) -> FuClass {
    match i % 4 {
        0 => FuClass::IntAlu,
        1 => FuClass::IntMulDiv,
        2 => FuClass::LdSt,
        _ => FuClass::Fpu,
    }
}

/// Every queue kind, driven by arbitrary operation sequences:
/// * occupancy never exceeds capacity,
/// * every grant was actually dispatched, ready, and never granted twice,
/// * grants respect the issue budget,
/// * squashes remove exactly the younger instructions.
#[test]
fn queue_invariants_hold_under_random_ops() {
    check(64, |g| {
        let ops: Vec<Op> = g.vec(1..120, random_op);
        let config = IqConfig { capacity: 12, issue_width: 4, ..IqConfig::default() };
        for kind in IqKind::ALL {
            let mut q = kind.build(&config);
            let mut seq = 0u64;
            let mut live: std::collections::HashMap<u64, Option<Tag>> = Default::default();
            let mut woken: std::collections::HashSet<Tag> = Default::default();
            let mut granted: std::collections::HashSet<u64> = Default::default();
            for op in &ops {
                match op {
                    Op::Dispatch { wait_tag, fu } => {
                        // Tags already woken would be resolved by the
                        // dispatcher's scoreboard in a real core.
                        let tag = wait_tag.filter(|t| !woken.contains(t));
                        if q.has_space() {
                            q.dispatch(DispatchReq::new(
                                seq, seq, Some(200 + (seq % 50) as Tag),
                                [tag, None], fu_of(*fu),
                            )).expect("has_space held");
                            live.insert(seq, tag);
                            seq += 1;
                        } else {
                            assert!(q.len() <= config.capacity, "{kind}");
                        }
                    }
                    Op::Wakeup(tag) => {
                        q.wakeup(*tag);
                        woken.insert(*tag);
                    }
                    Op::Select { width } => {
                        let w = *width as usize;
                        let mut budget = IssueBudget::new(w, [w, w, w, w]);
                        let grants = q.select(&mut budget);
                        assert!(grants.len() <= w, "{kind}: grant count within width");
                        for grant in &grants {
                            let waited = live.remove(&grant.seq);
                            assert!(waited.is_some(), "{kind}: grant of live entry {}", grant.seq);
                            if let Some(Some(tag)) = waited {
                                assert!(woken.contains(&tag), "{kind}: granted only after wakeup");
                            }
                            assert!(granted.insert(grant.seq), "{kind}: no double grant");
                        }
                    }
                    Op::SquashTail { keep_frac } => {
                        // Keep roughly keep_frac/8 of the live entries.
                        let mut seqs: Vec<u64> = live.keys().copied().collect();
                        seqs.sort_unstable();
                        let keep = seqs.len() * (*keep_frac as usize) / 8;
                        let cut = seqs.get(keep.saturating_sub(1)).copied().unwrap_or(0);
                        q.squash_younger(cut);
                        live.retain(|&s, _| s <= cut);
                    }
                    Op::Flush => {
                        q.flush();
                        live.clear();
                    }
                }
                assert!(q.len() <= config.capacity, "{kind}: occupancy bound");
                assert_eq!(q.len(), live.len(), "{kind} occupancy mirrors the model");
            }
        }
    });
}

/// The bit-matrix age matrix agrees with a simple "smallest sequence
/// number among requesters" oracle under arbitrary histories.
#[test]
fn age_matrix_matches_sequence_oracle() {
    check(64, |g| {
        let events: Vec<(usize, bool)> = g.vec(1..200, |g| (g.gen_range(0usize..16), g.bool()));
        let request_mask: u16 = g.u16();
        let mut m = AgeMatrix::new(16);
        let mut ages: Vec<Option<u64>> = vec![None; 16];
        let mut clock = 0u64;
        for (slot, alloc) in events {
            if alloc && ages[slot].is_none() {
                m.allocate(slot);
                ages[slot] = Some(clock);
                clock += 1;
            } else if !alloc && ages[slot].is_some() {
                m.deallocate(slot);
                ages[slot] = None;
            }
        }
        let requests: Vec<usize> =
            (0..16).filter(|&i| request_mask >> i & 1 == 1).collect();
        let oracle = requests
            .iter()
            .filter_map(|&i| ages[i].map(|a| (a, i)))
            .min()
            .map(|(_, i)| i);
        assert_eq!(m.oldest_ready(requests), oracle);
    });
}

/// SHIFT (the priority gold standard) issues ready instructions in
/// strict age order.
#[test]
fn shift_issues_in_age_order() {
    check(64, |g| {
        let ready_mask: u16 = g.u16();
        let config = IqConfig { capacity: 16, issue_width: 16, ..IqConfig::default() };
        let mut q = IqKind::Shift.build(&config);
        for seq in 0..16u64 {
            let waiting = ready_mask >> seq & 1 == 0;
            let srcs = if waiting { [Some(99 as Tag), None] } else { [None, None] };
            q.dispatch(DispatchReq::new(seq, seq, None, srcs, FuClass::IntAlu)).unwrap();
        }
        let mut budget = IssueBudget::new(16, [16, 16, 16, 16]);
        let grants = q.select(&mut budget);
        let seqs: Vec<u64> = grants.iter().map(|grant| grant.seq).collect();
        let mut expected: Vec<u64> =
            (0..16u64).filter(|s| ready_mask >> s & 1 == 1).collect();
        expected.truncate(seqs.len());
        assert_eq!(seqs, expected);
    });
}

/// Circular queues reclaim all capacity after arbitrary
/// dispatch/issue/squash churn followed by a drain.
#[test]
fn circular_capacity_fully_recovers() {
    check(64, |g| {
        let rounds = g.gen_range(1usize..20);
        let drain_mask: u32 = g.u32();
        for kind in [IqKind::Circ, IqKind::CircPpri, IqKind::CircPc] {
            let config = IqConfig { capacity: 8, issue_width: 4, ..IqConfig::default() };
            let mut q = kind.build(&config);
            let mut seq = 0u64;
            for r in 0..rounds {
                while q.has_space() {
                    let ready = drain_mask >> (seq % 32) & 1 == 1;
                    let srcs = if ready { [None, None] } else { [Some(7 as Tag), None] };
                    q.dispatch(DispatchReq::new(seq, seq, None, srcs, FuClass::IntAlu)).unwrap();
                    seq += 1;
                }
                let mut b = IssueBudget::new(4, [4, 4, 4, 4]);
                let _ = q.select(&mut b);
                if r % 3 == 2 {
                    q.squash_younger(seq.saturating_sub(3));
                }
            }
            // Drain completely: everything wakes, then selects empty it.
            q.wakeup(7);
            let mut guard = 0;
            while !q.is_empty() {
                let mut b = IssueBudget::new(4, [4, 4, 4, 4]);
                let grants = q.select(&mut b);
                assert!(!grants.is_empty() || guard < 2, "{kind}: drain progresses");
                guard += 1;
                assert!(guard < 100, "{kind}: drain terminates");
            }
            // Full capacity must be available again.
            let mut dispatched = 0;
            while q.has_space() {
                q.dispatch(DispatchReq::new(seq, seq, None, [None, None], FuClass::IntAlu))
                    .unwrap();
                seq += 1;
                dispatched += 1;
            }
            assert_eq!(dispatched, 8, "{kind} reclaims every entry");
        }
    });
}
