//! Cross-scheme tests for misprediction squash (`squash_younger`).

use swque_core::{DispatchReq, IqConfig, IqKind, IssueBudget, Tag};
use swque_isa::FuClass;

fn cfg() -> IqConfig {
    IqConfig { capacity: 8, issue_width: 4, ..IqConfig::default() }
}

fn ready(seq: u64) -> DispatchReq {
    DispatchReq::new(seq, seq, Some(seq as Tag), [None, None], FuClass::IntAlu)
}

fn waiting(seq: u64, tag: Tag) -> DispatchReq {
    DispatchReq::new(seq, seq, Some(seq as Tag), [Some(tag), None], FuClass::IntAlu)
}

fn budget(n: usize) -> IssueBudget {
    IssueBudget::new(n, [n, n, n, n])
}

#[test]
fn squash_removes_exactly_the_younger_entries() {
    for kind in IqKind::ALL {
        let mut q = kind.build(&cfg());
        for seq in 0..6 {
            q.dispatch(waiting(seq, 99)).unwrap();
        }
        q.squash_younger(2);
        assert_eq!(q.len(), 3, "{kind}: seqs 0..=2 survive");
        q.wakeup(99);
        let mut seqs: Vec<u64> = Vec::new();
        while !q.is_empty() {
            seqs.extend(q.select(&mut budget(4)).iter().map(|g| g.seq));
        }
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1, 2], "{kind}: survivors issue normally");
    }
}

#[test]
fn squash_everything_younger_than_nothing_empties_queue() {
    for kind in IqKind::ALL {
        let mut q = kind.build(&cfg());
        for seq in 1..5 {
            q.dispatch(ready(seq)).unwrap();
        }
        q.squash_younger(0);
        assert!(q.is_empty(), "{kind}");
        assert!(q.select(&mut budget(4)).is_empty(), "{kind}: no ghost grants");
    }
}

#[test]
fn squash_reclaims_circular_capacity() {
    // Fill a circular queue completely, then squash the younger half: the
    // tail must roll back so new dispatches fit.
    for kind in [IqKind::Circ, IqKind::CircPpri, IqKind::CircPc] {
        let mut q = kind.build(&cfg());
        for seq in 0..8 {
            q.dispatch(waiting(seq, 99)).unwrap();
        }
        assert!(!q.has_space(), "{kind}");
        q.squash_younger(3);
        assert!(q.has_space(), "{kind}: tail rolled back");
        for seq in 10..14 {
            q.dispatch(waiting(seq, 99)).unwrap();
        }
        assert_eq!(q.len(), 8, "{kind}: refilled after squash");
    }
}

#[test]
fn squash_past_holes_reclaims_them() {
    // Issue a young instruction (leaving a tail-side hole), then squash
    // past it: the hole must be reclaimed along with live younger entries.
    let mut q = IqKind::Circ.build(&cfg());
    q.dispatch(waiting(0, 99)).unwrap();
    q.dispatch(waiting(1, 99)).unwrap();
    q.dispatch(ready(2)).unwrap();
    q.dispatch(waiting(3, 99)).unwrap();
    let g = q.select(&mut budget(1));
    assert_eq!(g[0].seq, 2, "young ready issues, leaving a hole");
    q.squash_younger(1);
    assert_eq!(q.len(), 2);
    // Region is back to two entries: six more fit.
    for seq in 10..16 {
        q.dispatch(waiting(seq, 99)).unwrap();
    }
    assert!(!q.has_space());
}

#[test]
fn circ_pc_pending_rv_grants_die_with_the_squash() {
    let config = cfg();
    let mut q = IqKind::CircPc.build(&config);
    // Build a wrapped queue: fill, issue the two oldest, dispatch two more.
    for seq in 0..8 {
        q.dispatch(waiting(seq, if seq < 2 { 7 } else { 99 })).unwrap();
    }
    q.wakeup(7);
    assert_eq!(q.select(&mut budget(2)).len(), 2);
    q.dispatch(waiting(8, 55)).unwrap();
    q.dispatch(waiting(9, 55)).unwrap();
    // RV entries become ready and are selected by S_RV (pending).
    q.wakeup(55);
    assert!(q.select(&mut budget(4)).is_empty(), "RV selection cycle");
    // Squash them before the merge: nothing may issue.
    q.squash_younger(7);
    let g = q.select(&mut budget(4));
    assert!(g.is_empty(), "squashed pending RV tags must not merge: {g:?}");
}

#[test]
fn age_matrix_consistent_after_squash() {
    let mut q = IqKind::Age.build(&cfg());
    for seq in 0..6 {
        q.dispatch(waiting(seq, 99)).unwrap();
    }
    q.squash_younger(3);
    // Dispatch a new young instruction into a freed slot and check the age
    // matrix still ranks the old survivor first.
    q.dispatch(waiting(10, 99)).unwrap();
    q.wakeup(99);
    let g = q.select(&mut budget(1));
    assert_eq!(g[0].seq, 0, "oldest survivor keeps age-matrix priority");
}

#[test]
fn squash_interleaves_with_normal_operation() {
    // Repeated dispatch/squash cycles must not leak capacity in any scheme.
    for kind in IqKind::ALL {
        let mut q = kind.build(&cfg());
        let mut seq = 0u64;
        for round in 0..50 {
            while q.has_space() {
                q.dispatch(waiting(seq, 99)).unwrap();
                seq += 1;
            }
            let keep = seq - 1 - (round % 4);
            q.squash_younger(keep);
            if round % 8 == 7 {
                q.wakeup(99);
                while !q.is_empty() {
                    let g = q.select(&mut budget(4));
                    assert!(!g.is_empty(), "{kind}: drain makes progress");
                }
            }
        }
    }
}
