//! Property test reconciling the observability layer with the aggregate
//! statistics: every controller interval SWQUE counts must appear as
//! exactly one `TraceEvent::Interval` in an attached recorder, and the
//! events flagged `switched` must equal the completed switches in
//! `SwqueStats` — the trace is the statistics, itemized.

use swque_core::{IqConfig, IqKind};
use swque_rng::prop::{check, Gen};
use swque_trace::{TraceEvent, TraceHandle};

#[test]
fn interval_events_reconcile_with_swque_stats() {
    check(64, |g: &mut Gen| {
        let config = IqConfig { capacity: 16, issue_width: 2, ..IqConfig::default() };
        let interval = config.swque.interval_insts;
        let mut q = IqKind::Swque.build(&config);
        let trace = TraceHandle::ring(8192);
        q.attach_trace(&trace);

        // Drive the per-cycle poll contract with a random retirement/miss
        // history: steps sometimes cross an interval boundary, sometimes
        // not, and the miss stream swings MPKI across the controller's
        // threshold so both mode directions are exercised. A returned
        // `true` is honoured with the flush the core would perform.
        let steps = g.gen_range(1usize..80);
        let mut retired = 0u64;
        let mut misses = 0u64;
        let mut cycle = 0u64;
        for _ in 0..steps {
            retired += g.gen_range(0u64..2 * interval);
            if g.bool() {
                // Memory-bound stretch: well past 1 MPKI per interval.
                misses += g.gen_range(0u64..200);
            }
            cycle += g.gen_range(1u64..5 * interval);
            if q.poll_mode_switch(cycle, retired, misses) {
                q.flush();
            }
        }

        let stats = q.swque_stats().expect("SWQUE reports mode stats");
        let events = trace.events();
        assert_eq!(trace.dropped(), 0, "ring sized for the whole run");

        let intervals: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Interval { .. }))
            .collect();
        assert_eq!(
            intervals.len() as u64,
            stats.intervals,
            "one Interval event per counted interval",
        );
        assert_eq!(intervals.len(), events.len(), "the queue emits nothing else");

        let switched = intervals
            .iter()
            .filter(|e| matches!(e, TraceEvent::Interval { switched: true, .. }))
            .count() as u64;
        assert_eq!(
            switched, stats.switches,
            "every switching decision completed (flush followed poll)",
        );

        // Events arrive in measurement order: cycle and retired stamps are
        // non-decreasing.
        for pair in events.windows(2) {
            assert!(pair[0].cycle() <= pair[1].cycle());
            let r = |e: &TraceEvent| match *e {
                TraceEvent::Interval { retired, .. } => retired,
                _ => unreachable!("only Interval events here"),
            };
            assert!(r(&pair[0]) <= r(&pair[1]));
        }
    });
}
