//! Contract tests added alongside the `swque-mc` model checker
//! (see `crates/mc` and DESIGN.md §12): the checker enforces these
//! properties exhaustively at small scopes, and these randomized tests
//! drive the same contracts at production scopes.
//!
//! * `has_ready` ⇔ a nonzero-budget select grants, per kind, per cycle
//!   (two select passes for the two-cycle scan organizations).
//! * `state_digest` equality tracks `Debug`-render equality, and no
//!   host-parallelism knob (worker threads, `SWQUE_THREADS`) moves it.

use std::collections::HashSet;

use swque_rng::prop::{check, Gen};

use swque_core::{DispatchReq, IqConfig, IqKind, IssueBudget, IssueQueue, Tag};
use swque_isa::FuClass;

#[derive(Debug, Clone)]
enum Op {
    Dispatch { wait_tag: Option<Tag>, fu: u8 },
    Wakeup(Tag),
    Select { width: u8 },
    SquashTail { keep_frac: u8 },
    Flush,
}

fn random_op(g: &mut Gen) -> Op {
    match g.weighted(&[4, 3, 3, 1, 1]) {
        0 => Op::Dispatch {
            wait_tag: g.option(|g| g.gen_range(1u16..24)),
            fu: g.gen_range(0u8..4),
        },
        1 => Op::Wakeup(g.gen_range(1u16..24)),
        2 => Op::Select { width: g.gen_range(1u8..5) },
        3 => Op::SquashTail { keep_frac: g.gen_range(0u8..8) },
        _ => Op::Flush,
    }
}

fn fu_of(i: u8) -> FuClass {
    match i % 4 {
        0 => FuClass::IntAlu,
        1 => FuClass::IntMulDiv,
        2 => FuClass::LdSt,
        _ => FuClass::Fpu,
    }
}

/// Select passes `has_ready` is allowed to look ahead of: the CIRC-PC
/// scan (and the SWQUE organizations that embed it) grants a freshly
/// woken wrap-around entry only on the second pass.
fn scan_passes(kind: IqKind) -> usize {
    match kind {
        IqKind::CircPc | IqKind::Swque | IqKind::SwqueMulti => 2,
        _ => 1,
    }
}

/// Applies `op`, mirroring liveness in `woken`/`live` the way the
/// dispatcher's scoreboard would.
fn apply(
    q: &mut Box<dyn IssueQueue>,
    op: &Op,
    seq: &mut u64,
    live: &mut Vec<u64>,
    woken: &mut HashSet<Tag>,
) {
    match op {
        Op::Dispatch { wait_tag, fu } => {
            let tag = wait_tag.filter(|t| !woken.contains(t));
            if q.has_space() {
                q.dispatch(DispatchReq::new(
                    *seq,
                    *seq,
                    Some(200 + (*seq % 50) as Tag),
                    [tag, None],
                    fu_of(*fu),
                ))
                .expect("has_space held");
                live.push(*seq);
                *seq += 1;
            }
        }
        Op::Wakeup(tag) => {
            q.wakeup(*tag);
            woken.insert(*tag);
        }
        Op::Select { width } => {
            let w = *width as usize;
            let mut budget = IssueBudget::new(w, [w, w, w, w]);
            for grant in q.select(&mut budget) {
                live.retain(|&s| s != grant.seq);
            }
        }
        Op::SquashTail { keep_frac } => {
            live.sort_unstable();
            let keep = live.len() * (*keep_frac as usize) / 8;
            let cut = live.get(keep.saturating_sub(1)).copied().unwrap_or(0);
            q.squash_younger(cut);
            live.retain(|&s| s <= cut);
        }
        Op::Flush => {
            q.flush();
            live.clear();
        }
    }
}

/// `has_ready` is documented as "a nonzero-budget select could grant":
/// drive the two against each other after every operation, on a clone so
/// the probe never perturbs the queue under test. Wrap-around and
/// post-squash states arrive via the random soup.
#[test]
fn has_ready_and_select_stay_in_lockstep() {
    check(64, |g| {
        let ops: Vec<Op> = g.vec(1..100, random_op);
        let config = IqConfig { capacity: 8, issue_width: 4, ..IqConfig::default() };
        for kind in IqKind::ALL {
            let mut q = kind.build(&config);
            let mut seq = 0u64;
            let mut live: Vec<u64> = Vec::new();
            let mut woken: HashSet<Tag> = HashSet::new();
            for op in &ops {
                apply(&mut q, op, &mut seq, &mut live, &mut woken);
                let mut probe = q.clone_box();
                let mut granted = 0usize;
                for _ in 0..scan_passes(kind) {
                    let mut budget = IssueBudget::new(4, [4, 4, 4, 4]);
                    granted += probe.select(&mut budget).len();
                }
                if q.has_ready() {
                    assert!(
                        granted >= 1,
                        "{kind}: has_ready() but {} scan pass(es) granted nothing\n{q:?}",
                        scan_passes(kind)
                    );
                } else {
                    assert_eq!(granted, 0, "{kind}: grant without has_ready()\n{q:?}");
                }
            }
        }
    });
}

/// Digest equality ⇔ `Debug`-render equality: two identically driven
/// instances agree at every step, and a single extra dispatch separates
/// both the render and the digest.
#[test]
fn state_digest_tracks_debug_render_equality() {
    check(48, |g| {
        let ops: Vec<Op> = g.vec(1..80, random_op);
        let config = IqConfig { capacity: 8, issue_width: 4, ..IqConfig::default() };
        for kind in IqKind::ALL {
            let mut a = kind.build(&config);
            let mut b = kind.build(&config);
            let (mut seq_a, mut seq_b) = (0u64, 0u64);
            let (mut live_a, mut live_b) = (Vec::new(), Vec::new());
            let (mut woken_a, mut woken_b) = (HashSet::new(), HashSet::new());
            for op in &ops {
                apply(&mut a, op, &mut seq_a, &mut live_a, &mut woken_a);
                apply(&mut b, op, &mut seq_b, &mut live_b, &mut woken_b);
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "{kind}: lockstep drive");
                assert_eq!(a.state_digest(), b.state_digest(), "{kind}: equal render, equal digest");
            }
            if a.has_space() {
                a.dispatch(DispatchReq::new(seq_a, seq_a, None, [None, None], FuClass::IntAlu))
                    .expect("has_space held");
                assert_ne!(format!("{a:?}"), format!("{b:?}"), "{kind}: dispatch shows in Debug");
                assert_ne!(a.state_digest(), b.state_digest(), "{kind}: digest separates states");
            }
        }
    });
}

/// No host-parallelism knob may move a digest: the same queue state
/// digests identically under different `SWQUE_THREADS` settings (the
/// bench harness's worker knob) and from a spawned worker thread.
#[test]
fn state_digest_is_stable_across_thread_settings() {
    fn drive_and_digest(kind: IqKind) -> u64 {
        let config = IqConfig { capacity: 6, issue_width: 2, ..IqConfig::default() };
        let mut q = kind.build(&config);
        for s in 0..4u64 {
            q.dispatch(DispatchReq::new(s, s, None, [Some(7), None], FuClass::IntAlu))
                .expect("space");
        }
        q.wakeup(7);
        let mut budget = IssueBudget::new(2, [2, 2, 2, 2]);
        let _ = q.select(&mut budget);
        q.state_digest()
    }

    for kind in IqKind::ALL {
        let home = drive_and_digest(kind);
        for threads in ["1", "8"] {
            std::env::set_var("SWQUE_THREADS", threads);
            assert_eq!(drive_and_digest(kind), home, "{kind}: digest moved under SWQUE_THREADS");
        }
        std::env::remove_var("SWQUE_THREADS");
        let from_worker =
            std::thread::spawn(move || drive_and_digest(kind)).join().expect("worker");
        assert_eq!(from_worker, home, "{kind}: digest moved across threads");
    }
}
