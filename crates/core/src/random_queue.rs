//! RAND and AGE: free-list ("random") queues, optionally with one or more
//! age matrices (paper §2.3 and §4.9).
//!
//! Dispatch fills any free entry, so capacity efficiency is perfect, but the
//! physical order — and therefore the position-based select priority — is
//! random with respect to age. RAND uses position priority alone. AGE adds
//! an age matrix that hands the single oldest ready instruction the highest
//! priority; all other grants remain position-ordered. AGE-multiAM
//! partitions instructions into per-function-unit buckets at dispatch (load
//! balanced) and gives each bucket's oldest ready instruction top priority.

use swque_isa::FuClass;

use crate::age_matrix::AgeMatrix;
use crate::horizon::WakeHorizon;
use crate::queue::{BucketSpec, IqConfig, IssueQueue};
use crate::slots::SlotArray;
use crate::stats::IqStats;
use crate::types::{DispatchReq, Grant, IqFullError, IssueBudget, Tag};

/// A free-list queue: RAND (no matrices), AGE (one matrix), or AGE-multiAM
/// (one matrix per bucket).
#[derive(Debug, Clone)]
pub struct RandomQueue {
    slots: SlotArray,
    /// One age matrix per bucket; empty for RAND.
    matrices: Vec<AgeMatrix>,
    /// Bucket id range for each FU group: `[int, mem, fp]` as
    /// `(first, count)`.
    groups: [(u8, u8); 3],
    /// Live entries per bucket, for load-balanced steering.
    bucket_load: Vec<usize>,
    flpi_floor: usize,
    name: &'static str,
    stats: IqStats,
}

fn group_of(fu: FuClass) -> usize {
    match fu {
        FuClass::IntAlu | FuClass::IntMulDiv => 0,
        FuClass::LdSt => 1,
        FuClass::Fpu => 2,
    }
}

impl RandomQueue {
    fn with_buckets(config: &IqConfig, spec: BucketSpec, name: &'static str) -> RandomQueue {
        let total = spec.total();
        let groups = [
            (0u8, spec.int as u8),
            (spec.int as u8, spec.mem as u8),
            ((spec.int + spec.mem) as u8, spec.fp as u8),
        ];
        RandomQueue {
            slots: SlotArray::new(config.capacity),
            matrices: (0..total).map(|_| AgeMatrix::new(config.capacity)).collect(),
            groups,
            bucket_load: vec![0; total.max(1)],
            flpi_floor: config.flpi_rank_floor(),
            name,
            stats: IqStats::default(),
        }
    }

    /// RAND: free-list allocation, position priority, no age matrix.
    pub fn rand(config: &IqConfig) -> RandomQueue {
        let mut q =
            RandomQueue::with_buckets(config, BucketSpec { int: 0, mem: 0, fp: 0 }, "RAND");
        q.matrices.clear();
        q
    }

    /// AGE: RAND plus a single age matrix over the whole queue — the
    /// baseline organization of current processors.
    pub fn age(config: &IqConfig) -> RandomQueue {
        RandomQueue::with_buckets(config, BucketSpec { int: 1, mem: 0, fp: 0 }, "AGE")
    }

    /// AGE-multiAM: one age matrix per function-unit bucket
    /// (`config.buckets`), with load-balanced steering at dispatch.
    pub fn age_multi(config: &IqConfig) -> RandomQueue {
        RandomQueue::with_buckets(config, config.buckets, "AGE-multiAM")
    }

    /// Number of age matrices in use (0 = RAND, 1 = AGE, k = multiAM).
    pub fn num_matrices(&self) -> usize {
        self.matrices.len()
    }

    /// Chooses the least-loaded bucket serving `fu`. With a single matrix
    /// everything maps to bucket 0; with none the value is unused.
    fn steer(&self, fu: FuClass) -> u8 {
        if self.matrices.len() <= 1 {
            return 0;
        }
        let (first, count) = self.groups[group_of(fu)];
        assert!(count > 0, "no bucket serves {fu}"); // swque-lint: allow(panic-in-lib) — the group table is built to cover every FU class; a gap is a construction bug
        (first..first + count)
            .min_by_key(|&b| self.bucket_load[b as usize])
            .unwrap_or(first)
    }

    fn remove_entry(&mut self, pos: usize) {
        let bucket = self.slots.get(pos).bucket as usize;
        self.slots.remove(pos);
        if let Some(m) = self.matrices.get_mut(bucket) {
            m.deallocate(pos);
        }
        if !self.matrices.is_empty() {
            self.bucket_load[bucket] -= 1;
        }
    }

    fn grant_at(&mut self, pos: usize, rank: usize) -> Grant {
        let slot = self.slots.get(pos);
        let g = Grant {
            payload: slot.payload,
            seq: slot.seq,
            dst: slot.dst,
            fu: slot.fu,
            rank,
            two_cycle: false,
        };
        self.remove_entry(pos);
        self.stats.issued += 1;
        self.stats.tag_reads += 1;
        if rank >= self.flpi_floor {
            self.stats.issued_low_priority += 1;
        }
        g
    }
}

impl IssueQueue for RandomQueue {
    fn name(&self) -> &'static str {
        self.name
    }

    fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn has_space(&self) -> bool {
        self.slots.len() < self.slots.capacity()
    }

    fn dispatch(&mut self, req: DispatchReq) -> Result<(), IqFullError> {
        let Some(pos) = self.slots.first_free() else {
            self.stats.dispatch_stalls += 1;
            return Err(IqFullError);
        };
        let bucket = self.steer(req.fu);
        self.slots.insert(pos, req, false, bucket);
        if let Some(m) = self.matrices.get_mut(bucket as usize) {
            m.allocate(pos);
        }
        if !self.matrices.is_empty() {
            self.bucket_load[bucket as usize] += 1;
        }
        self.stats.dispatched += 1;
        Ok(())
    }

    fn wakeup(&mut self, tag: Tag) {
        self.stats.wakeups += 1;
        self.slots.wakeup(tag);
    }

    fn has_ready(&self) -> bool {
        self.slots.any_ready()
    }

    fn idle_tick(&mut self, cycles: u64) {
        // With an empty ready plane both select phases are pure reads (the
        // age matrices only nominate; nomination with no ready bits returns
        // nothing) — only the per-cycle averages advance.
        self.stats.selects += cycles;
        self.stats.occupancy_sum += cycles * self.slots.len() as u64;
        self.stats.region_sum += cycles * self.slots.len() as u64;
    }

    fn select(&mut self, budget: &mut IssueBudget) -> Vec<Grant> {
        self.stats.selects += 1;
        self.stats.occupancy_sum += self.slots.len() as u64;
        self.stats.region_sum += self.slots.len() as u64;

        let mut grants = Vec::new();

        // Phase 1: each age matrix nominates its oldest ready instruction,
        // which gets the highest priority independently of IQ position. The
        // packed ready plane is handed to the matrix directly; each matrix
        // masks it with its own (per-bucket) valid set, and a grant updates
        // the plane before the next matrix reads it.
        for m in 0..self.matrices.len() {
            if budget.exhausted() {
                break;
            }
            let Some(pos) = self.matrices[m].oldest_ready_words(self.slots.ready_words())
            else {
                continue;
            };
            let fu = self.slots.get(pos).fu;
            if budget.try_take(fu) {
                grants.push(self.grant_at(pos, 0));
            }
        }

        // Phase 2: remaining grants in physical-position order — random
        // with respect to age, which is RAND's weakness. Word scan over the
        // ready plane; each word is copied to a register before its bits
        // are visited, so granting (which clears the bit) is safe.
        'pos: for wi in 0..self.slots.ready_words().len() {
            let mut word = self.slots.ready_words()[wi];
            while word != 0 {
                if budget.exhausted() {
                    break 'pos;
                }
                let pos = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let fu = self.slots.get(pos).fu;
                if budget.try_take(fu) {
                    grants.push(self.grant_at(pos, pos));
                }
            }
        }

        grants
    }

    fn flush(&mut self) {
        self.slots.clear();
        for m in &mut self.matrices {
            m.clear();
        }
        self.bucket_load.fill(0);
    }

    fn squash_younger(&mut self, seq: u64) {
        let doomed: Vec<usize> = self
            .slots
            .valid_positions()
            .filter(|&p| self.slots.get(p).seq > seq)
            .collect();
        for pos in doomed {
            self.remove_entry(pos);
        }
    }

    fn stats(&self) -> IqStats {
        self.stats
    }

    fn clone_box(&self) -> Box<dyn IssueQueue> {
        Box::new(self.clone())
    }
}

impl WakeHorizon for RandomQueue {
    fn wake_horizon(&self, _now: u64) -> Option<u64> {
        None // purely reactive: state changes only via wakeup/select/dispatch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cap: usize) -> IqConfig {
        IqConfig { capacity: cap, issue_width: 4, ..IqConfig::default() }
    }

    fn req(seq: u64, fu: FuClass) -> DispatchReq {
        DispatchReq::new(seq, seq, Some(seq as Tag), [None, None], fu)
    }

    fn waiting(seq: u64, tag: Tag) -> DispatchReq {
        DispatchReq::new(seq, seq, Some(seq as Tag), [Some(tag), None], FuClass::IntAlu)
    }

    fn budget(n: usize) -> IssueBudget {
        IssueBudget::new(n, [n, n, n, n])
    }

    /// Creates an age-scrambled queue: the OLDEST live instruction sits at a
    /// HIGH position. Returns the queue with seq 10 (old, pos 3) and seqs
    /// 11, 12 (young, pos 0, 1).
    fn scrambled(mk: fn(&IqConfig) -> RandomQueue) -> RandomQueue {
        let mut q = mk(&cfg(4));
        q.dispatch(waiting(0, 7)).unwrap(); // pos 0, will issue
        q.dispatch(waiting(1, 7)).unwrap(); // pos 1, will issue
        q.dispatch(waiting(2, 7)).unwrap(); // pos 2, will issue
        q.dispatch(waiting(10, 999)).unwrap(); // pos 3, OLD, stays
        q.wakeup(7);
        assert_eq!(q.select(&mut budget(3)).len(), 3);
        q.dispatch(waiting(11, 999)).unwrap(); // pos 0, young
        q.dispatch(waiting(12, 999)).unwrap(); // pos 1, younger
        q.wakeup(999);
        q
    }

    #[test]
    fn rand_priority_is_positional_not_age() {
        let mut q = scrambled(RandomQueue::rand);
        let g = q.select(&mut budget(1));
        assert_eq!(g[0].seq, 11, "RAND picks position 0 even though seq 10 is older");
    }

    #[test]
    fn age_matrix_gives_oldest_top_priority() {
        let mut q = scrambled(RandomQueue::age);
        let g = q.select(&mut budget(1));
        assert_eq!(g[0].seq, 10, "AGE picks the oldest ready instruction first");
        assert_eq!(g[0].rank, 0, "AM grant counts as highest priority");
        // Remaining grants are positional.
        let g = q.select(&mut budget(2));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![11, 12]);
    }

    #[test]
    fn age_selects_only_the_single_oldest_per_cycle() {
        let mut q = scrambled(RandomQueue::age);
        // Width 2: oldest (10) then positional (11) — NOT the two oldest.
        let g = q.select(&mut budget(2));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![10, 11]);
    }

    #[test]
    fn age_falls_back_to_positional_when_oldest_fu_busy() {
        let mut q = RandomQueue::age(&cfg(4));
        q.dispatch(req(0, FuClass::Fpu)).unwrap();
        q.dispatch(req(1, FuClass::IntAlu)).unwrap();
        let mut b = IssueBudget::new(2, [1, 0, 0, 0]); // no FPU free
        let g = q.select(&mut b);
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![1]);
        // The FP instruction issues once an FPU frees up.
        let g = q.select(&mut budget(1));
        assert_eq!(g[0].seq, 0);
    }

    #[test]
    fn multi_am_steering_balances_buckets() {
        let config = IqConfig {
            capacity: 16,
            buckets: BucketSpec { int: 2, mem: 1, fp: 1 },
            ..IqConfig::default()
        };
        let mut q = RandomQueue::age_multi(&config);
        assert_eq!(q.num_matrices(), 4);
        for seq in 0..6 {
            q.dispatch(req(seq, FuClass::IntAlu)).unwrap();
        }
        assert_eq!(q.bucket_load[0], 3);
        assert_eq!(q.bucket_load[1], 3, "INT instructions split across both INT buckets");
        q.dispatch(req(10, FuClass::LdSt)).unwrap();
        q.dispatch(req(11, FuClass::Fpu)).unwrap();
        assert_eq!(q.bucket_load[2], 1);
        assert_eq!(q.bucket_load[3], 1);
    }

    #[test]
    fn multi_am_grants_one_oldest_per_bucket() {
        let config = IqConfig {
            capacity: 16,
            buckets: BucketSpec { int: 2, mem: 1, fp: 1 },
            ..IqConfig::default()
        };
        let mut q = RandomQueue::age_multi(&config);
        // Alternating steering: seq 0 -> bucket 0, seq 1 -> bucket 1, ...
        for seq in 0..4 {
            q.dispatch(req(seq, FuClass::IntAlu)).unwrap();
        }
        // Two buckets nominate their oldest (seqs 0 and 1) before any
        // positional grant (which would be seq 2 at pos 2).
        let g = q.select(&mut budget(2));
        let mut seqs: Vec<u64> = g.iter().map(|g| g.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1]);
        assert!(g.iter().all(|g| g.rank == 0));
    }

    #[test]
    fn free_list_reuses_holes_immediately() {
        let mut q = RandomQueue::rand(&cfg(2));
        q.dispatch(req(0, FuClass::IntAlu)).unwrap();
        q.dispatch(req(1, FuClass::IntAlu)).unwrap();
        assert!(!q.has_space());
        let g = q.select(&mut budget(1));
        assert_eq!(g[0].seq, 0);
        assert!(q.has_space(), "freed entry is reusable at once — full capacity efficiency");
        q.dispatch(req(2, FuClass::IntAlu)).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn flush_resets_matrices_and_loads() {
        let mut q = RandomQueue::age_multi(&IqConfig { capacity: 8, ..IqConfig::default() });
        for seq in 0..4 {
            q.dispatch(req(seq, FuClass::IntAlu)).unwrap();
        }
        q.flush();
        assert!(q.is_empty());
        assert!(q.bucket_load.iter().all(|&l| l == 0));
        q.dispatch(req(9, FuClass::IntAlu)).unwrap();
        let g = q.select(&mut budget(1));
        assert_eq!(g[0].seq, 9);
    }
}
