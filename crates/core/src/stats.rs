//! Issue-queue statistics.

/// Counters every queue accumulates; the circuit energy model and the SWQUE
/// controller are both fed from these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IqStats {
    /// Instructions dispatched into the queue.
    pub dispatched: u64,
    /// Instructions issued (granted).
    pub issued: u64,
    /// Issues whose priority rank fell in the lowest-priority region — the
    /// cumulative FLPI numerator.
    pub issued_low_priority: u64,
    /// Destination-tag broadcasts observed (wakeup CAM search operations).
    pub wakeups: u64,
    /// `select` invocations (= simulated cycles while the queue is live).
    pub selects: u64,
    /// Sum over select calls of queue occupancy (for average occupancy).
    pub occupancy_sum: u64,
    /// Sum over select calls of *allocated region* size, which for circular
    /// queues includes unusable holes. `region_sum - occupancy_sum` measures
    /// the capacity inefficiency of CIRC-style allocation.
    pub region_sum: u64,
    /// CIRC-PC: instructions that issued via the two-cycle RV path.
    pub rv_issues: u64,
    /// CIRC-PC: RV grants discarded at the DTM merge (re-arbitrated later).
    pub rv_discards: u64,
    /// Tag-RAM read operations (CIRC-PC performs a second, time-sliced read
    /// for RV instructions; the energy model charges these).
    pub tag_reads: u64,
    /// Dispatch attempts rejected for lack of an allocatable entry.
    pub dispatch_stalls: u64,
}

impl IqStats {
    /// Counter difference `self - earlier` (for measurement windows that
    /// exclude warmup).
    pub fn delta(&self, earlier: &IqStats) -> IqStats {
        IqStats {
            dispatched: self.dispatched.saturating_sub(earlier.dispatched),
            issued: self.issued.saturating_sub(earlier.issued),
            issued_low_priority: self.issued_low_priority.saturating_sub(earlier.issued_low_priority),
            wakeups: self.wakeups.saturating_sub(earlier.wakeups),
            selects: self.selects.saturating_sub(earlier.selects),
            occupancy_sum: self.occupancy_sum.saturating_sub(earlier.occupancy_sum),
            region_sum: self.region_sum.saturating_sub(earlier.region_sum),
            rv_issues: self.rv_issues.saturating_sub(earlier.rv_issues),
            rv_discards: self.rv_discards.saturating_sub(earlier.rv_discards),
            tag_reads: self.tag_reads.saturating_sub(earlier.tag_reads),
            dispatch_stalls: self.dispatch_stalls.saturating_sub(earlier.dispatch_stalls),
        }
    }

    /// Average occupancy per cycle observed at select time.
    pub fn avg_occupancy(&self) -> f64 {
        if self.selects == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.selects as f64
        }
    }

    /// Capacity efficiency: held instructions / allocated region (paper §1).
    /// 1.0 for compacting/free-list queues; < 1.0 for circular queues with
    /// holes. Returns 1.0 when idle.
    pub fn capacity_efficiency(&self) -> f64 {
        if self.region_sum == 0 {
            1.0
        } else {
            self.occupancy_sum as f64 / self.region_sum as f64
        }
    }

    /// Cumulative FLPI: low-priority issues per issued instruction.
    pub fn flpi(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.issued_low_priority as f64 / self.issued as f64
        }
    }
}

/// SWQUE-specific statistics (mode residency and controller activity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwqueStats {
    /// Mode switches performed (each one costs a pipeline flush).
    pub switches: u64,
    /// Cycles spent configured as CIRC-PC.
    pub cycles_circ_pc: u64,
    /// Cycles spent configured as AGE.
    pub cycles_age: u64,
    /// Controller evaluation intervals completed.
    pub intervals: u64,
    /// Times the instability counter tripped and lowered the AGE-mode FLPI
    /// threshold.
    pub threshold_reductions: u64,
}

impl SwqueStats {
    /// Counter difference `self - earlier` (for measurement windows that
    /// exclude warmup).
    pub fn delta(&self, earlier: &SwqueStats) -> SwqueStats {
        SwqueStats {
            switches: self.switches.saturating_sub(earlier.switches),
            cycles_circ_pc: self.cycles_circ_pc.saturating_sub(earlier.cycles_circ_pc),
            cycles_age: self.cycles_age.saturating_sub(earlier.cycles_age),
            intervals: self.intervals.saturating_sub(earlier.intervals),
            threshold_reductions: self.threshold_reductions.saturating_sub(earlier.threshold_reductions),
        }
    }

    /// Fraction of cycles spent in CIRC-PC mode (`0.0` when idle).
    pub fn circ_pc_fraction(&self) -> f64 {
        let total = self.cycles_circ_pc + self.cycles_age;
        if total == 0 {
            0.0
        } else {
            self.cycles_circ_pc as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let s = IqStats {
            issued: 100,
            issued_low_priority: 4,
            selects: 10,
            occupancy_sum: 50,
            region_sum: 100,
            ..IqStats::default()
        };
        assert!((s.flpi() - 0.04).abs() < 1e-12);
        assert!((s.avg_occupancy() - 5.0).abs() < 1e-12);
        assert!((s.capacity_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn idle_ratios_are_defined() {
        let s = IqStats::default();
        assert_eq!(s.flpi(), 0.0);
        assert_eq!(s.avg_occupancy(), 0.0);
        assert_eq!(s.capacity_efficiency(), 1.0);
        assert_eq!(SwqueStats::default().circ_pc_fraction(), 0.0);
    }
}
