//! Issue-queue organizations — the contribution of *SWQUE: A Mode Switching
//! Issue Queue with Priority-Correcting Circular Queue* (MICRO-52, 2019).
//!
//! The issue queue (IQ) holds dispatched instructions until their source
//! operands are ready and then *selects* which ready instructions issue each
//! cycle. Two properties determine IQ quality (paper §1):
//!
//! 1. **Correct priority** — older instructions should issue first, because
//!    long dependence chains (critical paths) keep their instructions in the
//!    IQ the longest.
//! 2. **Capacity efficiency** — the fraction of physical entries that can
//!    actually hold instructions, which determines how much instruction- and
//!    memory-level parallelism the queue can expose.
//!
//! No conventional organization has both. This crate implements the full
//! taxonomy plus the paper's proposals:
//!
//! | Queue | Allocation | Priority | Capacity |
//! |---|---|---|---|
//! | [`ShiftQueue`] (SHIFT) | compacting | perfect (age) | full |
//! | [`CircQueue`] (CIRC) | circular | *reversed under wrap-around* | holes wasted |
//! | [`CircQueue::perfect_priority`] (CIRC-PPRI) | circular | perfect (idealized) | holes wasted |
//! | [`CircPcQueue`] (CIRC-PC, §3.1) | circular | **corrected** via a second select logic; wrapped instructions issue one cycle late | holes wasted |
//! | [`RandomQueue::rand`] (RAND) | free list | random (position) | full |
//! | [`RandomQueue::age`] (AGE) | free list | oldest-ready first, rest random | full |
//! | [`RandomQueue::age_multi`] (AGE-multiAM, §4.9) | free list | per-bucket oldest-ready, rest random | full |
//! | [`Swque`] (SWQUE, §3.2) | mode-switched | CIRC-PC or AGE by phase | adaptive |
//! | [`RearrangingQueue`] (extension, §5 related work) | free list | multiple-oldest via an old queue | full |
//!
//! All queues implement the [`IssueQueue`] trait, which the cycle-level core
//! model in `swque-cpu` drives once per cycle: broadcast result tags with
//! [`IssueQueue::wakeup`], then call [`IssueQueue::select`] with the cycle's
//! [`IssueBudget`] (issue width and free function units).
//!
//! # Example
//!
//! ```
//! use swque_core::{DispatchReq, IqConfig, IqKind, IssueBudget};
//! use swque_isa::FuClass;
//!
//! let config = IqConfig { capacity: 8, issue_width: 2, ..IqConfig::default() };
//! let mut iq = IqKind::Age.build(&config);
//!
//! // Dispatch one ready add and one add waiting on tag 7.
//! iq.dispatch(DispatchReq::new(0, 100, Some(1), [None, None], FuClass::IntAlu)).unwrap();
//! iq.dispatch(DispatchReq::new(1, 101, Some(2), [Some(7), None], FuClass::IntAlu)).unwrap();
//!
//! let grants = iq.select(&mut IssueBudget::new(2, [2, 1, 2, 2]));
//! assert_eq!(grants.len(), 1, "only the ready instruction issues");
//! assert_eq!(grants[0].payload, 100);
//!
//! iq.wakeup(7); // the producer of tag 7 completes
//! let grants = iq.select(&mut IssueBudget::new(2, [2, 1, 2, 2]));
//! assert_eq!(grants[0].payload, 101);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod age_matrix;
pub mod bitset;
mod circ;
mod circ_pc;
mod controller;
pub mod digest;
mod horizon;
mod queue;
mod random_queue;
mod rearrange;
pub mod replay;
mod shift;
mod slots;
mod stats;
mod swque;
mod types;

pub use age_matrix::AgeMatrix;
pub use digest::fnv1a64;
pub use bitset::BitSet;
pub use circ::CircQueue;
pub use circ_pc::CircPcQueue;
pub use controller::{IntervalMetrics, ModeDecision, SwqueController, SwqueParams};
pub use horizon::{min_horizon, WakeHorizon};
pub use queue::{BucketSpec, IqConfig, IqKind, IssueQueue};
pub use random_queue::RandomQueue;
pub use rearrange::RearrangingQueue;
pub use shift::ShiftQueue;
pub use stats::{IqStats, SwqueStats};
pub use swque::Swque;
pub use types::{DispatchReq, Grant, IqFullError, IqMode, IssueBudget, Tag};
