//! CIRC-PC: the priority-correcting circular queue (paper §3.1).
//!
//! CIRC-PC keeps CIRC's circular allocation (and therefore its capacity
//! inefficiency) but fixes the reversed-priority problem with a second
//! select logic:
//!
//! * Issue requests from **NR** (normal, non-wrapped) instructions go to the
//!   original select logic `S_NR` and issue in a single cycle as usual.
//! * Requests from **RV** (wrapped, reversed-priority) instructions go to a
//!   dedicated `S_RV`. Granted RV instructions read the tag RAM in a second,
//!   time-sliced access at the *start of the next cycle*; their tags wait in
//!   the pending tag latches (PTLs) and are merged with the next cycle's NR
//!   tags by the destination tag multiplexer (DTM), **with NR tags taking
//!   priority**. RV tags that lose every merge slot are discarded and
//!   re-arbitrated (paper Table 1 examples).
//!
//! The observable timing consequence, which this model reproduces exactly:
//! an RV instruction issues at least one cycle later than an equally ready
//! NR instruction and never beats an NR instruction to a merge slot. The
//! paper's §4.4 result is that this costs almost nothing, because ready
//! wrapped instructions are young and latency-tolerant.

use crate::horizon::WakeHorizon;
use crate::queue::{IqConfig, IssueQueue};
use crate::slots::SlotArray;
use crate::stats::IqStats;
use crate::types::{DispatchReq, Grant, IqFullError, IssueBudget, Tag};

/// The priority-correcting circular queue.
///
/// # Example
///
/// An RV (wrapped) instruction issues one cycle later than an NR one:
///
/// ```
/// use swque_core::{CircPcQueue, DispatchReq, IqConfig, IssueBudget, IssueQueue};
/// use swque_isa::FuClass;
///
/// let config = IqConfig { capacity: 2, issue_width: 2, ..IqConfig::default() };
/// let mut q = CircPcQueue::new(&config);
/// let ready = |seq| DispatchReq::new(seq, seq, None, [None, None], FuClass::IntAlu);
/// // Fill, issue one so the head advances, dispatch again: tail wraps.
/// q.dispatch(ready(0)).unwrap();
/// q.dispatch(ready(1)).unwrap();
/// let g = q.select(&mut IssueBudget::new(1, [1, 0, 0, 0]));
/// assert_eq!(g[0].seq, 0);
/// q.dispatch(ready(2)).unwrap(); // lands wrapped: RV
/// assert!(q.wrapped());
/// // Cycle N: S_RV selects seq 2; nothing issues yet.
/// assert!(q.select(&mut IssueBudget::new(2, [2, 0, 0, 0])).iter().all(|g| g.seq == 1));
/// // Cycle N+1: the pending RV tag merges and issues.
/// let g = q.select(&mut IssueBudget::new(2, [2, 0, 0, 0]));
/// assert!(g.iter().any(|g| g.seq == 2 && g.two_cycle));
/// ```
#[derive(Debug, Clone)]
pub struct CircPcQueue {
    slots: SlotArray,
    head: usize,
    region: usize,
    /// Positions granted by `S_RV` last cycle, in `S_RV` priority order,
    /// whose tags now sit in the PTLs awaiting the DTM merge.
    pending: Vec<usize>,
    issue_width: usize,
    flpi_floor: usize,
    /// Whether the priority-correcting S_RV/PTL/DTM machinery is active.
    /// Always `true` on the simulated path; `false` only through
    /// [`CircPcQueue::without_correction`], the model checker's
    /// negative-injection hook.
    correct: bool,
    stats: IqStats,
}

impl CircPcQueue {
    /// Creates an empty CIRC-PC queue.
    pub fn new(config: &IqConfig) -> CircPcQueue {
        CircPcQueue {
            slots: SlotArray::new(config.capacity),
            head: 0,
            region: 0,
            pending: Vec::new(),
            issue_width: config.issue_width,
            flpi_floor: config.flpi_rank_floor(),
            correct: true,
            stats: IqStats::default(),
        }
    }

    /// **Verification hook, not a simulator configuration.** Creates a
    /// CIRC-PC queue with the priority-correction machinery disabled:
    /// `S_NR` no longer masks the reverse plane under wrap-around and
    /// `S_RV` never runs, so wrapped (young) instructions issue in
    /// position order ahead of older ones — exactly the CIRC
    /// reversed-priority defect §3.1 exists to fix. The `swque-mc`
    /// negative-injection gate (`--inject circ-pc-no-correct`) builds this
    /// variant to prove the checker's `pc-age-ordered` property
    /// actually fails when the correction is reverted; nothing on the
    /// simulated path constructs it.
    pub fn without_correction(config: &IqConfig) -> CircPcQueue {
        CircPcQueue { correct: false, ..CircPcQueue::new(config) }
    }

    fn capacity_(&self) -> usize {
        self.slots.capacity()
    }

    fn tail(&self) -> usize {
        (self.head + self.region) % self.capacity_()
    }

    /// The wrap-around signal (paper Figure 5's `R` is
    /// `slot.reverse && wrapped()`).
    pub fn wrapped(&self) -> bool {
        self.head + self.region > self.capacity_()
    }

    fn depth(&self, pos: usize) -> usize {
        (pos + self.capacity_() - self.head) % self.capacity_()
    }

    fn advance_head(&mut self) {
        while self.region > 0 && !self.slots.get(self.head).valid {
            self.head = (self.head + 1) % self.capacity_();
            self.region -= 1;
        }
        if self.region == 0 {
            self.head = self.tail();
        }
    }

    fn grant_at(&mut self, pos: usize, two_cycle: bool) -> Grant {
        let rank = self.depth(pos);
        let slot = self.slots.get(pos);
        let g = Grant {
            payload: slot.payload,
            seq: slot.seq,
            dst: slot.dst,
            fu: slot.fu,
            rank,
            two_cycle,
        };
        self.slots.remove(pos);
        self.stats.issued += 1;
        if rank >= self.flpi_floor {
            self.stats.issued_low_priority += 1;
        }
        g
    }
}

impl IssueQueue for CircPcQueue {
    fn name(&self) -> &'static str {
        "CIRC-PC"
    }

    fn capacity(&self) -> usize {
        self.capacity_()
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn has_space(&self) -> bool {
        self.region < self.capacity_()
    }

    fn dispatch(&mut self, req: DispatchReq) -> Result<(), IqFullError> {
        if !self.has_space() {
            self.stats.dispatch_stalls += 1;
            return Err(IqFullError);
        }
        let pos = self.tail();
        // The reverse flag is set at dispatch time iff wrap-around is in
        // effect for this dispatch (paper §3.1.5, entry slice).
        let reverse = self.head + self.region >= self.capacity_();
        self.slots.insert(pos, req, reverse, 0);
        self.region += 1;
        self.stats.dispatched += 1;
        Ok(())
    }

    fn wakeup(&mut self, tag: Tag) {
        self.stats.wakeups += 1;
        self.slots.wakeup(tag);
    }

    fn has_ready(&self) -> bool {
        self.slots.any_ready()
    }

    fn idle_tick(&mut self, cycles: u64) {
        self.stats.selects += cycles;
        self.stats.occupancy_sum += cycles * self.slots.len() as u64;
        self.stats.region_sum += cycles * self.region as u64;
        // With the ready plane empty, every PTL entry is stale: a live
        // S_RV-selected entry keeps its ready bit until it merges, so
        // valid ∧ pending_rv ⇒ ready. The per-cycle DTM merge would drain
        // and drop these stale positions on the first select; replicate.
        debug_assert!(self.pending.iter().all(|&pos| {
            let s = self.slots.get(pos);
            !(s.valid && s.pending_rv)
        }));
        self.pending.clear();
        // S_NR/S_RV grant nothing, so advance_head has already converged.
        self.advance_head();
    }

    fn select(&mut self, budget: &mut IssueBudget) -> Vec<Grant> {
        self.stats.selects += 1;
        self.stats.occupancy_sum += self.slots.len() as u64;
        self.stats.region_sum += self.region as u64;

        let mut grants = Vec::new();
        let wrapped = self.wrapped() && self.correct;
        let nwords = self.slots.ready_words().len();

        // 1. S_NR: grant NR requests in position order (= age order within
        //    the NR region). Each grant reads the tag RAM normally. The
        //    candidate vector is `ready & !pending_rv`, minus the reverse
        //    plane while the wrap-around signal is up — combined one word
        //    at a time, copied to a register before scanning so that
        //    granting (which clears the granted bits) is safe.
        'nr: for wi in 0..nwords {
            let mut word = self.slots.ready_words()[wi] & !self.slots.pending_rv_words()[wi];
            if wrapped {
                word &= !self.slots.reverse_words()[wi];
            }
            while word != 0 {
                if budget.exhausted() {
                    break 'nr;
                }
                let pos = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let fu = self.slots.get(pos).fu;
                if budget.try_take(fu) {
                    self.stats.tag_reads += 1;
                    grants.push(self.grant_at(pos, false));
                }
            }
        }

        // 2. DTM merge: RV tags selected last cycle (waiting in the PTLs)
        //    fill the remaining merge slots; NR had priority. Losers are
        //    discarded and must re-arbitrate through S_RV.
        let pending = std::mem::take(&mut self.pending);
        for pos in pending {
            let slot = self.slots.get(pos);
            if !slot.valid || !slot.pending_rv {
                continue; // flushed or otherwise gone
            }
            if budget.try_take(slot.fu) {
                self.stats.rv_issues += 1;
                grants.push(self.grant_at(pos, true));
            } else {
                self.slots.set_pending_rv(pos, false);
                self.stats.rv_discards += 1;
            }
        }

        // 3. S_RV: select up to IW ready RV requests for next cycle's merge
        //    (`ready & !pending_rv & reverse`; only meaningful while the
        //    wrap-around signal is up — otherwise no entry routes to S_RV).
        //    Each selection performs the second, time-sliced tag-RAM read.
        if wrapped {
            let mut picked = 0;
            'rv: for wi in 0..nwords {
                let mut word = self.slots.ready_words()[wi]
                    & !self.slots.pending_rv_words()[wi]
                    & self.slots.reverse_words()[wi];
                while word != 0 {
                    if picked == self.issue_width {
                        break 'rv;
                    }
                    let pos = wi * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    self.slots.set_pending_rv(pos, true);
                    self.stats.tag_reads += 1;
                    self.pending.push(pos);
                    picked += 1;
                }
            }
        }

        self.advance_head();
        grants
    }

    fn flush(&mut self) {
        self.slots.clear();
        self.pending.clear();
        self.head = 0;
        self.region = 0;
    }

    fn squash_younger(&mut self, seq: u64) {
        let cap = self.capacity_();
        while self.region > 0 {
            let pos = (self.head + self.region - 1) % cap;
            let slot = self.slots.get(pos);
            if slot.seq <= seq {
                break;
            }
            if slot.valid {
                self.slots.remove(pos);
            }
            self.region -= 1;
        }
        // Squashed pending-RV grants must not merge.
        self.pending.retain(|&pos| {
            let s = self.slots.get(pos);
            s.valid && s.pending_rv
        });
        self.advance_head();
    }

    fn stats(&self) -> IqStats {
        self.stats
    }

    fn clone_box(&self) -> Box<dyn IssueQueue> {
        Box::new(self.clone())
    }
}

impl WakeHorizon for CircPcQueue {
    fn wake_horizon(&self, _now: u64) -> Option<u64> {
        // The PTL pipeline is clocked by select() calls, not by wall cycles,
        // and with nothing ready no PTL entry is live — purely reactive.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::FuClass;

    fn cfg(cap: usize, iw: usize) -> IqConfig {
        IqConfig { capacity: cap, issue_width: iw, ..IqConfig::default() }
    }

    fn ready(seq: u64) -> DispatchReq {
        DispatchReq::new(seq, seq, Some(seq as Tag), [None, None], FuClass::IntAlu)
    }

    fn waiting(seq: u64, tag: Tag) -> DispatchReq {
        DispatchReq::new(seq, seq, Some(seq as Tag), [Some(tag), None], FuClass::IntAlu)
    }

    fn budget(n: usize) -> IssueBudget {
        IssueBudget::new(n, [n, n, n, n])
    }

    /// Builds a wrapped queue: seqs `k..cap` old/NR (blocked on tag 999),
    /// seqs `cap..cap+k` young/RV (blocked on tag 888).
    fn wrapped(cap: usize, k: usize, iw: usize) -> CircPcQueue {
        let mut q = CircPcQueue::new(&cfg(cap, iw));
        let mut seq = 0;
        for i in 0..cap {
            let tag = if i < k { 7 } else { 999 };
            q.dispatch(waiting(seq, tag)).unwrap();
            seq += 1;
        }
        q.wakeup(7);
        let g = q.select(&mut budget(k));
        assert_eq!(g.len(), k);
        for _ in 0..k {
            q.dispatch(waiting(seq, 888)).unwrap();
            seq += 1;
        }
        assert!(q.wrapped());
        q
    }

    #[test]
    fn unwrapped_issues_in_age_order() {
        let mut q = CircPcQueue::new(&cfg(8, 4));
        for seq in 0..4 {
            q.dispatch(ready(seq)).unwrap();
        }
        let g = q.select(&mut budget(2));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert!(g.iter().all(|g| !g.two_cycle));
    }

    #[test]
    fn priority_corrected_under_wrap_around() {
        // Old NR instructions must beat young RV instructions even though
        // the RV ones sit at the high-priority physical positions.
        let mut q = wrapped(8, 3, 6);
        q.wakeup(999); // NR ready
        q.wakeup(888); // RV ready too
        let g = q.select(&mut budget(2));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![3, 4], "NR wins");
    }

    #[test]
    fn rv_instruction_takes_two_cycles() {
        let mut q = wrapped(8, 2, 6);
        q.wakeup(888); // only RV are ready
        // Cycle N: S_RV selects them, but nothing issues yet.
        let g = q.select(&mut budget(6));
        assert!(g.is_empty(), "RV selection does not issue in the same cycle");
        // Cycle N+1: PTL tags merge (no NR competition) and issue.
        let g = q.select(&mut budget(6));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![8, 9]);
        assert!(g.iter().all(|g| g.two_cycle));
        assert_eq!(q.stats().rv_issues, 2);
    }

    #[test]
    fn rv_tags_discarded_when_nr_saturates_the_merge() {
        let mut q = wrapped(8, 2, 6);
        q.wakeup(888); // RV ready first
        let g = q.select(&mut budget(2));
        assert!(g.is_empty());
        q.wakeup(999); // now all NR are ready as well
        // Merge cycle with width 2: both slots go to NR; RV tags discarded.
        let g = q.select(&mut budget(2));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(q.stats().rv_discards, 2);
        // The discarded RV instructions are not lost: S_RV re-selected them
        // in the same cycle as the discard, so in the next merge cycle they
        // issue behind the remaining NR instructions.
        let g = q.select(&mut budget(6));
        let seqs: Vec<u64> = g.iter().map(|g| g.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6, 7, 8, 9], "remaining NR then merged RV");
        assert_eq!(q.stats().rv_issues, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn rv_selection_bounded_by_issue_width() {
        let mut q = wrapped(8, 4, 2); // 4 RV entries but IW = 2
        q.wakeup(888);
        q.select(&mut budget(2));
        assert_eq!(q.pending.len(), 2, "S_RV grants at most IW per cycle");
    }

    #[test]
    fn former_rv_entries_become_nr_after_unwrap() {
        let mut q = wrapped(4, 2, 4);
        // Issue all the old NR entries; head wraps past the end and the
        // wrap-around signal drops.
        q.wakeup(999);
        let g = q.select(&mut budget(4));
        assert_eq!(g.len(), 2);
        assert!(!q.wrapped(), "head caught up; queue unwrapped");
        // The surviving reverse-flagged entries now behave as NR:
        // single-cycle issue.
        q.wakeup(888);
        let g = q.select(&mut budget(4));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![4, 5]);
        assert!(g.iter().all(|g| !g.two_cycle), "unwrapped entries use S_NR");
    }

    #[test]
    fn flush_clears_pending_tags() {
        let mut q = wrapped(8, 2, 6);
        q.wakeup(888);
        q.select(&mut budget(6)); // RV selected into PTLs
        q.flush();
        assert!(q.is_empty());
        let g = q.select(&mut budget(6));
        assert!(g.is_empty(), "no ghost grants after flush");
    }

    #[test]
    fn capacity_matches_circ_allocation() {
        let mut q = CircPcQueue::new(&cfg(4, 4));
        q.dispatch(waiting(0, 99)).unwrap();
        for seq in 1..4 {
            q.dispatch(ready(seq)).unwrap();
        }
        q.select(&mut budget(3));
        assert!(!q.has_space(), "holes behind a blocked head are unusable");
    }

    #[test]
    fn second_tag_read_counted_for_energy_model() {
        let mut q = wrapped(8, 2, 6);
        q.wakeup(888);
        let before = q.stats().tag_reads;
        q.select(&mut budget(6)); // S_RV selection performs the second read
        assert_eq!(q.stats().tag_reads, before + 2);
    }
}
