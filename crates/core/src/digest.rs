//! FNV-1a 64 content digesting.
//!
//! The workspace already content-addresses sweep shards with FNV-1a 64
//! (`swque-bench`); this module is the same function hoisted to the core
//! crate so the [`IssueQueue::state_digest`](crate::IssueQueue::state_digest)
//! default and the `swque-mc` model checker share one implementation with
//! the queue structures they digest. FNV-1a is not cryptographic — it is a
//! fast, dependency-free, stable hash whose collisions on the small state
//! renders digested here are negligible, and whose output is identical on
//! every host (unlike `std`'s `Hasher`, which is seeded per process).

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with FNV-1a 64.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_fnv1a_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(fnv1a64(b"CIRC-PC"), fnv1a64(b"CIRC"));
        assert_ne!(fnv1a64(b"x"), fnv1a64(b"x\0"));
    }
}
