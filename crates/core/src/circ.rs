//! CIRC: the conventional circular queue, plus the idealized CIRC-PPRI
//! (paper §2.3 and §4.4).
//!
//! Instructions are allocated at the tail of a circular buffer and stay put
//! until issued. Two pathologies follow:
//!
//! * **Capacity inefficiency** — issued instructions leave holes inside the
//!   `[head, tail)` region that cannot be reused until the head pointer
//!   passes them, so the usable capacity shrinks.
//! * **Reversed priority** — the select logic's priority is fixed by
//!   physical position (lower position = higher priority). When the tail
//!   wraps around, the *youngest* instructions occupy the lowest positions
//!   and steal priority from the older, wrapped-past instructions.
//!
//! [`CircQueue::perfect_priority`] builds CIRC-PPRI, the idealization that
//! keeps circular allocation but always selects in true age order — the
//! upper bound that CIRC-PC (paper §3.1) approaches with real hardware.

use crate::horizon::WakeHorizon;
use crate::queue::{IqConfig, IssueQueue};
use crate::slots::SlotArray;
use crate::stats::IqStats;
use crate::types::{DispatchReq, Grant, IqFullError, IssueBudget, Tag};

/// A circular issue queue (CIRC or CIRC-PPRI).
#[derive(Debug, Clone)]
pub struct CircQueue {
    slots: SlotArray,
    /// Position of the oldest allocated entry.
    head: usize,
    /// Number of positions in the allocated region (live entries + holes).
    region: usize,
    /// True = CIRC-PPRI (select in age order even under wrap-around).
    perfect: bool,
    flpi_floor: usize,
    stats: IqStats,
}

impl CircQueue {
    /// Creates a conventional CIRC queue (position priority).
    pub fn new(config: &IqConfig) -> CircQueue {
        CircQueue {
            slots: SlotArray::new(config.capacity),
            head: 0,
            region: 0,
            perfect: false,
            flpi_floor: config.flpi_rank_floor(),
            stats: IqStats::default(),
        }
    }

    /// Creates CIRC-PPRI: circular allocation with idealized perfect
    /// priority under wrap-around.
    pub fn perfect_priority(config: &IqConfig) -> CircQueue {
        CircQueue { perfect: true, ..CircQueue::new(config) }
    }

    fn capacity_(&self) -> usize {
        self.slots.capacity()
    }

    /// Position one past the youngest allocated entry.
    fn tail(&self) -> usize {
        (self.head + self.region) % self.capacity_()
    }

    /// True while the allocated region crosses the physical end of the
    /// buffer — the paper's "wrap-around signal".
    pub fn wrapped(&self) -> bool {
        self.head + self.region > self.capacity_()
    }

    /// Circular distance of `pos` from the head (the age-depth of the
    /// entry's position); used as the FLPI priority rank.
    fn depth(&self, pos: usize) -> usize {
        (pos + self.capacity_() - self.head) % self.capacity_()
    }

    /// Advances the head past leading holes, shrinking the region.
    fn advance_head(&mut self) {
        while self.region > 0 && !self.slots.get(self.head).valid {
            self.head = (self.head + 1) % self.capacity_();
            self.region -= 1;
        }
        if self.region == 0 {
            // Empty queue: reset to a canonical unwrapped state, as real
            // pointer logic does when head catches tail.
            self.head = self.tail();
        }
    }

    /// Grants ready entries at positions in `lo..hi` in ascending order
    /// until the budget runs out — the position-priority select scan as a
    /// word walk over the packed ready plane. Each word is copied to a
    /// register before its bits are visited, so granting (which clears the
    /// granted entry's ready bit) cannot disturb the scan.
    fn grant_ready_in(
        &mut self,
        lo: usize,
        hi: usize,
        budget: &mut IssueBudget,
        grants: &mut Vec<Grant>,
    ) {
        if lo >= hi {
            return;
        }
        let first_w = lo / 64;
        let last_w = (hi - 1) / 64;
        for wi in first_w..=last_w {
            let mut word = self.slots.ready_words()[wi];
            if wi == first_w {
                word &= u64::MAX << (lo % 64);
            }
            if wi == last_w && hi % 64 != 0 {
                word &= u64::MAX >> (64 - hi % 64);
            }
            while word != 0 {
                if budget.exhausted() {
                    return;
                }
                let pos = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let fu = self.slots.get(pos).fu;
                if budget.try_take(fu) {
                    let rank = self.depth(pos);
                    grants.push(self.grant_at(pos, rank));
                }
            }
        }
    }

    fn grant_at(&mut self, pos: usize, rank: usize) -> Grant {
        let slot = self.slots.get(pos);
        let g = Grant {
            payload: slot.payload,
            seq: slot.seq,
            dst: slot.dst,
            fu: slot.fu,
            rank,
            two_cycle: false,
        };
        self.slots.remove(pos);
        self.stats.issued += 1;
        self.stats.tag_reads += 1;
        if rank >= self.flpi_floor {
            self.stats.issued_low_priority += 1;
        }
        g
    }
}

impl IssueQueue for CircQueue {
    fn name(&self) -> &'static str {
        if self.perfect {
            "CIRC-PPRI"
        } else {
            "CIRC"
        }
    }

    fn capacity(&self) -> usize {
        self.capacity_()
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn has_space(&self) -> bool {
        self.region < self.capacity_()
    }

    fn dispatch(&mut self, req: DispatchReq) -> Result<(), IqFullError> {
        if !self.has_space() {
            self.stats.dispatch_stalls += 1;
            return Err(IqFullError);
        }
        let pos = self.tail();
        let reverse = self.head + self.region >= self.capacity_();
        self.slots.insert(pos, req, reverse, 0);
        self.region += 1;
        self.stats.dispatched += 1;
        Ok(())
    }

    fn wakeup(&mut self, tag: Tag) {
        self.stats.wakeups += 1;
        self.slots.wakeup(tag);
    }

    fn has_ready(&self) -> bool {
        self.slots.any_ready()
    }

    fn idle_tick(&mut self, cycles: u64) {
        self.stats.selects += cycles;
        self.stats.occupancy_sum += cycles * self.slots.len() as u64;
        self.stats.region_sum += cycles * self.region as u64;
        // With nothing ready, each per-cycle select would only re-run
        // advance_head — which converges after one call (no grants remove
        // entries, so the head meets the same first valid slot every time).
        self.advance_head();
    }

    fn select(&mut self, budget: &mut IssueBudget) -> Vec<Grant> {
        self.stats.selects += 1;
        self.stats.occupancy_sum += self.slots.len() as u64;
        self.stats.region_sum += self.region as u64;

        let cap = self.capacity_();
        let mut grants = Vec::new();
        // Candidate positions in this organization's priority order.
        // CIRC: ascending physical position (reversed under wrap-around).
        // CIRC-PPRI: circular order from the head (true age order), i.e.
        // positions head..cap followed by 0..head.
        if self.perfect {
            let head = self.head;
            self.grant_ready_in(head, cap, budget, &mut grants);
            self.grant_ready_in(0, head, budget, &mut grants);
        } else {
            self.grant_ready_in(0, cap, budget, &mut grants);
        }
        self.advance_head();
        grants
    }

    fn flush(&mut self) {
        self.slots.clear();
        self.head = 0;
        self.region = 0;
    }

    fn squash_younger(&mut self, seq: u64) {
        // Entries in the region are in dispatch order, so the squashed set
        // is a contiguous suffix: roll the tail back over live entries and
        // holes alike (a hole's last occupant seq tells us whose it was).
        let cap = self.capacity_();
        while self.region > 0 {
            let pos = (self.head + self.region - 1) % cap;
            let slot = self.slots.get(pos);
            if slot.seq <= seq {
                break;
            }
            if slot.valid {
                self.slots.remove(pos);
            }
            self.region -= 1;
        }
        self.advance_head();
    }

    fn stats(&self) -> IqStats {
        self.stats
    }

    fn clone_box(&self) -> Box<dyn IssueQueue> {
        Box::new(self.clone())
    }
}

impl WakeHorizon for CircQueue {
    fn wake_horizon(&self, _now: u64) -> Option<u64> {
        None // purely reactive: state changes only via wakeup/select/dispatch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::FuClass;

    fn cfg(cap: usize) -> IqConfig {
        IqConfig { capacity: cap, issue_width: 4, ..IqConfig::default() }
    }

    fn ready(seq: u64) -> DispatchReq {
        DispatchReq::new(seq, seq, Some(seq as Tag), [None, None], FuClass::IntAlu)
    }

    fn waiting(seq: u64, tag: Tag) -> DispatchReq {
        DispatchReq::new(seq, seq, Some(seq as Tag), [Some(tag), None], FuClass::IntAlu)
    }

    fn budget(n: usize) -> IssueBudget {
        IssueBudget::new(n, [n, n, n, n])
    }

    /// Forces the queue into a wrapped state: fills `cap` entries, issues
    /// the oldest `k` (head advances), dispatches `k` more (tail wraps).
    fn wrap(q: &mut CircQueue, cap: usize, k: usize) -> u64 {
        let mut seq = 0;
        for _ in 0..cap {
            q.dispatch(waiting(seq, 999)).unwrap();
            seq += 1;
        }
        // Make the first k ready and issue them.
        // (tag 999 still blocks the rest; use a second tag for the first k.)
        q.flush();
        seq = 0;
        for i in 0..cap {
            let tag = if i < k { 7 } else { 999 };
            q.dispatch(waiting(seq, tag)).unwrap();
            seq += 1;
        }
        q.wakeup(7);
        let g = q.select(&mut budget(k));
        assert_eq!(g.len(), k);
        for _ in 0..k {
            q.dispatch(waiting(seq, 999)).unwrap();
            seq += 1;
        }
        assert!(q.wrapped());
        seq
    }

    #[test]
    fn unwrapped_priority_is_age_order() {
        let mut q = CircQueue::new(&cfg(8));
        for seq in 0..4 {
            q.dispatch(ready(seq)).unwrap();
        }
        let g = q.select(&mut budget(2));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn wrapped_circ_reverses_priority() {
        let mut q = CircQueue::new(&cfg(8));
        let _ = wrap(&mut q, 8, 3); // entries 3..8 old (positions 3..8), 8..11 young (positions 0..3)
        q.wakeup(999);
        let g = q.select(&mut budget(2));
        // CIRC grants by physical position: the young wrapped instructions
        // (seq 8, 9 at positions 0, 1) win — the reversed-priority bug.
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![8, 9]);
    }

    #[test]
    fn wrapped_ppri_keeps_age_order() {
        let mut q = CircQueue::perfect_priority(&cfg(8));
        let _ = wrap(&mut q, 8, 3);
        q.wakeup(999);
        let g = q.select(&mut budget(2));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn holes_block_dispatch_until_head_passes() {
        let mut q = CircQueue::new(&cfg(4));
        q.dispatch(waiting(0, 99)).unwrap(); // head, stays blocked
        q.dispatch(ready(1)).unwrap();
        q.dispatch(ready(2)).unwrap();
        q.dispatch(ready(3)).unwrap();
        // Issue the three ready ones: holes at positions 1..4.
        let g = q.select(&mut budget(3));
        assert_eq!(g.len(), 3);
        assert_eq!(q.len(), 1);
        // Region is still the full buffer (head blocked), so no space.
        assert!(!q.has_space(), "holes are unusable while the head is blocked");
        assert_eq!(q.dispatch(ready(4)), Err(IqFullError));
        // Unblock the head: after it issues, the whole buffer reclaims.
        q.wakeup(99);
        let g = q.select(&mut budget(1));
        assert_eq!(g[0].seq, 0);
        assert!(q.has_space());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn capacity_efficiency_below_one_with_holes() {
        let mut q = CircQueue::new(&cfg(4));
        q.dispatch(waiting(0, 99)).unwrap();
        q.dispatch(ready(1)).unwrap();
        q.select(&mut budget(1)); // issues seq 1, leaves a hole behind head
        q.select(&mut budget(1)); // head still blocked; region=2, len=1
        assert!(q.stats().capacity_efficiency() < 1.0);
    }

    #[test]
    fn reverse_flag_set_only_for_wrapped_dispatches() {
        let mut q = CircQueue::new(&cfg(4));
        let _ = wrap(&mut q, 4, 2);
        // Positions 0..2 hold the wrapped (young) entries.
        assert!(q.slots.get(0).reverse);
        assert!(q.slots.get(1).reverse);
        assert!(!q.slots.get(2).reverse);
        assert!(!q.slots.get(3).reverse);
    }

    #[test]
    fn empty_queue_resets_pointers() {
        let mut q = CircQueue::new(&cfg(4));
        let _ = wrap(&mut q, 4, 2);
        q.wakeup(999);
        while !q.is_empty() {
            q.select(&mut budget(4));
        }
        assert!(!q.wrapped());
        assert!(q.has_space());
        // Can fill to capacity again.
        for seq in 100..104 {
            q.dispatch(ready(seq)).unwrap();
        }
        assert!(!q.has_space());
    }

    #[test]
    fn flpi_counts_deep_issues() {
        // Region = last quarter: flpi floor for capacity 8 is 8 - 2 = 6.
        let mut q = CircQueue::new(&IqConfig {
            capacity: 8,
            flpi_region_frac: 0.25,
            ..IqConfig::default()
        });
        for seq in 0..8 {
            q.dispatch(ready(seq)).unwrap();
        }
        let g = q.select(&mut budget(8));
        assert_eq!(g.len(), 8);
        assert_eq!(q.stats().issued_low_priority, 2, "depths 6 and 7 are low-priority");
    }
}
