//! The `swque-mc-replay-v1` counterexample grammar.
//!
//! When the `swque-mc` model checker finds a property violation it shrinks
//! the violating event sequence and emits it as a **replay string**: a
//! single line that is self-contained — target, configuration, injected
//! mutation, expected property, and the event trace — so a `#[test]` can
//! re-execute the exact counterexample against the real queue forever. The
//! grammar lives here in `swque-core` (next to the event vocabulary it
//! serializes) so the checker, the committed replay corpus, and the
//! `mc-replay` lint rule all parse with one implementation.
//!
//! # Grammar
//!
//! ```text
//! replay  := "swque-mc-replay-v1" " kind=" target " cap=" int " width=" int
//!            " inject=" name-or-dash " expect=" name-or-dash " events=" events
//! target  := an IqKind label (e.g. "CIRC-PC") | "CTRL"
//! events  := "-" (empty trace) | event ("," event)*
//! event   := "d" src "." src             dispatch; src := tag int | "-" (ready)
//!          | "w" tag                     wakeup broadcast of a tag
//!          | "s" int                     select with issue width int
//!          | "q" int                     squash_younger(seq)
//!          | "f"                         flush
//!          | "p" int ":" int             poll_mode_switch(retired, llc_misses)
//!          | "i" int                     idle_tick(cycles)
//!          | "e" int ":" int             controller interval: mpki/flpi in
//!                                        milli-units (500:10 = MPKI 0.5, FLPI 0.010)
//!          | "r" int                     controller periodic-reset probe at
//!                                        a retired-instruction total
//! ```
//!
//! Field order is fixed, separators are single spaces, and
//! [`Replay::render`] is the canonical form: `parse(render(r)) == r` for
//! every representable value, which the property tests pin.
//!
//! Example:
//!
//! ```
//! use swque_core::replay::Replay;
//!
//! let text = "swque-mc-replay-v1 kind=CIRC-PC cap=4 width=1 inject=- expect=- \
//!             events=d-.-,d0.-,s1,w0,s1,q1,f";
//! let replay = Replay::parse(text).unwrap();
//! assert_eq!(replay.capacity, 4);
//! assert_eq!(replay.events.len(), 7);
//! assert_eq!(replay.render(), text.replace("             ", " "));
//! ```

use std::fmt;

use crate::queue::IqKind;
use crate::types::Tag;

/// The leading magic every replay string starts with.
pub const REPLAY_MAGIC: &str = "swque-mc-replay-v1";

/// One event of a replay trace. The first seven drive an
/// [`IssueQueue`](crate::IssueQueue); the last two drive the SWQUE
/// controller as a standalone transition system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Dispatch one instruction waiting on the given source tags (`None`
    /// = that operand is already ready). Sequence numbers, payloads, and
    /// destination tags are assigned by the replay executor (seq = the
    /// running dispatch count), which is what makes traces self-contained.
    Dispatch {
        /// Source operand tags still being waited on.
        srcs: [Option<Tag>; 2],
    },
    /// Broadcast a completed tag.
    Wakeup(Tag),
    /// Run one select cycle with this issue width (all FUs free).
    Select {
        /// Issue width for this cycle's budget.
        width: usize,
    },
    /// Squash every entry younger than this sequence number.
    SquashYounger(u64),
    /// Pipeline flush.
    Flush,
    /// Offer the queue a mode-switch poll with these running totals.
    Poll {
        /// Retired-instruction total at the poll.
        retired: u64,
        /// LLC demand-miss total at the poll.
        misses: u64,
    },
    /// Replay idle cycles in bulk.
    IdleTick(u64),
    /// Controller target only: one interval evaluation with MPKI/FLPI in
    /// milli-units (`mpki_milli = 500` is an MPKI of 0.5).
    Interval {
        /// Misses-per-kilo-instruction, scaled by 1000.
        mpki_milli: u32,
        /// Low-priority-issue fraction, scaled by 1000.
        flpi_milli: u32,
    },
    /// Controller target only: a periodic-reset probe at a
    /// retired-instruction total.
    Reset(u64),
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let src = |s: Option<Tag>| match s {
            Some(t) => t.to_string(),
            None => "-".to_string(),
        };
        match self {
            Event::Dispatch { srcs } => write!(f, "d{}.{}", src(srcs[0]), src(srcs[1])),
            Event::Wakeup(t) => write!(f, "w{t}"),
            Event::Select { width } => write!(f, "s{width}"),
            Event::SquashYounger(seq) => write!(f, "q{seq}"),
            Event::Flush => write!(f, "f"),
            Event::Poll { retired, misses } => write!(f, "p{retired}:{misses}"),
            Event::IdleTick(cycles) => write!(f, "i{cycles}"),
            Event::Interval { mpki_milli, flpi_milli } => write!(f, "e{mpki_milli}:{flpi_milli}"),
            Event::Reset(insts) => write!(f, "r{insts}"),
        }
    }
}

/// What a replay drives: a queue organization or the SWQUE controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayTarget {
    /// An issue-queue organization.
    Queue(IqKind),
    /// The mode controller as a standalone transition system.
    Controller,
}

impl ReplayTarget {
    /// The `kind=` field value.
    pub fn label(&self) -> &'static str {
        match self {
            ReplayTarget::Queue(kind) => kind.label(),
            ReplayTarget::Controller => "CTRL",
        }
    }
}

/// A parsed replay: one minimized, self-contained counterexample (or
/// regression trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// What the trace drives.
    pub target: ReplayTarget,
    /// Queue capacity (0 for the controller target).
    pub capacity: usize,
    /// Issue width (0 for the controller target).
    pub width: usize,
    /// Named mutation the executor must inject before replaying, or
    /// `None` (`inject=-`) for the clean tree. Names are interpreted by
    /// the `swque-mc` harness (e.g. `circ-pc-no-correct`).
    pub inject: Option<String>,
    /// Property this trace is expected to violate, or `None` (`expect=-`)
    /// for a trace that must replay clean.
    pub expect: Option<String>,
    /// The event trace.
    pub events: Vec<Event>,
}

/// A replay parse failure: what was wrong and roughly where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayParseError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for ReplayParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ReplayParseError {}

fn err(message: impl Into<String>) -> ReplayParseError {
    ReplayParseError { message: message.into() }
}

/// Strips `prefix=` from `field` or errors naming the expected field.
fn field<'a>(field: Option<&'a str>, key: &str) -> Result<&'a str, ReplayParseError> {
    let text = field.ok_or_else(|| err(format!("missing `{key}=` field")))?;
    text.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| err(format!("expected `{key}=…`, got `{text}`")))
}

fn parse_num<T: std::str::FromStr>(text: &str, what: &str) -> Result<T, ReplayParseError> {
    text.parse().map_err(|_| err(format!("{what}: `{text}` is not a valid number")))
}

fn parse_src(text: &str) -> Result<Option<Tag>, ReplayParseError> {
    if text == "-" {
        Ok(None)
    } else {
        parse_num(text, "dispatch source tag").map(Some)
    }
}

fn parse_pair(text: &str, what: &str) -> Result<(u64, u64), ReplayParseError> {
    let (a, b) = text
        .split_once(':')
        .ok_or_else(|| err(format!("{what}: expected `<int>:<int>`, got `{text}`")))?;
    Ok((parse_num(a, what)?, parse_num(b, what)?))
}

fn parse_event(text: &str) -> Result<Event, ReplayParseError> {
    let Some(head) = text.chars().next() else {
        return Err(err("empty event"));
    };
    let rest = &text[head.len_utf8()..];
    match head {
        'd' => {
            let (a, b) = rest
                .split_once('.')
                .ok_or_else(|| err(format!("dispatch: expected two sources in `{text}`")))?;
            Ok(Event::Dispatch { srcs: [parse_src(a)?, parse_src(b)?] })
        }
        'w' => Ok(Event::Wakeup(parse_num(rest, "wakeup tag")?)),
        's' => Ok(Event::Select { width: parse_num(rest, "select width")? }),
        'q' => Ok(Event::SquashYounger(parse_num(rest, "squash seq")?)),
        'f' if rest.is_empty() => Ok(Event::Flush),
        'p' => {
            let (retired, misses) = parse_pair(rest, "poll totals")?;
            Ok(Event::Poll { retired, misses })
        }
        'i' => Ok(Event::IdleTick(parse_num(rest, "idle cycles")?)),
        'e' => {
            let (mpki, flpi) = parse_pair(rest, "interval metrics")?;
            let clamp = |v: u64, what: &str| {
                u32::try_from(v).map_err(|_| err(format!("{what} out of range in `{text}`")))
            };
            Ok(Event::Interval {
                mpki_milli: clamp(mpki, "mpki_milli")?,
                flpi_milli: clamp(flpi, "flpi_milli")?,
            })
        }
        'r' => Ok(Event::Reset(parse_num(rest, "reset insts")?)),
        _ => Err(err(format!("unknown event `{text}`"))),
    }
}

fn parse_name(text: &str) -> Option<String> {
    (text != "-").then(|| text.to_string())
}

impl Replay {
    /// Parses a replay string.
    ///
    /// # Errors
    ///
    /// Returns a [`ReplayParseError`] describing the first malformed field
    /// or event.
    pub fn parse(text: &str) -> Result<Replay, ReplayParseError> {
        let mut parts = text.split_whitespace();
        match parts.next() {
            Some(REPLAY_MAGIC) => {}
            other => {
                return Err(err(format!(
                    "replay must start with `{REPLAY_MAGIC}`, got `{}`",
                    other.unwrap_or("")
                )))
            }
        }
        let kind_text = field(parts.next(), "kind")?;
        let target = if kind_text == "CTRL" {
            ReplayTarget::Controller
        } else {
            ReplayTarget::Queue(IqKind::from_label(kind_text).ok_or_else(|| {
                err(format!("kind: `{kind_text}` is neither an IqKind label nor `CTRL`"))
            })?)
        };
        let capacity = parse_num(field(parts.next(), "cap")?, "cap")?;
        let width = parse_num(field(parts.next(), "width")?, "width")?;
        let inject = parse_name(field(parts.next(), "inject")?);
        let expect = parse_name(field(parts.next(), "expect")?);
        let events_text = field(parts.next(), "events")?;
        if let Some(extra) = parts.next() {
            return Err(err(format!("unexpected trailing field `{extra}`")));
        }
        let mut events = Vec::new();
        if events_text != "-" {
            for ev in events_text.split(',') {
                let event = parse_event(ev)?;
                let ctrl_event = matches!(event, Event::Interval { .. } | Event::Reset(_));
                if ctrl_event != (target == ReplayTarget::Controller) {
                    return Err(err(format!(
                        "event `{ev}` does not belong to target `{}`",
                        target.label()
                    )));
                }
                events.push(event);
            }
        }
        Ok(Replay { target, capacity, width, inject, expect, events })
    }

    /// The canonical single-line text form; `parse(render()) == self`.
    pub fn render(&self) -> String {
        let name = |n: &Option<String>| n.clone().unwrap_or_else(|| "-".to_string());
        let events = if self.events.is_empty() {
            "-".to_string()
        } else {
            self.events.iter().map(Event::to_string).collect::<Vec<_>>().join(",")
        };
        format!(
            "{REPLAY_MAGIC} kind={} cap={} width={} inject={} expect={} events={}",
            self.target.label(),
            self.capacity,
            self.width,
            name(&self.inject),
            name(&self.expect),
            events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_renders_a_queue_replay() {
        let text = "swque-mc-replay-v1 kind=CIRC-PC cap=4 width=2 inject=circ-pc-no-correct \
                    expect=pc-age-ordered events=d-.-,d0.1,w0,s2,w1,s1,q0,f,p10000:42,i3";
        let r = Replay::parse(text).unwrap();
        assert_eq!(r.target, ReplayTarget::Queue(IqKind::CircPc));
        assert_eq!((r.capacity, r.width), (4, 2));
        assert_eq!(r.inject.as_deref(), Some("circ-pc-no-correct"));
        assert_eq!(r.expect.as_deref(), Some("pc-age-ordered"));
        assert_eq!(r.events.len(), 10);
        assert_eq!(r.events[0], Event::Dispatch { srcs: [None, None] });
        assert_eq!(r.events[1], Event::Dispatch { srcs: [Some(0), Some(1)] });
        assert_eq!(r.events[8], Event::Poll { retired: 10_000, misses: 42 });
        assert_eq!(Replay::parse(&r.render()), Ok(r));
    }

    #[test]
    fn parses_a_controller_replay_and_an_empty_trace() {
        let text = "swque-mc-replay-v1 kind=CTRL cap=0 width=0 inject=controller-no-stabilize \
                    expect=ctrl-instability-reduction events=e0:50,e0:50,r1000000";
        let r = Replay::parse(text).unwrap();
        assert_eq!(r.target, ReplayTarget::Controller);
        assert_eq!(r.events[0], Event::Interval { mpki_milli: 0, flpi_milli: 50 });
        assert_eq!(r.events[2], Event::Reset(1_000_000));
        assert_eq!(Replay::parse(&r.render()), Ok(r));

        let empty = Replay::parse(
            "swque-mc-replay-v1 kind=SHIFT cap=2 width=1 inject=- expect=- events=-",
        )
        .unwrap();
        assert!(empty.events.is_empty() && empty.inject.is_none() && empty.expect.is_none());
        assert_eq!(Replay::parse(&empty.render()), Ok(empty));
    }

    #[test]
    fn rejects_malformed_replays_with_named_errors() {
        // Deliberately malformed traces are assembled with `format!` so no
        // string literal carries the magic prefix: the `mc-replay` lint
        // rule parse-checks every literal that starts with it.
        let m = REPLAY_MAGIC;
        let cases = [
            (String::new(), "must start with"),
            ("swque-mc-replay-v2 kind=CIRC cap=2 width=1 inject=- expect=- events=-".into(), "start"),
            (format!("{m} cap=2"), "kind"),
            (format!("{m} kind=NOPE cap=2 width=1 inject=- expect=- events=-"), "NOPE"),
            (format!("{m} kind=CIRC cap=x width=1 inject=- expect=- events=-"), "cap"),
            (format!("{m} kind=CIRC cap=2 width=1 inject=- expect=- events=z9"), "unknown"),
            (format!("{m} kind=CIRC cap=2 width=1 inject=- expect=- events=d0"), "two"),
            (format!("{m} kind=CIRC cap=2 width=1 inject=- expect=- events=p7"), "poll"),
            (format!("{m} kind=CIRC cap=2 width=1 inject=- expect=- events=e1:2"), "does not belong"),
            (format!("{m} kind=CTRL cap=0 width=0 inject=- expect=- events=s1"), "does not belong"),
            (format!("{m} kind=CIRC cap=2 width=1 inject=- expect=- events=- x=1"), "trailing"),
        ];
        for (text, needle) in cases {
            let e = Replay::parse(&text).expect_err(&text);
            assert!(e.message.contains(needle), "{text:?}: {e}");
        }
    }

    #[test]
    fn every_queue_kind_round_trips_through_the_kind_field() {
        for kind in IqKind::ALL {
            let r = Replay {
                target: ReplayTarget::Queue(kind),
                capacity: 4,
                width: 2,
                inject: None,
                expect: None,
                events: vec![Event::Select { width: 2 }],
            };
            assert_eq!(Replay::parse(&r.render()), Ok(r));
        }
    }
}
