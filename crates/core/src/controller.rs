//! The SWQUE mode-switching controller (paper §3.2).
//!
//! Every interval (10k retired instructions), two capacity-demand metrics
//! are evaluated:
//!
//! * **MPKI** — last-level-cache misses per kilo-instruction. High MPKI
//!   means memory-level parallelism is available, which wants a large
//!   effective IQ (AGE mode).
//! * **FLPI** — frequency of issues from the predetermined lowest-priority
//!   region of the IQ. High FLPI means ready instructions reside throughout
//!   the queue, i.e. instruction-level parallelism wants capacity (AGE
//!   mode).
//!
//! Decision policy (§3.2.2): both high → AGE; both low → CIRC-PC; they
//! disagree → AGE (the AGE-favoring policy).
//!
//! Stability (§3.2.3): an *instability counter* increments whenever the
//! FLPI decision made in CIRC-PC mode says AGE would be beneficial, and
//! resets to zero otherwise. When it reaches its threshold, the AGE-mode
//! FLPI threshold is lowered, making AGE mode stickier; both the counter and
//! the AGE threshold reset periodically to re-adapt.

use crate::types::IqMode;

/// SWQUE parameters — the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwqueParams {
    /// Switch-decision interval in retired instructions (10k).
    pub interval_insts: u64,
    /// Pipeline-flush penalty per mode switch in cycles (10).
    pub switch_penalty: u64,
    /// MPKI above this means capacity-demanding (1.0).
    pub mpki_threshold: f64,
    /// Base FLPI threshold (0.04).
    pub flpi_threshold: f64,
    /// Instability-counter trip point (2).
    pub instability_threshold: u32,
    /// How much the AGE-mode FLPI threshold drops per trip (0.01).
    pub flpi_reduction: f64,
    /// Period for resetting the counter and AGE threshold (1M insts).
    pub reset_interval_insts: u64,
    /// Disagreement policy: `true` (the paper's choice, §3.2.2) resolves
    /// metric disagreement toward AGE; `false` toward CIRC-PC. The paper
    /// reports the AGE-favoring policy performs better; the `ablations`
    /// experiment binary reproduces that comparison.
    pub age_favoring: bool,
    /// Enables the §3.2.3 instability counter / threshold-reduction
    /// machinery. Disabling it exposes the mode-oscillation problem the
    /// mechanism exists to solve.
    pub stabilize: bool,
}

impl Default for SwqueParams {
    /// Table 3 values.
    fn default() -> SwqueParams {
        SwqueParams {
            interval_insts: 10_000,
            switch_penalty: 10,
            mpki_threshold: 1.0,
            flpi_threshold: 0.04,
            instability_threshold: 2,
            flpi_reduction: 0.01,
            reset_interval_insts: 1_000_000,
            age_favoring: true,
            stabilize: true,
        }
    }
}

/// The metrics of one completed interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalMetrics {
    /// LLC misses per kilo-instruction during the interval.
    pub mpki: f64,
    /// Low-priority issues per issued instruction during the interval.
    pub flpi: f64,
}

/// The controller's verdict for the next interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeDecision {
    /// Keep the current configuration.
    Stay,
    /// Reconfigure (requires a pipeline flush).
    SwitchTo(IqMode),
}

/// The mode-switching state machine. Pure decision logic: feed it one
/// [`IntervalMetrics`] per interval via [`evaluate`](Self::evaluate).
#[derive(Debug, Clone)]
pub struct SwqueController {
    params: SwqueParams,
    mode: IqMode,
    /// Dynamically adjusted FLPI threshold used while in AGE mode.
    flpi_threshold_age: f64,
    instability: u32,
    /// Retired-instruction count at the last periodic reset.
    last_reset_insts: u64,
    threshold_reductions: u64,
}

impl SwqueController {
    /// Creates a controller starting in CIRC-PC mode.
    pub fn new(params: SwqueParams) -> SwqueController {
        SwqueController {
            params,
            mode: IqMode::CircPc,
            flpi_threshold_age: params.flpi_threshold,
            instability: 0,
            last_reset_insts: 0,
            threshold_reductions: 0,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> IqMode {
        self.mode
    }

    /// The FLPI threshold currently in force (mode-dependent).
    pub fn active_flpi_threshold(&self) -> f64 {
        match self.mode {
            IqMode::Age => self.flpi_threshold_age,
            _ => self.params.flpi_threshold,
        }
    }

    /// Current instability-counter value.
    pub fn instability(&self) -> u32 {
        self.instability
    }

    /// Times the AGE-mode threshold has been lowered.
    pub fn threshold_reductions(&self) -> u64 {
        self.threshold_reductions
    }

    /// Applies the periodic reset if `retired_insts` has advanced past the
    /// reset interval (re-starts learning, paper §3.2.3).
    pub fn maybe_periodic_reset(&mut self, retired_insts: u64) {
        if retired_insts.saturating_sub(self.last_reset_insts) >= self.params.reset_interval_insts {
            self.instability = 0;
            self.flpi_threshold_age = self.params.flpi_threshold;
            self.last_reset_insts = retired_insts;
        }
    }

    /// Consumes one interval's metrics and decides the next mode.
    pub fn evaluate(&mut self, metrics: IntervalMetrics) -> ModeDecision {
        let flpi_threshold = self.active_flpi_threshold();
        let mpki_high = metrics.mpki > self.params.mpki_threshold;
        let flpi_high = metrics.flpi > flpi_threshold;

        // Disagreement policy (§3.2.2): the paper resolves disagreement
        // toward AGE; the CIRC-favoring alternative is kept for ablation.
        let target = if self.params.age_favoring {
            if mpki_high || flpi_high {
                IqMode::Age
            } else {
                IqMode::CircPc
            }
        } else if mpki_high && flpi_high {
            IqMode::Age
        } else {
            IqMode::CircPc
        };

        // Instability tracking happens only on decisions made in CIRC-PC
        // mode (Figure 7): each FLPI-driven departure to AGE increments the
        // counter; a calm interval resets it.
        if self.params.stabilize && self.mode == IqMode::CircPc {
            if flpi_high {
                self.instability += 1;
            } else {
                self.instability = 0;
            }
            if self.instability >= self.params.instability_threshold {
                self.flpi_threshold_age =
                    (self.flpi_threshold_age - self.params.flpi_reduction).max(0.0);
                self.instability = 0;
                self.threshold_reductions += 1;
            }
        }

        if target == self.mode {
            ModeDecision::Stay
        } else {
            self.mode = target;
            ModeDecision::SwitchTo(target)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(mpki: f64, flpi: f64) -> IntervalMetrics {
        IntervalMetrics { mpki, flpi }
    }

    #[test]
    fn decision_table() {
        // both low -> CIRC-PC; both high -> AGE; disagree -> AGE.
        let mut c = SwqueController::new(SwqueParams::default());
        assert_eq!(c.evaluate(metrics(0.1, 0.01)), ModeDecision::Stay); // starts CIRC-PC
        assert_eq!(c.evaluate(metrics(5.0, 0.5)), ModeDecision::SwitchTo(IqMode::Age));
        assert_eq!(c.evaluate(metrics(5.0, 0.0)), ModeDecision::Stay, "disagree favors AGE");
        assert_eq!(c.evaluate(metrics(0.0, 0.0)), ModeDecision::SwitchTo(IqMode::CircPc));
        assert_eq!(c.evaluate(metrics(0.0, 0.5)), ModeDecision::SwitchTo(IqMode::Age));
    }

    /// Replays the paper's Figure 7 walkthrough: low MPKI throughout; FLPI
    /// oscillates; after the instability counter trips, the lowered AGE
    /// threshold keeps the mode stable in AGE.
    #[test]
    fn figure7_instability_walkthrough() {
        let mut c = SwqueController::new(SwqueParams::default());
        assert_eq!(c.mode(), IqMode::CircPc);

        // Phase 1 (CIRC-PC): FLPI high -> switch to AGE, counter = 1.
        assert_eq!(c.evaluate(metrics(0.0, 0.05)), ModeDecision::SwitchTo(IqMode::Age));
        assert_eq!(c.instability(), 1);

        // Phase 2 (AGE): FLPI low (0.035 < 0.04) -> back to CIRC-PC.
        assert_eq!(c.evaluate(metrics(0.0, 0.035)), ModeDecision::SwitchTo(IqMode::CircPc));
        assert_eq!(c.instability(), 1, "decisions made in AGE mode do not touch the counter");

        // Phase 3 (CIRC-PC): FLPI high again -> counter trips, AGE threshold
        // drops to 0.03, switch to AGE.
        assert_eq!(c.evaluate(metrics(0.0, 0.05)), ModeDecision::SwitchTo(IqMode::Age));
        assert_eq!(c.threshold_reductions(), 1);
        assert!((c.active_flpi_threshold() - 0.03).abs() < 1e-12);

        // Phase 4 (AGE): the same 0.035 FLPI that bounced us before is now
        // above the lowered threshold -> stay in AGE. Stable.
        assert_eq!(c.evaluate(metrics(0.0, 0.035)), ModeDecision::Stay);
        assert_eq!(c.mode(), IqMode::Age);
    }

    #[test]
    fn calm_interval_resets_instability() {
        let mut c = SwqueController::new(SwqueParams::default());
        c.evaluate(metrics(0.0, 0.05)); // counter = 1, now AGE
        c.evaluate(metrics(0.0, 0.0)); // back to CIRC-PC (counter untouched: AGE decision)
        c.evaluate(metrics(0.0, 0.0)); // calm CIRC-PC interval: counter resets
        assert_eq!(c.instability(), 0);
        assert_eq!(c.threshold_reductions(), 0);
    }

    #[test]
    fn periodic_reset_restores_threshold() {
        let mut c = SwqueController::new(SwqueParams::default());
        // Trip the counter to lower the AGE threshold.
        c.evaluate(metrics(0.0, 0.05));
        c.evaluate(metrics(0.0, 0.035));
        c.evaluate(metrics(0.0, 0.05));
        assert!(c.active_flpi_threshold() < 0.04);
        c.maybe_periodic_reset(999_999);
        assert!(c.active_flpi_threshold() < 0.04, "not yet due");
        c.maybe_periodic_reset(1_000_000);
        assert_eq!(c.mode(), IqMode::Age);
        // Threshold restored (visible because we are in AGE mode).
        assert!((c.active_flpi_threshold() - 0.04).abs() < 1e-12);
        assert_eq!(c.instability(), 0);
    }

    #[test]
    fn circ_favoring_policy_differs_on_disagreement() {
        let params = SwqueParams { age_favoring: false, ..SwqueParams::default() };
        let mut c = SwqueController::new(params);
        // MPKI high but FLPI low: AGE-favoring would pick AGE; the
        // CIRC-favoring ablation stays in CIRC-PC.
        assert_eq!(c.evaluate(metrics(5.0, 0.0)), ModeDecision::Stay);
        assert_eq!(c.mode(), IqMode::CircPc);
        // Both high still goes to AGE.
        assert_eq!(c.evaluate(metrics(5.0, 0.9)), ModeDecision::SwitchTo(IqMode::Age));
    }

    #[test]
    fn disabling_stabilization_freezes_the_age_threshold() {
        let params = SwqueParams { stabilize: false, ..SwqueParams::default() };
        let mut c = SwqueController::new(params);
        for _ in 0..5 {
            c.evaluate(metrics(0.0, 0.05)); // CIRC-PC -> AGE
            c.evaluate(metrics(0.0, 0.035)); // AGE -> CIRC-PC
        }
        assert_eq!(c.threshold_reductions(), 0);
        c.evaluate(metrics(0.0, 0.05));
        assert!((c.active_flpi_threshold() - 0.04).abs() < 1e-12, "threshold never adapts");
    }

    #[test]
    fn threshold_never_goes_negative() {
        let params = SwqueParams { flpi_reduction: 0.03, ..SwqueParams::default() };
        let mut c = SwqueController::new(params);
        for _ in 0..5 {
            // CIRC-PC -> AGE (trip), then force back to CIRC-PC.
            c.evaluate(metrics(0.0, 0.9));
            c.evaluate(metrics(0.0, 0.9));
            c.evaluate(metrics(0.0, 0.0));
        }
        c.evaluate(metrics(0.0, 0.9)); // land in AGE to read its threshold
        assert!(c.active_flpi_threshold() >= 0.0);
    }
}
