//! Extension (not part of the paper's evaluation): the rearranging random
//! queue of Sakai et al. [ICCD 2018], which the paper's related-work
//! section (§5) discusses as the closest alternative to SWQUE.
//!
//! The scheme splits the IQ into a large *main queue* (free-list allocated,
//! like RAND) and a small *old queue*; each cycle it moves up to a few of
//! the oldest main-queue instructions into the old queue, and the shared
//! select logic gives old-queue instructions priority over everything in
//! the main queue. Unlike the age matrix, this protects *multiple* oldest
//! instructions — and unlike CIRC-PC it keeps full capacity efficiency —
//! at the cost of the moving machinery.
//!
//! This behavioural model tracks old-queue membership as a flag over the
//! shared entry array: `move_width` entries may be promoted per cycle, the
//! old set holds at most `old_capacity` instructions, and selection walks
//! the old set in age order before falling back to positional order.

use std::collections::BTreeMap;

use crate::queue::{IqConfig, IssueQueue};
use crate::slots::SlotArray;
use crate::stats::IqStats;
use crate::types::{DispatchReq, Grant, IqFullError, IssueBudget, Tag};

/// The rearranging random queue (extension; see module docs).
#[derive(Debug)]
pub struct RearrangingQueue {
    slots: SlotArray,
    /// Old-queue membership: seq → position, kept in age order.
    old: BTreeMap<u64, usize>,
    old_capacity: usize,
    move_width: usize,
    flpi_floor: usize,
    stats: IqStats,
}

impl RearrangingQueue {
    /// Default old-queue size (Sakai et al. use a small fraction of the
    /// IQ).
    pub const DEFAULT_OLD_CAPACITY: usize = 16;
    /// Default instructions moved into the old queue per cycle.
    pub const DEFAULT_MOVE_WIDTH: usize = 4;

    /// Creates a rearranging queue with the default old-queue geometry.
    pub fn new(config: &IqConfig) -> RearrangingQueue {
        RearrangingQueue::with_old_queue(
            config,
            Self::DEFAULT_OLD_CAPACITY,
            Self::DEFAULT_MOVE_WIDTH,
        )
    }

    /// Creates a rearranging queue with an explicit old-queue size and
    /// per-cycle move width.
    pub fn with_old_queue(
        config: &IqConfig,
        old_capacity: usize,
        move_width: usize,
    ) -> RearrangingQueue {
        RearrangingQueue {
            slots: SlotArray::new(config.capacity),
            old: BTreeMap::new(),
            old_capacity,
            move_width,
            flpi_floor: config.flpi_rank_floor(),
            stats: IqStats::default(),
        }
    }

    /// Number of instructions currently in the old queue.
    pub fn old_len(&self) -> usize {
        self.old.len()
    }

    /// Promotes up to `move_width` of the oldest main-queue entries.
    fn rearrange(&mut self) {
        let mut candidates: Vec<(u64, usize)> = self
            .slots
            .valid_positions()
            .map(|p| (self.slots.get(p).seq, p))
            .filter(|(seq, _)| !self.old.contains_key(seq))
            .collect();
        candidates.sort_unstable();
        for (seq, pos) in candidates.into_iter().take(self.move_width) {
            if self.old.len() >= self.old_capacity {
                break;
            }
            self.old.insert(seq, pos);
        }
    }

    fn grant_at(&mut self, pos: usize, rank: usize) -> Grant {
        let slot = self.slots.get(pos);
        let g = Grant {
            payload: slot.payload,
            seq: slot.seq,
            dst: slot.dst,
            fu: slot.fu,
            rank,
            two_cycle: false,
        };
        self.old.remove(&slot.seq);
        self.slots.remove(pos);
        self.stats.issued += 1;
        self.stats.tag_reads += 1;
        if rank >= self.flpi_floor {
            self.stats.issued_low_priority += 1;
        }
        g
    }
}

impl IssueQueue for RearrangingQueue {
    fn name(&self) -> &'static str {
        "REARRANGE"
    }

    fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn has_space(&self) -> bool {
        self.slots.len() < self.slots.capacity()
    }

    fn dispatch(&mut self, req: DispatchReq) -> Result<(), IqFullError> {
        let Some(pos) = self.slots.first_free() else {
            self.stats.dispatch_stalls += 1;
            return Err(IqFullError);
        };
        self.slots.insert(pos, req, false, 0);
        self.stats.dispatched += 1;
        Ok(())
    }

    fn wakeup(&mut self, tag: Tag) {
        self.stats.wakeups += 1;
        self.slots.wakeup(tag);
    }

    fn select(&mut self, budget: &mut IssueBudget) -> Vec<Grant> {
        self.stats.selects += 1;
        self.stats.occupancy_sum += self.slots.len() as u64;
        self.stats.region_sum += self.slots.len() as u64;
        self.rearrange();

        let mut grants = Vec::new();
        // Old queue first, in age order: multiple oldest instructions get
        // high priority (the scheme's whole point).
        let old_positions: Vec<usize> = self.old.values().copied().collect();
        for pos in old_positions {
            if budget.exhausted() {
                break;
            }
            let slot = self.slots.get(pos);
            if slot.ready() && budget.try_take(slot.fu) {
                grants.push(self.grant_at(pos, 0));
            }
        }
        // Then the main queue, positional (random w.r.t. age): a word scan
        // over the packed ready plane, skipping old-queue members. Words
        // are copied to a register before their bits are visited, so
        // granting (which clears the bit) cannot disturb the scan.
        'main: for wi in 0..self.slots.ready_words().len() {
            let mut word = self.slots.ready_words()[wi];
            while word != 0 {
                if budget.exhausted() {
                    break 'main;
                }
                let pos = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let slot = self.slots.get(pos);
                if !self.old.contains_key(&slot.seq) && budget.try_take(slot.fu) {
                    grants.push(self.grant_at(pos, pos));
                }
            }
        }
        grants
    }

    fn flush(&mut self) {
        self.slots.clear();
        self.old.clear();
    }

    fn squash_younger(&mut self, seq: u64) {
        let doomed: Vec<usize> = self
            .slots
            .valid_positions()
            .filter(|&p| self.slots.get(p).seq > seq)
            .collect();
        for pos in doomed {
            let s = self.slots.get(pos).seq;
            self.old.remove(&s);
            self.slots.remove(pos);
        }
    }

    fn stats(&self) -> IqStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::FuClass;

    fn cfg() -> IqConfig {
        IqConfig { capacity: 16, issue_width: 4, ..IqConfig::default() }
    }

    fn waiting(seq: u64, tag: Tag) -> DispatchReq {
        DispatchReq::new(seq, seq, Some(seq as Tag), [Some(tag), None], FuClass::IntAlu)
    }

    fn budget(n: usize) -> IssueBudget {
        IssueBudget::new(n, [n, n, n, n])
    }

    #[test]
    fn multiple_oldest_get_priority() {
        // Unlike AGE's single protected instruction, the old queue protects
        // several: with four old blocked entries and younger ready ones,
        // the old entries win as soon as they wake.
        let mut q = RearrangingQueue::with_old_queue(&cfg(), 4, 4);
        for seq in 0..4 {
            q.dispatch(waiting(seq, 99)).unwrap(); // old, blocked
        }
        for seq in 4..10 {
            q.dispatch(waiting(seq, 7)).unwrap(); // young
        }
        q.select(&mut budget(0)); // a cycle passes: rearrange runs
        assert_eq!(q.old_len(), 4);
        q.wakeup(7);
        q.wakeup(99);
        let g = q.select(&mut budget(4));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn move_width_limits_promotion_rate() {
        let mut q = RearrangingQueue::with_old_queue(&cfg(), 8, 2);
        for seq in 0..8 {
            q.dispatch(waiting(seq, 99)).unwrap();
        }
        q.select(&mut budget(0));
        assert_eq!(q.old_len(), 2, "two promoted per cycle");
        q.select(&mut budget(0));
        assert_eq!(q.old_len(), 4);
    }

    #[test]
    fn issue_frees_old_slots_for_new_promotions() {
        let mut q = RearrangingQueue::with_old_queue(&cfg(), 2, 2);
        for seq in 0..6 {
            q.dispatch(waiting(seq, 99)).unwrap();
        }
        q.select(&mut budget(0));
        assert_eq!(q.old_len(), 2);
        q.wakeup(99);
        let g = q.select(&mut budget(2));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![0, 1]);
        q.select(&mut budget(0));
        assert_eq!(q.old_len(), 2, "seqs 2 and 3 promoted after 0 and 1 issued");
    }

    #[test]
    fn squash_purges_old_queue_membership() {
        let mut q = RearrangingQueue::new(&cfg());
        for seq in 0..8 {
            q.dispatch(waiting(seq, 99)).unwrap();
        }
        q.select(&mut budget(0));
        q.squash_younger(1);
        assert_eq!(q.len(), 2);
        assert!(q.old_len() <= 2);
        q.wakeup(99);
        let g = q.select(&mut budget(4));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![0, 1]);
    }
}
