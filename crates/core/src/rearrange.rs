//! Extension (not part of the paper's evaluation): the rearranging random
//! queue of Sakai et al. [ICCD 2018], which the paper's related-work
//! section (§5) discusses as the closest alternative to SWQUE.
//!
//! The scheme splits the IQ into a large *main queue* (free-list allocated,
//! like RAND) and a small *old queue*; each cycle it moves up to a few of
//! the oldest main-queue instructions into the old queue, and the shared
//! select logic gives old-queue instructions priority over everything in
//! the main queue. Unlike the age matrix, this protects *multiple* oldest
//! instructions — and unlike CIRC-PC it keeps full capacity efficiency —
//! at the cost of the moving machinery.
//!
//! This behavioural model tracks old-queue membership as a flag over the
//! shared entry array: `move_width` entries may be promoted per cycle, the
//! old set holds at most `old_capacity` instructions, and selection walks
//! the old set in age order before falling back to positional order.

use crate::bitset::BitSet;
use crate::horizon::WakeHorizon;
use crate::queue::{IqConfig, IssueQueue};
use crate::slots::SlotArray;
use crate::stats::IqStats;
use crate::types::{DispatchReq, Grant, IqFullError, IssueBudget, Tag};

/// The rearranging random queue (extension; see module docs).
#[derive(Debug, Clone)]
pub struct RearrangingQueue {
    slots: SlotArray,
    /// Old-queue membership: `(seq, pos)` kept sorted by seq (age order).
    /// Bounded by `old_capacity` (small), so insertion-sorted linear ops
    /// beat a tree; the paired position mask makes membership tests O(1).
    old: Vec<(u64, usize)>,
    /// Positions currently in the old queue (mirror of `old`), tested by
    /// both per-cycle scans instead of a map lookup per candidate.
    old_mask: BitSet,
    old_capacity: usize,
    move_width: usize,
    flpi_floor: usize,
    /// Promotion scratch reused across cycles (see [`Self::rearrange`]):
    /// holds at most `move_width` `(seq, pos)` candidates, so the per-cycle
    /// select loop never allocates.
    scratch: Vec<(u64, usize)>,
    /// Old-queue position snapshot reused across select cycles (granting
    /// mutates `old`, so selection iterates a copy).
    old_scratch: Vec<usize>,
    stats: IqStats,
}

impl RearrangingQueue {
    /// Default old-queue size (Sakai et al. use a small fraction of the
    /// IQ).
    pub const DEFAULT_OLD_CAPACITY: usize = 16;
    /// Default instructions moved into the old queue per cycle.
    pub const DEFAULT_MOVE_WIDTH: usize = 4;

    /// Creates a rearranging queue with the default old-queue geometry.
    pub fn new(config: &IqConfig) -> RearrangingQueue {
        RearrangingQueue::with_old_queue(
            config,
            Self::DEFAULT_OLD_CAPACITY,
            Self::DEFAULT_MOVE_WIDTH,
        )
    }

    /// Creates a rearranging queue with an explicit old-queue size and
    /// per-cycle move width.
    pub fn with_old_queue(
        config: &IqConfig,
        old_capacity: usize,
        move_width: usize,
    ) -> RearrangingQueue {
        RearrangingQueue {
            slots: SlotArray::new(config.capacity),
            old: Vec::with_capacity(old_capacity),
            old_mask: BitSet::new(config.capacity),
            old_capacity,
            move_width,
            flpi_floor: config.flpi_rank_floor(),
            scratch: Vec::with_capacity(move_width),
            old_scratch: Vec::with_capacity(old_capacity),
            stats: IqStats::default(),
        }
    }

    /// Number of instructions currently in the old queue.
    pub fn old_len(&self) -> usize {
        self.old.len()
    }

    /// Promotes up to `move_width` of the oldest main-queue entries.
    ///
    /// Runs every select cycle, so it must not be the hot-path outlier it
    /// once was: when the old queue is full (the steady state under
    /// pressure) it exits before touching any slot, and otherwise it keeps
    /// the `min(move_width, free)` oldest candidates in a small
    /// insertion-sorted scratch buffer reused across cycles — no per-cycle
    /// allocation, no O(n log n) sort of the whole queue.
    fn rearrange(&mut self) {
        let free = self.old_capacity.saturating_sub(self.old.len());
        let take = free.min(self.move_width);
        if take == 0 {
            return;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for pos in self.slots.valid_positions() {
            if self.old_mask.test(pos) {
                continue;
            }
            let seq = self.slots.get(pos).seq;
            if scratch.len() == take {
                // `scratch` is sorted ascending; its last entry is the
                // youngest survivor.
                if seq >= scratch[take - 1].0 {
                    continue;
                }
                scratch.pop();
            }
            let at = scratch.partition_point(|&(s, _)| s < seq);
            scratch.insert(at, (seq, pos));
        }
        for &(seq, pos) in &scratch {
            let at = self.old.partition_point(|&(s, _)| s < seq);
            self.old.insert(at, (seq, pos));
            self.old_mask.set(pos);
        }
        self.scratch = scratch;
    }

    fn grant_at(&mut self, pos: usize, rank: usize) -> Grant {
        let slot = self.slots.get(pos);
        let g = Grant {
            payload: slot.payload,
            seq: slot.seq,
            dst: slot.dst,
            fu: slot.fu,
            rank,
            two_cycle: false,
        };
        if self.old_mask.test(pos) {
            self.old_mask.clear(pos);
            if let Ok(at) = self.old.binary_search_by_key(&g.seq, |&(s, _)| s) {
                self.old.remove(at);
            }
        }
        self.slots.remove(pos);
        self.stats.issued += 1;
        self.stats.tag_reads += 1;
        if rank >= self.flpi_floor {
            self.stats.issued_low_priority += 1;
        }
        g
    }
}

impl IssueQueue for RearrangingQueue {
    fn name(&self) -> &'static str {
        "REARRANGE"
    }

    fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn has_space(&self) -> bool {
        self.slots.len() < self.slots.capacity()
    }

    fn dispatch(&mut self, req: DispatchReq) -> Result<(), IqFullError> {
        let Some(pos) = self.slots.first_free() else {
            self.stats.dispatch_stalls += 1;
            return Err(IqFullError);
        };
        self.slots.insert(pos, req, false, 0);
        self.stats.dispatched += 1;
        Ok(())
    }

    fn wakeup(&mut self, tag: Tag) {
        self.stats.wakeups += 1;
        self.slots.wakeup(tag);
    }

    fn has_ready(&self) -> bool {
        self.slots.any_ready()
    }

    fn idle_tick(&mut self, cycles: u64) {
        self.stats.selects += cycles;
        self.stats.occupancy_sum += cycles * self.slots.len() as u64;
        self.stats.region_sum += cycles * self.slots.len() as u64;
        // The promotion machinery still runs while nothing is ready:
        // move_width entries per cycle until the old queue fills or the
        // candidates run out. rearrange() only ever inserts, so an
        // unchanged old-queue length means it reached its fixpoint and
        // every remaining idle cycle is a no-op.
        for _ in 0..cycles {
            let before = self.old.len();
            self.rearrange();
            if self.old.len() == before {
                break;
            }
        }
    }

    fn select(&mut self, budget: &mut IssueBudget) -> Vec<Grant> {
        self.stats.selects += 1;
        self.stats.occupancy_sum += self.slots.len() as u64;
        self.stats.region_sum += self.slots.len() as u64;
        self.rearrange();

        let mut grants = Vec::new();
        // Old queue first, in age order: multiple oldest instructions get
        // high priority (the scheme's whole point).
        let mut old_positions = std::mem::take(&mut self.old_scratch);
        old_positions.clear();
        old_positions.extend(self.old.iter().map(|&(_, pos)| pos));
        for &pos in &old_positions {
            if budget.exhausted() {
                break;
            }
            let slot = self.slots.get(pos);
            if slot.ready() && budget.try_take(slot.fu) {
                grants.push(self.grant_at(pos, 0));
            }
        }
        self.old_scratch = old_positions;
        // Then the main queue, positional (random w.r.t. age): a word scan
        // over the packed ready plane, skipping old-queue members. Words
        // are copied to a register before their bits are visited, so
        // granting (which clears the bit) cannot disturb the scan.
        'main: for wi in 0..self.slots.ready_words().len() {
            let mut word = self.slots.ready_words()[wi];
            while word != 0 {
                if budget.exhausted() {
                    break 'main;
                }
                let pos = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let slot = self.slots.get(pos);
                if !self.old_mask.test(pos) && budget.try_take(slot.fu) {
                    grants.push(self.grant_at(pos, pos));
                }
            }
        }
        grants
    }

    fn flush(&mut self) {
        self.slots.clear();
        self.old.clear();
        self.old_mask.clear_all();
    }

    fn squash_younger(&mut self, seq: u64) {
        let doomed: Vec<usize> = self
            .slots
            .valid_positions()
            .filter(|&p| self.slots.get(p).seq > seq)
            .collect();
        for pos in doomed {
            self.old_mask.clear(pos);
            self.slots.remove(pos);
        }
        // `old` is sorted by seq: everything younger sits past the cut.
        let cut = self.old.partition_point(|&(s, _)| s <= seq);
        self.old.truncate(cut);
    }

    fn stats(&self) -> IqStats {
        self.stats
    }

    fn clone_box(&self) -> Box<dyn IssueQueue> {
        Box::new(self.clone())
    }
}

impl WakeHorizon for RearrangingQueue {
    fn wake_horizon(&self, _now: u64) -> Option<u64> {
        // Promotion is clocked by select()/idle_tick(), not wall cycles,
        // and promotions never make an entry ready — purely reactive.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::FuClass;

    fn cfg() -> IqConfig {
        IqConfig { capacity: 16, issue_width: 4, ..IqConfig::default() }
    }

    fn waiting(seq: u64, tag: Tag) -> DispatchReq {
        DispatchReq::new(seq, seq, Some(seq as Tag), [Some(tag), None], FuClass::IntAlu)
    }

    fn budget(n: usize) -> IssueBudget {
        IssueBudget::new(n, [n, n, n, n])
    }

    #[test]
    fn multiple_oldest_get_priority() {
        // Unlike AGE's single protected instruction, the old queue protects
        // several: with four old blocked entries and younger ready ones,
        // the old entries win as soon as they wake.
        let mut q = RearrangingQueue::with_old_queue(&cfg(), 4, 4);
        for seq in 0..4 {
            q.dispatch(waiting(seq, 99)).unwrap(); // old, blocked
        }
        for seq in 4..10 {
            q.dispatch(waiting(seq, 7)).unwrap(); // young
        }
        q.select(&mut budget(0)); // a cycle passes: rearrange runs
        assert_eq!(q.old_len(), 4);
        q.wakeup(7);
        q.wakeup(99);
        let g = q.select(&mut budget(4));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn move_width_limits_promotion_rate() {
        let mut q = RearrangingQueue::with_old_queue(&cfg(), 8, 2);
        for seq in 0..8 {
            q.dispatch(waiting(seq, 99)).unwrap();
        }
        q.select(&mut budget(0));
        assert_eq!(q.old_len(), 2, "two promoted per cycle");
        q.select(&mut budget(0));
        assert_eq!(q.old_len(), 4);
    }

    #[test]
    fn issue_frees_old_slots_for_new_promotions() {
        let mut q = RearrangingQueue::with_old_queue(&cfg(), 2, 2);
        for seq in 0..6 {
            q.dispatch(waiting(seq, 99)).unwrap();
        }
        q.select(&mut budget(0));
        assert_eq!(q.old_len(), 2);
        q.wakeup(99);
        let g = q.select(&mut budget(2));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![0, 1]);
        q.select(&mut budget(0));
        assert_eq!(q.old_len(), 2, "seqs 2 and 3 promoted after 0 and 1 issued");
    }

    #[test]
    fn squash_purges_old_queue_membership() {
        let mut q = RearrangingQueue::new(&cfg());
        for seq in 0..8 {
            q.dispatch(waiting(seq, 99)).unwrap();
        }
        q.select(&mut budget(0));
        q.squash_younger(1);
        assert_eq!(q.len(), 2);
        assert!(q.old_len() <= 2);
        q.wakeup(99);
        let g = q.select(&mut budget(4));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![0, 1]);
    }
}
