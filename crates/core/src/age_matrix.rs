//! The age matrix (paper §2.3): a bit matrix that selects the single oldest
//! ready instruction from a randomly ordered queue.
//!
//! Row `i`, column `j` holds 1 iff the instruction in slot `j` is older than
//! the instruction in slot `i`. Slot `i` is the oldest requester iff its
//! request is raised and `row(i) & requests == 0` — i.e. no *ready* older
//! instruction exists. This is exactly the "bitwise AND of the row vector
//! with the transposed issue request vector" the paper describes.
//!
//! # Word-parallel implementation
//!
//! The matrix maintains the invariant that **every valid row is a subset of
//! the valid mask**: a row only ever names live, older instructions.
//! Consequences:
//!
//! * [`allocate`](AgeMatrix::allocate)`(i)` is a single row copy
//!   (`row(i) := valid`) plus one valid-bit set. No column clears are
//!   needed: slot `i` was invalid, so by the invariant no valid row holds
//!   column `i`, and invalid rows are dead state that the slot's own next
//!   `allocate` overwrites wholesale.
//! * [`deallocate`](AgeMatrix::deallocate)`(i)` clears column `i` only in
//!   the *valid* rows (iterating set bits of the valid mask), not all
//!   `capacity` rows.
//! * [`oldest_ready_words`](AgeMatrix::oldest_ready_words) takes the packed
//!   request vector straight from `SlotArray::ready_words` and resolves the
//!   oldest requester with word ANDs — no per-slot request registration,
//!   no temporary allocation.
//!
//! The pre-rewrite scalar implementation (`Vec<Vec<bool>>`, per-slot loops)
//! is preserved as `ScalarAgeMatrix` under `#[cfg(test)]` and a property
//! test checks the two agree on random allocate/deallocate/query histories.

use crate::bitset::words_for;

/// A bit matrix over `capacity` issue-queue slots.
///
/// # Example
///
/// ```
/// use swque_core::AgeMatrix;
///
/// let mut m = AgeMatrix::new(8);
/// m.allocate(5); // oldest
/// m.allocate(2);
/// m.allocate(7); // youngest
/// assert_eq!(m.oldest_ready([2, 7]), Some(2), "5 is older but not requesting");
/// m.deallocate(2);
/// assert_eq!(m.oldest_ready([2, 7]), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct AgeMatrix {
    capacity: usize,
    words_per_row: usize,
    /// Row-major bit matrix: `rows[i * words_per_row ..]` is row `i`.
    /// Invalid rows hold dead state (overwritten on the slot's next
    /// allocate); valid rows are always subsets of `valid`.
    rows: Vec<u64>,
    /// Which slots currently participate (valid instructions).
    valid: Vec<u64>,
}

impl AgeMatrix {
    /// Creates an empty matrix over `capacity` slots.
    pub fn new(capacity: usize) -> AgeMatrix {
        assert!(capacity > 0, "age matrix needs at least one slot"); // swque-lint: allow(panic-in-lib) — construction-time size contract shared by every queue config
        let words_per_row = words_for(capacity);
        AgeMatrix {
            capacity,
            words_per_row,
            rows: vec![0; capacity * words_per_row],
            valid: vec![0; words_per_row],
        }
    }

    /// Number of tracked slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn row(&self, i: usize) -> &[u64] {
        &self.rows[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    fn bit(word: &[u64], j: usize) -> bool {
        word[j / 64] >> (j % 64) & 1 == 1
    }

    /// Registers slot `i` as the *youngest* live instruction: its row
    /// becomes a copy of the current valid mask (everyone live is older).
    ///
    /// # Panics
    ///
    /// Panics if slot `i` is already allocated.
    pub fn allocate(&mut self, i: usize) {
        assert!(!Self::bit(&self.valid, i), "age-matrix slot {i} allocated twice"); // swque-lint: allow(panic-in-lib) — documented `# Panics` contract; a double allocate corrupts age order silently otherwise
        // Row i := current valid vector. Column i needs no clearing: it is
        // already 0 in every valid row (valid rows ⊆ valid mask and i was
        // invalid), and invalid rows are rewritten when their slot
        // allocates.
        let (rows, valid) = (&mut self.rows, &self.valid);
        rows[i * self.words_per_row..(i + 1) * self.words_per_row].copy_from_slice(valid);
        self.valid[i / 64] |= 1 << (i % 64);
    }

    /// Removes slot `i` (issued or squashed): clears its column in every
    /// *valid* row and marks it invalid.
    pub fn deallocate(&mut self, i: usize) {
        let col_word = i / 64;
        let col_mask = !(1u64 << (i % 64));
        // Only valid rows can hold column i; walk the set bits of the
        // valid mask instead of all `capacity` rows.
        for (wi, &w) in self.valid.iter().enumerate() {
            let mut word = w;
            while word != 0 {
                let r = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                self.rows[r * self.words_per_row + col_word] &= col_mask;
            }
        }
        self.valid[i / 64] &= !(1 << (i % 64));
    }

    /// True if slot `i` is currently tracked.
    pub fn is_allocated(&self, i: usize) -> bool {
        Self::bit(&self.valid, i)
    }

    /// Clears the matrix.
    pub fn clear(&mut self) {
        self.rows.fill(0);
        self.valid.fill(0);
    }

    /// Packed-request form of [`oldest_ready`](AgeMatrix::oldest_ready):
    /// `req` is a bit-per-slot request vector (e.g. straight from
    /// `SlotArray::ready_words`; it may be shorter or longer than the
    /// matrix rows — missing words are treated as zero). Requests from
    /// unallocated slots are ignored.
    ///
    /// For each requesting valid slot `i` (ascending), the oldest test is
    /// `row(i) & req & valid == 0` evaluated word-wise; the first slot that
    /// passes wins. Word count per test is `⌈capacity/64⌉`, so a 64-entry
    /// queue resolves in one AND per candidate.
    pub fn oldest_ready_words(&self, req: &[u64]) -> Option<usize> {
        let n = self.words_per_row.min(req.len());
        for wi in 0..n {
            let mut word = req[wi] & self.valid[wi];
            while word != 0 {
                let i = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let row = self.row(i);
                let none_older_ready = (0..n).all(|w| row[w] & req[w] & self.valid[w] == 0);
                if none_older_ready {
                    return Some(i);
                }
            }
        }
        None
    }

    /// Given a request bit per slot, returns the slot of the oldest
    /// requester, or `None` if no valid slot requests.
    ///
    /// `requests` yields the slots whose issue request is raised; requests
    /// from unallocated slots are ignored. Convenience wrapper over
    /// [`oldest_ready_words`](AgeMatrix::oldest_ready_words) — the
    /// per-cycle paths pass packed words directly.
    pub fn oldest_ready<I: IntoIterator<Item = usize>>(&self, requests: I) -> Option<usize> {
        let mut req = vec![0u64; self.words_per_row];
        for slot in requests {
            if slot < self.capacity {
                req[slot / 64] |= 1 << (slot % 64);
            }
        }
        self.oldest_ready_words(&req)
    }
}

/// The scalar reference the word-parallel matrix replaced: an explicit
/// `capacity × capacity` boolean matrix with per-slot loops for allocate,
/// deallocate, and the oldest-ready resolution. Differential oracle only.
#[cfg(test)]
#[derive(Debug, Clone)]
pub struct ScalarAgeMatrix {
    older: Vec<Vec<bool>>,
    valid: Vec<bool>,
}

#[cfg(test)]
impl ScalarAgeMatrix {
    pub fn new(capacity: usize) -> ScalarAgeMatrix {
        assert!(capacity > 0);
        ScalarAgeMatrix { older: vec![vec![false; capacity]; capacity], valid: vec![false; capacity] }
    }

    pub fn allocate(&mut self, i: usize) {
        assert!(!self.valid[i], "age-matrix slot {i} allocated twice");
        for j in 0..self.valid.len() {
            self.older[i][j] = self.valid[j];
        }
        for r in 0..self.valid.len() {
            if r != i {
                self.older[r][i] = false;
            }
        }
        self.valid[i] = true;
    }

    pub fn deallocate(&mut self, i: usize) {
        for row in &mut self.older {
            row[i] = false;
        }
        self.valid[i] = false;
    }

    pub fn is_allocated(&self, i: usize) -> bool {
        self.valid[i]
    }

    pub fn clear(&mut self) {
        for row in &mut self.older {
            row.fill(false);
        }
        self.valid.fill(false);
    }

    pub fn oldest_ready<I: IntoIterator<Item = usize>>(&self, requests: I) -> Option<usize> {
        let mut req = vec![false; self.valid.len()];
        for slot in requests {
            if self.valid[slot] {
                req[slot] = true;
            }
        }
        (0..self.valid.len())
            .find(|&i| req[i] && (0..self.valid.len()).all(|j| !(self.older[i][j] && req[j])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_rng::prop::check;

    #[test]
    fn oldest_of_requesters_wins_in_allocation_order() {
        let mut m = AgeMatrix::new(8);
        m.allocate(5); // oldest
        m.allocate(1);
        m.allocate(7); // youngest
        assert_eq!(m.oldest_ready([1, 7]), Some(1), "5 does not request");
        assert_eq!(m.oldest_ready([5, 1, 7]), Some(5));
        assert_eq!(m.oldest_ready([7]), Some(7));
        assert_eq!(m.oldest_ready(std::iter::empty()), None);
    }

    #[test]
    fn deallocate_promotes_next_oldest() {
        let mut m = AgeMatrix::new(4);
        m.allocate(0);
        m.allocate(1);
        m.allocate(2);
        m.deallocate(0);
        assert_eq!(m.oldest_ready([1, 2]), Some(1));
    }

    #[test]
    fn slot_reuse_resets_age() {
        let mut m = AgeMatrix::new(4);
        m.allocate(0); // oldest
        m.allocate(1);
        m.deallocate(0);
        m.allocate(0); // reused: now the YOUNGEST
        assert_eq!(m.oldest_ready([0, 1]), Some(1));
    }

    #[test]
    fn requests_from_unallocated_slots_ignored() {
        let mut m = AgeMatrix::new(4);
        m.allocate(2);
        assert_eq!(m.oldest_ready([0, 1, 3]), None);
        assert_eq!(m.oldest_ready([0, 2]), Some(2));
    }

    #[test]
    fn works_past_64_slots() {
        let mut m = AgeMatrix::new(130);
        m.allocate(120);
        m.allocate(3);
        m.allocate(129);
        assert_eq!(m.oldest_ready([3, 129]), Some(3));
        assert_eq!(m.oldest_ready([120, 3, 129]), Some(120));
    }

    #[test]
    fn packed_request_vector_shorter_or_longer_than_rows() {
        let mut m = AgeMatrix::new(130);
        m.allocate(10);
        m.allocate(100);
        // One-word request vector: only slot 10 can request.
        assert_eq!(m.oldest_ready_words(&[1 << 10]), Some(10));
        // Over-long vector: the tail is ignored.
        assert_eq!(m.oldest_ready_words(&[0, 1 << 36, 0, u64::MAX]), Some(100));
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn double_allocate_panics() {
        let mut m = AgeMatrix::new(2);
        m.allocate(0);
        m.allocate(0);
    }

    #[test]
    fn clear_empties_matrix() {
        let mut m = AgeMatrix::new(4);
        m.allocate(0);
        m.clear();
        assert!(!m.is_allocated(0));
        assert_eq!(m.oldest_ready([0]), None);
    }

    /// Differential oracle: random allocate/deallocate/clear histories with
    /// an oldest-ready query over a random request subset after every step.
    /// The word-parallel matrix (no-column-clear allocate, valid-rows-only
    /// deallocate) must agree with the explicit boolean matrix everywhere.
    #[test]
    fn prop_word_matrix_matches_scalar_oracle() {
        check(192, |g| {
            let cap = g.gen_range(1usize..140);
            let mut fast = AgeMatrix::new(cap);
            let mut oracle = ScalarAgeMatrix::new(cap);
            let ops = g.gen_range(1usize..160);
            for _ in 0..ops {
                match g.gen_range(0u32..100) {
                    0..=49 => {
                        let free: Vec<usize> =
                            (0..cap).filter(|&i| !oracle.is_allocated(i)).collect();
                        if free.is_empty() {
                            continue;
                        }
                        let i = free[g.gen_range(0usize..free.len())];
                        fast.allocate(i);
                        oracle.allocate(i);
                    }
                    50..=89 => {
                        let live: Vec<usize> =
                            (0..cap).filter(|&i| oracle.is_allocated(i)).collect();
                        if live.is_empty() {
                            continue;
                        }
                        let i = live[g.gen_range(0usize..live.len())];
                        fast.deallocate(i);
                        oracle.deallocate(i);
                    }
                    _ => {
                        fast.clear();
                        oracle.clear();
                    }
                }
                // Random request subset, including some invalid slots.
                let req: Vec<usize> =
                    (0..cap).filter(|_| g.gen_range(0u32..3) == 0).collect();
                assert_eq!(
                    fast.oldest_ready(req.iter().copied()),
                    oracle.oldest_ready(req.iter().copied()),
                    "requests {req:?}"
                );
                for i in 0..cap {
                    assert_eq!(fast.is_allocated(i), oracle.is_allocated(i), "valid[{i}]");
                }
            }
        });
    }
}
