//! The age matrix (paper §2.3): a bit matrix that selects the single oldest
//! ready instruction from a randomly ordered queue.
//!
//! Row `i`, column `j` holds 1 iff the instruction in slot `j` is older than
//! the instruction in slot `i`. Slot `i` is the oldest requester iff its
//! request is raised and `row(i) & requests == 0` — i.e. no *ready* older
//! instruction exists. This is exactly the "bitwise AND of the row vector
//! with the transposed issue request vector" the paper describes.

/// A bit matrix over `capacity` issue-queue slots.
///
/// # Example
///
/// ```
/// use swque_core::AgeMatrix;
///
/// let mut m = AgeMatrix::new(8);
/// m.allocate(5); // oldest
/// m.allocate(2);
/// m.allocate(7); // youngest
/// assert_eq!(m.oldest_ready([2, 7]), Some(2), "5 is older but not requesting");
/// m.deallocate(2);
/// assert_eq!(m.oldest_ready([2, 7]), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct AgeMatrix {
    capacity: usize,
    words_per_row: usize,
    /// Row-major bit matrix: `rows[i * words_per_row ..]` is row `i`.
    rows: Vec<u64>,
    /// Which slots currently participate (valid instructions).
    valid: Vec<u64>,
}

impl AgeMatrix {
    /// Creates an empty matrix over `capacity` slots.
    pub fn new(capacity: usize) -> AgeMatrix {
        assert!(capacity > 0, "age matrix needs at least one slot");
        let words_per_row = capacity.div_ceil(64);
        AgeMatrix {
            capacity,
            words_per_row,
            rows: vec![0; capacity * words_per_row],
            valid: vec![0; words_per_row],
        }
    }

    /// Number of tracked slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn row(&self, i: usize) -> &[u64] {
        &self.rows[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    fn bit(word: &[u64], j: usize) -> bool {
        word[j / 64] >> (j % 64) & 1 == 1
    }

    fn set_bit(word: &mut [u64], j: usize, v: bool) {
        if v {
            word[j / 64] |= 1 << (j % 64);
        } else {
            word[j / 64] &= !(1 << (j % 64));
        }
    }

    /// Registers slot `i` as the *youngest* live instruction: its row gets a
    /// 1 for every currently valid slot, and every valid row clears column
    /// `i`.
    ///
    /// # Panics
    ///
    /// Panics if slot `i` is already allocated.
    pub fn allocate(&mut self, i: usize) {
        assert!(!Self::bit(&self.valid, i), "age-matrix slot {i} allocated twice");
        // Row i := current valid vector (everyone live is older).
        let valid_snapshot: Vec<u64> = self.valid.clone();
        let row = &mut self.rows[i * self.words_per_row..(i + 1) * self.words_per_row];
        row.copy_from_slice(&valid_snapshot);
        // Column i := 0 in every row (nobody considers i older).
        for r in 0..self.capacity {
            let row = &mut self.rows[r * self.words_per_row..(r + 1) * self.words_per_row];
            Self::set_bit(row, i, false);
        }
        Self::set_bit(&mut self.valid, i, true);
    }

    /// Removes slot `i` (issued or squashed): clears its column everywhere
    /// and marks it invalid.
    pub fn deallocate(&mut self, i: usize) {
        for r in 0..self.capacity {
            let row = &mut self.rows[r * self.words_per_row..(r + 1) * self.words_per_row];
            Self::set_bit(row, i, false);
        }
        Self::set_bit(&mut self.valid, i, false);
    }

    /// True if slot `i` is currently tracked.
    pub fn is_allocated(&self, i: usize) -> bool {
        Self::bit(&self.valid, i)
    }

    /// Clears the matrix.
    pub fn clear(&mut self) {
        self.rows.fill(0);
        self.valid.fill(0);
    }

    /// Given a request bit per slot, returns the slot of the oldest
    /// requester, or `None` if no valid slot requests.
    ///
    /// `requests` yields the slots whose issue request is raised; requests
    /// from unallocated slots are ignored.
    pub fn oldest_ready<I: IntoIterator<Item = usize>>(&self, requests: I) -> Option<usize> {
        let mut req = vec![0u64; self.words_per_row];
        for slot in requests {
            if Self::bit(&self.valid, slot) {
                Self::set_bit(&mut req, slot, true);
            }
        }
        for i in 0..self.capacity {
            if !Self::bit(&req, i) {
                continue;
            }
            let row = self.row(i);
            if row.iter().zip(&req).all(|(r, q)| r & q == 0) {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oldest_of_requesters_wins_in_allocation_order() {
        let mut m = AgeMatrix::new(8);
        m.allocate(5); // oldest
        m.allocate(1);
        m.allocate(7); // youngest
        assert_eq!(m.oldest_ready([1, 7]), Some(1), "5 does not request");
        assert_eq!(m.oldest_ready([5, 1, 7]), Some(5));
        assert_eq!(m.oldest_ready([7]), Some(7));
        assert_eq!(m.oldest_ready(std::iter::empty()), None);
    }

    #[test]
    fn deallocate_promotes_next_oldest() {
        let mut m = AgeMatrix::new(4);
        m.allocate(0);
        m.allocate(1);
        m.allocate(2);
        m.deallocate(0);
        assert_eq!(m.oldest_ready([1, 2]), Some(1));
    }

    #[test]
    fn slot_reuse_resets_age() {
        let mut m = AgeMatrix::new(4);
        m.allocate(0); // oldest
        m.allocate(1);
        m.deallocate(0);
        m.allocate(0); // reused: now the YOUNGEST
        assert_eq!(m.oldest_ready([0, 1]), Some(1));
    }

    #[test]
    fn requests_from_unallocated_slots_ignored() {
        let mut m = AgeMatrix::new(4);
        m.allocate(2);
        assert_eq!(m.oldest_ready([0, 1, 3]), None);
        assert_eq!(m.oldest_ready([0, 2]), Some(2));
    }

    #[test]
    fn works_past_64_slots() {
        let mut m = AgeMatrix::new(130);
        m.allocate(120);
        m.allocate(3);
        m.allocate(129);
        assert_eq!(m.oldest_ready([3, 129]), Some(3));
        assert_eq!(m.oldest_ready([120, 3, 129]), Some(120));
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn double_allocate_panics() {
        let mut m = AgeMatrix::new(2);
        m.allocate(0);
        m.allocate(0);
    }

    #[test]
    fn clear_empties_matrix() {
        let mut m = AgeMatrix::new(4);
        m.allocate(0);
        m.clear();
        assert!(!m.is_allocated(0));
        assert_eq!(m.oldest_ready([0]), None);
    }
}
