//! SHIFT: the compacting shifting queue (paper §2.3).
//!
//! Instructions stay physically ordered by age; a compaction circuit closes
//! the holes left by issued instructions every cycle. Priority is therefore
//! always perfectly age-ordered and capacity efficiency is 1.0 — SHIFT is
//! the IPC upper bound among the conventional queues, at the cost of circuit
//! complexity the paper's delay/energy analysis charges against it.

use crate::horizon::WakeHorizon;
use crate::queue::{IqConfig, IssueQueue};
use crate::stats::IqStats;
use crate::types::{DispatchReq, Grant, IqFullError, IssueBudget, Tag};

#[derive(Debug, Clone, Copy)]
struct Entry {
    req: DispatchReq,
    ready: [bool; 2],
}

impl Entry {
    fn ready(&self) -> bool {
        self.ready[0] && self.ready[1]
    }
}

/// The compacting, age-ordered queue.
///
/// # Example
///
/// ```
/// use swque_core::{DispatchReq, IqConfig, IssueBudget, IssueQueue, ShiftQueue};
/// use swque_isa::FuClass;
///
/// let mut q = ShiftQueue::new(&IqConfig { capacity: 4, issue_width: 2, ..IqConfig::default() });
/// q.dispatch(DispatchReq::new(0, 0, None, [None, None], FuClass::IntAlu)).unwrap();
/// q.dispatch(DispatchReq::new(1, 1, None, [None, None], FuClass::IntAlu)).unwrap();
/// let grants = q.select(&mut IssueBudget::new(2, [2, 1, 1, 1]));
/// assert_eq!(grants[0].seq, 0, "strictly oldest first");
/// ```
#[derive(Debug, Clone)]
pub struct ShiftQueue {
    capacity: usize,
    flpi_floor: usize,
    /// Age-ordered entries; index 0 is the oldest (highest priority).
    entries: Vec<Entry>,
    stats: IqStats,
}

impl ShiftQueue {
    /// Creates an empty SHIFT queue.
    pub fn new(config: &IqConfig) -> ShiftQueue {
        ShiftQueue {
            capacity: config.capacity,
            flpi_floor: config.flpi_rank_floor(),
            entries: Vec::with_capacity(config.capacity),
            stats: IqStats::default(),
        }
    }
}

impl IssueQueue for ShiftQueue {
    fn name(&self) -> &'static str {
        "SHIFT"
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    fn dispatch(&mut self, req: DispatchReq) -> Result<(), IqFullError> {
        if !self.has_space() {
            self.stats.dispatch_stalls += 1;
            return Err(IqFullError);
        }
        let ready = [req.srcs[0].is_none(), req.srcs[1].is_none()];
        self.entries.push(Entry { req, ready });
        self.stats.dispatched += 1;
        Ok(())
    }

    fn wakeup(&mut self, tag: Tag) {
        self.stats.wakeups += 1;
        for e in &mut self.entries {
            for (i, src) in e.req.srcs.iter().enumerate() {
                if *src == Some(tag) {
                    e.ready[i] = true;
                }
            }
        }
    }

    fn has_ready(&self) -> bool {
        self.entries.iter().any(Entry::ready)
    }

    fn idle_tick(&mut self, cycles: u64) {
        // An empty select only advances the per-cycle averages; nothing
        // compacts because nothing issues.
        self.stats.selects += cycles;
        self.stats.occupancy_sum += cycles * self.entries.len() as u64;
        self.stats.region_sum += cycles * self.entries.len() as u64;
    }

    fn select(&mut self, budget: &mut IssueBudget) -> Vec<Grant> {
        self.stats.selects += 1;
        self.stats.occupancy_sum += self.entries.len() as u64;
        self.stats.region_sum += self.entries.len() as u64;

        let mut grants = Vec::new();
        let mut keep = Vec::with_capacity(self.entries.len());
        for (rank, e) in self.entries.drain(..).enumerate() {
            if !budget.exhausted() && e.ready() && budget.try_take(e.req.fu) {
                self.stats.issued += 1;
                self.stats.tag_reads += 1;
                if rank >= self.flpi_floor {
                    self.stats.issued_low_priority += 1;
                }
                grants.push(Grant {
                    payload: e.req.payload,
                    seq: e.req.seq,
                    dst: e.req.dst,
                    fu: e.req.fu,
                    rank,
                    two_cycle: false,
                });
            } else {
                keep.push(e);
            }
        }
        // Compaction: survivors shift up to close the holes.
        self.entries = keep;
        grants
    }

    fn flush(&mut self) {
        self.entries.clear();
    }

    fn squash_younger(&mut self, seq: u64) {
        self.entries.retain(|e| e.req.seq <= seq);
    }

    fn stats(&self) -> IqStats {
        self.stats
    }

    fn clone_box(&self) -> Box<dyn IssueQueue> {
        Box::new(self.clone())
    }
}

impl WakeHorizon for ShiftQueue {
    fn wake_horizon(&self, _now: u64) -> Option<u64> {
        None // purely reactive: state changes only via wakeup/select/dispatch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::FuClass;

    fn cfg(cap: usize, iw: usize) -> IqConfig {
        IqConfig { capacity: cap, issue_width: iw, ..IqConfig::default() }
    }

    fn ready(seq: u64, fu: FuClass) -> DispatchReq {
        DispatchReq::new(seq, seq, Some(seq as Tag), [None, None], fu)
    }

    fn waiting(seq: u64, tag: Tag) -> DispatchReq {
        DispatchReq::new(seq, seq, Some(seq as Tag), [Some(tag), None], FuClass::IntAlu)
    }

    fn budget(iw: usize) -> IssueBudget {
        IssueBudget::new(iw, [iw, iw, iw, iw])
    }

    #[test]
    fn issues_strictly_oldest_first() {
        let mut q = ShiftQueue::new(&cfg(8, 2));
        for seq in 0..4 {
            q.dispatch(ready(seq, FuClass::IntAlu)).unwrap();
        }
        let g = q.select(&mut budget(2));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![0, 1]);
        let g = q.select(&mut budget(2));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn compaction_keeps_age_order_after_out_of_order_issue() {
        let mut q = ShiftQueue::new(&cfg(8, 4));
        q.dispatch(waiting(0, 99)).unwrap(); // oldest, blocked
        q.dispatch(ready(1, FuClass::IntAlu)).unwrap();
        q.dispatch(ready(2, FuClass::IntAlu)).unwrap();
        let g = q.select(&mut budget(4));
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(q.len(), 1);
        // Unblock the oldest; it is now at rank 0 after compaction.
        q.wakeup(99);
        let g = q.select(&mut budget(4));
        assert_eq!(g[0].seq, 0);
        assert_eq!(g[0].rank, 0);
    }

    #[test]
    fn respects_fu_constraints() {
        let mut q = ShiftQueue::new(&cfg(8, 4));
        q.dispatch(ready(0, FuClass::Fpu)).unwrap();
        q.dispatch(ready(1, FuClass::Fpu)).unwrap();
        q.dispatch(ready(2, FuClass::IntAlu)).unwrap();
        // Only one FPU free.
        let mut b = IssueBudget::new(4, [4, 0, 0, 1]);
        let g = q.select(&mut b);
        assert_eq!(g.iter().map(|g| g.seq).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn full_queue_rejects_dispatch() {
        let mut q = ShiftQueue::new(&cfg(2, 1));
        q.dispatch(ready(0, FuClass::IntAlu)).unwrap();
        q.dispatch(ready(1, FuClass::IntAlu)).unwrap();
        assert!(!q.has_space());
        assert_eq!(q.dispatch(ready(2, FuClass::IntAlu)), Err(IqFullError));
        assert_eq!(q.stats().dispatch_stalls, 1);
    }

    #[test]
    fn capacity_efficiency_is_one() {
        let mut q = ShiftQueue::new(&cfg(4, 1));
        q.dispatch(ready(0, FuClass::IntAlu)).unwrap();
        q.dispatch(ready(1, FuClass::IntAlu)).unwrap();
        q.select(&mut budget(1));
        q.select(&mut budget(1));
        assert!((q.stats().capacity_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flush_empties() {
        let mut q = ShiftQueue::new(&cfg(4, 1));
        q.dispatch(ready(0, FuClass::IntAlu)).unwrap();
        q.flush();
        assert!(q.is_empty());
        assert!(q.select(&mut budget(1)).is_empty());
    }
}
