//! The [`IssueQueue`] trait and queue construction.

use std::fmt;

use swque_trace::TraceHandle;

use crate::circ::CircQueue;
use crate::circ_pc::CircPcQueue;
use crate::controller::SwqueParams;
use crate::horizon::WakeHorizon;
use crate::random_queue::RandomQueue;
use crate::rearrange::RearrangingQueue;
use crate::shift::ShiftQueue;
use crate::stats::{IqStats, SwqueStats};
use crate::swque::Swque;
use crate::types::{DispatchReq, Grant, IqFullError, IqMode, IssueBudget, Tag};

/// Age-matrix bucket counts for the multi-age-matrix enhancement (paper
/// §4.9): buckets are prepared based on function units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketSpec {
    /// Buckets for integer instructions (iALU + iMULT/DIV).
    pub int: usize,
    /// Buckets for memory instructions.
    pub mem: usize,
    /// Buckets for FP instructions.
    pub fp: usize,
}

impl BucketSpec {
    /// Paper §4.9 medium model: 3 INT + 2 memory + 2 FP = 7 age matrices.
    pub fn medium() -> BucketSpec {
        BucketSpec { int: 3, mem: 2, fp: 2 }
    }

    /// Paper §4.9 large model: 9 age matrices, "prepared in a similar
    /// manner" for the scaled FU mix (4 iALU, 2 Ld/St, 3 FPU).
    pub fn large() -> BucketSpec {
        BucketSpec { int: 4, mem: 2, fp: 3 }
    }

    /// Total number of age matrices.
    pub fn total(&self) -> usize {
        self.int + self.mem + self.fp
    }
}

/// Parameters shared by every queue organization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IqConfig {
    /// Number of IQ entries (paper Table 2: 128 medium, 256 large).
    pub capacity: usize,
    /// Issue width (6 medium, 8 large).
    pub issue_width: usize,
    /// Fraction of the queue treated as the "lowest priority region" for the
    /// FLPI metric. The paper leaves the region size unspecified; 1/16 is
    /// used here (8 of 128 entries) — issues from the very deepest entries
    /// fire only when the whole queue is in use, which is exactly the
    /// capacity-demand signal the controller needs. Exposed for sensitivity
    /// studies.
    pub flpi_region_frac: f64,
    /// Bucket layout for multi-age-matrix variants.
    pub buckets: BucketSpec,
    /// SWQUE controller parameters (paper Table 3).
    pub swque: SwqueParams,
}

impl Default for IqConfig {
    /// The paper's medium (default) model.
    fn default() -> IqConfig {
        IqConfig {
            capacity: 128,
            issue_width: 6,
            flpi_region_frac: 0.0625,
            buckets: BucketSpec::medium(),
            swque: SwqueParams::default(),
        }
    }
}

impl IqConfig {
    /// First priority rank that counts as "low priority" for FLPI.
    pub fn flpi_rank_floor(&self) -> usize {
        let region = (self.capacity as f64 * self.flpi_region_frac).round() as usize;
        self.capacity.saturating_sub(region.max(1))
    }
}

/// Every issue-queue organization evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IqKind {
    /// Compacting shifting queue (SHIFT, DEC Alpha 21264 style).
    Shift,
    /// Conventional circular queue (CIRC / CIRC-CONV).
    Circ,
    /// Idealized circular queue with perfect priority under wrap-around
    /// (CIRC-PPRI, §4.4).
    CircPpri,
    /// Priority-correcting circular queue (CIRC-PC, §3.1).
    CircPc,
    /// Random queue without an age matrix (RAND).
    Rand,
    /// Random queue + single age matrix (AGE) — the baseline used by
    /// current processors.
    Age,
    /// AGE with multiple age matrices (AGE-multiAM, §4.9).
    AgeMulti,
    /// The paper's proposal: mode switching between CIRC-PC and AGE.
    Swque,
    /// SWQUE whose AGE mode uses multiple age matrices (SWQUE-multiAM).
    SwqueMulti,
    /// Extension: the rearranging random queue of Sakai et al. (related
    /// work, §5) — multiple oldest instructions protected via an old queue.
    Rearrange,
}

impl IqKind {
    /// All kinds, in taxonomy order (the paper's organizations followed by
    /// this repository's extension).
    pub const ALL: [IqKind; 10] = [
        IqKind::Shift,
        IqKind::Circ,
        IqKind::CircPpri,
        IqKind::CircPc,
        IqKind::Rand,
        IqKind::Age,
        IqKind::AgeMulti,
        IqKind::Swque,
        IqKind::SwqueMulti,
        IqKind::Rearrange,
    ];

    /// The paper's name for the organization.
    pub fn label(&self) -> &'static str {
        match self {
            IqKind::Shift => "SHIFT",
            IqKind::Circ => "CIRC",
            IqKind::CircPpri => "CIRC-PPRI",
            IqKind::CircPc => "CIRC-PC",
            IqKind::Rand => "RAND",
            IqKind::Age => "AGE",
            IqKind::AgeMulti => "AGE-multiAM",
            IqKind::Swque => "SWQUE",
            IqKind::SwqueMulti => "SWQUE-multiAM",
            IqKind::Rearrange => "REARRANGE",
        }
    }

    /// Parses a label as printed by [`IqKind::label`] (the paper's names,
    /// e.g. `"CIRC-PC"` or `"SWQUE-multiAM"`).
    pub fn from_label(label: &str) -> Option<IqKind> {
        IqKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// Builds a queue of this kind.
    pub fn build(&self, config: &IqConfig) -> Box<dyn IssueQueue> {
        match self {
            IqKind::Shift => Box::new(ShiftQueue::new(config)),
            IqKind::Circ => Box::new(CircQueue::new(config)),
            IqKind::CircPpri => Box::new(CircQueue::perfect_priority(config)),
            IqKind::CircPc => Box::new(CircPcQueue::new(config)),
            IqKind::Rand => Box::new(RandomQueue::rand(config)),
            IqKind::Age => Box::new(RandomQueue::age(config)),
            IqKind::AgeMulti => Box::new(RandomQueue::age_multi(config)),
            IqKind::Swque => Box::new(Swque::new(config, false)),
            IqKind::SwqueMulti => Box::new(Swque::new(config, true)),
            IqKind::Rearrange => Box::new(RearrangingQueue::new(config)),
        }
    }
}

impl fmt::Display for IqKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Behavioural interface of an issue queue, driven once per simulated cycle
/// by the core model:
///
/// 1. [`wakeup`](IssueQueue::wakeup) for every destination tag completing
///    this cycle (writeback phase),
/// 2. [`select`](IssueQueue::select) exactly once with the cycle's
///    [`IssueBudget`] (issue phase),
/// 3. [`dispatch`](IssueQueue::dispatch) for instructions entering the queue
///    (dispatch phase — after issue, so same-cycle dispatch-and-issue is
///    impossible, as in hardware).
///
/// Queues also participate in quiescence skipping (DESIGN.md §10): the core
/// consults [`has_ready`](IssueQueue::has_ready) when proving no instruction
/// can issue, replays skipped cycles in bulk via
/// [`idle_tick`](IssueQueue::idle_tick), and inherits the [`WakeHorizon`]
/// contract (default `None`: every organization here is purely reactive —
/// SWQUE's switch penalty is charged through the core's fetch stall, which
/// has its own horizon).
pub trait IssueQueue: fmt::Debug + WakeHorizon {
    /// The paper's name for this organization.
    fn name(&self) -> &'static str;

    /// Physical entry count.
    fn capacity(&self) -> usize;

    /// Valid (live) entries.
    fn len(&self) -> usize;

    /// True when the queue holds no instructions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if one more instruction can be dispatched *right now*. For
    /// circular queues this accounts for unusable holes, which is exactly
    /// their capacity inefficiency.
    fn has_space(&self) -> bool;

    /// Inserts an instruction.
    ///
    /// # Errors
    ///
    /// Returns [`IqFullError`] when no entry is allocatable (callers should
    /// gate on [`has_space`](IssueQueue::has_space)).
    fn dispatch(&mut self, req: DispatchReq) -> Result<(), IqFullError>;

    /// Broadcasts a completed destination tag to all entries.
    fn wakeup(&mut self, tag: Tag);

    /// Selects up to `budget` ready instructions in this organization's
    /// priority order, removing them from the queue. Must be called exactly
    /// once per simulated cycle (it also advances per-cycle bookkeeping).
    fn select(&mut self, budget: &mut IssueBudget) -> Vec<Grant>;

    /// True if at least one entry has all source operands ready. Must be a
    /// pure query (no bookkeeping).
    ///
    /// This is **necessary but not sufficient** for a same-cycle grant: a
    /// ready entry is guaranteed a grant within the organization's select
    /// latency (one cycle for every queue here except CIRC-PC's reverse
    /// plane, whose S_RV path takes two — the entry is latched as pending
    /// on the first select and granted on the next), not necessarily on
    /// the very next [`select`](IssueQueue::select). The sound direction
    /// is unconditional: `has_ready() == false` implies the next select
    /// grants nothing. Quiescence skipping (DESIGN.md §10) relies only on
    /// that sound direction; the bounded-latency direction is checked
    /// per-kind by the `swque-mc` model checker and the lockstep property
    /// test in `crates/core/tests`.
    fn has_ready(&self) -> bool;

    /// Replays `cycles` consecutive idle cycles in one call, advancing
    /// exactly the bookkeeping that `cycles` individual
    /// [`select`](IssueQueue::select) calls would have advanced.
    ///
    /// # Precondition
    ///
    /// [`has_ready`](IssueQueue::has_ready) is `false` and stays false for
    /// the whole window (the core guarantees this: no wakeups, dispatches,
    /// or squashes happen during a skip). Under that precondition the queue
    /// must end in *exactly* the state `cycles` empty selects would have
    /// produced — statistics included — so that skip-on and skip-off runs
    /// stay byte-identical.
    fn idle_tick(&mut self, cycles: u64);

    /// Empties the queue (pipeline flush).
    fn flush(&mut self);

    /// Removes every entry younger than `seq` (exclusive) — branch
    /// misprediction recovery. For circular queues this rolls the tail
    /// pointer back, reclaiming the squashed region.
    fn squash_younger(&mut self, seq: u64);

    /// Accumulated statistics.
    fn stats(&self) -> IqStats;

    /// Offered the current cycle plus retired-instruction and LLC-miss
    /// totals once per cycle; returns `true` when the queue wants a
    /// pipeline flush to reconfigure itself (only SWQUE ever does). The
    /// cycle stamps the trace events the decision emits.
    fn poll_mode_switch(&mut self, cycle: u64, retired_insts: u64, llc_misses: u64) -> bool {
        let _ = (cycle, retired_insts, llc_misses);
        false
    }

    /// Hands the queue a trace handle to emit observability events into
    /// (see `swque-trace`). Non-switching queues have nothing interval-
    /// shaped to report and ignore it.
    fn attach_trace(&mut self, trace: &TraceHandle) {
        let _ = trace;
    }

    /// Current operating mode (meaningful for SWQUE).
    fn mode(&self) -> IqMode {
        IqMode::Fixed
    }

    /// SWQUE-specific statistics, if this queue switches modes.
    fn swque_stats(&self) -> Option<SwqueStats> {
        None
    }

    /// A 64-bit FNV-1a digest of this queue's *entire* observable state —
    /// by contract exactly the [`fmt::Debug`] render, so two queues have
    /// equal digests if and only if their `Debug` renders are equal
    /// (`{:?}`, not `{:#?}`). Statistics counters are part of the render
    /// and therefore part of the digest; consumers that want to compare
    /// *architectural* state only (the `swque-mc` model checker's state
    /// dedup) mask the statistics fields out of the render before hashing
    /// — see DESIGN.md §12.
    ///
    /// Implementations must not override this with anything weaker: the
    /// digest ⇔ `Debug` equivalence is property-tested across every
    /// [`IqKind`].
    fn state_digest(&self) -> u64 {
        crate::digest::fnv1a64(format!("{self:?}").as_bytes())
    }

    /// Clones this queue behind a fresh box. This is the model checker's
    /// state-fork primitive: trait objects cannot derive [`Clone`], so
    /// every organization provides the boxed clone explicitly (and
    /// `Box<dyn IssueQueue>` implements `Clone` through it).
    fn clone_box(&self) -> Box<dyn IssueQueue>;
}

impl Clone for Box<dyn IssueQueue> {
    fn clone(&self) -> Box<dyn IssueQueue> {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_totals_match_paper() {
        assert_eq!(BucketSpec::medium().total(), 7);
        assert_eq!(BucketSpec::large().total(), 9);
    }

    #[test]
    fn flpi_rank_floor_is_last_sixteenth_by_default() {
        let c = IqConfig::default();
        assert_eq!(c.flpi_rank_floor(), 120);
        let tiny = IqConfig { capacity: 16, ..IqConfig::default() };
        assert_eq!(tiny.flpi_rank_floor(), 15);
    }

    #[test]
    fn every_kind_builds_and_reports_its_label() {
        let config = IqConfig { capacity: 16, issue_width: 2, ..IqConfig::default() };
        for kind in IqKind::ALL {
            let q = kind.build(&config);
            assert_eq!(q.name(), kind.label());
            assert_eq!(q.capacity(), 16);
            assert!(q.is_empty());
            assert!(q.has_space());
        }
    }
}
