//! Shared vocabulary types for issue queues.

use std::error::Error;
use std::fmt;

use swque_isa::FuClass;

/// A physical-register tag broadcast on the wakeup tag lines.
pub type Tag = u16;

/// A dispatch request: everything the IQ stores about one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchReq {
    /// Program-order sequence number (strictly increasing at dispatch);
    /// the ground truth for "older".
    pub seq: u64,
    /// Opaque handle the owning core uses to find the instruction again
    /// (e.g. a reorder-buffer index).
    pub payload: u64,
    /// Destination tag broadcast when the instruction issues/completes.
    pub dst: Option<Tag>,
    /// Source operand tags still being waited on; `None` = already ready.
    pub srcs: [Option<Tag>; 2],
    /// Function-unit class the instruction needs.
    pub fu: FuClass,
}

impl DispatchReq {
    /// Convenience constructor.
    pub fn new(
        seq: u64,
        payload: u64,
        dst: Option<Tag>,
        srcs: [Option<Tag>; 2],
        fu: FuClass,
    ) -> DispatchReq {
        DispatchReq { seq, payload, dst, srcs, fu }
    }
}

/// One granted (issued) instruction returned by [`select`].
///
/// [`select`]: crate::IssueQueue::select
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The dispatcher's opaque handle.
    pub payload: u64,
    /// Sequence number of the granted instruction.
    pub seq: u64,
    /// Destination tag (the core schedules its wakeup broadcast).
    pub dst: Option<Tag>,
    /// Function unit the grant consumed.
    pub fu: FuClass,
    /// Priority rank the scheme assigned this grant (0 = highest). Used for
    /// the FLPI metric: ranks in the lowest-priority quarter of the queue
    /// count as "low-priority issues".
    pub rank: usize,
    /// True if this instruction took the CIRC-PC two-cycle RV path.
    pub two_cycle: bool,
}

/// Per-cycle issue resources: total width plus free function units per
/// [`FuClass`] (indexed by [`FuClass::index`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueBudget {
    /// Remaining issue slots this cycle.
    pub width: usize,
    /// Remaining free function units per class.
    pub fu_free: [usize; 4],
}

impl IssueBudget {
    /// Creates a budget of `width` slots and the given per-class FU counts.
    pub fn new(width: usize, fu_free: [usize; 4]) -> IssueBudget {
        IssueBudget { width, fu_free }
    }

    /// True if an instruction of class `fu` could be granted right now.
    pub fn can_take(&self, fu: FuClass) -> bool {
        self.width > 0 && self.fu_free[fu.index()] > 0
    }

    /// Consumes one slot and one unit of `fu`; returns false (and consumes
    /// nothing) if unavailable.
    pub fn try_take(&mut self, fu: FuClass) -> bool {
        if !self.can_take(fu) {
            return false;
        }
        self.width -= 1;
        self.fu_free[fu.index()] -= 1;
        true
    }

    /// True when no further grant is possible this cycle.
    pub fn exhausted(&self) -> bool {
        self.width == 0 || self.fu_free.iter().all(|&f| f == 0)
    }
}

/// Error returned by [`dispatch`] when the queue cannot accept an entry.
///
/// [`dispatch`]: crate::IssueQueue::dispatch
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqFullError;

impl fmt::Display for IqFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "issue queue has no allocatable entry")
    }
}

impl Error for IqFullError {}

/// The configuration a queue is currently operating in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IqMode {
    /// A non-switching queue (everything except SWQUE).
    Fixed,
    /// SWQUE operating as CIRC-PC (priority-sensitive phases).
    CircPc,
    /// SWQUE operating as AGE (capacity-demanding phases).
    Age,
}

impl IqMode {
    /// The trace-event encoding of this mode, or `None` for a
    /// non-switching queue (traces only describe SWQUE's two
    /// configurations).
    pub fn trace(self) -> Option<swque_trace::Mode> {
        match self {
            IqMode::Fixed => None,
            IqMode::CircPc => Some(swque_trace::Mode::CircPc),
            IqMode::Age => Some(swque_trace::Mode::Age),
        }
    }
}

impl fmt::Display for IqMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IqMode::Fixed => write!(f, "fixed"),
            IqMode::CircPc => write!(f, "CIRC-PC"),
            IqMode::Age => write!(f, "AGE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_consumes_width_and_fu() {
        let mut b = IssueBudget::new(2, [1, 0, 1, 1]);
        assert!(b.try_take(FuClass::IntAlu));
        assert!(!b.try_take(FuClass::IntAlu), "only one iALU was free");
        assert!(!b.try_take(FuClass::IntMulDiv), "no mul/div units");
        assert!(b.try_take(FuClass::LdSt));
        assert!(!b.try_take(FuClass::Fpu), "width exhausted");
        assert!(b.exhausted());
    }

    #[test]
    fn exhausted_with_zero_width_or_all_fus_busy() {
        assert!(IssueBudget::new(0, [3, 1, 2, 2]).exhausted());
        assert!(IssueBudget::new(6, [0, 0, 0, 0]).exhausted());
        assert!(!IssueBudget::new(1, [0, 0, 1, 0]).exhausted());
    }
}
