//! SWQUE: the switching issue queue (paper §3.2).
//!
//! SWQUE owns both a [`CircPcQueue`] and an AGE-configured [`RandomQueue`]
//! and operates exactly one of them at a time, as decided by the
//! [`SwqueController`] from per-interval MPKI and FLPI measurements.
//!
//! # Contract with the core model
//!
//! The core calls [`poll_mode_switch`](crate::IssueQueue::poll_mode_switch)
//! once per cycle with its retired-instruction and LLC-miss totals. When it
//! returns `true`, the core **must** flush the pipeline (squash all
//! in-flight instructions, call [`flush`](crate::IssueQueue::flush), refetch)
//! and charge the switch penalty ([`SwqueParams::switch_penalty`] cycles) —
//! the reconfiguration itself happens inside `flush`.

use swque_trace::{TraceEvent, TraceHandle};

use crate::circ_pc::CircPcQueue;
use crate::controller::{IntervalMetrics, ModeDecision, SwqueController, SwqueParams};
use crate::horizon::WakeHorizon;
use crate::queue::{IqConfig, IssueQueue};
use crate::random_queue::RandomQueue;
use crate::stats::{IqStats, SwqueStats};
use crate::types::{DispatchReq, Grant, IqFullError, IqMode, IssueBudget, Tag};

/// Snapshot of the counters an interval's metrics are computed from.
#[derive(Debug, Clone, Copy, Default)]
struct IntervalStart {
    retired: u64,
    llc_misses: u64,
    issued: u64,
    issued_low_priority: u64,
}

/// The mode switching issue queue.
#[derive(Debug, Clone)]
pub struct Swque {
    circ_pc: CircPcQueue,
    age: RandomQueue,
    controller: SwqueController,
    params: SwqueParams,
    /// Mode to adopt at the next flush, when a switch has been requested
    /// but not yet performed.
    pending_mode: Option<IqMode>,
    next_interval_retired: u64,
    interval_start: IntervalStart,
    stats: SwqueStats,
    trace: TraceHandle,
}

impl Swque {
    /// Creates a SWQUE starting in CIRC-PC mode. `multi_am` selects whether
    /// the AGE configuration uses multiple age matrices (SWQUE-multiAM).
    pub fn new(config: &IqConfig, multi_am: bool) -> Swque {
        let age =
            if multi_am { RandomQueue::age_multi(config) } else { RandomQueue::age(config) };
        Swque {
            circ_pc: CircPcQueue::new(config),
            age,
            controller: SwqueController::new(config.swque),
            params: config.swque,
            pending_mode: None,
            next_interval_retired: config.swque.interval_insts,
            interval_start: IntervalStart::default(),
            stats: SwqueStats::default(),
            trace: TraceHandle::disabled(),
        }
    }

    /// The switch penalty the core must charge per reconfiguration.
    pub fn switch_penalty(&self) -> u64 {
        self.params.switch_penalty
    }

    /// Read-only access to the controller (for tests and instrumentation).
    pub fn controller(&self) -> &SwqueController {
        &self.controller
    }

    fn active_mut(&mut self) -> &mut dyn IssueQueue {
        // A switch decision may be pending; until the flush happens we keep
        // operating the old structure.
        let effective = self.effective_mode();
        match effective {
            IqMode::Age => &mut self.age,
            _ => &mut self.circ_pc,
        }
    }

    /// The structure currently holding instructions: the controller may have
    /// already decided to switch, but the reconfiguration waits for `flush`.
    fn effective_mode(&self) -> IqMode {
        match self.pending_mode {
            // Switch decided but not flushed yet: still the old mode.
            Some(target) => match target {
                IqMode::Age => IqMode::CircPc,
                _ => IqMode::Age,
            },
            None => self.controller.mode(),
        }
    }

    fn combined_issue_counters(&self) -> (u64, u64) {
        let c = self.circ_pc.stats();
        let a = self.age.stats();
        (c.issued + a.issued, c.issued_low_priority + a.issued_low_priority)
    }
}

impl IssueQueue for Swque {
    fn name(&self) -> &'static str {
        if self.age.num_matrices() > 1 {
            "SWQUE-multiAM"
        } else {
            "SWQUE"
        }
    }

    fn capacity(&self) -> usize {
        self.circ_pc.capacity()
    }

    fn len(&self) -> usize {
        // Route by the *effective* mode: in the poll-to-flush window the
        // controller already points at the switch target, but the
        // instructions still sit in the old structure (found by swque-mc:
        // the controller-mode routing read the empty target and reported
        // len 0 with entries still queued).
        match self.effective_mode() {
            IqMode::Age => self.age.len(),
            _ => self.circ_pc.len(),
        }
    }

    fn has_space(&self) -> bool {
        let mode = self.effective_mode();
        match mode {
            IqMode::Age => self.age.has_space(),
            _ => self.circ_pc.has_space(),
        }
    }

    fn dispatch(&mut self, req: DispatchReq) -> Result<(), IqFullError> {
        self.active_mut().dispatch(req)
    }

    fn wakeup(&mut self, tag: Tag) {
        self.active_mut().wakeup(tag);
    }

    fn select(&mut self, budget: &mut IssueBudget) -> Vec<Grant> {
        match self.effective_mode() {
            IqMode::Age => self.stats.cycles_age += 1,
            _ => self.stats.cycles_circ_pc += 1,
        }
        self.active_mut().select(budget)
    }

    fn has_ready(&self) -> bool {
        match self.effective_mode() {
            IqMode::Age => self.age.has_ready(),
            _ => self.circ_pc.has_ready(),
        }
    }

    fn idle_tick(&mut self, cycles: u64) {
        // Mode residency accrues exactly as `cycles` selects would have
        // charged it; the skip cannot straddle a mode switch because a
        // pending switch keeps poll_mode_switch returning true, which
        // flushes before the core ever reaches a quiescent cycle.
        match self.effective_mode() {
            IqMode::Age => self.stats.cycles_age += cycles,
            _ => self.stats.cycles_circ_pc += cycles,
        }
        self.active_mut().idle_tick(cycles);
    }

    fn squash_younger(&mut self, seq: u64) {
        self.circ_pc.squash_younger(seq);
        self.age.squash_younger(seq);
    }

    fn flush(&mut self) {
        self.circ_pc.flush();
        self.age.flush();
        if let Some(_target) = self.pending_mode.take() {
            // The controller already points at the target mode; emptying
            // both structures completes the reconfiguration.
            self.stats.switches += 1;
        }
    }

    fn stats(&self) -> IqStats {
        let c = self.circ_pc.stats();
        let a = self.age.stats();
        IqStats {
            dispatched: c.dispatched + a.dispatched,
            issued: c.issued + a.issued,
            issued_low_priority: c.issued_low_priority + a.issued_low_priority,
            wakeups: c.wakeups + a.wakeups,
            selects: c.selects + a.selects,
            occupancy_sum: c.occupancy_sum + a.occupancy_sum,
            region_sum: c.region_sum + a.region_sum,
            rv_issues: c.rv_issues + a.rv_issues,
            rv_discards: c.rv_discards + a.rv_discards,
            tag_reads: c.tag_reads + a.tag_reads,
            dispatch_stalls: c.dispatch_stalls + a.dispatch_stalls,
        }
    }

    fn clone_box(&self) -> Box<dyn IssueQueue> {
        Box::new(self.clone())
    }

    fn poll_mode_switch(&mut self, cycle: u64, retired_insts: u64, llc_misses: u64) -> bool {
        if self.pending_mode.is_some() {
            // Waiting for the core to perform the flush.
            return true;
        }
        if retired_insts < self.next_interval_retired {
            return false;
        }
        self.next_interval_retired = retired_insts + self.params.interval_insts;
        self.stats.intervals += 1;
        self.controller.maybe_periodic_reset(retired_insts);

        let interval_mode = self.effective_mode();
        let (issued, low) = self.combined_issue_counters();
        let d_retired = retired_insts.saturating_sub(self.interval_start.retired);
        let d_miss = llc_misses.saturating_sub(self.interval_start.llc_misses);
        let d_issued = issued.saturating_sub(self.interval_start.issued);
        let d_low = low.saturating_sub(self.interval_start.issued_low_priority);
        self.interval_start =
            IntervalStart { retired: retired_insts, llc_misses, issued, issued_low_priority: low };

        let metrics = IntervalMetrics {
            mpki: if d_retired == 0 { 0.0 } else { d_miss as f64 * 1000.0 / d_retired as f64 },
            flpi: if d_issued == 0 { 0.0 } else { d_low as f64 / d_issued as f64 },
        };
        let reductions_before = self.controller.threshold_reductions();
        let decision = self.controller.evaluate(metrics);
        self.stats.threshold_reductions +=
            self.controller.threshold_reductions() - reductions_before;
        let switched = matches!(decision, ModeDecision::SwitchTo(_));
        if self.trace.enabled() {
            self.trace.record(TraceEvent::Interval {
                cycle,
                retired: retired_insts,
                mpki: metrics.mpki,
                flpi: metrics.flpi,
                // swque-lint: allow(panic-in-lib) — SWQUE only ever operates in the two traceable modes (CIRC-PC, AGE)
                mode: interval_mode.trace().expect("SWQUE modes always trace"),
                instability: self.controller.instability(),
                switched,
            });
        }
        match decision {
            ModeDecision::Stay => false,
            ModeDecision::SwitchTo(target) => {
                self.pending_mode = Some(target);
                true
            }
        }
    }

    fn mode(&self) -> IqMode {
        self.effective_mode()
    }

    fn swque_stats(&self) -> Option<SwqueStats> {
        Some(self.stats)
    }

    fn attach_trace(&mut self, trace: &TraceHandle) {
        self.trace = trace.clone();
    }
}

impl WakeHorizon for Swque {
    fn wake_horizon(&self, _now: u64) -> Option<u64> {
        // Interval boundaries are retirement-counted, not cycle-counted,
        // and the switch penalty is charged through the core's fetch stall
        // (which has its own horizon) — nothing here is clocked by wall
        // cycles.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swque_isa::FuClass;

    fn cfg() -> IqConfig {
        IqConfig { capacity: 8, issue_width: 2, ..IqConfig::default() }
    }

    fn ready(seq: u64) -> DispatchReq {
        DispatchReq::new(seq, seq, Some(seq as Tag), [None, None], FuClass::IntAlu)
    }

    fn budget() -> IssueBudget {
        IssueBudget::new(2, [2, 2, 2, 2])
    }

    #[test]
    fn starts_in_circ_pc_mode() {
        let q = Swque::new(&cfg(), false);
        assert_eq!(q.mode(), IqMode::CircPc);
        assert_eq!(q.name(), "SWQUE");
        assert_eq!(Swque::new(&cfg(), true).name(), "SWQUE-multiAM");
    }

    #[test]
    fn no_switch_before_interval_boundary() {
        let mut q = Swque::new(&cfg(), false);
        assert!(!q.poll_mode_switch(0, 9_999, 500));
        assert_eq!(q.swque_stats().unwrap().intervals, 0);
    }

    #[test]
    fn high_mpki_interval_switches_to_age_after_flush() {
        let mut q = Swque::new(&cfg(), false);
        // 10k instructions with 100 LLC misses -> MPKI 10 (> 1.0).
        assert!(q.poll_mode_switch(0, 10_000, 100), "switch requested");
        assert_eq!(q.mode(), IqMode::CircPc, "still old mode until the flush");
        assert!(q.poll_mode_switch(0, 10_001, 100), "keeps requesting until flushed");
        q.flush();
        assert_eq!(q.mode(), IqMode::Age);
        assert_eq!(q.swque_stats().unwrap().switches, 1);
    }

    #[test]
    fn low_metrics_switch_back_to_circ_pc() {
        let mut q = Swque::new(&cfg(), false);
        assert!(q.poll_mode_switch(0, 10_000, 100));
        q.flush();
        assert_eq!(q.mode(), IqMode::Age);
        // Next interval: no new misses, no issues -> both metrics low.
        assert!(q.poll_mode_switch(0, 20_000, 100));
        q.flush();
        assert_eq!(q.mode(), IqMode::CircPc);
        assert_eq!(q.swque_stats().unwrap().switches, 2);
    }

    #[test]
    fn dispatch_and_issue_follow_the_active_mode() {
        let mut q = Swque::new(&cfg(), false);
        q.dispatch(ready(0)).unwrap();
        let g = q.select(&mut budget());
        assert_eq!(g.len(), 1);
        assert_eq!(q.swque_stats().unwrap().cycles_circ_pc, 1);

        // Switch to AGE and verify the other structure operates.
        q.poll_mode_switch(0, 10_000, 100);
        q.flush();
        q.dispatch(ready(1)).unwrap();
        let g = q.select(&mut budget());
        assert_eq!(g.len(), 1);
        assert_eq!(q.swque_stats().unwrap().cycles_age, 1);
    }

    #[test]
    fn flush_without_pending_switch_does_not_count_a_switch() {
        let mut q = Swque::new(&cfg(), false);
        q.dispatch(ready(0)).unwrap();
        q.flush();
        assert_eq!(q.swque_stats().unwrap().switches, 0);
        assert!(q.is_empty());
    }

    #[test]
    fn interval_metrics_use_deltas_not_totals() {
        let mut q = Swque::new(&cfg(), false);
        // Interval 1: misses = 100 -> AGE.
        q.poll_mode_switch(0, 10_000, 100);
        q.flush();
        // Interval 2: total misses unchanged (delta 0) -> CIRC-PC again.
        // If totals were used instead of deltas this would stay in AGE.
        assert!(q.poll_mode_switch(0, 20_000, 100));
        q.flush();
        assert_eq!(q.mode(), IqMode::CircPc);
    }

    #[test]
    fn aggregated_stats_cover_both_structures() {
        let mut q = Swque::new(&cfg(), false);
        q.dispatch(ready(0)).unwrap();
        q.select(&mut budget());
        q.poll_mode_switch(0, 10_000, 100);
        q.flush();
        q.dispatch(ready(1)).unwrap();
        q.select(&mut budget());
        let s = q.stats();
        assert_eq!(s.dispatched, 2);
        assert_eq!(s.issued, 2);
        assert_eq!(s.selects, 2);
    }
}
