//! Packed-`u64` bitset primitives backing the scheduling hot paths.
//!
//! Every per-cycle structure in this crate — the wakeup request vector,
//! the valid mask, CIRC-PC's reverse/pending planes, the age matrix —
//! is a set over at most a few hundred issue-queue slots. [`BitSet`]
//! packs such a set into `⌈capacity/64⌉` words so the per-cycle scans
//! become word operations: a 128-entry queue's ready scan is two
//! `u64` reads plus one `trailing_zeros` per *ready* instruction,
//! instead of 128 slot dereferences.
//!
//! The scan helpers ([`for_each_set`], [`for_each_set_in`]) take the
//! word slice rather than a `BitSet` so callers can combine planes on
//! the fly (`ready & !pending & !reverse`) without materializing the
//! intersection.

/// A fixed-capacity set of small integers, one bit per element, packed
/// into `u64` words.
///
/// # Example
///
/// ```
/// use swque_core::BitSet;
///
/// let mut s = BitSet::new(130);
/// s.set(3);
/// s.set(129);
/// assert!(s.test(3) && !s.test(4));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 129]);
/// assert_eq!(s.first_clear(), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

/// Number of `u64` words needed for `capacity` bits.
pub fn words_for(capacity: usize) -> usize {
    capacity.div_ceil(64)
}

impl BitSet {
    /// Creates an empty set over `capacity` elements.
    pub fn new(capacity: usize) -> BitSet {
        BitSet { words: vec![0; words_for(capacity)], capacity }
    }

    /// The number of elements the set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.capacity);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Inserts or removes `i` according to `v`.
    #[inline]
    pub fn assign(&mut self, i: usize, v: bool) {
        if v {
            self.set(i);
        } else {
            self.clear(i);
        }
    }

    /// Membership test.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Removes every element.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The backing words, least-significant bit = element 0. Bits at or
    /// above `capacity` are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Overwrites this set with `other` (equal capacities).
    pub fn copy_from(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.copy_from_slice(&other.words);
    }

    /// The smallest element present, if any.
    pub fn first_set(&self) -> Option<usize> {
        first_set(&self.words)
    }

    /// The smallest element *absent* (below `capacity`), if any — the
    /// free-list "first free slot" query as word ops.
    pub fn first_clear(&self) -> Option<usize> {
        for (w, &word) in self.words.iter().enumerate() {
            if word != u64::MAX {
                let i = w * 64 + word.trailing_ones() as usize;
                return (i < self.capacity).then_some(i);
            }
        }
        None
    }

    /// Elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        iter_set(&self.words)
    }
}

/// The lowest set bit's index in a word slice, if any.
#[inline]
pub fn first_set(words: &[u64]) -> Option<usize> {
    words
        .iter()
        .enumerate()
        .find(|(_, &w)| w != 0)
        .map(|(i, w)| i * 64 + w.trailing_zeros() as usize)
}

/// Iterates the set bits of a word slice in ascending index order.
pub fn iter_set(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        std::iter::successors(
            (w != 0).then_some(w),
            |&rest| {
                let rest = rest & (rest - 1);
                (rest != 0).then_some(rest)
            },
        )
        .map(move |rest| wi * 64 + rest.trailing_zeros() as usize)
    })
}

/// Calls `f` for each set bit of `words` in ascending order; `f` returns
/// `false` to stop the scan early (budget exhausted).
///
/// Each word is copied into a register before its bits are visited, so
/// `f` may clear bits it has already been handed (issuing an instruction
/// clears its ready bit) without invalidating the scan.
#[inline]
pub fn for_each_set(words: &[u64], mut f: impl FnMut(usize) -> bool) {
    for (wi, &w) in words.iter().enumerate() {
        let mut word = w;
        while word != 0 {
            let i = wi * 64 + word.trailing_zeros() as usize;
            word &= word - 1;
            if !f(i) {
                return;
            }
        }
    }
}

/// [`for_each_set`] restricted to indices in `lo..hi` (used for the
/// circular, from-the-head scan order of CIRC-PPRI).
#[inline]
pub fn for_each_set_in(words: &[u64], lo: usize, hi: usize, mut f: impl FnMut(usize) -> bool) {
    if lo >= hi {
        return;
    }
    let first_w = lo / 64;
    let last_w = (hi - 1) / 64;
    for wi in first_w..=last_w {
        let mut word = words[wi];
        if wi == first_w {
            word &= u64::MAX << (lo % 64);
        }
        if wi == last_w && hi % 64 != 0 {
            word &= u64::MAX >> (64 - hi % 64);
        }
        while word != 0 {
            let i = wi * 64 + word.trailing_zeros() as usize;
            word &= word - 1;
            if !f(i) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_test_roundtrip() {
        let mut s = BitSet::new(130);
        for i in [0, 63, 64, 127, 128, 129] {
            assert!(!s.test(i));
            s.set(i);
            assert!(s.test(i));
        }
        assert_eq!(s.count(), 6);
        s.clear(64);
        assert!(!s.test(64));
        assert_eq!(s.count(), 5);
        s.assign(64, true);
        s.assign(0, false);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![63, 64, 127, 128, 129]);
        s.clear_all();
        assert!(s.is_empty());
    }

    #[test]
    fn first_clear_skips_full_words() {
        let mut s = BitSet::new(130);
        for i in 0..70 {
            s.set(i);
        }
        assert_eq!(s.first_clear(), Some(70));
        for i in 70..130 {
            s.set(i);
        }
        assert_eq!(s.first_clear(), None, "all {} bits set", s.capacity());
        assert_eq!(s.first_set(), Some(0));
    }

    #[test]
    fn first_clear_respects_capacity() {
        // Capacity 65: word 1 has only one real bit; the rest must not
        // be reported as free slots.
        let mut s = BitSet::new(65);
        for i in 0..65 {
            s.set(i);
        }
        assert_eq!(s.first_clear(), None);
        s.clear(64);
        assert_eq!(s.first_clear(), Some(64));
    }

    #[test]
    fn scan_visits_ascending_and_stops() {
        let mut s = BitSet::new(200);
        for i in [5, 70, 71, 199] {
            s.set(i);
        }
        let mut seen = Vec::new();
        for_each_set(s.words(), |i| {
            seen.push(i);
            true
        });
        assert_eq!(seen, vec![5, 70, 71, 199]);
        let mut seen = Vec::new();
        for_each_set(s.words(), |i| {
            seen.push(i);
            seen.len() < 2
        });
        assert_eq!(seen, vec![5, 70], "early stop honored");
    }

    #[test]
    fn ranged_scan_masks_word_edges() {
        let mut s = BitSet::new(200);
        for i in [0, 5, 63, 64, 100, 128, 199] {
            s.set(i);
        }
        let collect = |lo, hi| {
            let mut v = Vec::new();
            for_each_set_in(s.words(), lo, hi, |i| {
                v.push(i);
                true
            });
            v
        };
        assert_eq!(collect(0, 200), vec![0, 5, 63, 64, 100, 128, 199]);
        assert_eq!(collect(5, 128), vec![5, 63, 64, 100]);
        assert_eq!(collect(64, 64), Vec::<usize>::new());
        assert_eq!(collect(63, 65), vec![63, 64]);
        assert_eq!(collect(129, 199), Vec::<usize>::new());
        assert_eq!(collect(199, 200), vec![199]);
    }

    #[test]
    fn iter_set_matches_for_each_set() {
        let words = [0x8000_0000_0000_0001u64, 0, 0b1010];
        let via_iter: Vec<usize> = iter_set(&words).collect();
        let mut via_scan = Vec::new();
        for_each_set(&words, |i| {
            via_scan.push(i);
            true
        });
        assert_eq!(via_iter, via_scan);
        assert_eq!(via_iter, vec![0, 63, 129, 131]);
        assert_eq!(first_set(&words), Some(0));
        assert_eq!(first_set(&[0, 0]), None);
    }
}
