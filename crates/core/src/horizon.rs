//! The wake-horizon contract: how subsystems prove the clock may jump.
//!
//! The cycle-level core model normally ticks every structure every cycle.
//! During long memory stalls that is pure overhead: the IQ holds no ready
//! entry, fetch is stalled, and the only future state change is a DRAM fill
//! hundreds of cycles away. The [`WakeHorizon`] trait is the contract that
//! makes skipping those cycles *provable* rather than heuristic: each
//! subsystem with timed internal state reports the earliest future cycle at
//! which it could act, and the core jumps directly to the minimum of those
//! horizons once it has established that no pipeline stage can act sooner
//! (the quiescence predicate; see DESIGN.md §10).
//!
//! # The obligation
//!
//! For a subsystem at cycle `now`, `wake_horizon(now)` must return
//! `Some(h)` with `now < h ≤ t` for every cycle `t > now` at which the
//! subsystem would change observable state **without any external
//! stimulus** (no calls into it other than the horizon query itself).
//! Under-promising (an `h` earlier than the first real wake-up) merely
//! shortens a skip; over-promising (an `h` past a real wake-up, or `None`
//! despite one) silently corrupts simulated timing. **Returning `None`
//! must never hide a timed wake-up** — it is a promise that the subsystem
//! is purely reactive from `now` on.
//!
//! The horizon is consulted only while the core is quiescent, so state
//! changes that are *responses* to pipeline activity (a cache access, a
//! wakeup broadcast, a dispatch) need no horizon: the activity itself
//! breaks quiescence and the core ticks normally.
//!
//! # Example
//!
//! A refill timer that becomes ready at a fixed future cycle reports that
//! cycle until it passes, then has no timed state left:
//!
//! ```
//! use swque_core::WakeHorizon;
//!
//! struct RefillTimer {
//!     ready_at: u64,
//! }
//!
//! impl WakeHorizon for RefillTimer {
//!     fn wake_horizon(&self, now: u64) -> Option<u64> {
//!         (self.ready_at > now).then_some(self.ready_at)
//!     }
//! }
//!
//! let t = RefillTimer { ready_at: 300 };
//! assert_eq!(t.wake_horizon(10), Some(300));
//! assert_eq!(t.wake_horizon(300), None, "already woke; nothing timed remains");
//! ```

/// A subsystem that can report its earliest future wake-up cycle.
///
/// See the module docs above for the exact obligation. Implementors in
/// this repository:
///
/// * `FuPool` (swque-cpu) — the earliest cycle a busy function unit frees.
/// * `MemoryHierarchy` (swque-mem) — the earliest in-flight MSHR or L2
///   fill completion still in the future.
/// * [`IssueQueue`](crate::IssueQueue) — defaults to `None`: every queue
///   organization here mutates state only in response to `wakeup` /
///   `select` / `dispatch` calls. SWQUE's switch-penalty window is charged
///   through the core's fetch stall, so it is covered by the core's own
///   fetch horizon, not the queue's.
pub trait WakeHorizon {
    /// Earliest cycle strictly after `now` at which this subsystem would
    /// change observable state without external stimulus, or `None` if it
    /// is purely reactive from `now` on.
    // swque-domain: now: CycleStamp, return: CycleStamp
    fn wake_horizon(&self, now: u64) -> Option<u64>;
}

/// Minimum of two optional horizons (`None` = no constraint).
pub fn min_horizon(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (h, None) | (None, h) => h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_horizon_combines() {
        assert_eq!(min_horizon(None, None), None);
        assert_eq!(min_horizon(Some(5), None), Some(5));
        assert_eq!(min_horizon(None, Some(7)), Some(7));
        assert_eq!(min_horizon(Some(9), Some(7)), Some(7));
    }
}
