//! Shared physical-entry storage used by the position-priority queues
//! (CIRC, CIRC-PC, RAND, AGE). Models the wakeup-logic CAM array: each slot
//! holds two source tags with ready flags and requests issue when both are
//! ready.

use swque_isa::FuClass;

use crate::types::{DispatchReq, Tag};

/// One wakeup-logic entry (an "entry slice" in the paper's Figure 5).
#[derive(Debug, Clone, Copy)]
pub struct Slot {
    /// Entry holds a live instruction.
    pub valid: bool,
    /// Program-order sequence number.
    pub seq: u64,
    /// Dispatcher handle.
    pub payload: u64,
    /// Destination tag.
    pub dst: Option<Tag>,
    /// Unresolved source tags (`None` = ready).
    pub srcs: [Option<Tag>; 2],
    /// Function-unit class.
    pub fu: FuClass,
    /// CIRC-PC reverse flag, set at dispatch when wrap-around is in effect.
    pub reverse: bool,
    /// CIRC-PC: selected by `S_RV`, waiting for the next-cycle DTM merge.
    pub pending_rv: bool,
    /// AGE-multiAM: which age-matrix bucket the entry was steered to.
    pub bucket: u8,
}

impl Slot {
    const EMPTY: Slot = Slot {
        valid: false,
        seq: 0,
        payload: 0,
        dst: None,
        srcs: [None, None],
        fu: FuClass::IntAlu,
        reverse: false,
        pending_rv: false,
        bucket: 0,
    };

    /// Both operands resolved: the entry raises an issue request.
    pub fn ready(&self) -> bool {
        self.valid && self.srcs[0].is_none() && self.srcs[1].is_none()
    }
}

/// A fixed array of [`Slot`]s with CAM-style wakeup.
#[derive(Debug, Clone)]
pub struct SlotArray {
    slots: Vec<Slot>,
    len: usize,
}

impl SlotArray {
    /// Creates `capacity` empty slots.
    pub fn new(capacity: usize) -> SlotArray {
        assert!(capacity > 0, "issue queue needs at least one entry");
        SlotArray { slots: vec![Slot::EMPTY; capacity], len: 0 }
    }

    /// Number of physical slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is valid.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable slot access.
    pub fn get(&self, pos: usize) -> &Slot {
        &self.slots[pos]
    }

    /// Mutable slot access.
    pub fn get_mut(&mut self, pos: usize) -> &mut Slot {
        &mut self.slots[pos]
    }

    /// Writes `req` into slot `pos`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already valid (the caller tracks free slots).
    pub fn insert(&mut self, pos: usize, req: DispatchReq, reverse: bool, bucket: u8) {
        let slot = &mut self.slots[pos];
        assert!(!slot.valid, "dispatch into an occupied slot {pos}");
        *slot = Slot {
            valid: true,
            seq: req.seq,
            payload: req.payload,
            dst: req.dst,
            srcs: req.srcs,
            fu: req.fu,
            reverse,
            pending_rv: false,
            bucket,
        };
        self.len += 1;
    }

    /// Invalidates slot `pos` (on issue or flush).
    ///
    /// # Panics
    ///
    /// Panics if the slot is not valid.
    pub fn remove(&mut self, pos: usize) {
        let slot = &mut self.slots[pos];
        assert!(slot.valid, "remove of an empty slot {pos}");
        slot.valid = false;
        slot.pending_rv = false;
        slot.reverse = false;
        self.len -= 1;
    }

    /// Broadcasts `tag` to every entry, resolving matching sources.
    pub fn wakeup(&mut self, tag: Tag) {
        for slot in &mut self.slots {
            if !slot.valid {
                continue;
            }
            for src in &mut slot.srcs {
                if *src == Some(tag) {
                    *src = None;
                }
            }
        }
    }

    /// Clears every slot.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = Slot::EMPTY;
        }
        self.len = 0;
    }

    /// Positions of all valid slots (ascending position order).
    pub fn valid_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots.iter().enumerate().filter(|(_, s)| s.valid).map(|(p, _)| p)
    }

    /// Lowest-index free slot, if any.
    pub fn first_free(&self) -> Option<usize> {
        self.slots.iter().position(|s| !s.valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(seq: u64, srcs: [Option<Tag>; 2]) -> DispatchReq {
        DispatchReq::new(seq, seq * 10, Some(seq as Tag), srcs, FuClass::IntAlu)
    }

    #[test]
    fn insert_wakeup_ready_cycle() {
        let mut a = SlotArray::new(4);
        a.insert(2, req(1, [Some(5), Some(6)]), false, 0);
        assert!(!a.get(2).ready());
        a.wakeup(5);
        assert!(!a.get(2).ready());
        a.wakeup(6);
        assert!(a.get(2).ready());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn wakeup_matches_both_operands_of_same_tag() {
        let mut a = SlotArray::new(2);
        a.insert(0, req(1, [Some(9), Some(9)]), false, 0);
        a.wakeup(9);
        assert!(a.get(0).ready(), "one broadcast resolves both matching sources");
    }

    #[test]
    fn remove_frees_slot_for_reuse() {
        let mut a = SlotArray::new(2);
        a.insert(0, req(1, [None, None]), false, 0);
        a.insert(1, req(2, [None, None]), false, 0);
        assert_eq!(a.first_free(), None);
        a.remove(0);
        assert_eq!(a.first_free(), Some(0));
        assert_eq!(a.len(), 1);
        a.insert(0, req(3, [None, None]), false, 0);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "occupied slot")]
    fn double_insert_panics() {
        let mut a = SlotArray::new(1);
        a.insert(0, req(1, [None, None]), false, 0);
        a.insert(0, req(2, [None, None]), false, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut a = SlotArray::new(3);
        a.insert(1, req(1, [None, None]), true, 2);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.valid_positions().count(), 0);
        assert!(!a.get(1).reverse);
    }

    #[test]
    fn valid_positions_in_position_order() {
        let mut a = SlotArray::new(4);
        a.insert(3, req(1, [None, None]), false, 0);
        a.insert(1, req(2, [None, None]), false, 0);
        let v: Vec<usize> = a.valid_positions().collect();
        assert_eq!(v, vec![1, 3]);
    }
}
