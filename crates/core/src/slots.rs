//! Shared physical-entry storage used by the position-priority queues
//! (CIRC, CIRC-PC, RAND, AGE). Models the wakeup-logic CAM array: each slot
//! holds two source tags with ready flags and requests issue when both are
//! ready.
//!
//! # Hot-path representation
//!
//! Alongside the per-slot records, the array maintains packed bit planes
//! ([`BitSet`], one bit per slot) that the per-cycle scans read instead of
//! dereferencing slots:
//!
//! * **valid** — slot holds a live instruction;
//! * **ready** — valid ∧ both sources resolved (the issue-request vector);
//! * **reverse** — the CIRC-PC wrap-around flag, mirrored from the slot;
//! * **pending_rv** — the CIRC-PC `S_RV`-selected flag, mirrored likewise.
//!
//! Wakeup is *tag-indexed*: at insert, each unresolved source registers its
//! slot position under its tag in a waiter table, and a broadcast touches
//! only the registered waiters instead of scanning every slot. Entries can
//! go stale (the slot issued or was squashed before the tag fired); a
//! broadcast validates each entry against the live slot before resolving,
//! which is exactly what the scalar CAM scan it replaces did implicitly.
//! The table is drained per broadcast, so an entry is visited at most once.
//!
//! The scalar reference implementation is retained as
//! `ScalarSlotArray` behind `#[cfg(test)]`; a differential property test at
//! the bottom of this file drives both through random op sequences and
//! asserts identical observable state after every step.

use swque_isa::FuClass;

use crate::bitset::BitSet;
use crate::types::{DispatchReq, Tag};

/// One wakeup-logic entry (an "entry slice" in the paper's Figure 5).
#[derive(Debug, Clone, Copy)]
pub struct Slot {
    /// Entry holds a live instruction.
    pub valid: bool,
    /// Program-order sequence number.
    pub seq: u64,
    /// Dispatcher handle.
    pub payload: u64,
    /// Destination tag.
    pub dst: Option<Tag>,
    /// Unresolved source tags (`None` = ready).
    pub srcs: [Option<Tag>; 2],
    /// Function-unit class.
    pub fu: FuClass,
    /// CIRC-PC reverse flag, set at dispatch when wrap-around is in effect.
    pub reverse: bool,
    /// CIRC-PC: selected by `S_RV`, waiting for the next-cycle DTM merge.
    pub pending_rv: bool,
    /// AGE-multiAM: which age-matrix bucket the entry was steered to.
    pub bucket: u8,
}

impl Slot {
    const EMPTY: Slot = Slot {
        valid: false,
        seq: 0,
        payload: 0,
        dst: None,
        srcs: [None, None],
        fu: FuClass::IntAlu,
        reverse: false,
        pending_rv: false,
        bucket: 0,
    };

    /// Both operands resolved: the entry raises an issue request.
    pub fn ready(&self) -> bool {
        self.valid && self.srcs[0].is_none() && self.srcs[1].is_none()
    }
}

/// A fixed array of [`Slot`]s with CAM-style wakeup.
#[derive(Debug, Clone)]
pub struct SlotArray {
    slots: Vec<Slot>,
    len: usize,
    valid: BitSet,
    ready: BitSet,
    reverse: BitSet,
    pending_rv: BitSet,
    /// Waiter table: `waiters[tag]` holds the positions whose entry
    /// registered a source on `tag`, possibly stale (validated at
    /// broadcast). Grown on demand to the highest tag seen.
    waiters: Vec<Vec<u32>>,
}

impl SlotArray {
    /// Creates `capacity` empty slots.
    pub fn new(capacity: usize) -> SlotArray {
        assert!(capacity > 0, "issue queue needs at least one entry"); // swque-lint: allow(panic-in-lib) — construction-time size contract shared by every queue config
        SlotArray {
            slots: vec![Slot::EMPTY; capacity],
            len: 0,
            valid: BitSet::new(capacity),
            ready: BitSet::new(capacity),
            reverse: BitSet::new(capacity),
            pending_rv: BitSet::new(capacity),
            waiters: Vec::new(),
        }
    }

    /// Number of physical slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is valid.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable slot access.
    pub fn get(&self, pos: usize) -> &Slot {
        &self.slots[pos]
    }

    /// Packed issue-request vector: bit `p` set iff slot `p` is valid with
    /// both sources resolved. The select scans read this instead of
    /// walking the slots.
    #[inline]
    pub fn ready_words(&self) -> &[u64] {
        self.ready.words()
    }

    /// True if any slot raises an issue request (the quiescence-skip query;
    /// a whole-plane emptiness test, no per-slot walk).
    #[inline]
    pub fn any_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    /// Packed CIRC-PC reverse flags.
    #[inline]
    pub fn reverse_words(&self) -> &[u64] {
        self.reverse.words()
    }

    /// Packed CIRC-PC pending-RV flags.
    #[inline]
    pub fn pending_rv_words(&self) -> &[u64] {
        self.pending_rv.words()
    }

    /// Sets or clears the CIRC-PC pending-RV flag of slot `pos`, keeping
    /// the packed plane in sync (the only slot field callers may mutate
    /// after insert).
    pub fn set_pending_rv(&mut self, pos: usize, v: bool) {
        self.slots[pos].pending_rv = v;
        self.pending_rv.assign(pos, v);
    }

    fn waiter_list(&mut self, tag: Tag) -> &mut Vec<u32> {
        let idx = tag as usize;
        if idx >= self.waiters.len() {
            self.waiters.resize_with(idx + 1, Vec::new);
        }
        &mut self.waiters[idx]
    }

    /// Writes `req` into slot `pos`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already valid (the caller tracks free slots).
    pub fn insert(&mut self, pos: usize, req: DispatchReq, reverse: bool, bucket: u8) {
        let slot = &mut self.slots[pos];
        assert!(!slot.valid, "dispatch into an occupied slot {pos}"); // swque-lint: allow(panic-in-lib) — documented `# Panics` contract; overwriting a live entry would corrupt the queue silently
        *slot = Slot {
            valid: true,
            seq: req.seq,
            payload: req.payload,
            dst: req.dst,
            srcs: req.srcs,
            fu: req.fu,
            reverse,
            pending_rv: false,
            bucket,
        };
        self.len += 1;
        self.valid.set(pos);
        self.ready.assign(pos, req.srcs[0].is_none() && req.srcs[1].is_none());
        self.reverse.assign(pos, reverse);
        self.pending_rv.clear(pos);
        for src in req.srcs.into_iter().flatten() {
            self.waiter_list(src).push(pos as u32);
        }
    }

    /// Invalidates slot `pos` (on issue or flush).
    ///
    /// # Panics
    ///
    /// Panics if the slot is not valid.
    pub fn remove(&mut self, pos: usize) {
        let slot = &mut self.slots[pos];
        assert!(slot.valid, "remove of an empty slot {pos}"); // swque-lint: allow(panic-in-lib) — documented `# Panics` contract; a double remove would desync the occupancy planes
        slot.valid = false;
        slot.pending_rv = false;
        slot.reverse = false;
        self.len -= 1;
        self.valid.clear(pos);
        self.ready.clear(pos);
        self.reverse.clear(pos);
        self.pending_rv.clear(pos);
        // Waiter entries, if any remain, go stale and are discarded at the
        // tag's next broadcast.
    }

    /// Broadcasts `tag` to every entry, resolving matching sources.
    ///
    /// Tag-indexed: only the slots that registered a source on `tag` are
    /// touched. Stale registrations (slot issued, squashed, or reused
    /// since) are validated against the live slot and skipped — a reused
    /// slot that happens to wait on `tag` again has its own registration
    /// in the drained list, so nothing is missed.
    pub fn wakeup(&mut self, tag: Tag) {
        let idx = tag as usize;
        if idx >= self.waiters.len() {
            return;
        }
        let list = std::mem::take(&mut self.waiters[idx]);
        for pos in list {
            let pos = pos as usize;
            let slot = &mut self.slots[pos];
            if !slot.valid {
                continue;
            }
            let mut resolved = false;
            for src in &mut slot.srcs {
                if *src == Some(tag) {
                    *src = None;
                    resolved = true;
                }
            }
            if resolved && slot.srcs[0].is_none() && slot.srcs[1].is_none() {
                self.ready.set(pos);
            }
        }
    }

    /// Clears every slot.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = Slot::EMPTY;
        }
        self.len = 0;
        self.valid.clear_all();
        self.ready.clear_all();
        self.reverse.clear_all();
        self.pending_rv.clear_all();
        for list in &mut self.waiters {
            list.clear();
        }
    }

    /// Positions of all valid slots (ascending position order).
    pub fn valid_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.valid.iter()
    }

    /// Lowest-index free slot, if any.
    pub fn first_free(&self) -> Option<usize> {
        self.valid.first_clear()
    }
}

/// The scalar reference implementation the bitset fast path replaced:
/// wakeup scans every slot, the free-slot and request queries walk the
/// array. Kept as the differential oracle — same public surface, no bit
/// planes, no waiter table.
#[cfg(test)]
#[derive(Debug, Clone)]
pub struct ScalarSlotArray {
    slots: Vec<Slot>,
    len: usize,
}

#[cfg(test)]
impl ScalarSlotArray {
    pub fn new(capacity: usize) -> ScalarSlotArray {
        assert!(capacity > 0);
        ScalarSlotArray { slots: vec![Slot::EMPTY; capacity], len: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn get(&self, pos: usize) -> &Slot {
        &self.slots[pos]
    }

    pub fn set_pending_rv(&mut self, pos: usize, v: bool) {
        self.slots[pos].pending_rv = v;
    }

    pub fn insert(&mut self, pos: usize, req: DispatchReq, reverse: bool, bucket: u8) {
        let slot = &mut self.slots[pos];
        assert!(!slot.valid, "dispatch into an occupied slot {pos}");
        *slot = Slot {
            valid: true,
            seq: req.seq,
            payload: req.payload,
            dst: req.dst,
            srcs: req.srcs,
            fu: req.fu,
            reverse,
            pending_rv: false,
            bucket,
        };
        self.len += 1;
    }

    pub fn remove(&mut self, pos: usize) {
        let slot = &mut self.slots[pos];
        assert!(slot.valid, "remove of an empty slot {pos}");
        slot.valid = false;
        slot.pending_rv = false;
        slot.reverse = false;
        self.len -= 1;
    }

    pub fn wakeup(&mut self, tag: Tag) {
        for slot in &mut self.slots {
            if !slot.valid {
                continue;
            }
            for src in &mut slot.srcs {
                if *src == Some(tag) {
                    *src = None;
                }
            }
        }
    }

    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = Slot::EMPTY;
        }
        self.len = 0;
    }

    pub fn first_free(&self) -> Option<usize> {
        self.slots.iter().position(|s| !s.valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset;
    use swque_rng::prop::check;

    fn req(seq: u64, srcs: [Option<Tag>; 2]) -> DispatchReq {
        DispatchReq::new(seq, seq * 10, Some(seq as Tag), srcs, FuClass::IntAlu)
    }

    #[test]
    fn insert_wakeup_ready_cycle() {
        let mut a = SlotArray::new(4);
        a.insert(2, req(1, [Some(5), Some(6)]), false, 0);
        assert!(!a.get(2).ready());
        a.wakeup(5);
        assert!(!a.get(2).ready());
        a.wakeup(6);
        assert!(a.get(2).ready());
        assert_eq!(a.len(), 1);
        assert_eq!(bitset::first_set(a.ready_words()), Some(2));
    }

    #[test]
    fn wakeup_matches_both_operands_of_same_tag() {
        let mut a = SlotArray::new(2);
        a.insert(0, req(1, [Some(9), Some(9)]), false, 0);
        a.wakeup(9);
        assert!(a.get(0).ready(), "one broadcast resolves both matching sources");
        assert_eq!(bitset::first_set(a.ready_words()), Some(0));
    }

    #[test]
    fn remove_frees_slot_for_reuse() {
        let mut a = SlotArray::new(2);
        a.insert(0, req(1, [None, None]), false, 0);
        a.insert(1, req(2, [None, None]), false, 0);
        assert_eq!(a.first_free(), None);
        a.remove(0);
        assert_eq!(a.first_free(), Some(0));
        assert_eq!(a.len(), 1);
        a.insert(0, req(3, [None, None]), false, 0);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "occupied slot")]
    fn double_insert_panics() {
        let mut a = SlotArray::new(1);
        a.insert(0, req(1, [None, None]), false, 0);
        a.insert(0, req(2, [None, None]), false, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut a = SlotArray::new(3);
        a.insert(1, req(1, [None, None]), true, 2);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.valid_positions().count(), 0);
        assert!(!a.get(1).reverse);
        assert_eq!(bitset::first_set(a.ready_words()), None);
        assert_eq!(bitset::first_set(a.reverse_words()), None);
    }

    #[test]
    fn valid_positions_in_position_order() {
        let mut a = SlotArray::new(4);
        a.insert(3, req(1, [None, None]), false, 0);
        a.insert(1, req(2, [None, None]), false, 0);
        let v: Vec<usize> = a.valid_positions().collect();
        assert_eq!(v, vec![1, 3]);
    }

    #[test]
    fn stale_waiter_entry_does_not_wake_a_reused_slot() {
        let mut a = SlotArray::new(2);
        // Slot 0 waits on tag 7, then issues before 7 fires.
        a.insert(0, req(1, [Some(7), None]), false, 0);
        a.wakeup(7); // resolves it
        a.remove(0);
        // Slot 0 reused, now waiting on tag 8. The stale tag-7 entry (if
        // any survived) must not mark it ready.
        a.insert(0, req(2, [Some(8), None]), false, 0);
        a.wakeup(7);
        assert!(!a.get(0).ready(), "tag 7 is not a source of the new occupant");
        a.wakeup(8);
        assert!(a.get(0).ready());
    }

    #[test]
    fn pending_rv_plane_tracks_flag() {
        let mut a = SlotArray::new(3);
        a.insert(1, req(1, [None, None]), true, 0);
        a.set_pending_rv(1, true);
        assert!(a.get(1).pending_rv);
        assert_eq!(bitset::first_set(a.pending_rv_words()), Some(1));
        a.set_pending_rv(1, false);
        assert_eq!(bitset::first_set(a.pending_rv_words()), None);
        assert_eq!(bitset::first_set(a.reverse_words()), Some(1));
    }

    /// Differential oracle: random insert/remove/wakeup/pending/clear
    /// sequences applied to the bitset array and the scalar array must
    /// agree on every observable after every operation — slots, length,
    /// first-free, and the derived bit planes.
    #[test]
    fn prop_bitset_matches_scalar_oracle() {
        check(192, |g| {
            let cap = g.gen_range(1usize..70);
            let mut fast = SlotArray::new(cap);
            let mut oracle = ScalarSlotArray::new(cap);
            let mut seq = 0u64;
            let ops = g.gen_range(1usize..120);
            for _ in 0..ops {
                match g.gen_range(0u32..100) {
                    // Insert into a random free slot.
                    0..=44 => {
                        let Some(_) = fast.first_free() else { continue };
                        let free: Vec<usize> =
                            (0..cap).filter(|&p| !oracle.get(p).valid).collect();
                        let pos = free[g.gen_range(0usize..free.len())];
                        let mk = |g: &mut swque_rng::prop::Gen| -> Option<Tag> {
                            g.bool().then(|| g.gen_range(0u64..12) as Tag)
                        };
                        let srcs = [mk(g), mk(g)];
                        let r = req(seq, srcs);
                        seq += 1;
                        let reverse = g.bool();
                        fast.insert(pos, r, reverse, 0);
                        oracle.insert(pos, r, reverse, 0);
                    }
                    // Remove a random valid slot.
                    45..=64 => {
                        let live: Vec<usize> =
                            (0..cap).filter(|&p| oracle.get(p).valid).collect();
                        if live.is_empty() {
                            continue;
                        }
                        let pos = live[g.gen_range(0usize..live.len())];
                        fast.remove(pos);
                        oracle.remove(pos);
                    }
                    // Broadcast a random tag.
                    65..=89 => {
                        let tag = g.gen_range(0u64..12) as Tag;
                        fast.wakeup(tag);
                        oracle.wakeup(tag);
                    }
                    // Toggle pending_rv on a valid slot.
                    90..=96 => {
                        let live: Vec<usize> =
                            (0..cap).filter(|&p| oracle.get(p).valid).collect();
                        if live.is_empty() {
                            continue;
                        }
                        let pos = live[g.gen_range(0usize..live.len())];
                        let v = g.bool();
                        fast.set_pending_rv(pos, v);
                        oracle.set_pending_rv(pos, v);
                    }
                    // Flush.
                    _ => {
                        fast.clear();
                        oracle.clear();
                    }
                }
                assert_eq!(fast.len(), oracle.len());
                assert_eq!(fast.first_free(), oracle.first_free());
                let valid_fast: Vec<usize> = fast.valid_positions().collect();
                let valid_oracle: Vec<usize> =
                    (0..cap).filter(|&p| oracle.get(p).valid).collect();
                assert_eq!(valid_fast, valid_oracle, "valid plane");
                for p in 0..cap {
                    let (f, o) = (fast.get(p), oracle.get(p));
                    assert_eq!(f.valid, o.valid, "valid[{p}]");
                    if f.valid {
                        assert_eq!(f.seq, o.seq, "seq[{p}]");
                        assert_eq!(f.srcs, o.srcs, "srcs[{p}]");
                        assert_eq!(f.reverse, o.reverse, "reverse[{p}]");
                        assert_eq!(f.pending_rv, o.pending_rv, "pending_rv[{p}]");
                    }
                    // Bit planes mirror the slot state exactly.
                    assert_eq!(
                        fast.ready_words()[p / 64] >> (p % 64) & 1 == 1,
                        o.ready(),
                        "ready plane[{p}]"
                    );
                    assert_eq!(
                        fast.reverse_words()[p / 64] >> (p % 64) & 1 == 1,
                        o.valid && o.reverse,
                        "reverse plane[{p}]"
                    );
                    assert_eq!(
                        fast.pending_rv_words()[p / 64] >> (p % 64) & 1 == 1,
                        o.valid && o.pending_rv,
                        "pending plane[{p}]"
                    );
                }
            }
        });
    }
}
