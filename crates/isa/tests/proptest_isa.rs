//! Property tests for the ISA substrate: sparse memory vs a byte-map
//! model, and emulator/shadow agreement on straight-line code.
//!
//! Ported from `proptest` to the in-tree harness (`swque_rng::prop`);
//! each property keeps at least its original case count (128).

use std::collections::HashMap;

use swque_rng::prop::check;

use swque_isa::{disassemble, parse_program, Assembler, Emulator, Opcode, Reg, SparseMemory};

/// SparseMemory agrees with a plain byte map under interleaved u8/u64
/// reads and writes at arbitrary (including straddling) addresses.
#[test]
fn sparse_memory_matches_byte_map() {
    check(128, |g| {
        let ops: Vec<(u64, u64, bool)> =
            g.vec(1..200, |g| (g.gen_range(0u64..10_000), g.u64(), g.bool()));
        let mut mem = SparseMemory::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (addr, value, word) in ops {
            if word {
                mem.write_u64(addr, value);
                for (i, b) in value.to_le_bytes().iter().enumerate() {
                    model.insert(addr + i as u64, *b);
                }
            } else {
                mem.write_u8(addr, value as u8);
                model.insert(addr, value as u8);
            }
            // Check a word read at the write address.
            let mut expect = [0u8; 8];
            for (i, e) in expect.iter_mut().enumerate() {
                *e = model.get(&(addr + i as u64)).copied().unwrap_or(0);
            }
            assert_eq!(mem.read_u64(addr), u64::from_le_bytes(expect));
        }
    });
}

/// The wrong-path shadow emulator computes exactly what the real
/// emulator computes when run over the same straight-line code — it
/// differs only in where results are stored.
#[test]
fn shadow_agrees_with_emulator_on_straight_line_code() {
    check(128, |g| {
        let vals: Vec<i32> = g.vec(4..20, |g| g.i32());
        let mut a = Assembler::new();
        for (i, v) in vals.iter().enumerate() {
            let dst = Reg(1 + (i % 8) as u8);
            let src = Reg(1 + ((i + 3) % 8) as u8);
            match i % 5 {
                0 => a.li(dst, *v as i64),
                1 => a.addi(dst, src, *v as i64),
                2 => a.xori(dst, src, *v as i64),
                3 => a.add(dst, src, Reg(1 + ((i + 5) % 8) as u8)),
                _ => a.slli(dst, src, (*v & 31) as i64),
            }
        }
        a.halt();
        let program = a.finish().unwrap();

        let mut emu = Emulator::new(&program);
        let reference = Emulator::new(&program);
        let mut shadow = reference.shadow(0);
        loop {
            let real = emu.step().unwrap();
            let shadowed = shadow.step(&reference).unwrap();
            assert_eq!(real.inst, shadowed.inst);
            assert_eq!(real.next_pc, shadowed.next_pc);
            if real.inst.op == Opcode::Halt {
                break;
            }
        }
    });
}

/// Disassemble → reparse is the identity on instructions, for random
/// straight-line + branchy programs.
#[test]
fn disassembly_round_trips() {
    check(128, |g| {
        let ops: Vec<(u8, i16)> = g.vec(1..60, |g| (g.u8(), g.i16()));
        let mut a = Assembler::new();
        let mut label = 0u32;
        for (op, imm) in &ops {
            let dst = Reg(1 + (op % 12));
            let src = Reg(1 + (op.wrapping_add(5) % 12));
            match op % 7 {
                0 => a.li(dst, *imm as i64),
                1 => a.add(dst, src, Reg(1)),
                2 => a.xori(dst, src, *imm as i64),
                3 => a.ld(dst, src, (*imm as i64) & !7),
                4 => a.st(dst, src, (*imm as i64) & !7),
                5 => {
                    let l = format!("p{label}");
                    label += 1;
                    a.beq(dst, src, &l);
                    a.nop();
                    a.label(&l);
                }
                _ => a.mul(dst, src, Reg(2)),
            }
        }
        a.halt();
        let p = a.finish().unwrap();
        let text = disassemble(&p);
        let q = parse_program(&text).expect("reparse");
        assert_eq!(p.insts, q.insts);
    });
}

/// Assembled programs are position-faithful: `here()` equals the
/// eventual instruction index of the next emitted instruction.
#[test]
fn assembler_here_is_consistent() {
    check(128, |g| {
        let n = g.gen_range(1usize..40);
        let mut a = Assembler::new();
        let mut marks = Vec::new();
        for i in 0..n {
            marks.push(a.here());
            a.addi(Reg(1), Reg(1), i as i64);
        }
        a.halt();
        let program = a.finish().unwrap();
        assert_eq!(program.len(), n + 1);
        for (i, m) in marks.iter().enumerate() {
            assert_eq!(*m, i as u64);
        }
    });
}
