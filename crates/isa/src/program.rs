//! Executable programs: instruction text plus initial data image.

use crate::inst::Inst;
use crate::mem::SparseMemory;

/// A complete program: instruction sequence and initial data segments.
///
/// Program counters are instruction indices (one instruction per pc). Data
/// segments are copied into memory before execution begins.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Instruction text, indexed by pc.
    pub insts: Vec<Inst>,
    /// `(base address, bytes)` initial-data segments.
    pub data: Vec<(u64, Vec<u8>)>,
    /// Entry pc.
    pub entry: u64,
}

impl Program {
    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Fetches the instruction at `pc`, if in range.
    pub fn fetch(&self, pc: u64) -> Option<&Inst> {
        self.insts.get(pc as usize)
    }

    /// Builds the initial memory image from the data segments.
    pub fn initial_memory(&self) -> SparseMemory {
        let mut mem = SparseMemory::new();
        for (base, bytes) in &self.data {
            mem.write_bytes(*base, bytes);
        }
        mem
    }

    /// Byte address used for cache/branch-predictor indexing of `pc`.
    ///
    /// Instructions are treated as 4 bytes wide so that cache-line and BTB
    /// index arithmetic behaves like a real machine.
    pub fn byte_addr(pc: u64) -> u64 {
        pc << 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Opcode;

    #[test]
    fn initial_memory_applies_segments() {
        let p = Program {
            insts: vec![Inst::bare(Opcode::Halt)],
            data: vec![(0x1000, vec![1, 2, 3]), (0x2000, 7u64.to_le_bytes().to_vec())],
            entry: 0,
        };
        let mem = p.initial_memory();
        assert_eq!(mem.read_u8(0x1001), 2);
        assert_eq!(mem.read_u64(0x2000), 7);
    }

    #[test]
    fn fetch_bounds() {
        let p = Program { insts: vec![Inst::bare(Opcode::Nop)], data: vec![], entry: 0 };
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(1).is_none());
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn byte_addr_is_word_scaled() {
        assert_eq!(Program::byte_addr(0), 0);
        assert_eq!(Program::byte_addr(3), 12);
    }
}
