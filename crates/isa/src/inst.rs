//! Instruction representation.

use std::fmt;

use crate::op::Opcode;
use crate::reg::ArchReg;

/// A decoded instruction.
///
/// All instructions use up to one destination and two source registers plus a
/// 64-bit immediate. The meaning of each field depends on the opcode group
/// (see [`Opcode`]):
///
/// * ALU reg-reg: `dst`, `src1`, `src2`.
/// * ALU immediate: `dst`, `src1`, `imm`.
/// * Load: `dst`, `src1` = base, `imm` = displacement.
/// * Store: `src1` = base, `src2` = value, `imm` = displacement.
/// * Conditional branch: `src1`, `src2` compared, `imm` = target pc.
/// * `J`/`Jal`: `imm` = target pc (`Jal` also writes `dst` = link).
/// * `Jr`: `src1` = target address register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The operation.
    pub op: Opcode,
    /// Destination register, if the instruction writes one.
    pub dst: Option<ArchReg>,
    /// First source register.
    pub src1: Option<ArchReg>,
    /// Second source register.
    pub src2: Option<ArchReg>,
    /// Immediate operand (displacement, branch target, or literal).
    pub imm: i64,
}

impl Inst {
    /// Creates an instruction with no operands (e.g. `Nop`, `Halt`).
    pub fn bare(op: Opcode) -> Inst {
        Inst { op, dst: None, src1: None, src2: None, imm: 0 }
    }

    /// Iterator over the (up to two) source registers, skipping `None` and
    /// the hardwired-zero register, which never creates a dependence.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        [self.src1, self.src2].into_iter().flatten().filter(|r| !r.is_zero())
    }

    /// The destination register, unless it is the hardwired zero (writes to
    /// `r0` are discarded and create no dependence).
    pub fn dest(&self) -> Option<ArchReg> {
        self.dst.filter(|r| !r.is_zero())
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        let mut sep = " ";
        if let Some(d) = self.dst {
            write!(f, "{sep}{d}")?;
            sep = ", ";
        }
        if let Some(s) = self.src1 {
            write!(f, "{sep}{s}")?;
            sep = ", ";
        }
        if let Some(s) = self.src2 {
            write!(f, "{sep}{s}")?;
            sep = ", ";
        }
        if self.imm != 0 || self.op.is_mem() || self.op.is_control() || self.op == Opcode::Li {
            write!(f, "{sep}{}", self.imm)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{ArchReg, Reg};

    #[test]
    fn zero_register_filtered_from_dependences() {
        let i = Inst {
            op: Opcode::Add,
            dst: Some(Reg::ZERO.into()),
            src1: Some(Reg::ZERO.into()),
            src2: Some(Reg(3).into()),
            imm: 0,
        };
        assert_eq!(i.dest(), None);
        let srcs: Vec<ArchReg> = i.sources().collect();
        assert_eq!(srcs, vec![ArchReg::int(3)]);
    }

    #[test]
    fn display_is_nonempty() {
        let i = Inst {
            op: Opcode::Ld,
            dst: Some(Reg(4).into()),
            src1: Some(Reg(1).into()),
            src2: None,
            imm: 16,
        };
        assert_eq!(i.to_string(), "ld r4, r1, 16");
        assert_eq!(Inst::bare(Opcode::Nop).to_string(), "nop");
    }
}
