//! Assembler DSL for building [`Program`]s in Rust code.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::inst::Inst;
use crate::op::Opcode;
use crate::program::Program;
use crate::reg::{ArchReg, FReg, Reg};

/// Errors produced by [`Assembler::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch or jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl Error for AsmError {}

/// Incremental builder for [`Program`]s.
///
/// Supports forward label references: branch targets are recorded as fixups
/// and resolved in [`finish`](Assembler::finish).
///
/// ```
/// use swque_isa::{Assembler, Reg};
/// let mut a = Assembler::new();
/// a.li(Reg(1), 3);
/// a.label("spin");
/// a.addi(Reg(1), Reg(1), -1);
/// a.bne(Reg(1), Reg::ZERO, "spin");
/// a.halt();
/// let program = a.finish().unwrap();
/// assert_eq!(program.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    insts: Vec<Inst>,
    labels: HashMap<String, u64>,
    fixups: Vec<(usize, String)>,
    data: Vec<(u64, Vec<u8>)>,
    duplicate: Option<String>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Current pc (index of the next instruction to be emitted).
    pub fn here(&self) -> u64 {
        self.insts.len() as u64
    }

    /// Defines `name` at the current pc.
    pub fn label(&mut self, name: &str) {
        if self.labels.insert(name.to_string(), self.here()).is_some() && self.duplicate.is_none()
        {
            self.duplicate = Some(name.to_string());
        }
    }

    /// Adds an initial-data segment of raw bytes at `base`.
    pub fn data_bytes(&mut self, base: u64, bytes: &[u8]) {
        self.data.push((base, bytes.to_vec()));
    }

    /// Adds an initial-data segment of little-endian `u64` words at `base`.
    pub fn data_u64s(&mut self, base: u64, words: &[u64]) {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.data.push((base, bytes));
    }

    /// Adds an initial-data segment of `f64` values at `base`.
    pub fn data_f64s(&mut self, base: u64, values: &[f64]) {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.data.push((base, bytes));
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    fn emit_branch(&mut self, op: Opcode, src1: Option<ArchReg>, src2: Option<ArchReg>, dst: Option<ArchReg>, target: &str) {
        let at = self.insts.len();
        self.insts.push(Inst { op, dst, src1, src2, imm: 0 });
        self.fixups.push((at, target.to_string()));
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] if a fixup target was never
    /// defined and [`AsmError::DuplicateLabel`] if a label was defined twice.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        if let Some(name) = self.duplicate {
            return Err(AsmError::DuplicateLabel(name));
        }
        for (at, name) in &self.fixups {
            let target =
                *self.labels.get(name).ok_or_else(|| AsmError::UndefinedLabel(name.clone()))?;
            self.insts[*at].imm = target as i64;
        }
        Ok(Program { insts: self.insts, data: self.data, entry: 0 })
    }

    // ---- integer reg-reg ----

    /// `dst = a + b`
    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Add, dst, a, b);
    }
    /// `dst = a - b`
    pub fn sub(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Sub, dst, a, b);
    }
    /// `dst = a & b`
    pub fn and(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::And, dst, a, b);
    }
    /// `dst = a | b`
    pub fn or(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Or, dst, a, b);
    }
    /// `dst = a ^ b`
    pub fn xor(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Xor, dst, a, b);
    }
    /// `dst = a << b`
    pub fn sll(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Sll, dst, a, b);
    }
    /// `dst = a >> b` (logical)
    pub fn srl(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Srl, dst, a, b);
    }
    /// `dst = a >> b` (arithmetic)
    pub fn sra(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Sra, dst, a, b);
    }
    /// `dst = (a as i64) < (b as i64)`
    pub fn slt(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Slt, dst, a, b);
    }
    /// `dst = a < b` (unsigned)
    pub fn sltu(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Sltu, dst, a, b);
    }
    /// `dst = a * b`
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Mul, dst, a, b);
    }
    /// `dst = a / b` (signed; division by zero yields 0)
    pub fn div(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Div, dst, a, b);
    }
    /// `dst = a % b` (signed; modulo by zero yields 0)
    pub fn rem(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Rem, dst, a, b);
    }

    // ---- integer immediates ----

    /// `dst = a + imm`
    pub fn addi(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::AddI, dst, a, imm);
    }
    /// `dst = a & imm`
    pub fn andi(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::AndI, dst, a, imm);
    }
    /// `dst = a | imm`
    pub fn ori(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::OrI, dst, a, imm);
    }
    /// `dst = a ^ imm`
    pub fn xori(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::XorI, dst, a, imm);
    }
    /// `dst = a << imm`
    pub fn slli(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::SllI, dst, a, imm);
    }
    /// `dst = a >> imm` (logical)
    pub fn srli(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::SrlI, dst, a, imm);
    }
    /// `dst = a >> imm` (arithmetic)
    pub fn srai(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::SraI, dst, a, imm);
    }
    /// `dst = (a as i64) < imm`
    pub fn slti(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::SltI, dst, a, imm);
    }
    /// `dst = imm`
    pub fn li(&mut self, dst: Reg, imm: i64) {
        self.emit(Inst { op: Opcode::Li, dst: Some(dst.into()), src1: None, src2: None, imm });
    }
    /// `dst = a` (alias for `addi dst, a, 0`)
    pub fn mv(&mut self, dst: Reg, a: Reg) {
        self.addi(dst, a, 0);
    }

    // ---- memory ----

    /// `dst = mem[base + disp]`
    pub fn ld(&mut self, dst: Reg, base: Reg, disp: i64) {
        self.emit(Inst {
            op: Opcode::Ld,
            dst: Some(dst.into()),
            src1: Some(base.into()),
            src2: None,
            imm: disp,
        });
    }
    /// `mem[base + disp] = value`
    pub fn st(&mut self, value: Reg, base: Reg, disp: i64) {
        self.emit(Inst {
            op: Opcode::St,
            dst: None,
            src1: Some(base.into()),
            src2: Some(value.into()),
            imm: disp,
        });
    }
    /// `fdst = mem[base + disp]`
    pub fn fld(&mut self, dst: FReg, base: Reg, disp: i64) {
        self.emit(Inst {
            op: Opcode::FLd,
            dst: Some(dst.into()),
            src1: Some(base.into()),
            src2: None,
            imm: disp,
        });
    }
    /// `mem[base + disp] = fvalue`
    pub fn fst(&mut self, value: FReg, base: Reg, disp: i64) {
        self.emit(Inst {
            op: Opcode::FSt,
            dst: None,
            src1: Some(base.into()),
            src2: Some(value.into()),
            imm: disp,
        });
    }

    // ---- floating point ----

    /// `dst = a + b`
    pub fn fadd(&mut self, dst: FReg, a: FReg, b: FReg) {
        self.fff(Opcode::FAdd, dst, a, b);
    }
    /// `dst = a - b`
    pub fn fsub(&mut self, dst: FReg, a: FReg, b: FReg) {
        self.fff(Opcode::FSub, dst, a, b);
    }
    /// `dst = a * b`
    pub fn fmul(&mut self, dst: FReg, a: FReg, b: FReg) {
        self.fff(Opcode::FMul, dst, a, b);
    }
    /// `dst = a / b`
    pub fn fdiv(&mut self, dst: FReg, a: FReg, b: FReg) {
        self.fff(Opcode::FDiv, dst, a, b);
    }
    /// `dst = min(a, b)`
    pub fn fmin(&mut self, dst: FReg, a: FReg, b: FReg) {
        self.fff(Opcode::FMin, dst, a, b);
    }
    /// `dst = max(a, b)`
    pub fn fmax(&mut self, dst: FReg, a: FReg, b: FReg) {
        self.fff(Opcode::FMax, dst, a, b);
    }
    /// `dst = sqrt(a)`
    pub fn fsqrt(&mut self, dst: FReg, a: FReg) {
        self.emit(Inst {
            op: Opcode::FSqrt,
            dst: Some(dst.into()),
            src1: Some(a.into()),
            src2: None,
            imm: 0,
        });
    }
    /// `dst = -a`
    pub fn fneg(&mut self, dst: FReg, a: FReg) {
        self.emit(Inst {
            op: Opcode::FNeg,
            dst: Some(dst.into()),
            src1: Some(a.into()),
            src2: None,
            imm: 0,
        });
    }
    /// `fdst = a as f64` (int → fp convert)
    pub fn icvtf(&mut self, dst: FReg, a: Reg) {
        self.emit(Inst {
            op: Opcode::ICvtF,
            dst: Some(dst.into()),
            src1: Some(a.into()),
            src2: None,
            imm: 0,
        });
    }
    /// `dst = a as i64` (fp → int convert)
    pub fn fcvti(&mut self, dst: Reg, a: FReg) {
        self.emit(Inst {
            op: Opcode::FCvtI,
            dst: Some(dst.into()),
            src1: Some(a.into()),
            src2: None,
            imm: 0,
        });
    }
    /// `dst = (a < b) as u64` into an integer register
    pub fn fcmplt(&mut self, dst: Reg, a: FReg, b: FReg) {
        self.emit(Inst {
            op: Opcode::FCmpLt,
            dst: Some(dst.into()),
            src1: Some(a.into()),
            src2: Some(b.into()),
            imm: 0,
        });
    }

    // ---- control flow ----

    /// Branch to `target` if `a == b`.
    pub fn beq(&mut self, a: Reg, b: Reg, target: &str) {
        self.emit_branch(Opcode::Beq, Some(a.into()), Some(b.into()), None, target);
    }
    /// Branch to `target` if `a != b`.
    pub fn bne(&mut self, a: Reg, b: Reg, target: &str) {
        self.emit_branch(Opcode::Bne, Some(a.into()), Some(b.into()), None, target);
    }
    /// Branch to `target` if `a < b` (signed).
    pub fn blt(&mut self, a: Reg, b: Reg, target: &str) {
        self.emit_branch(Opcode::Blt, Some(a.into()), Some(b.into()), None, target);
    }
    /// Branch to `target` if `a >= b` (signed).
    pub fn bge(&mut self, a: Reg, b: Reg, target: &str) {
        self.emit_branch(Opcode::Bge, Some(a.into()), Some(b.into()), None, target);
    }
    /// Unconditional jump to `target`.
    pub fn j(&mut self, target: &str) {
        self.emit_branch(Opcode::J, None, None, None, target);
    }
    /// Call: `link = pc + 1; goto target`.
    pub fn jal(&mut self, link: Reg, target: &str) {
        self.emit_branch(Opcode::Jal, None, None, Some(link.into()), target);
    }
    /// Indirect jump to the address in `target` (used for returns).
    pub fn jr(&mut self, target: Reg) {
        self.emit(Inst {
            op: Opcode::Jr,
            dst: None,
            src1: Some(target.into()),
            src2: None,
            imm: 0,
        });
    }
    /// No-op.
    pub fn nop(&mut self) {
        self.emit(Inst::bare(Opcode::Nop));
    }
    /// Stop the program.
    pub fn halt(&mut self) {
        self.emit(Inst::bare(Opcode::Halt));
    }

    fn rrr(&mut self, op: Opcode, dst: Reg, a: Reg, b: Reg) {
        self.emit(Inst {
            op,
            dst: Some(dst.into()),
            src1: Some(a.into()),
            src2: Some(b.into()),
            imm: 0,
        });
    }

    fn rri(&mut self, op: Opcode, dst: Reg, a: Reg, imm: i64) {
        self.emit(Inst { op, dst: Some(dst.into()), src1: Some(a.into()), src2: None, imm });
    }

    fn fff(&mut self, op: Opcode, dst: FReg, a: FReg, b: FReg) {
        self.emit(Inst {
            op,
            dst: Some(dst.into()),
            src1: Some(a.into()),
            src2: Some(b.into()),
            imm: 0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new();
        a.j("end"); // forward reference
        a.label("mid");
        a.nop();
        a.label("end");
        a.bne(Reg(1), Reg(2), "mid"); // backward reference
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(p.insts[0].imm, 2, "j target = pc of `end`");
        assert_eq!(p.insts[2].imm, 1, "bne target = pc of `mid`");
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Assembler::new();
        a.j("nowhere");
        assert_eq!(a.finish().unwrap_err(), AsmError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Assembler::new();
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert_eq!(a.finish().unwrap_err(), AsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn data_segments_encoded_little_endian() {
        let mut a = Assembler::new();
        a.data_u64s(0x100, &[0x01020304]);
        a.data_f64s(0x200, &[1.5]);
        a.halt();
        let p = a.finish().unwrap();
        let mem = p.initial_memory();
        assert_eq!(mem.read_u64(0x100), 0x01020304);
        assert_eq!(mem.read_f64(0x200), 1.5);
    }

    #[test]
    fn here_tracks_emission() {
        let mut a = Assembler::new();
        assert_eq!(a.here(), 0);
        a.nop();
        a.nop();
        assert_eq!(a.here(), 2);
    }
}
