//! Disassembler: turn a [`Program`] back into assembly text that
//! [`parse_program`](crate::parse_program) accepts — the inverse of the
//! text assembler, used to save generated kernels and to debug them.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::op::Opcode;
use crate::program::Program;

/// Renders `program` as parseable assembly text.
///
/// Branch/jump targets become labels `L<pc>`; data segments become `.data`
/// directives (byte-padded to whole words). The output round-trips:
/// parsing it yields a program with identical instructions and an
/// equivalent initial memory image.
///
/// # Example
///
/// ```
/// use swque_isa::{disassemble, parse_program, Assembler, Reg};
///
/// let mut a = Assembler::new();
/// a.li(Reg(1), 42);
/// a.halt();
/// let program = a.finish()?;
/// let text = disassemble(&program);
/// let reparsed = parse_program(&text)?;
/// assert_eq!(program.insts, reparsed.insts);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn disassemble(program: &Program) -> String {
    // Collect every control-flow target so it gets a label.
    let mut targets: BTreeSet<u64> = BTreeSet::new();
    for inst in &program.insts {
        match inst.op {
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge | Opcode::J | Opcode::Jal => {
                targets.insert(inst.imm as u64);
            }
            _ => {}
        }
    }

    let mut out = String::new();
    for (base, bytes) in &program.data {
        // Pad to whole 8-byte words (the directive is word-granular).
        let mut words = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            words.push(u64::from_le_bytes(w));
        }
        let _ = write!(out, ".data {:#x} u64", base);
        for w in words {
            let _ = write!(out, " {w:#x}");
        }
        out.push('\n');
    }

    for (pc, inst) in program.insts.iter().enumerate() {
        if targets.contains(&(pc as u64)) {
            let _ = writeln!(out, "L{pc}:");
        }
        // A missing operand slot disassembles as `?` — a readable artifact
        // beats aborting a debugging aid.
        let r = |o: Option<crate::reg::ArchReg>| match o {
            Some(reg) => reg.to_string(),
            None => "?".to_string(),
        };
        let line = match inst.op {
            // Branches and jumps print label targets.
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge => format!(
                "{} {}, {}, L{}",
                inst.op,
                r(inst.src1),
                r(inst.src2),
                inst.imm
            ),
            Opcode::J => format!("j L{}", inst.imm),
            Opcode::Jal => format!("jal {}, L{}", r(inst.dst), inst.imm),
            Opcode::Jr => format!("jr {}", r(inst.src1)),
            // Loads: dst, base, disp.
            Opcode::Ld | Opcode::FLd => {
                format!("{} {}, {}, {}", inst.op, r(inst.dst), r(inst.src1), inst.imm)
            }
            // Stores: value, base, disp (the builder's operand order).
            Opcode::St | Opcode::FSt => {
                format!("{} {}, {}, {}", inst.op, r(inst.src2), r(inst.src1), inst.imm)
            }
            Opcode::Li => format!("li {}, {}", r(inst.dst), inst.imm),
            Opcode::Nop | Opcode::Halt => inst.op.to_string(),
            // Immediate ALU forms.
            Opcode::AddI | Opcode::AndI | Opcode::OrI | Opcode::XorI | Opcode::SllI
            | Opcode::SrlI | Opcode::SraI | Opcode::SltI => {
                format!("{} {}, {}, {}", inst.op, r(inst.dst), r(inst.src1), inst.imm)
            }
            // Two-operand register forms.
            Opcode::FSqrt | Opcode::FNeg | Opcode::ICvtF | Opcode::FCvtI => {
                format!("{} {}, {}", inst.op, r(inst.dst), r(inst.src1))
            }
            // Three-operand register forms.
            _ => format!(
                "{} {}, {}, {}",
                inst.op,
                r(inst.dst),
                r(inst.src1),
                r(inst.src2)
            ),
        };
        let _ = writeln!(out, "    {line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::parse::parse_program;
    use crate::reg::{FReg, Reg};

    fn round_trip(program: &Program) -> Program {
        let text = disassemble(program);
        parse_program(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"))
    }

    #[test]
    fn loop_round_trips_exactly() {
        let mut a = Assembler::new();
        a.li(Reg(1), 100);
        a.li(Reg(2), 0);
        a.label("loop");
        a.add(Reg(2), Reg(2), Reg(1));
        a.addi(Reg(1), Reg(1), -1);
        a.bne(Reg(1), Reg::ZERO, "loop");
        a.halt();
        let p = a.finish().unwrap();
        let q = round_trip(&p);
        assert_eq!(p.insts, q.insts);
    }

    #[test]
    fn memory_and_fp_forms_round_trip() {
        let mut a = Assembler::new();
        a.data_u64s(0x100, &[1, 2, 3]);
        a.li(Reg(1), 0x100);
        a.ld(Reg(2), Reg(1), 8);
        a.st(Reg(2), Reg(1), 16);
        a.fld(FReg(1), Reg(1), 0);
        a.fmul(FReg(2), FReg(1), FReg(1));
        a.fsqrt(FReg(3), FReg(2));
        a.fcvti(Reg(3), FReg(3));
        a.fst(FReg(2), Reg(1), 24);
        a.jal(Reg(31), "func");
        a.halt();
        a.label("func");
        a.jr(Reg(31));
        let p = a.finish().unwrap();
        let q = round_trip(&p);
        assert_eq!(p.insts, q.insts);
        assert_eq!(p.initial_memory().read_u64(0x108), q.initial_memory().read_u64(0x108));
    }

    #[test]
    fn unaligned_data_padded_but_equivalent() {
        let mut a = Assembler::new();
        a.data_bytes(0x40, &[1, 2, 3, 4, 5]); // 5 bytes: padded to one word
        a.halt();
        let p = a.finish().unwrap();
        let q = round_trip(&p);
        let (pm, qm) = (p.initial_memory(), q.initial_memory());
        for off in 0..8 {
            assert_eq!(pm.read_u8(0x40 + off), qm.read_u8(0x40 + off));
        }
    }

    #[test]
    fn generated_suite_kernel_round_trips() {
        // A real generator-produced program with shuffled layout, many
        // labels and large data segments survives the round trip.
        use crate::emu::Emulator;
        let mut a = Assembler::new();
        a.data_u64s(0x1000, &(0..256u64).collect::<Vec<_>>());
        a.li(Reg(1), 50);
        a.label("outer");
        for i in 0..10 {
            a.xori(Reg(2 + i % 6), Reg(1), i as i64);
        }
        a.andi(Reg(9), Reg(1), 1);
        a.beq(Reg(9), Reg::ZERO, "skip");
        a.addi(Reg(10), Reg(10), 1);
        a.label("skip");
        a.addi(Reg(1), Reg(1), -1);
        a.bne(Reg(1), Reg::ZERO, "outer");
        a.halt();
        let p = a.finish().unwrap();
        let q = round_trip(&p);
        assert_eq!(p.insts, q.insts);

        let mut e1 = Emulator::new(&p);
        let mut e2 = Emulator::new(&q);
        e1.run(100_000).unwrap();
        e2.run(100_000).unwrap();
        assert_eq!(e1.int_reg(Reg(10)), e2.int_reg(Reg(10)));
    }
}
