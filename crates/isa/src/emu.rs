//! Functional emulator — the architectural oracle.

use std::error::Error;
use std::fmt;

use crate::exec::{execute_one, Machine};
use crate::inst::Inst;
use crate::mem::SparseMemory;

use crate::program::Program;
use crate::reg::{FReg, Reg};

/// A memory access performed by a retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u64,
    /// Access size in bytes (always 8 in this ISA).
    pub size: u8,
    /// True for stores.
    pub is_store: bool,
}

/// The architectural outcome of one instruction, consumed by the timing
/// simulator as its execute-at-fetch oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retired {
    /// The pc of the instruction.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// The pc of the next instruction in program order.
    pub next_pc: u64,
    /// The memory access, if the instruction was a load or store.
    pub mem: Option<MemAccess>,
}

impl Retired {
    /// True if the instruction redirected control flow (taken branch/jump).
    pub fn taken(&self) -> bool {
        self.next_pc != self.pc + 1
    }
}

/// Emulator errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The pc ran off the end of the instruction text.
    PcOutOfRange(u64),
    /// The step budget in [`Emulator::run`] was exhausted before `Halt`.
    StepLimit(u64),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfRange(pc) => write!(f, "pc {pc} out of range"),
            EmuError::StepLimit(n) => write!(f, "step limit of {n} instructions exhausted"),
        }
    }
}

impl Error for EmuError {}

/// Functional interpreter for [`Program`]s.
///
/// Executes one instruction per [`step`](Emulator::step), maintaining the
/// architectural register files and memory. Loops forever if the program
/// does; callers bound execution with [`run`](Emulator::run) or by counting
/// steps.
#[derive(Debug, Clone)]
pub struct Emulator {
    program: Program,
    iregs: [u64; 32],
    fregs: [f64; 32],
    mem: SparseMemory,
    pc: u64,
    halted: bool,
    retired: u64,
}

impl Emulator {
    /// Creates an emulator with the program's initial memory image, zeroed
    /// registers, and the pc at the entry point.
    pub fn new(program: &Program) -> Emulator {
        Emulator {
            mem: program.initial_memory(),
            program: program.clone(),
            iregs: [0; 32],
            fregs: [0.0; 32],
            pc: program.entry,
            halted: false,
            retired: 0,
        }
    }

    /// Current pc.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// True once a `Halt` has retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads an integer register.
    pub fn int_reg(&self, r: Reg) -> u64 {
        if r.0 == 0 {
            0
        } else {
            self.iregs[r.0 as usize]
        }
    }

    /// Reads a floating-point register.
    pub fn fp_reg(&self, r: FReg) -> f64 {
        self.fregs[r.0 as usize]
    }

    /// Writes an integer register (writes to `r0` are discarded).
    pub fn set_int_reg(&mut self, r: Reg, value: u64) {
        if r.0 != 0 {
            self.iregs[r.0 as usize] = value;
        }
    }

    /// Writes a floating-point register.
    pub fn set_fp_reg(&mut self, r: FReg, value: f64) {
        self.fregs[r.0 as usize] = value;
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Immutable view of memory.
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Wrong-path shadow execution starting at `start_pc`: copies the
    /// architectural registers and overlays memory writes, leaving the real
    /// architectural state untouched.
    pub fn shadow(&self, start_pc: u64) -> ShadowEmulator {
        ShadowEmulator {
            iregs: self.iregs,
            fregs: self.fregs,
            pc: start_pc,
            writes: std::collections::HashMap::new(),
            halted: false,
        }
    }

    /// Executes one instruction and returns its architectural outcome.
    ///
    /// After `Halt` retires, further calls return the `Halt` outcome again
    /// without advancing (so a pipelined front end can keep "fetching" it
    /// harmlessly).
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::PcOutOfRange`] if the pc leaves the instruction
    /// text, which indicates a malformed program.
    pub fn step(&mut self) -> Result<Retired, EmuError> {
        let pc = self.pc;
        let inst = *self.program.fetch(pc).ok_or(EmuError::PcOutOfRange(pc))?;
        let outcome = execute_one(self, pc, &inst);
        if outcome.halt {
            self.halted = true;
        }
        if !self.halted {
            self.pc = outcome.next_pc;
            self.retired += 1;
        }
        Ok(Retired { pc, inst, next_pc: outcome.next_pc, mem: outcome.mem })
    }

    /// Runs until `Halt` or `max_steps` instructions, whichever first.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::StepLimit`] if the budget is exhausted and
    /// [`EmuError::PcOutOfRange`] for malformed programs.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, EmuError> {
        for _ in 0..max_steps {
            if self.halted {
                return Ok(self.retired);
            }
            self.step()?;
        }
        if self.halted {
            Ok(self.retired)
        } else {
            Err(EmuError::StepLimit(max_steps))
        }
    }
}


impl Machine for Emulator {
    fn read_int(&self, index: u8) -> u64 {
        self.iregs[index as usize]
    }
    fn write_int(&mut self, index: u8, value: u64) {
        self.iregs[index as usize] = value;
    }
    fn read_fp(&self, index: u8) -> f64 {
        self.fregs[index as usize]
    }
    fn write_fp(&mut self, index: u8, value: f64) {
        self.fregs[index as usize] = value;
    }
    fn read_mem(&self, addr: u64) -> u64 {
        self.mem.read_u64(addr)
    }
    fn write_mem(&mut self, addr: u64, value: u64) {
        self.mem.write_u64(addr, value);
    }
}

/// A lightweight wrong-path execution context.
///
/// Created by [`Emulator::shadow`] at a mispredicted branch: it copies the
/// register files, executes down the *predicted* (wrong) path, and buffers
/// memory writes in an overlay so the architectural memory is never
/// disturbed. The timing simulator uses the outcomes (addresses, targets)
/// of wrong-path instructions; when the branch resolves, the shadow is
/// simply dropped.
#[derive(Debug, Clone)]
pub struct ShadowEmulator {
    iregs: [u64; 32],
    fregs: [f64; 32],
    pc: u64,
    /// Byte-granular write overlay.
    writes: std::collections::HashMap<u64, u8>,
    halted: bool,
}

/// Couples a shadow context with the base emulator it reads through.
struct ShadowView<'a> {
    shadow: &'a mut ShadowEmulator,
    base: &'a Emulator,
}

impl Machine for ShadowView<'_> {
    fn read_int(&self, index: u8) -> u64 {
        self.shadow.iregs[index as usize]
    }
    fn write_int(&mut self, index: u8, value: u64) {
        self.shadow.iregs[index as usize] = value;
    }
    fn read_fp(&self, index: u8) -> f64 {
        self.shadow.fregs[index as usize]
    }
    fn write_fp(&mut self, index: u8, value: f64) {
        self.shadow.fregs[index as usize] = value;
    }
    fn read_mem(&self, addr: u64) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            let a = addr.wrapping_add(i as u64);
            *b = match self.shadow.writes.get(&a) {
                Some(&v) => v,
                None => self.base.memory().read_u8(a),
            };
        }
        u64::from_le_bytes(bytes)
    }
    fn write_mem(&mut self, addr: u64, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.shadow.writes.insert(addr.wrapping_add(i as u64), *b);
        }
    }
}

impl ShadowEmulator {
    /// Current wrong-path pc.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// True if the wrong path ran onto a `Halt` (fetch down this path must
    /// stop; the path will be squashed at branch resolution anyway).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Executes one wrong-path instruction against `base`'s program and
    /// memory image.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::PcOutOfRange`] when the wrong path runs off the
    /// instruction text (the caller stops fetching down the path).
    pub fn step(&mut self, base: &Emulator) -> Result<Retired, EmuError> {
        let pc = self.pc;
        let inst = *base.program().fetch(pc).ok_or(EmuError::PcOutOfRange(pc))?;
        let outcome = {
            let mut view = ShadowView { shadow: self, base };
            execute_one(&mut view, pc, &inst)
        };
        if outcome.halt {
            self.halted = true;
        }
        if !self.halted {
            self.pc = outcome.next_pc;
        }
        Ok(Retired { pc, inst, next_pc: outcome.next_pc, mem: outcome.mem })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::op::Opcode;

    fn run_prog(f: impl FnOnce(&mut Assembler)) -> Emulator {
        let mut a = Assembler::new();
        f(&mut a);
        let p = a.finish().unwrap();
        let mut emu = Emulator::new(&p);
        emu.run(1_000_000).unwrap();
        emu
    }

    #[test]
    fn arithmetic_loop_sums_correctly() {
        let emu = run_prog(|a| {
            a.li(Reg(1), 100);
            a.li(Reg(2), 0);
            a.label("loop");
            a.add(Reg(2), Reg(2), Reg(1));
            a.addi(Reg(1), Reg(1), -1);
            a.bne(Reg(1), Reg::ZERO, "loop");
            a.halt();
        });
        assert_eq!(emu.int_reg(Reg(2)), 5050);
    }

    #[test]
    fn memory_round_trip_through_loads_and_stores() {
        let emu = run_prog(|a| {
            a.li(Reg(1), 0x1000);
            a.li(Reg(2), 42);
            a.st(Reg(2), Reg(1), 8);
            a.ld(Reg(3), Reg(1), 8);
            a.halt();
        });
        assert_eq!(emu.int_reg(Reg(3)), 42);
        assert_eq!(emu.memory().read_u64(0x1008), 42);
    }

    #[test]
    fn fp_pipeline_computes() {
        let emu = run_prog(|a| {
            a.data_f64s(0x100, &[2.0, 8.0]);
            a.li(Reg(1), 0x100);
            a.fld(FReg(1), Reg(1), 0);
            a.fld(FReg(2), Reg(1), 8);
            a.fmul(FReg(3), FReg(1), FReg(2)); // 16
            a.fsqrt(FReg(4), FReg(3)); // 4
            a.fcvti(Reg(2), FReg(4));
            a.halt();
        });
        assert_eq!(emu.int_reg(Reg(2)), 4);
        assert_eq!(emu.fp_reg(FReg(3)), 16.0);
    }

    #[test]
    fn call_and_return_via_jal_jr() {
        let emu = run_prog(|a| {
            a.jal(Reg(31), "func");
            a.li(Reg(2), 7); // executed after return
            a.halt();
            a.label("func");
            a.li(Reg(1), 5);
            a.jr(Reg(31));
        });
        assert_eq!(emu.int_reg(Reg(1)), 5);
        assert_eq!(emu.int_reg(Reg(2)), 7);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let emu = run_prog(|a| {
            a.li(Reg(1), 10);
            a.div(Reg(2), Reg(1), Reg::ZERO);
            a.rem(Reg(3), Reg(1), Reg::ZERO);
            a.halt();
        });
        assert_eq!(emu.int_reg(Reg(2)), 0);
        assert_eq!(emu.int_reg(Reg(3)), 0);
    }

    #[test]
    fn taken_flag_reflects_control_flow() {
        let mut a = Assembler::new();
        a.li(Reg(1), 1);
        a.beq(Reg(1), Reg::ZERO, "skip"); // not taken
        a.j("skip"); // taken, skips the nop
        a.nop();
        a.label("skip");
        a.halt();
        let p = a.finish().unwrap();
        let mut emu = Emulator::new(&p);
        emu.step().unwrap();
        let beq = emu.step().unwrap();
        assert!(!beq.taken());
        let j = emu.step().unwrap();
        assert!(j.taken());
        assert_eq!(j.next_pc, 4);
    }

    #[test]
    fn halt_is_sticky_and_repeatable() {
        let mut a = Assembler::new();
        a.halt();
        let p = a.finish().unwrap();
        let mut emu = Emulator::new(&p);
        let r1 = emu.step().unwrap();
        assert!(emu.halted());
        let r2 = emu.step().unwrap();
        assert_eq!(r1, r2, "halt outcome repeats without advancing");
        assert_eq!(emu.retired(), 0, "halt itself does not count as retired work");
    }

    #[test]
    fn step_limit_reported() {
        let mut a = Assembler::new();
        a.label("spin");
        a.j("spin");
        let p = a.finish().unwrap();
        let mut emu = Emulator::new(&p);
        assert_eq!(emu.run(10), Err(EmuError::StepLimit(10)));
    }

    #[test]
    fn pc_out_of_range_detected() {
        let mut a = Assembler::new();
        a.nop(); // falls off the end
        let p = a.finish().unwrap();
        let mut emu = Emulator::new(&p);
        emu.step().unwrap();
        assert_eq!(emu.step(), Err(EmuError::PcOutOfRange(1)));
    }

    #[test]
    fn writes_to_r0_are_discarded() {
        let emu = run_prog(|a| {
            a.li(Reg(0), 99);
            a.addi(Reg(1), Reg::ZERO, 3);
            a.halt();
        });
        assert_eq!(emu.int_reg(Reg::ZERO), 0);
        assert_eq!(emu.int_reg(Reg(1)), 3);
    }


    #[test]
    fn shadow_executes_without_touching_architectural_state() {
        let mut a = Assembler::new();
        a.li(Reg(1), 5);
        a.li(Reg(2), 0x1000);
        a.st(Reg(1), Reg(2), 0);
        a.halt();
        let p = a.finish().unwrap();
        let mut emu = Emulator::new(&p);
        emu.step().unwrap(); // r1 = 5
        // Shadow runs the remaining instructions (wrong-path style).
        let mut sh = emu.shadow(1);
        sh.step(&emu).unwrap(); // r2 = 0x1000 (shadow only)
        let st = sh.step(&emu).unwrap(); // shadow store
        assert_eq!(st.mem.unwrap().addr, 0x1000);
        assert_eq!(emu.int_reg(Reg(2)), 0, "architectural r2 unchanged");
        assert_eq!(emu.memory().read_u64(0x1000), 0, "architectural memory unchanged");
    }

    #[test]
    fn shadow_reads_through_to_base_memory_with_overlay() {
        let mut a = Assembler::new();
        a.data_u64s(0x100, &[42]);
        a.li(Reg(1), 0x100);
        a.ld(Reg(2), Reg(1), 0); // reads 42 through to base
        a.li(Reg(3), 7);
        a.st(Reg(3), Reg(1), 0); // shadow overlay write
        a.ld(Reg(4), Reg(1), 0); // reads 7 from overlay
        a.halt();
        let p = a.finish().unwrap();
        let emu = Emulator::new(&p);
        let mut sh = emu.shadow(0);
        for _ in 0..5 {
            sh.step(&emu).unwrap();
        }
        // Shadow observed its own store.
        let halt = sh.step(&emu).unwrap();
        assert_eq!(halt.inst.op, Opcode::Halt);
        assert!(sh.halted());
        assert_eq!(emu.memory().read_u64(0x100), 42);
    }

    #[test]
    fn shadow_pc_out_of_range_reported() {
        let mut a = Assembler::new();
        a.halt();
        let p = a.finish().unwrap();
        let emu = Emulator::new(&p);
        let mut sh = emu.shadow(99);
        assert_eq!(sh.step(&emu), Err(EmuError::PcOutOfRange(99)));
    }

    #[test]
    fn shift_and_compare_semantics() {
        let emu = run_prog(|a| {
            a.li(Reg(1), -8);
            a.srai(Reg(2), Reg(1), 1); // -4
            a.srli(Reg(3), Reg(1), 60); // high bits
            a.slti(Reg(4), Reg(1), 0); // 1
            a.sltu(Reg(5), Reg(1), Reg::ZERO); // -8 unsigned is huge: 0
            a.halt();
        });
        assert_eq!(emu.int_reg(Reg(2)) as i64, -4);
        assert_eq!(emu.int_reg(Reg(3)), 0xF);
        assert_eq!(emu.int_reg(Reg(4)), 1);
        assert_eq!(emu.int_reg(Reg(5)), 0);
    }
}
