//! Paged sparse memory.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse 64-bit byte-addressable memory backed by 4 KiB pages.
///
/// Reads of untouched memory return zero; pages are allocated on first write.
/// Multi-byte accesses may span page boundaries.
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    /// Number of resident (written-to) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page if needed.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads a little-endian `u64` at `addr` (no alignment requirement).
    pub fn read_u64(&self, addr: u64) -> u64 {
        // Fast path: whole word within one resident page.
        let off = (addr & PAGE_MASK) as usize;
        if off + 8 <= PAGE_SIZE {
            return match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => p[off..off + 8].try_into().map(u64::from_le_bytes).unwrap_or(0),
                None => 0,
            };
        }
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian `u64` at `addr` (no alignment requirement).
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        let off = (addr & PAGE_MASK) as usize;
        let bytes = value.to_le_bytes();
        if off + 8 <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + 8].copy_from_slice(&bytes);
            return;
        }
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Reads an `f64` stored at `addr`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64` at `addr`.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = SparseMemory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(0xdead_beef), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn u64_round_trip() {
        let mut m = SparseMemory::new();
        m.write_u64(64, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(64), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(64), 0xef, "little-endian layout");
    }

    #[test]
    fn page_boundary_straddle() {
        let mut m = SparseMemory::new();
        let addr = (1 << PAGE_SHIFT) - 3; // last 3 bytes of page 0
        m.write_u64(addr, u64::MAX);
        assert_eq!(m.read_u64(addr), u64::MAX);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn f64_round_trip() {
        let mut m = SparseMemory::new();
        m.write_f64(8, -1234.5e-6);
        assert_eq!(m.read_f64(8), -1234.5e-6);
    }

    #[test]
    fn write_bytes_places_each_byte() {
        let mut m = SparseMemory::new();
        m.write_bytes(10, &[1, 2, 3]);
        assert_eq!(m.read_u8(10), 1);
        assert_eq!(m.read_u8(11), 2);
        assert_eq!(m.read_u8(12), 3);
    }
}
