//! Text assembler: parse the human-readable assembly syntax into a
//! [`Program`].
//!
//! The syntax mirrors what [`Inst`](crate::Inst)'s `Display` prints, plus
//! labels, comments and data directives:
//!
//! ```text
//! ; sum the numbers 1..=100
//! .data 0x1000 u64 0 0 0
//!     li r1, 100
//!     li r2, 0
//! loop:
//!     add r2, r2, r1
//!     addi r1, r1, -1
//!     bne r1, r0, loop
//!     st r2, r0, 0x1000
//!     halt
//! ```
//!
//! Operand order follows the builder methods in
//! [`Assembler`](crate::Assembler): destination first, loads are
//! `ld rd, rbase, disp`, stores are `st rvalue, rbase, disp`, branches are
//! `bne ra, rb, label`.

use std::error::Error;
use std::fmt;

use crate::asm::Assembler;
use crate::program::Program;
use crate::reg::{FReg, Reg};

/// A parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

fn parse_int(line: usize, token: &str) -> Result<i64, ParseError> {
    let (neg, body) = match token.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, token),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    };
    match value {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("expected an integer, got `{token}`")),
    }
}

fn parse_reg(line: usize, token: &str) -> Result<Reg, ParseError> {
    let idx = token
        .strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < 32);
    match idx {
        Some(n) => Ok(Reg(n)),
        None => err(line, format!("expected an integer register r0..r31, got `{token}`")),
    }
}

fn parse_freg(line: usize, token: &str) -> Result<FReg, ParseError> {
    let idx = token
        .strip_prefix('f')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < 32);
    match idx {
        Some(n) => Ok(FReg(n)),
        None => err(line, format!("expected an FP register f0..f31, got `{token}`")),
    }
}

/// Parses assembly text into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for syntax errors,
/// unknown mnemonics, malformed operands, or unresolved/duplicate labels.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let mut a = Assembler::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }

        // Label definitions (possibly followed by an instruction).
        let text = if let Some((label, rest)) = text.split_once(':') {
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return err(line, format!("malformed label `{label}`"));
            }
            a.label(label);
            let rest = rest.trim();
            if rest.is_empty() {
                continue;
            }
            rest
        } else {
            text
        };

        // Data directives: `.data <base> u64|f64 <values...>`.
        if let Some(rest) = text.strip_prefix(".data") {
            let mut parts = rest.split_whitespace();
            let base = parse_int(line, parts.next().unwrap_or(""))? as u64;
            match parts.next() {
                Some("u64") => {
                    let words: Result<Vec<u64>, _> =
                        parts.map(|t| parse_int(line, t).map(|v| v as u64)).collect();
                    a.data_u64s(base, &words?);
                }
                Some("f64") => {
                    let vals: Result<Vec<f64>, ParseError> = parts
                        .map(|t| {
                            t.parse::<f64>()
                                .map_err(|_| ParseError {
                                    line,
                                    message: format!("expected a float, got `{t}`"),
                                })
                        })
                        .collect();
                    a.data_f64s(base, &vals?);
                }
                other => return err(line, format!("expected u64 or f64, got `{other:?}`")),
            }
            continue;
        }

        // Instruction: mnemonic + comma-separated operands.
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> =
            if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
        let want = |n: usize| -> Result<(), ParseError> {
            if ops.len() == n {
                Ok(())
            } else {
                err(line, format!("{mnemonic} takes {n} operands, got {}", ops.len()))
            }
        };
        let r = |i: usize| parse_reg(line, ops[i]);
        let f = |i: usize| parse_freg(line, ops[i]);
        let imm = |i: usize| parse_int(line, ops[i]);

        match mnemonic {
            // integer reg-reg
            "add" => { want(3)?; a.add(r(0)?, r(1)?, r(2)?) }
            "sub" => { want(3)?; a.sub(r(0)?, r(1)?, r(2)?) }
            "and" => { want(3)?; a.and(r(0)?, r(1)?, r(2)?) }
            "or" => { want(3)?; a.or(r(0)?, r(1)?, r(2)?) }
            "xor" => { want(3)?; a.xor(r(0)?, r(1)?, r(2)?) }
            "sll" => { want(3)?; a.sll(r(0)?, r(1)?, r(2)?) }
            "srl" => { want(3)?; a.srl(r(0)?, r(1)?, r(2)?) }
            "sra" => { want(3)?; a.sra(r(0)?, r(1)?, r(2)?) }
            "slt" => { want(3)?; a.slt(r(0)?, r(1)?, r(2)?) }
            "sltu" => { want(3)?; a.sltu(r(0)?, r(1)?, r(2)?) }
            "mul" => { want(3)?; a.mul(r(0)?, r(1)?, r(2)?) }
            "div" => { want(3)?; a.div(r(0)?, r(1)?, r(2)?) }
            "rem" => { want(3)?; a.rem(r(0)?, r(1)?, r(2)?) }
            // integer immediates
            "addi" => { want(3)?; a.addi(r(0)?, r(1)?, imm(2)?) }
            "andi" => { want(3)?; a.andi(r(0)?, r(1)?, imm(2)?) }
            "ori" => { want(3)?; a.ori(r(0)?, r(1)?, imm(2)?) }
            "xori" => { want(3)?; a.xori(r(0)?, r(1)?, imm(2)?) }
            "slli" => { want(3)?; a.slli(r(0)?, r(1)?, imm(2)?) }
            "srli" => { want(3)?; a.srli(r(0)?, r(1)?, imm(2)?) }
            "srai" => { want(3)?; a.srai(r(0)?, r(1)?, imm(2)?) }
            "slti" => { want(3)?; a.slti(r(0)?, r(1)?, imm(2)?) }
            "li" => { want(2)?; a.li(r(0)?, imm(1)?) }
            "mv" => { want(2)?; a.mv(r(0)?, r(1)?) }
            // memory
            "ld" => { want(3)?; a.ld(r(0)?, r(1)?, imm(2)?) }
            "st" => { want(3)?; a.st(r(0)?, r(1)?, imm(2)?) }
            "fld" => { want(3)?; a.fld(f(0)?, r(1)?, imm(2)?) }
            "fst" => { want(3)?; a.fst(f(0)?, r(1)?, imm(2)?) }
            // floating point
            "fadd" => { want(3)?; a.fadd(f(0)?, f(1)?, f(2)?) }
            "fsub" => { want(3)?; a.fsub(f(0)?, f(1)?, f(2)?) }
            "fmul" => { want(3)?; a.fmul(f(0)?, f(1)?, f(2)?) }
            "fdiv" => { want(3)?; a.fdiv(f(0)?, f(1)?, f(2)?) }
            "fmin" => { want(3)?; a.fmin(f(0)?, f(1)?, f(2)?) }
            "fmax" => { want(3)?; a.fmax(f(0)?, f(1)?, f(2)?) }
            "fsqrt" => { want(2)?; a.fsqrt(f(0)?, f(1)?) }
            "fneg" => { want(2)?; a.fneg(f(0)?, f(1)?) }
            "icvtf" => { want(2)?; a.icvtf(f(0)?, r(1)?) }
            "fcvti" => { want(2)?; a.fcvti(r(0)?, f(1)?) }
            "fcmplt" => { want(3)?; a.fcmplt(r(0)?, f(1)?, f(2)?) }
            // control flow
            "beq" => { want(3)?; a.beq(r(0)?, r(1)?, ops[2]) }
            "bne" => { want(3)?; a.bne(r(0)?, r(1)?, ops[2]) }
            "blt" => { want(3)?; a.blt(r(0)?, r(1)?, ops[2]) }
            "bge" => { want(3)?; a.bge(r(0)?, r(1)?, ops[2]) }
            "j" => { want(1)?; a.j(ops[0]) }
            "jal" => { want(2)?; a.jal(r(0)?, ops[1]) }
            "jr" => { want(1)?; a.jr(r(0)?) }
            "nop" => { want(0)?; a.nop() }
            "halt" => { want(0)?; a.halt() }
            other => return err(line, format!("unknown mnemonic `{other}`")),
        }
    }
    a.finish().map_err(|e| ParseError { line: 0, message: e.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::Emulator;

    #[test]
    fn parses_and_runs_a_loop() {
        let program = parse_program(
            "; sum 1..=100
             li r1, 100
             li r2, 0
             loop:
             add r2, r2, r1
             addi r1, r1, -1
             bne r1, r0, loop
             halt",
        )
        .unwrap();
        let mut emu = Emulator::new(&program);
        emu.run(1_000_000).unwrap();
        assert_eq!(emu.int_reg(Reg(2)), 5050);
    }

    #[test]
    fn data_directives_and_fp() {
        let program = parse_program(
            ".data 0x100 f64 2.5 1.5
             .data 0x200 u64 0x10 32
             li r1, 0x100
             fld f1, r1, 0
             fld f2, r1, 8
             fmul f3, f1, f2
             fcvti r2, f3
             halt",
        )
        .unwrap();
        let mut emu = Emulator::new(&program);
        emu.run(1_000).unwrap();
        assert_eq!(emu.int_reg(Reg(2)), 3, "2.5 * 1.5 truncates to 3");
        assert_eq!(emu.memory().read_u64(0x208), 32);
    }

    #[test]
    fn label_on_same_line_as_instruction() {
        let program = parse_program("start: li r1, 7\n j start").unwrap();
        assert_eq!(program.len(), 2);
        assert_eq!(program.insts[1].imm, 0);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program("nop\n bogus r1, r2").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = parse_program("add r1, r2").unwrap_err();
        assert!(e.message.contains("3 operands"));

        let e = parse_program("li r99, 5").unwrap_err();
        assert!(e.message.contains("r0..r31"));

        let e = parse_program("fadd f1, r2, f3").unwrap_err();
        assert!(e.message.contains("FP register"));

        let e = parse_program("li r1, twelve").unwrap_err();
        assert!(e.message.contains("integer"));
    }

    #[test]
    fn undefined_label_reported() {
        let e = parse_program("j nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn negative_and_hex_immediates() {
        let program = parse_program("li r1, -0x10\n addi r2, r1, -5\n halt").unwrap();
        let mut emu = Emulator::new(&program);
        emu.run(100).unwrap();
        assert_eq!(emu.int_reg(Reg(2)) as i64, -21);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let program = parse_program("\n ; only a comment\n\n nop ; trailing\n halt").unwrap();
        assert_eq!(program.len(), 2);
    }
}
