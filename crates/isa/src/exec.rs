//! Shared instruction-execution semantics, used by both the architectural
//! [`Emulator`](crate::Emulator) and the wrong-path
//! [`ShadowEmulator`](crate::ShadowEmulator).

use crate::emu::MemAccess;
use crate::inst::Inst;
use crate::op::Opcode;
use crate::reg::{ArchReg, RegClass};

/// Register/memory access surface an execution engine must provide.
pub(crate) trait Machine {
    fn read_int(&self, index: u8) -> u64;
    fn write_int(&mut self, index: u8, value: u64);
    fn read_fp(&self, index: u8) -> f64;
    fn write_fp(&mut self, index: u8, value: f64);
    fn read_mem(&self, addr: u64) -> u64;
    fn write_mem(&mut self, addr: u64, value: u64);

    fn read(&self, r: ArchReg) -> u64 {
        match r.class {
            RegClass::Int => {
                if r.index == 0 {
                    0
                } else {
                    self.read_int(r.index)
                }
            }
            RegClass::Fp => self.read_fp(r.index).to_bits(),
        }
    }

    fn read_f(&self, r: ArchReg) -> f64 {
        match r.class {
            RegClass::Fp => self.read_fp(r.index),
            RegClass::Int => f64::from_bits(self.read(r)),
        }
    }

    fn write(&mut self, r: ArchReg, value: u64) {
        match r.class {
            RegClass::Int => {
                if r.index != 0 {
                    self.write_int(r.index, value);
                }
            }
            RegClass::Fp => self.write_fp(r.index, f64::from_bits(value)),
        }
    }

    fn write_f(&mut self, r: ArchReg, value: f64) {
        match r.class {
            RegClass::Fp => self.write_fp(r.index, value),
            RegClass::Int => self.write(r, value.to_bits()),
        }
    }
}

/// Unwraps an operand slot the decode table guarantees is populated for
/// this opcode class. Operand presence is fixed per opcode at assembly
/// time, so a miss here is a construction bug (caught by the golden-trace
/// tests), not a runtime condition — this is the module's one sanctioned
/// panic site.
fn req(r: Option<ArchReg>, what: &str) -> ArchReg {
    r.unwrap_or_else(|| {
        // swque-lint: allow(panic-in-lib) — operand presence is fixed per opcode by the decode table; a miss is an assembler bug, not a runtime condition
        panic!("missing operand: {what}")
    })
}

/// The effect of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ExecOutcome {
    pub next_pc: u64,
    pub mem: Option<MemAccess>,
    pub halt: bool,
}

/// Executes `inst` at `pc` on `m`, returning control-flow and memory
/// effects. Register and memory state are updated in place.
pub(crate) fn execute_one<M: Machine>(m: &mut M, pc: u64, inst: &Inst) -> ExecOutcome {
    let mut next_pc = pc + 1;
    let mut mem_access = None;
    let mut halt = false;

    use Opcode::*;
    match inst.op {
        Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Mul | Div | Rem => {
            let a = m.read(req(inst.src1, "reg-reg op has src1"));
            let b = m.read(req(inst.src2, "reg-reg op has src2"));
            let v = int_alu(inst.op, a, b);
            m.write(req(inst.dst, "reg-reg op has dst"), v);
        }
        AddI | AndI | OrI | XorI | SllI | SrlI | SraI | SltI => {
            let a = m.read(req(inst.src1, "reg-imm op has src1"));
            let v = int_alu(imm_to_rr(inst.op), a, inst.imm as u64);
            m.write(req(inst.dst, "reg-imm op has dst"), v);
        }
        Li => {
            m.write(req(inst.dst, "li has dst"), inst.imm as u64);
        }
        Ld | FLd => {
            let base = m.read(req(inst.src1, "load has base"));
            let addr = base.wrapping_add(inst.imm as u64);
            mem_access = Some(MemAccess { addr, size: 8, is_store: false });
            let v = m.read_mem(addr);
            m.write(req(inst.dst, "load has dst"), v);
        }
        St | FSt => {
            let base = m.read(req(inst.src1, "store has base"));
            let addr = base.wrapping_add(inst.imm as u64);
            let v = m.read(req(inst.src2, "store has value"));
            mem_access = Some(MemAccess { addr, size: 8, is_store: true });
            m.write_mem(addr, v);
        }
        FAdd | FSub | FMul | FDiv | FMin | FMax => {
            let a = m.read_f(req(inst.src1, "fp op has src1"));
            let b = m.read_f(req(inst.src2, "fp op has src2"));
            let v = match inst.op {
                FAdd => a + b,
                FSub => a - b,
                FMul => a * b,
                FDiv => a / b,
                FMin => a.min(b),
                _ => a.max(b),
            };
            m.write_f(req(inst.dst, "fp op has dst"), v);
        }
        FSqrt => {
            let a = m.read_f(req(inst.src1, "fsqrt has src1"));
            m.write_f(req(inst.dst, "fsqrt has dst"), a.sqrt());
        }
        FNeg => {
            let a = m.read_f(req(inst.src1, "fneg has src1"));
            m.write_f(req(inst.dst, "fneg has dst"), -a);
        }
        ICvtF => {
            let a = m.read(req(inst.src1, "icvtf has src1")) as i64;
            m.write_f(req(inst.dst, "icvtf has dst"), a as f64);
        }
        FCvtI => {
            let a = m.read_f(req(inst.src1, "fcvti has src1"));
            m.write(req(inst.dst, "fcvti has dst"), a as i64 as u64);
        }
        FCmpLt => {
            let a = m.read_f(req(inst.src1, "fcmplt has src1"));
            let b = m.read_f(req(inst.src2, "fcmplt has src2"));
            m.write(req(inst.dst, "fcmplt has dst"), (a < b) as u64);
        }
        Beq | Bne | Blt | Bge => {
            let a = m.read(req(inst.src1, "branch has src1"));
            let b = m.read(req(inst.src2, "branch has src2"));
            let take = match inst.op {
                Beq => a == b,
                Bne => a != b,
                Blt => (a as i64) < (b as i64),
                _ => (a as i64) >= (b as i64),
            };
            if take {
                next_pc = inst.imm as u64;
            }
        }
        J => next_pc = inst.imm as u64,
        Jal => {
            m.write(req(inst.dst, "jal has link dst"), pc + 1);
            next_pc = inst.imm as u64;
        }
        Jr => next_pc = m.read(req(inst.src1, "jr has target src")),
        Nop => {}
        Halt => {
            halt = true;
            next_pc = pc; // spin on halt
        }
    }

    ExecOutcome { next_pc, mem: mem_access, halt }
}

/// Maps an immediate-form ALU opcode to its register-register twin.
fn imm_to_rr(op: Opcode) -> Opcode {
    use Opcode::*;
    match op {
        AddI => Add,
        AndI => And,
        OrI => Or,
        XorI => Xor,
        SllI => Sll,
        SrlI => Srl,
        SraI => Sra,
        SltI => Slt,
        other => other,
    }
}

fn int_alu(op: Opcode, a: u64, b: u64) -> u64 {
    use Opcode::*;
    match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Sll => a.wrapping_shl((b & 63) as u32),
        Srl => a.wrapping_shr((b & 63) as u32),
        Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        Slt => ((a as i64) < (b as i64)) as u64,
        Sltu => (a < b) as u64,
        Mul => a.wrapping_mul(b),
        Div => {
            if b == 0 {
                0
            } else {
                ((a as i64).wrapping_div(b as i64)) as u64
            }
        }
        Rem => {
            if b == 0 {
                0
            } else {
                ((a as i64).wrapping_rem(b as i64)) as u64
            }
        }
        // swque-lint: allow(panic-in-lib) — the caller matches on the ALU opcode class first; reaching this arm is a decode-table bug
        _ => unreachable!("not an integer ALU op: {op:?}"),
    }
}
