//! A small synthetic 64-bit RISC instruction set used by the SWQUE
//! reproduction as its execution substrate.
//!
//! The paper evaluates SWQUE on a SimpleScalar-based simulator running
//! Alpha-ISA SPEC2017 binaries. Neither the binaries nor an Alpha toolchain
//! are available, so this crate provides the closest synthetic equivalent: a
//! classic load/store RISC with
//!
//! * 32 integer and 32 floating-point architectural registers
//!   (integer register 0 is hardwired to zero),
//! * fixed-latency integer/FP arithmetic grouped into the function-unit
//!   classes of the paper's Table 2 (iALU, iMULT/DIV, Ld/St, FPU),
//! * 64-bit loads and stores with base+displacement addressing,
//! * conditional branches, direct and indirect jumps, and a `Halt`.
//!
//! Programs are built with the [`Assembler`] DSL and executed functionally by
//! the [`Emulator`], which the timing simulator (`swque-cpu`) uses as an
//! execute-at-fetch oracle — the same structure as SimpleScalar's
//! `sim-outorder`.
//!
//! # Example
//!
//! ```
//! use swque_isa::{Assembler, Emulator, Reg};
//!
//! let mut a = Assembler::new();
//! a.li(Reg(1), 10); // counter
//! a.li(Reg(2), 0); // accumulator
//! a.label("loop");
//! a.add(Reg(2), Reg(2), Reg(1));
//! a.addi(Reg(1), Reg(1), -1);
//! a.bne(Reg(1), Reg::ZERO, "loop");
//! a.halt();
//! let program = a.finish().expect("labels resolve");
//!
//! let mut emu = Emulator::new(&program);
//! emu.run(1_000).expect("terminates");
//! assert_eq!(emu.int_reg(Reg(2)), 55);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod disasm;
mod emu;
mod exec;
mod inst;
mod mem;
mod op;
mod parse;
mod program;
mod reg;

pub use asm::{AsmError, Assembler};
pub use disasm::disassemble;
pub use emu::{EmuError, Emulator, MemAccess, Retired, ShadowEmulator};
pub use inst::Inst;
pub use mem::SparseMemory;
pub use op::{FuClass, Opcode};
pub use parse::{parse_program, ParseError};
pub use program::Program;
pub use reg::{ArchReg, FReg, Reg, RegClass, NUM_ARCH_REGS};
