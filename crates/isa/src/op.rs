//! Opcodes and function-unit classes.

use std::fmt;

/// Function-unit classes, matching the paper's Table 2 execution resources
/// (3 iALU, 1 iMULT/DIV, 2 Ld/St, 2 FPU in the medium model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuClass {
    /// Integer ALU: add/sub/logic/shift/compare/branch resolution.
    IntAlu,
    /// Integer multiply/divide unit.
    IntMulDiv,
    /// Load/store (address generation + memory) port.
    LdSt,
    /// Floating-point unit.
    Fpu,
}

impl FuClass {
    /// All classes, in a fixed order (useful for per-class tables).
    pub const ALL: [FuClass; 4] = [FuClass::IntAlu, FuClass::IntMulDiv, FuClass::LdSt, FuClass::Fpu];

    /// Dense index of the class, `0..4`.
    pub fn index(self) -> usize {
        match self {
            FuClass::IntAlu => 0,
            FuClass::IntMulDiv => 1,
            FuClass::LdSt => 2,
            FuClass::Fpu => 3,
        }
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuClass::IntAlu => write!(f, "iALU"),
            FuClass::IntMulDiv => write!(f, "iMULT/DIV"),
            FuClass::LdSt => write!(f, "Ld/St"),
            FuClass::Fpu => write!(f, "FPU"),
        }
    }
}

/// Instruction opcodes.
///
/// The operand conventions are documented per group on the variants; see
/// [`Inst`](crate::Inst) for how operands are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Opcode {
    // ---- integer ALU (dst, src1, src2) ----
    /// `dst = src1 + src2`
    Add,
    /// `dst = src1 - src2`
    Sub,
    /// `dst = src1 & src2`
    And,
    /// `dst = src1 | src2`
    Or,
    /// `dst = src1 ^ src2`
    Xor,
    /// `dst = src1 << (src2 & 63)`
    Sll,
    /// `dst = src1 >> (src2 & 63)` (logical)
    Srl,
    /// `dst = (src1 as i64) >> (src2 & 63)` (arithmetic)
    Sra,
    /// `dst = (src1 as i64) < (src2 as i64)`
    Slt,
    /// `dst = src1 < src2` (unsigned)
    Sltu,

    // ---- integer ALU immediate (dst, src1, imm) ----
    /// `dst = src1 + imm`
    AddI,
    /// `dst = src1 & imm`
    AndI,
    /// `dst = src1 | imm`
    OrI,
    /// `dst = src1 ^ imm`
    XorI,
    /// `dst = src1 << (imm & 63)`
    SllI,
    /// `dst = src1 >> (imm & 63)` (logical)
    SrlI,
    /// `dst = (src1 as i64) >> (imm & 63)` (arithmetic)
    SraI,
    /// `dst = (src1 as i64) < imm`
    SltI,
    /// `dst = imm` (load immediate; assembler alias `li`)
    Li,

    // ---- integer multiply / divide (dst, src1, src2) ----
    /// `dst = src1 * src2` (low 64 bits)
    Mul,
    /// `dst = (src1 as i64) / (src2 as i64)`; division by zero yields 0.
    Div,
    /// `dst = (src1 as i64) % (src2 as i64)`; modulo by zero yields 0.
    Rem,

    // ---- memory (load: dst, src1=base, imm=disp; store: src1=base, src2=value, imm=disp) ----
    /// Integer 64-bit load: `dst = mem[src1 + imm]`
    Ld,
    /// Integer 64-bit store: `mem[src1 + imm] = src2`
    St,
    /// FP 64-bit load: `fdst = mem[src1 + imm]`
    FLd,
    /// FP 64-bit store: `mem[src1 + imm] = fsrc2`
    FSt,

    // ---- floating point (dst, src1, src2; all f64) ----
    /// `fdst = fsrc1 + fsrc2`
    FAdd,
    /// `fdst = fsrc1 - fsrc2`
    FSub,
    /// `fdst = fsrc1 * fsrc2`
    FMul,
    /// `fdst = fsrc1 / fsrc2`
    FDiv,
    /// `fdst = sqrt(fsrc1)`
    FSqrt,
    /// `fdst = min(fsrc1, fsrc2)`
    FMin,
    /// `fdst = max(fsrc1, fsrc2)`
    FMax,
    /// `fdst = -fsrc1`
    FNeg,
    /// Integer-to-float convert: `fdst = src1 as f64` (int source register).
    ICvtF,
    /// Float-to-integer convert: `dst = fsrc1 as i64` (fp source register).
    FCvtI,
    /// FP compare less-than into an integer register: `dst = fsrc1 < fsrc2`.
    FCmpLt,

    // ---- control flow ----
    /// Branch if equal: `if src1 == src2 goto imm` (imm = target pc).
    Beq,
    /// Branch if not equal.
    Bne,
    /// Branch if signed less-than.
    Blt,
    /// Branch if signed greater-or-equal.
    Bge,
    /// Unconditional direct jump to `imm`.
    J,
    /// Jump-and-link: `dst = pc + 1; goto imm`. Used for calls.
    Jal,
    /// Indirect jump to the address in `src1`. Used for returns / dispatch.
    Jr,

    // ---- misc ----
    /// No operation.
    Nop,
    /// Stop the program.
    Halt,
}

impl Opcode {
    /// The function-unit class that executes this opcode.
    ///
    /// Branches and jumps resolve on the integer ALU, as in SimpleScalar.
    pub fn fu_class(self) -> FuClass {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | AddI | AndI | OrI
            | XorI | SllI | SrlI | SraI | SltI | Li | Beq | Bne | Blt | Bge | J | Jal | Jr
            | Nop | Halt | FCvtI | ICvtF | FCmpLt => FuClass::IntAlu,
            Mul | Div | Rem => FuClass::IntMulDiv,
            Ld | St | FLd | FSt => FuClass::LdSt,
            FAdd | FSub | FMul | FDiv | FSqrt | FMin | FMax | FNeg => FuClass::Fpu,
        }
    }

    /// Execution latency in cycles on its function unit.
    ///
    /// The L1D hit latency for loads (2 cycles in Table 2) is modelled by the
    /// memory system, not here; `Ld`/`FLd` report only their
    /// address-generation cycle.
    pub fn latency(self) -> u32 {
        use Opcode::*;
        match self {
            Mul => 3,
            Div | Rem => 20,
            FAdd | FSub | FMin | FMax | FNeg | ICvtF | FCvtI | FCmpLt => 4,
            FMul => 4,
            FDiv => 12,
            FSqrt => 24,
            _ => 1,
        }
    }

    /// True for conditional branches (`Beq`/`Bne`/`Blt`/`Bge`).
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge)
    }

    /// True for any control-flow instruction (conditional or not).
    pub fn is_control(self) -> bool {
        self.is_cond_branch() || matches!(self, Opcode::J | Opcode::Jal | Opcode::Jr)
    }

    /// True for loads (`Ld`/`FLd`).
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Ld | Opcode::FLd)
    }

    /// True for stores (`St`/`FSt`).
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::St | Opcode::FSt)
    }

    /// True if the opcode reads or writes memory.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format!("{self:?}").to_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_class_partition() {
        assert_eq!(Opcode::Add.fu_class(), FuClass::IntAlu);
        assert_eq!(Opcode::Mul.fu_class(), FuClass::IntMulDiv);
        assert_eq!(Opcode::Ld.fu_class(), FuClass::LdSt);
        assert_eq!(Opcode::FSt.fu_class(), FuClass::LdSt);
        assert_eq!(Opcode::FAdd.fu_class(), FuClass::Fpu);
        assert_eq!(Opcode::Beq.fu_class(), FuClass::IntAlu);
    }

    #[test]
    fn latencies_are_positive_and_alu_is_single_cycle() {
        assert_eq!(Opcode::Add.latency(), 1);
        assert_eq!(Opcode::Beq.latency(), 1);
        assert!(Opcode::Div.latency() > Opcode::Mul.latency());
        assert!(Opcode::FDiv.latency() > Opcode::FMul.latency());
    }

    #[test]
    fn control_and_memory_predicates() {
        assert!(Opcode::Beq.is_cond_branch());
        assert!(!Opcode::J.is_cond_branch());
        assert!(Opcode::J.is_control());
        assert!(Opcode::Jr.is_control());
        assert!(Opcode::Ld.is_load() && !Opcode::Ld.is_store());
        assert!(Opcode::FSt.is_store() && Opcode::FSt.is_mem());
        assert!(!Opcode::Add.is_mem());
    }

    #[test]
    fn fu_class_index_is_dense() {
        for (i, c) in FuClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
