//! Architectural register names.

use std::fmt;

/// The two architectural register files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// 64-bit integer registers `r0..r31`; `r0` reads as zero.
    Int,
    /// 64-bit floating-point registers `f0..f31`.
    Fp,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// Number of architectural registers in each class.
pub const NUM_ARCH_REGS: usize = 32;

/// An integer architectural register, `Reg(0)` through `Reg(31)`.
///
/// `Reg(0)` ([`Reg::ZERO`]) is hardwired to zero: writes are discarded and
/// reads always return 0, as in MIPS/RISC-V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired-zero register `r0`.
    pub const ZERO: Reg = Reg(0);
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point architectural register, `FReg(0)` through `FReg(31)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(pub u8);

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A class-tagged architectural register, the form used inside [`Inst`].
///
/// [`Inst`]: crate::Inst
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg {
    /// Which register file the register lives in.
    pub class: RegClass,
    /// Register index within the file, `0..32`.
    pub index: u8,
}

impl ArchReg {
    /// Creates an integer register reference.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn int(index: u8) -> ArchReg {
        assert!((index as usize) < NUM_ARCH_REGS, "integer register index {index} out of range"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
        ArchReg { class: RegClass::Int, index }
    }

    /// Creates a floating-point register reference.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn fp(index: u8) -> ArchReg {
        assert!((index as usize) < NUM_ARCH_REGS, "fp register index {index} out of range"); // swque-lint: allow(panic-in-lib) — documented `# Panics` precondition
        ArchReg { class: RegClass::Fp, index }
    }

    /// Returns true for the hardwired-zero integer register `r0`.
    pub fn is_zero(&self) -> bool {
        self.class == RegClass::Int && self.index == 0
    }

    /// Flat index over both files: int regs map to `0..32`, fp to `32..64`.
    ///
    /// Useful for rename tables that cover both classes with one array.
    pub fn flat_index(&self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_ARCH_REGS + self.index as usize,
        }
    }
}

impl From<Reg> for ArchReg {
    fn from(r: Reg) -> ArchReg {
        ArchReg::int(r.0)
    }
}

impl From<FReg> for ArchReg {
    fn from(r: FReg) -> ArchReg {
        ArchReg::fp(r.0)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(ArchReg::from(Reg::ZERO).is_zero());
        assert!(!ArchReg::from(Reg(1)).is_zero());
        assert!(!ArchReg::fp(0).is_zero(), "f0 is a normal register");
    }

    #[test]
    fn flat_index_is_injective() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..32 {
            assert!(seen.insert(ArchReg::int(i).flat_index()));
            assert!(seen.insert(ArchReg::fp(i).flat_index()));
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_register_panics() {
        let _ = ArchReg::int(32);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ArchReg::int(5).to_string(), "r5");
        assert_eq!(ArchReg::fp(7).to_string(), "f7");
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(FReg(9).to_string(), "f9");
    }
}
