//! swque-rng property tests for the lexer and the pragma parser.
//!
//! The lexer is the analyzer's trusted base: if it panics or drops text,
//! every rule built on it is worthless. Three properties pin it down:
//!
//! 1. **Totality** — random "token soup" (adversarial fragments: stray
//!    quotes, comment openers, hash runs, unicode) never panics and every
//!    produced span is exact.
//! 2. **Nesting round-trips** — randomly nested block comments and raw
//!    strings with random hash counts lex as a single token whose text is
//!    exactly the constructed literal.
//! 3. **Pragma parsing** — well-formed pragmas with random rule subsets
//!    and reasons suppress exactly their rules; malformed ones are
//!    findings, never silent.

use swque_lint::lexer::{lex, TokKind};
use swque_lint::rules::{scan_rust, RULES};
use swque_rng::prop::{check, Gen};

/// Adversarial source fragments: everything that has a lexer mode switch.
const SOUP: &[&str] = &[
    "//", "/*", "*/", "\"", "\\\"", "'", "r#", "r\"", "b\"", "br##\"", "#", "\n", " ", "\t",
    "ident", "x", "0", "1.5e-3", "0x_f", "'a", "'a'", "b'q'", "::", ";", "{", "}", "αβγ", "🦀",
    "\\", "r", "b", "br", "\"\"", "''",
];

fn soup(g: &mut Gen, max_frags: usize) -> String {
    let n = g.gen_range(0..max_frags);
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(SOUP[g.gen_range(0..SOUP.len())]);
    }
    s
}

#[test]
fn token_soup_never_panics_and_spans_are_exact() {
    check(512, |g| {
        let src = soup(g, 40);
        let toks = lex(&src);
        let mut prev_end = 0usize;
        for t in &toks {
            assert!(t.start >= prev_end, "overlapping tokens in {src:?}");
            let end = t.start + t.text.len();
            assert!(end <= src.len());
            assert_eq!(&src[t.start..end], t.text, "span text mismatch in {src:?}");
            assert!(t.line >= 1 && t.col >= 1);
            prev_end = end;
        }
        // Nothing but whitespace may fall between tokens: the stream is
        // lossless.
        let mut covered: Vec<(usize, usize)> = toks.iter().map(|t| (t.start, t.start + t.text.len())).collect();
        covered.push((src.len(), src.len()));
        let mut cursor = 0usize;
        for (a, b) in covered {
            assert!(
                src[cursor..a].chars().all(char::is_whitespace),
                "dropped non-whitespace text in {src:?}"
            );
            cursor = b;
        }
    });
}

#[test]
fn scanning_token_soup_never_panics() {
    // The full rule pipeline (lexing, pragma parse, cfg(test) region
    // detection, pattern matching) over arbitrary input, under both a
    // strict and an exempt policy path.
    check(256, |g| {
        let src = soup(g, 60);
        let _ = scan_rust("crates/core/src/soup.rs", &src);
        let _ = scan_rust("crates/bench/src/bin/soup.rs", &src);
    });
}

/// Builds a correctly nested block comment of the given depth with random
/// filler, e.g. `/* a /* b */ c */`.
fn nested_comment(g: &mut Gen, depth: usize) -> String {
    let fillers = ["x", " ", "//", "\"", "'", "*", "/", "α"];
    let mut s = String::from("/*");
    for _ in 0..g.gen_range(0..4) {
        s.push_str(fillers[g.gen_range(0..fillers.len())]);
        s.push(' ');
    }
    if depth > 0 {
        s.push_str(&nested_comment(g, depth - 1));
    }
    s.push_str(" */");
    s
}

#[test]
fn nested_block_comments_round_trip() {
    check(256, |g| {
        let depth = g.gen_range(0..5);
        let comment = nested_comment(g, depth);
        let src = format!("before {comment} after");
        let toks = lex(&src);
        let comments: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::BlockComment).collect();
        assert_eq!(comments.len(), 1, "{src:?}");
        assert_eq!(comments[0].text, comment, "comment text round-trips");
        assert!(toks.iter().any(|t| t.text == "before"));
        assert!(toks.iter().any(|t| t.text == "after"));
    });
}

#[test]
fn raw_strings_round_trip_with_random_hashes() {
    check(256, |g| {
        let hashes = g.gen_range(1usize..5);
        let byte_prefix = g.bool();
        // Body may contain quote-hash runs shorter than the delimiter,
        // which must NOT close the string.
        let mut body = String::new();
        for _ in 0..g.gen_range(0..6) {
            match g.gen_range(0u32..4) {
                0 => body.push_str("word "),
                1 => {
                    body.push('"');
                    for _ in 0..g.gen_range(0..hashes) {
                        body.push('#');
                    }
                }
                2 => body.push_str("// HashMap "),
                _ => body.push('α'),
            }
        }
        let delim = "#".repeat(hashes);
        let literal =
            format!("{}r{delim}\"{body}\"{delim}", if byte_prefix { "b" } else { "" });
        let src = format!("let s = {literal};");
        let toks = lex(&src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1, "{src:?} -> {toks:?}");
        assert_eq!(strs[0].text, literal, "raw string text round-trips");
        // And nothing inside the literal leaked out as an ident finding.
        let (findings, _) = scan_rust("crates/core/src/raw.rs", &src);
        assert!(findings.is_empty(), "{src:?}: {findings:?}");
    });
}

#[test]
fn pragma_parsing_property() {
    check(256, |g| {
        // A random non-empty subset of rules, in random order.
        let mut rules: Vec<&str> = RULES.to_vec();
        g.rng().shuffle(&mut rules);
        let picked: Vec<&str> = rules[..g.gen_range(1..rules.len())].to_vec();
        let seps = ["\u{2014}", "-", ":", "\u{2013}"];
        let sep = seps[g.gen_range(0..seps.len())];
        let spaces = if g.bool() { " " } else { "  " };
        let reason = ["documented knob", "fixture", "lookup-only map"][g.gen_range(0..3)];
        let pragma =
            format!("// swque-lint: allow({}){spaces}{sep} {reason}", picked.join(", "));

        // The pragma suppresses exactly the picked rules on the next line.
        let probes: &[(&str, &str)] = &[
            ("wall-clock", "fn a() { let _ = std::time::Instant::now(); }"),
            ("env-read", "fn b() { let _ = std::env::var(\"X\"); }"),
            (
                "unordered-container",
                "pub fn t(m: &std::collections::HashMap<u64, u8>) -> usize { m.len() }",
            ),
        ];
        let (probe_rule, probe_code) = probes[g.gen_range(0..probes.len())];
        let src = format!("{pragma}\n{probe_code}\n");
        let (findings, suppressed) = scan_rust("crates/core/src/p.rs", &src);
        if picked.contains(&probe_rule) {
            assert!(findings.is_empty(), "{src:?}: {findings:?}");
            assert_eq!(suppressed, 1, "{src:?}");
        } else {
            assert_eq!(findings.len(), 1, "{src:?}: {findings:?}");
            assert_eq!(findings[0].rule, probe_rule, "{src:?}");
            assert_eq!(suppressed, 0, "{src:?}");
        }
    });
}

#[test]
fn malformed_pragmas_are_always_findings() {
    check(256, |g| {
        let breakages = [
            "// swque-lint: allow(wall-clock)",        // missing reason
            "// swque-lint: allow(wall-clock) —",      // empty reason
            "// swque-lint: allow() — reason",         // empty rule list
            "// swque-lint: allow(nope) — reason",     // unknown rule
            "// swque-lint: allow(wall-clock — r",     // unclosed list
            "// swque-lint: wall-clock — reason",      // missing allow(
        ];
        let bad = breakages[g.gen_range(0..breakages.len())];
        let src = format!("{bad}\nfn f() {{}}\n");
        let (findings, suppressed) = scan_rust("crates/core/src/p.rs", &src);
        assert_eq!(findings.len(), 1, "{src:?}: {findings:?}");
        assert_eq!(findings[0].rule, "malformed-pragma", "{src:?}");
        assert_eq!(findings[0].line, 1);
        assert_eq!(suppressed, 0);
    });
}
