//! swque-rng property tests for the workspace-wide call-graph resolver.
//!
//! The dataflow and reachability passes lean on three resolver
//! guarantees, pinned here over randomly generated module trees:
//!
//! 1. **Totality** — `Program::build` never panics, on adversarial token
//!    soup or on semi-realistic multi-unit workspaces, and every `FnNode`
//!    it returns is internally consistent (unit index in range, token
//!    range non-empty and inside the unit's token stream).
//! 2. **Edges land on declared items** — every recorded call edge joins
//!    two declared functions and respects the visibility/import scoping
//!    rule (`edge_allowed`).
//! 3. **Resolution is total** — `path_to_pub` returns either `None` or a
//!    chain that starts at a `pub fn`, ends at the queried function, and
//!    whose consecutive hops are all legal edges; `format_chain` renders
//!    one segment per hop without panicking.

use swque_lint::resolve::{crate_of, format_chain, path_to_pub, Program};
use swque_rng::prop::{check, Gen};

/// Adversarial fragments, biased toward resolver-relevant shapes: fn
/// declarations, calls, visibility, `use` lines, module nesting.
const SOUP: &[&str] = &[
    "fn", "pub", "mod", "impl", "use", "swque_mem", "swque_cpu", "::", "f", "g", "h", "(", ")",
    "{", "}", ";", ",", "->", "u64", "x", ".", "self", "&", "let", "=", "+", "#[", "]",
    "cfg(test)", "unwrap", "\"s\"", "0", "//", "/*",
];

fn soup(g: &mut Gen, max_frags: usize) -> String {
    let n = g.gen_range(0..max_frags);
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(SOUP[g.gen_range(0..SOUP.len())]);
        if g.bool() {
            s.push(' ');
        }
    }
    s
}

/// Workspace paths spanning three crates plus an out-of-tree file, so
/// crate derivation and cross-crate scoping both get exercised.
const PATHS: &[&str] = &[
    "crates/mem/src/a.rs",
    "crates/mem/src/b.rs",
    "crates/cpu/src/core.rs",
    "crates/core/src/lib.rs",
    "examples/demo.rs",
];

const FN_NAMES: &[&str] = &["alpha", "beta", "gamma", "delta", "omega", "sigma"];

/// One random unit: optional imports of the other crates, then a handful
/// of functions that call random names from the shared pool (including
/// names nobody declares — those must simply produce no edge).
fn gen_unit(g: &mut Gen) -> String {
    let mut src = String::new();
    for krate in ["swque_mem", "swque_cpu", "swque_core"] {
        if g.bool() {
            src.push_str(&format!("use {krate}::queue;\n"));
        }
    }
    let nested = g.bool();
    if nested {
        src.push_str("mod inner {\n");
    }
    for _ in 0..g.gen_range(1..5usize) {
        let name = FN_NAMES[g.gen_range(0..FN_NAMES.len())];
        let vis = if g.bool() { "pub " } else { "" };
        src.push_str(&format!("{vis}fn {name}() {{\n"));
        for _ in 0..g.gen_range(0..3usize) {
            let callee = FN_NAMES[g.gen_range(0..FN_NAMES.len())];
            if g.bool() {
                src.push_str(&format!("    {callee}();\n"));
            } else {
                src.push_str(&format!("    undeclared_{callee}();\n"));
            }
        }
        src.push_str("}\n");
    }
    if nested {
        src.push_str("}\n");
    }
    src
}

fn gen_workspace(g: &mut Gen, body: impl Fn(&mut Gen) -> String) -> Vec<(String, String)> {
    let n = g.gen_range(1..PATHS.len() + 1);
    (0..n).map(|i| (PATHS[i].to_string(), body(g))).collect()
}

/// Structural invariants every built program must satisfy, whatever the
/// input looked like.
fn assert_well_formed(prog: &Program<'_>) {
    for f in &prog.fns {
        assert!(f.unit < prog.units.len(), "fn {:?}: unit out of range", f.name);
        let n_toks = prog.units[f.unit].ast.toks.len();
        assert!(f.lo < f.hi && f.hi <= n_toks, "fn {:?}: bad token range", f.name);
        let (lo, hi) = f.sig;
        assert!(lo <= hi && hi <= n_toks, "fn {:?}: bad sig range", f.name);
    }
    assert_eq!(prog.callers.len(), prog.fns.len());
    for (callee, callers) in prog.callers.iter().enumerate() {
        for &caller in callers {
            assert!(caller < prog.fns.len(), "edge from undeclared fn index {caller}");
            assert!(
                prog.edge_allowed(caller, callee),
                "recorded edge {} -> {} violates scoping",
                prog.fns[caller].name,
                prog.fns[callee].name
            );
        }
    }
}

#[test]
fn token_soup_never_panics_the_resolver() {
    check(256, |g| {
        let sources = gen_workspace(g, |g| soup(g, 60));
        let prog = Program::build(&sources);
        assert_well_formed(&prog);
    });
}

#[test]
fn edges_land_on_declared_items_and_respect_scoping() {
    check(256, |g| {
        let sources = gen_workspace(g, gen_unit);
        let prog = Program::build(&sources);
        assert_well_formed(&prog);
        // Candidate lookup agrees with the recorded edges: a candidate of
        // (caller, name) is exactly a same-named fn the caller may reach.
        for f in 0..prog.fns.len() {
            for g_idx in prog.candidates(f, &prog.fns[f].name.clone()) {
                assert_eq!(prog.fns[g_idx].name, prog.fns[f].name);
                assert!(prog.edge_allowed(f, g_idx));
            }
        }
    });
}

#[test]
fn resolution_is_total_and_chains_are_legal() {
    check(256, |g| {
        let sources = gen_workspace(g, gen_unit);
        let prog = Program::build(&sources);
        for start in 0..prog.fns.len() {
            let Some(chain) = path_to_pub(&prog, start) else { continue };
            assert!(!chain.is_empty());
            assert!(prog.fns[chain[0]].vis_pub, "chain must start at a pub fn");
            assert_eq!(*chain.last().unwrap(), start, "chain must end at the query");
            for hop in chain.windows(2) {
                assert!(
                    prog.edge_allowed(hop[0], hop[1]),
                    "illegal hop {} -> {}",
                    prog.fns[hop[0]].name,
                    prog.fns[hop[1]].name
                );
                assert!(
                    prog.callers[hop[1]].contains(&hop[0]),
                    "hop not backed by a recorded edge"
                );
            }
            let shown = format_chain(&prog, &chain, prog.fns[start].unit);
            assert_eq!(
                shown.split(" \u{2192} ").count(),
                chain.len(),
                "one rendered segment per hop: {shown:?}"
            );
        }
    });
}

#[test]
fn crate_derivation_is_stable() {
    check(128, |g| {
        let dir = FN_NAMES[g.gen_range(0..FN_NAMES.len())];
        let file = FN_NAMES[g.gen_range(0..FN_NAMES.len())];
        let rel = format!("crates/{dir}/src/{file}.rs");
        assert_eq!(crate_of(&rel), format!("swque_{dir}"));
        assert_eq!(crate_of(&format!("tools/{file}.rs")), "swque");
    });
}
