//! swque-rng property tests for the recursive-descent parser.
//!
//! The parser is total and faithful by design (see `parser.rs` docs);
//! these tests pin the three properties the rule engine relies on:
//!
//! 1. **Totality** — arbitrary token soup never panics the parser, and
//!    whatever comes back is still well-formed: every item consumes at
//!    least one token and the top-level item ranges tile the token
//!    stream exactly.
//! 2. **Span tiling** — on generated semi-realistic programs, child
//!    items nest inside their parents in order without overlap, so a
//!    visitor sees every token exactly once.
//! 3. **Print stability** — `parse → pretty → re-lex` reproduces the
//!    original non-comment token text sequence, i.e. the AST holds the
//!    whole program, not a lossy sketch of it.

use swque_lint::lexer::lex;
use swque_lint::parser::{parse, Ast, Item, ItemKind};
use swque_rng::prop::{check, Gen};

/// Adversarial source fragments, mirroring the lexer suite plus
/// parser-relevant structure: braces, item keywords, attribute heads.
const SOUP: &[&str] = &[
    "fn", "mod", "impl", "struct", "enum", "pub", "{", "}", "(", ")", "[", "]", "#[", "#![",
    "cfg(test)", "]", ";", ",", "->", "::", ".", "=", "let", "for", "in", "as", "match", "if",
    "x", "ident", "0", "1.5", "'a", "\"s\"", "unsafe", "use", "static", "mut", "//", "/*", "*/",
    "\"", "r#\"", "αβ", "🦀", "+", "-", "&", "<", ">",
];

fn soup(g: &mut Gen, max_frags: usize) -> String {
    let n = g.gen_range(0..max_frags);
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(SOUP[g.gen_range(0..SOUP.len())]);
        if g.bool() {
            s.push(' ');
        }
    }
    s
}

/// Child items of `item` must sit inside its range, in order, without
/// overlapping each other.
fn assert_children_nest(ast: &Ast<'_>, item: &Item) {
    let children: &[Item] = match &item.kind {
        ItemKind::Mod { items, .. } | ItemKind::Container { items, .. } => items,
        _ => return,
    };
    let mut cursor = item.lo;
    for child in children {
        assert!(child.lo < child.hi, "empty child item span {}..{}", child.lo, child.hi);
        assert!(
            child.lo >= cursor && child.hi <= item.hi,
            "child {}..{} escapes parent {}..{} (cursor {cursor})",
            child.lo,
            child.hi,
            item.lo,
            item.hi
        );
        assert_children_nest(ast, child);
        cursor = child.hi;
    }
}

/// Top-level item ranges must tile `0..toks.len()` exactly: no gaps, no
/// overlap, nothing dropped. Recurses into nested items.
fn assert_tiles(ast: &Ast<'_>) {
    let mut cursor = 0usize;
    for item in &ast.items {
        assert_eq!(item.lo, cursor, "gap or overlap before item at token {}", item.lo);
        assert!(item.hi > item.lo, "item consumed no tokens at {}", item.lo);
        assert!(item.hi <= ast.toks.len());
        assert_children_nest(ast, item);
        cursor = item.hi;
    }
    assert_eq!(cursor, ast.toks.len(), "tokens dropped after the last item");
}

#[test]
fn token_soup_never_panics_and_items_tile() {
    check(512, |g| {
        let src = soup(g, 50);
        let ast = parse(&src);
        assert_tiles(&ast);
    });
}

const NAMES: &[&str] = &["alpha", "beta", "gamma", "delta", "omega", "sigma"];

/// Emits one random semi-realistic item (recursing for `mod` bodies).
fn gen_item(g: &mut Gen, depth: usize, out: &mut String) {
    let n = NAMES[g.gen_range(0..NAMES.len())];
    match g.gen_range(0u32..10) {
        0 => {
            out.push_str(&format!("fn {n}(x: u64, y: u64) -> u64 {{ let t = x + y; t }}\n"));
        }
        1 => out.push_str(&format!("pub fn {n}(v: &[u8]) -> usize {{ v.len() }}\n")),
        2 => out.push_str(&format!("struct {n} {{ a: u64, b: Vec<u8> }}\n")),
        3 => out.push_str(&format!("pub enum {n} {{ A, B(u64) }}\n")),
        4 if depth < 2 => {
            out.push_str(&format!("mod {n} {{\n"));
            for _ in 0..g.gen_range(0..3) {
                gen_item(g, depth + 1, out);
            }
            out.push_str("}\n");
        }
        5 => out.push_str(&format!("impl {n} {{ fn get(&self) -> u64 {{ self.a }} }}\n")),
        6 => out.push_str("use std::collections::BTreeMap;\n"),
        7 => out.push_str(&format!("static S_{n}: u64 = 42;\n")),
        8 => out.push_str(&format!(
            "#[cfg(test)]\nmod tests {{ fn {n}() {{ assert_eq!(1 + 1, 2); }} }}\n"
        )),
        _ => out.push_str(&format!(
            "fn {n}() {{ let mut t = 0u64; for i in [1u64, 2, 3] {{ t = t.wrapping_add(i); }} \
             if t > 3 {{ t = t.saturating_sub(1); }} }}\n"
        )),
    }
}

fn gen_program(g: &mut Gen) -> String {
    let mut src = String::new();
    for _ in 0..g.gen_range(0..7) {
        gen_item(g, 0, &mut src);
    }
    src
}

#[test]
fn generated_programs_tile_and_nest() {
    check(256, |g| {
        let src = gen_program(g);
        let ast = parse(&src);
        assert_tiles(&ast);
    });
}

#[test]
fn parse_pretty_relex_is_stable() {
    check(256, |g| {
        let src = gen_program(g);
        let ast = parse(&src);
        let printed = ast.pretty();
        let original: Vec<&str> = ast.toks.iter().map(|t| t.text).collect();
        let relexed: Vec<&str> =
            lex(&printed).iter().filter(|t| !t.is_comment()).map(|t| t.text).collect();
        assert_eq!(relexed, original, "pretty output drifted for {src:?}");
    });
}
