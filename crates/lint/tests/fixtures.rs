//! Fixture-corpus self-tests: one fixture per rule, each asserting the
//! exact diagnostic (rule, line, column, message) and that the rule's
//! `allow` pragma suppresses it.
//!
//! Fixtures are raw-string literals, not files on disk, so a workspace
//! scan of this crate never sees them as real violations (the only rule
//! that reads string contents, `mc-replay`, keys on the literal's leading
//! characters, and every fixture here leads with Rust source text).

use swque_lint::rules::{scan_manifest, scan_rust, Finding, RULES};

/// Runs one positive/negative fixture pair for a token rule:
/// `bare` must produce exactly one finding of `rule` at `(line, col)` whose
/// message contains `needle`; `allowed` (the same code with a pragma) must
/// produce none, with exactly one suppression recorded.
fn assert_rule(rule: &str, path: &str, bare: &str, allowed: &str, line: u32, col: u32, needle: &str) {
    let (findings, suppressed) = scan_rust(path, bare);
    assert_eq!(findings.len(), 1, "{rule}: expected one finding, got {findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, rule);
    assert_eq!((f.line, f.col), (line, col), "{rule}: wrong position: {f}");
    assert!(f.message.contains(needle), "{rule}: message {:?} lacks {needle:?}", f.message);
    assert_eq!(f.file, path);
    assert_eq!(suppressed, 0);

    let (findings, suppressed) = scan_rust(path, allowed);
    assert!(findings.is_empty(), "{rule}: pragma failed to suppress: {findings:?}");
    assert_eq!(suppressed, 1, "{rule}: suppression not recorded");
}

#[test]
fn fixture_no_unsafe() {
    assert_rule(
        "no-unsafe",
        "crates/core/src/fixture.rs",
        "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        "// swque-lint: allow(no-unsafe) — fixture exercising the pragma path\n\
         fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        1,
        28,
        "banned workspace-wide",
    );
}

#[test]
fn fixture_unordered_container() {
    // The rule fires on the *public-API escape*, not on a bare `use`: a
    // lookup-only private map is fine, a pub signature a caller could
    // iterate is not.
    assert_rule(
        "unordered-container",
        "crates/cpu/src/fixture.rs",
        "use std::collections::HashMap;\n\
         pub fn t(m: &HashMap<u64, u8>) -> usize { m.len() }\n",
        "use std::collections::HashMap;\n\
         // swque-lint: allow(unordered-container) — fixture: lookup-only map\n\
         pub fn t(m: &HashMap<u64, u8>) -> usize { m.len() }\n",
        2,
        14,
        "escapes through a public fn signature",
    );
}

#[test]
fn fixture_iterated_unordered() {
    assert_rule(
        "iterated-unordered",
        "crates/cpu/src/fixture.rs",
        "use std::collections::HashMap;\n\
         fn f(m: &HashMap<u64, u8>) { for k in m.keys() { let _ = k; } }\n",
        "use std::collections::HashMap;\n\
         // swque-lint: allow(iterated-unordered) — fixture: order-insensitive fold\n\
         fn f(m: &HashMap<u64, u8>) { for k in m.keys() { let _ = k; } }\n",
        2,
        41,
        "iteration order",
    );
}

#[test]
fn fixture_truncating_cast() {
    assert_rule(
        "truncating-cast",
        "crates/core/src/fixture.rs",
        "fn f(cycle: u64) -> u32 { cycle as u32 }\n",
        "// swque-lint: allow(truncating-cast) — fixture: bounded by construction\n\
         fn f(cycle: u64) -> u32 { cycle as u32 }\n",
        1,
        27,
        "narrows a counter-typed expression",
    );
}

#[test]
fn fixture_unchecked_arith() {
    assert_rule(
        "unchecked-arith",
        "crates/core/src/fixture.rs",
        "fn f(cycle: u64, tick: u64) -> u64 { cycle - tick }\n",
        "// swque-lint: allow(unchecked-arith) — fixture: tick <= cycle by construction\n\
         fn f(cycle: u64, tick: u64) -> u64 { cycle - tick }\n",
        1,
        44,
        "saturating_sub",
    );
}

#[test]
fn fixture_interior_mutability() {
    assert_rule(
        "interior-mutability",
        "crates/mem/src/fixture.rs",
        "fn f() { let c = std::cell::RefCell::new(0u8); c.replace(1); }\n",
        "// swque-lint: allow(interior-mutability) — fixture: single-threaded scratch cell\n\
         fn f() { let c = std::cell::RefCell::new(0u8); c.replace(1); }\n",
        1,
        29,
        "hidden write channels",
    );
}

#[test]
fn fixture_wall_clock() {
    assert_rule(
        "wall-clock",
        "crates/core/src/fixture.rs",
        "fn now() -> std::time::Instant { std::time::Instant::now() }\n",
        "// swque-lint: allow(wall-clock) — fixture: not simulated-path timing\n\
         fn now() -> std::time::Instant { std::time::Instant::now() }\n",
        1,
        13,
        "sanctioned timing harness",
    );
}

#[test]
fn fixture_ambient_rng() {
    assert_rule(
        "ambient-rng",
        "crates/workloads/src/fixture.rs",
        "fn roll() -> u64 { thread_rng().next_u64() }\n",
        "// swque-lint: allow(ambient-rng) — fixture: documenting the banned call\n\
         fn roll() -> u64 { thread_rng().next_u64() }\n",
        1,
        20,
        "ambient entropy",
    );
}

#[test]
fn fixture_panic_in_lib() {
    assert_rule(
        "panic-in-lib",
        "crates/trace/src/fixture.rs",
        "pub fn head(v: &[u8]) -> u8 { *v.first().unwrap() }\n",
        "// swque-lint: allow(panic-in-lib) — fixture: invariant documented at call site\n\
         pub fn head(v: &[u8]) -> u8 { *v.first().unwrap() }\n",
        1,
        42,
        "library code",
    );
}

#[test]
fn fixture_env_read() {
    assert_rule(
        "env-read",
        "crates/isa/src/fixture.rs",
        "pub fn knob() -> Option<String> { std::env::var(\"X\").ok() }\n",
        "// swque-lint: allow(env-read) — fixture: documented configuration knob\n\
         pub fn knob() -> Option<String> { std::env::var(\"X\").ok() }\n",
        1,
        35,
        "bench/bin harness layer",
    );
}

#[test]
fn fixture_cross_domain_arith() {
    assert_rule(
        "cross-domain-arith",
        "crates/mem/src/fixture.rs",
        "fn f(done_at: u64, issue_at: u64) -> u64 { done_at + issue_at }\n",
        "// swque-lint: allow(cross-domain-arith) — fixture: documenting the bad add\n\
         fn f(done_at: u64, issue_at: u64) -> u64 { done_at + issue_at }\n",
        1,
        52,
        "CycleStamp",
    );
}

#[test]
fn fixture_cross_domain_call() {
    assert_rule(
        "cross-domain-call",
        "crates/mem/src/fixture.rs",
        "// swque-domain: at: CycleStamp(launch)\n\
         fn launch(at: u64) { let _ = at; }\n\
         fn f(done_at: u64) { launch(done_at); }\n",
        "// swque-domain: at: CycleStamp(launch)\n\
         fn launch(at: u64) { let _ = at; }\n\
         // swque-lint: allow(cross-domain-call) — fixture: documenting the bad pass\n\
         fn f(done_at: u64) { launch(done_at); }\n",
        3,
        22,
        "parameter `at` expects CycleStamp(launch)",
    );
}

#[test]
fn fixture_malformed_pragma() {
    // A reasonless pragma is itself the finding; there is deliberately no
    // pragma that can suppress a malformed pragma.
    let (findings, suppressed) =
        scan_rust("crates/core/src/fixture.rs", "// swque-lint: allow(wall-clock)\nfn f() {}\n");
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.line, f.col), ("malformed-pragma", 1, 1));
    assert!(f.message.contains("reason"), "{:?}", f.message);
    assert_eq!(suppressed, 0);
}

#[test]
fn fixture_mc_replay() {
    assert_rule(
        "mc-replay",
        "crates/mc/tests/corpus.rs",
        "const T: &str = \"swque-mc-replay-v1 kind=CIRC cap=x width=1 inject=- expect=- \
         events=-\";\n",
        "// swque-lint: allow(mc-replay) — fixture: deliberately malformed trace\n\
         const T: &str = \"swque-mc-replay-v1 kind=CIRC cap=x width=1 inject=- expect=- \
         events=-\";\n",
        1,
        17,
        "cap",
    );
}

#[test]
fn mc_replay_accepts_valid_traces_and_the_bare_magic() {
    // A well-formed trace, the magic constant itself, and a raw-string
    // trace must all lint clean; a malformed raw string must not.
    let clean = "const A: &str = \"swque-mc-replay-v1 kind=SHIFT cap=2 width=1 inject=- \
                 expect=- events=d-.-,s1\";\n\
                 const M: &str = \"swque-mc-replay-v1\";\n\
                 const R: &str = r#\"swque-mc-replay-v1 kind=CTRL cap=0 width=0 inject=- \
                 expect=- events=e0:50\"#;\n";
    let (findings, _) = scan_rust("crates/mc/tests/corpus.rs", clean);
    assert!(findings.is_empty(), "{findings:?}");

    let bad_raw = "const R: &str = r\"swque-mc-replay-v1 kind=CTRL cap=0 width=0 inject=- \
                   expect=- events=s1\";\n";
    let (findings, _) = scan_rust("crates/mc/tests/corpus.rs", bad_raw);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "mc-replay");
    assert!(findings[0].message.contains("does not belong"), "{:?}", findings[0].message);
}

#[test]
fn fixture_external_dep() {
    let findings = scan_manifest("crates/x/Cargo.toml", "[dependencies]\nproptest = \"1\"\n");
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.line, f.col), ("external-dep", 2, 1));
    assert!(f.message.contains("hermetic"), "{:?}", f.message);
}

#[test]
fn fixture_registry_source() {
    let findings = scan_manifest(
        "Cargo.lock",
        "[[package]]\nname = \"rand\"\nsource = \"registry+https://github.com/rust-lang/crates.io-index\"\n",
    );
    // Line 3 is the registry source; the `name = "rand"` line is not an
    // external-dep finding because Cargo.lock only runs the lock rule.
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.line, f.col), ("registry-source", 3, 1));
    assert!(f.message.contains("path-only"), "{:?}", f.message);
}

/// Every rule in the table is exercised by a fixture above; this meta-test
/// fails when a rule is added without one.
#[test]
fn every_rule_has_a_fixture() {
    let covered = [
        "no-unsafe",
        "unordered-container",
        "iterated-unordered",
        "truncating-cast",
        "unchecked-arith",
        "interior-mutability",
        "wall-clock",
        "ambient-rng",
        "panic-in-lib",
        "env-read",
        "cross-domain-arith",
        "cross-domain-call",
        "malformed-pragma",
        "mc-replay",
        "external-dep",
        "registry-source",
    ];
    for rule in RULES {
        assert!(covered.contains(&rule), "rule {rule} has no fixture self-test");
    }
}

/// Class policy, end-to-end: the same source is a finding in a
/// deterministic crate and clean in an exempt location.
#[test]
fn policy_exemptions_hold() {
    let env_src = "pub fn knob() -> Option<String> { std::env::var(\"X\").ok() }\n";
    for exempt in [
        "crates/bench/src/harness.rs",    // harness crate
        "crates/cpu/src/bin/tool.rs",     // binary target
        "crates/mem/tests/integration.rs", // test tree
        "crates/rng/src/timer.rs",        // sanctioned timer
    ] {
        let (findings, _) = scan_rust(exempt, env_src);
        assert!(findings.is_empty(), "{exempt}: {findings:?}");
    }

    let clock_src = "fn t() { let _ = std::time::Instant::now(); }\n";
    for exempt in ["crates/rng/src/timer.rs", "crates/bench/src/bin/perf_gate.rs"] {
        let (findings, _) = scan_rust(exempt, clock_src);
        assert!(findings.is_empty(), "{exempt}: {findings:?}");
    }

    let map_src = "use std::collections::HashSet;\n\
                   pub fn t(s: &HashSet<u64>) -> usize { s.len() }\n";
    for exempt in ["crates/bench/src/table.rs", "crates/core/tests/model.rs"] {
        let (findings, _) = scan_rust(exempt, map_src);
        assert!(findings.is_empty(), "{exempt}: {findings:?}");
    }

    let panic_src = "pub fn f(v: Option<u8>) -> u8 { v.expect(\"set\") }\n";
    for exempt in ["crates/cpu/src/bin/tool.rs", "crates/cpu/tests/t.rs", "examples/demo.rs"] {
        let (findings, _) = scan_rust(exempt, panic_src);
        assert!(findings.is_empty(), "{exempt}: {findings:?}");
    }
}

/// Multi-rule pragma: one comment may allow several rules at once.
#[test]
fn pragma_with_multiple_rules() {
    let src = "// swque-lint: allow(wall-clock, env-read) — fixture: both on purpose\n\
               fn f() { let _ = std::time::Instant::now(); let _ = std::env::var(\"X\"); }\n";
    let (findings, suppressed) = scan_rust("crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 2);
}

/// A pragma for rule A does not hide rule B on the same line.
#[test]
fn pragma_is_rule_specific() {
    let src = "// swque-lint: allow(env-read) — fixture: env only\n\
               fn f() { let _ = std::time::Instant::now(); let _ = std::env::var(\"X\"); }\n";
    let (findings, suppressed) = scan_rust("crates/core/src/fixture.rs", src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "wall-clock");
    assert_eq!(suppressed, 1);
}

/// The diagnostics display as `file:line:col: [rule] message`.
#[test]
fn diagnostic_format() {
    let (findings, _) =
        scan_rust("crates/core/src/fixture.rs", "fn f(cycle: u64) -> u32 { cycle as u32 }\n");
    let shown = findings[0].to_string();
    assert!(
        shown.starts_with("crates/core/src/fixture.rs:1:27: [truncating-cast]"),
        "{shown}"
    );
    let _: &Finding = &findings[0];
}
