//! swque-rng property tests for the cycle-domain dataflow pass.
//!
//! Programs are *generated with their expected verdict*: every function
//! body is built from a name pool whose domains are known, so the test
//! can compute — from the documented algebra alone — exactly how many
//! `cross-domain-arith` findings the pass must report. Three shapes:
//!
//! 1. **Direct arithmetic / comparison** on two seeded parameters.
//! 2. **Let-chains** — the same pair routed through one or more `let`
//!    rebindings, which must not change the verdict (propagation is
//!    domain-preserving).
//! 3. **Annotated parameters** — a `// swque-domain:` annotation
//!    overriding one side, with the verdict recomputed from the
//!    annotated base.
//!
//! A final totality test runs the full `scan_rust` pipeline over token
//! soup: whatever the input, the scanner returns rather than panics.

use swque_lint::domains::{collect_annotations, domain_rules, fn_sigs, seed_name, Base};
use swque_lint::lexer::lex;
use swque_lint::resolve::Program;
use swque_lint::rules::scan_rust;
use swque_rng::prop::{check, Gen};

/// Name pool with its seeded base. Names avoid `-`-adjacent counterish
/// lexicon words only where needed: generated bodies use `+` and `<`
/// exclusively, which no other rule inspects, so `cross-domain-arith`
/// findings can be counted without cross-talk.
const NAMES: &[(&str, Base)] = &[
    ("done_at", Base::CycleStamp),
    ("issue_at", Base::CycleStamp),
    ("now", Base::CycleStamp),
    ("hit_latency", Base::CycleDelta),
    ("stall_penalty", Base::CycleDelta),
    ("insts_retired", Base::InstCount),
    ("line_addr", Base::ByteAddr),
    ("requester", Base::RequesterId),
    ("dst_tag", Base::SlotTag),
    ("epoch", Base::IntervalIdx),
];

/// Annotation specs with their base, for the override shape.
const SPECS: &[(&str, Base)] = &[
    ("CycleStamp", Base::CycleStamp),
    ("CycleStamp(launch)", Base::CycleStamp),
    ("CycleStamp(completion)", Base::CycleStamp),
    ("CycleDelta", Base::CycleDelta),
    ("InstCount", Base::InstCount),
    ("ByteAddr", Base::ByteAddr),
    ("RequesterId", Base::RequesterId),
    ("SlotTag", Base::SlotTag),
    ("IntervalIdx", Base::IntervalIdx),
];

/// The documented `+` verdict: stamp+stamp and mixed bases (other than
/// stamp±delta) are findings.
fn add_is_finding(a: Base, b: Base) -> bool {
    use Base::{CycleDelta, CycleStamp};
    match (a, b) {
        (CycleStamp, CycleStamp) => true,
        (CycleStamp, CycleDelta) | (CycleDelta, CycleStamp) => false,
        (x, y) => x != y,
    }
}

/// The documented compare verdict: both known and bases differ.
fn cmp_is_finding(a: Base, b: Base) -> bool {
    a != b
}

/// Emits one function, returning how many findings it must produce.
fn gen_fn(g: &mut Gen, idx: usize, out: &mut String) -> usize {
    let (an, ab) = NAMES[g.gen_range(0..NAMES.len())];
    let (bn, bb) = NAMES[g.gen_range(0..NAMES.len())];
    if an == bn {
        // `a + a` with one parameter: same base, never a finding for
        // non-stamp bases; stamp+stamp still is.
        out.push_str(&format!("fn f{idx}({an}: u64) -> u64 {{ {an} + {an} }}\n"));
        return usize::from(add_is_finding(ab, bb));
    }
    match g.gen_range(0u32..4) {
        0 => {
            out.push_str(&format!("fn f{idx}({an}: u64, {bn}: u64) -> u64 {{ {an} + {bn} }}\n"));
            usize::from(add_is_finding(ab, bb))
        }
        1 => {
            out.push_str(&format!("fn f{idx}({an}: u64, {bn}: u64) -> bool {{ {an} < {bn} }}\n"));
            usize::from(cmp_is_finding(ab, bb))
        }
        2 => {
            // Let-chain: rebinding must preserve the verdict. The chain
            // names are domain-neutral (`v0`, `v1`, …).
            let hops = g.gen_range(1..3usize);
            out.push_str(&format!("fn f{idx}({an}: u64, {bn}: u64) -> u64 {{\n"));
            out.push_str(&format!("    let v0 = {an};\n"));
            for h in 1..hops + 1 {
                out.push_str(&format!("    let v{h} = v{};\n", h - 1));
            }
            out.push_str(&format!("    v{hops} + {bn}\n}}\n"));
            usize::from(add_is_finding(ab, bb))
        }
        _ => {
            // Annotated override on a neutral name: the annotation, not
            // the (absent) seed, decides the verdict.
            let (spec, sb) = SPECS[g.gen_range(0..SPECS.len())];
            out.push_str(&format!("// swque-domain: x: {spec}\n"));
            out.push_str(&format!("fn f{idx}(x: u64, {bn}: u64) -> u64 {{ x + {bn} }}\n"));
            usize::from(add_is_finding(sb, bb))
        }
    }
}

/// Runs the dataflow pass alone over one deterministic-crate file.
fn domain_findings(src: &str) -> Vec<swque_lint::rules::Finding> {
    let sources = vec![("crates/mem/src/gen.rs".to_string(), src.to_string())];
    let prog = Program::build(&sources);
    let toks = lex(src);
    let (annots, malformed) = collect_annotations(&toks, "crates/mem/src/gen.rs");
    assert!(malformed.is_empty(), "generated annotations must parse: {malformed:?}");
    let per_unit = vec![annots];
    let sigs = fn_sigs(&prog, &per_unit);
    let mut out = Vec::new();
    domain_rules(&prog, &sigs, &per_unit, &mut out);
    out
}

#[test]
fn generated_programs_match_their_computed_verdict() {
    check(256, |g| {
        let mut src = String::new();
        let mut expected = 0usize;
        for idx in 0..g.gen_range(1..6usize) {
            expected += gen_fn(g, idx, &mut src);
        }
        let found = domain_findings(&src);
        assert!(
            found.iter().all(|f| f.rule == "cross-domain-arith"),
            "only arith findings expected: {found:?}"
        );
        assert_eq!(
            found.len(),
            expected,
            "wrong finding count for generated program:\n{src}\n{found:?}"
        );
        for f in &found {
            assert!(!f.domain_from.is_empty() && !f.domain_to.is_empty(), "{f:?}");
        }
    });
}

#[test]
fn seeding_agrees_with_the_pool_and_is_total() {
    check(256, |g| {
        // Pool names seed to their table base...
        let (name, base) = NAMES[g.gen_range(0..NAMES.len())];
        assert_eq!(seed_name(name).map(|d| d.base), Some(base));
        // ...and arbitrary identifier-ish strings never panic the seeder.
        let junk: String = (0..g.gen_range(0..12usize))
            .map(|_| {
                let c = g.gen_range(0u32..38);
                match c {
                    0..=25 => (b'a' + c as u8) as char,
                    26..=35 => (b'0' + (c - 26) as u8) as char,
                    36 => '_',
                    _ => 'é',
                }
            })
            .collect();
        let _ = seed_name(&junk);
    });
}

#[test]
fn full_scanner_is_total_on_soup() {
    const SOUP: &[&str] = &[
        "fn", "pub", "let", "=", "+", "-", "<", "(", ")", "{", "}", ";", ",", "->", "u64",
        "done_at", "now", "hit_latency", "self", ".", "::", "// swque-domain:", "x:", "CycleStamp",
        "saturating_sub", "unwrap", "\"s\"", "0", "/*", "#[", "]", "cfg(test)",
    ];
    check(256, |g| {
        let n = g.gen_range(0..60usize);
        let mut src = String::new();
        for _ in 0..n {
            src.push_str(SOUP[g.gen_range(0..SOUP.len())]);
            src.push(if g.bool() { ' ' } else { '\n' });
        }
        // Whatever the soup (including torn annotations), the scanner
        // returns findings rather than panicking.
        let _ = scan_rust("crates/mem/src/soup.rs", &src);
    });
}
