//! The versioned `swque-lint-v2` JSON report.
//!
//! Shape (all keys always present, validated by the `check_json` binary in
//! `swque-bench` and documented field-by-field in DESIGN.md §8):
//!
//! ```json
//! {
//!   "schema": "swque-lint-v2",
//!   "files_scanned": 123,
//!   "suppressed": 2,
//!   "status": "ok",
//!   "rules": [ {"rule": "no-unsafe", "count": 0, "baseline": 0}, … ],
//!   "findings": [ {"rule": "…", "rule_class": "token", "file": "…",
//!                  "line": 1, "col": 5, "message": "…"}, … ]
//! }
//! ```
//!
//! `status` is `"ok"` when every rule is at or under its baseline and
//! `"baseline-exceeded"` otherwise; `rules` lists every known rule in
//! stable order with its current count and its baseline allowance.
//!
//! v2 differs from v1 in exactly one way: every finding carries a
//! `rule_class` (`token`, `ast`, or `reachability` — see
//! [`crate::rules::rule_class`]) naming the analysis layer that produced
//! it. [`migrate_report`] lifts an archived v1 document to v2 by deriving
//! the class from the rule name, so old reports stay consumable.

use std::collections::BTreeMap;

use swque_trace::Json;

use crate::baseline::Baseline;
use crate::rules::{rule_class, RULES};
use crate::Scan;

/// Schema identifier written into every report.
pub const LINT_SCHEMA: &str = "swque-lint-v2";

/// The previous report schema, still accepted by consumers (findings lack
/// `rule_class`).
pub const LINT_SCHEMA_V1: &str = "swque-lint-v1";

/// Serializes a scan plus its ratchet verdict as a `swque-lint-v2`
/// document.
pub fn report_json(scan: &Scan, counts: &BTreeMap<&'static str, u64>, baseline: &Baseline) -> Json {
    let ok = counts.iter().all(|(rule, &n)| n <= baseline.allowed(rule));
    let rules = RULES
        .iter()
        .map(|&rule| {
            Json::obj([
                ("rule", Json::from(rule)),
                ("count", Json::from(counts.get(rule).copied().unwrap_or(0))),
                ("baseline", Json::from(baseline.allowed(rule))),
            ])
        })
        .collect();
    let findings = scan
        .findings
        .iter()
        .map(|f| {
            Json::obj([
                ("rule", Json::from(f.rule)),
                ("rule_class", Json::from(rule_class(f.rule))),
                ("file", Json::from(f.file.as_str())),
                ("line", Json::from(u64::from(f.line))),
                ("col", Json::from(u64::from(f.col))),
                ("message", Json::from(f.message.as_str())),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::from(LINT_SCHEMA)),
        ("files_scanned", Json::from(scan.files_scanned as u64)),
        ("suppressed", Json::from(scan.suppressed as u64)),
        ("status", Json::from(if ok { "ok" } else { "baseline-exceeded" })),
        ("rules", Json::Arr(rules)),
        ("findings", Json::Arr(findings)),
    ])
}

/// Lifts a lint report to the current schema. A v2 document is returned
/// unchanged; a v1 document gets its schema bumped and a `rule_class`
/// derived from each finding's rule name (inserted directly after `rule`,
/// preserving v2 key order). Anything else is an error.
pub fn migrate_report(doc: &Json) -> Result<Json, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(LINT_SCHEMA) => Ok(doc.clone()),
        Some(LINT_SCHEMA_V1) => {
            let Json::Obj(pairs) = doc else {
                return Err("lint report is not an object".to_string());
            };
            let pairs = pairs
                .iter()
                .map(|(k, v)| {
                    let v = match k.as_str() {
                        "schema" => Json::from(LINT_SCHEMA),
                        "findings" => {
                            let arr = v.as_arr().unwrap_or(&[]);
                            Json::Arr(arr.iter().map(migrate_finding).collect())
                        }
                        _ => v.clone(),
                    };
                    (k.clone(), v)
                })
                .collect();
            Ok(Json::Obj(pairs))
        }
        other => Err(format!(
            "lint report schema {other:?}, expected {LINT_SCHEMA:?} or {LINT_SCHEMA_V1:?}"
        )),
    }
}

/// Inserts the derived `rule_class` after `rule` in one v1 finding.
fn migrate_finding(f: &Json) -> Json {
    let Json::Obj(pairs) = f else { return f.clone() };
    let class = f.get("rule").and_then(Json::as_str).map(rule_class).unwrap_or("token");
    let mut out = Vec::with_capacity(pairs.len() + 1);
    for (k, v) in pairs {
        out.push((k.clone(), v.clone()));
        if k == "rule" {
            out.push(("rule_class".to_string(), Json::from(class)));
        }
    }
    Json::Obj(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    fn scan_with(findings: Vec<Finding>) -> Scan {
        Scan { findings, suppressed: 1, files_scanned: 3 }
    }

    #[test]
    fn report_shape_is_stable_and_parses() {
        let scan = scan_with(vec![Finding {
            rule: "wall-clock",
            file: "crates/core/src/x.rs".to_string(),
            line: 4,
            col: 9,
            message: "`Instant` outside the sanctioned timing harness".to_string(),
        }]);
        let doc = report_json(&scan, &scan.counts(), &Baseline::default());
        assert_eq!(
            doc.keys(),
            vec!["schema", "files_scanned", "suppressed", "status", "rules", "findings"],
        );
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(LINT_SCHEMA));
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("baseline-exceeded"));
        let rules = doc.get("rules").and_then(Json::as_arr).unwrap();
        assert_eq!(rules.len(), RULES.len());
        for r in rules {
            assert_eq!(r.keys(), vec!["rule", "count", "baseline"]);
        }
        let findings = doc.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(
            findings[0].keys(),
            vec!["rule", "rule_class", "file", "line", "col", "message"]
        );
        assert_eq!(findings[0].get("rule_class").and_then(Json::as_str), Some("token"));
        // Round-trips through the in-tree parser.
        let back = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn migrates_v1_to_v2_and_v2_is_identity() {
        let v1 = Json::parse(
            r#"{"schema":"swque-lint-v1","files_scanned":1,"suppressed":0,
                "status":"baseline-exceeded",
                "rules":[{"rule":"panic-in-lib","count":1,"baseline":0}],
                "findings":[{"rule":"panic-in-lib","file":"crates/core/src/x.rs",
                             "line":3,"col":5,"message":"m"}]}"#,
        )
        .unwrap();
        let v2 = migrate_report(&v1).unwrap();
        assert_eq!(v2.get("schema").and_then(Json::as_str), Some(LINT_SCHEMA));
        let f = &v2.get("findings").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(
            f.keys(),
            vec!["rule", "rule_class", "file", "line", "col", "message"],
            "rule_class lands directly after rule"
        );
        assert_eq!(f.get("rule_class").and_then(Json::as_str), Some("reachability"));
        // Migration is idempotent: a v2 document passes through unchanged.
        assert_eq!(migrate_report(&v2).unwrap(), v2);
        // Unknown schemas are an error, not a silent pass-through.
        let junk = Json::obj([("schema", Json::from("swque-lint-v0"))]);
        assert!(migrate_report(&junk).unwrap_err().contains("schema"));
    }

    #[test]
    fn status_ok_when_baseline_holds_the_debt() {
        let scan = scan_with(vec![Finding {
            rule: "panic-in-lib",
            file: "crates/bench/src/output.rs".to_string(),
            line: 1,
            col: 1,
            message: "x".to_string(),
        }]);
        let counts = scan.counts();
        let baseline = Baseline::from_counts(&counts);
        let doc = report_json(&scan, &counts, &baseline);
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    }
}
