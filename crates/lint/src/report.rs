//! The versioned `swque-lint-v3` JSON report.
//!
//! Shape (all keys always present, validated by the `check_json` binary in
//! `swque-bench` and documented field-by-field in DESIGN.md §8):
//!
//! ```json
//! {
//!   "schema": "swque-lint-v3",
//!   "files_scanned": 123,
//!   "suppressed": 2,
//!   "status": "ok",
//!   "rules": [ {"rule": "no-unsafe", "count": 0, "baseline": 0}, … ],
//!   "findings": [ {"rule": "…", "rule_class": "token", "file": "…",
//!                  "line": 1, "col": 5, "message": "…",
//!                  "domain_from": "", "domain_to": "", "chain": ""}, … ]
//! }
//! ```
//!
//! `status` is `"ok"` when every rule is at or under its baseline and
//! `"baseline-exceeded"` otherwise; `rules` lists every known rule in
//! stable order with its current count and its baseline allowance.
//!
//! The version history, one key-set change per version:
//!
//! * **v1 → v2**: every finding gains a `rule_class` (`token`, `ast`,
//!   `reachability`, or — since v3 — `dataflow`; see
//!   [`crate::rules::rule_class`]) naming the analysis layer.
//! * **v2 → v3**: every finding gains `domain_from`/`domain_to` (the
//!   rendered cycle domains of a dataflow finding, empty for other
//!   rules) and `chain` (the pub-to-site reachability hop chain of a
//!   `panic-in-lib` finding, empty when there is none).
//!
//! [`migrate_report`] lifts an archived v1 or v2 document to v3 —
//! deriving `rule_class` from the rule name and filling the v3 keys with
//! their empty defaults — so old reports stay consumable; v3 documents
//! pass through unchanged.

use std::collections::BTreeMap;

use swque_trace::Json;

use crate::baseline::Baseline;
use crate::rules::{rule_class, RULES};
use crate::Scan;

/// Schema identifier written into every report.
pub const LINT_SCHEMA: &str = "swque-lint-v3";

/// The v2 schema, still accepted by consumers (findings lack the domain
/// pair and chain).
pub const LINT_SCHEMA_V2: &str = "swque-lint-v2";

/// The original report schema, still accepted by consumers (findings
/// additionally lack `rule_class`).
pub const LINT_SCHEMA_V1: &str = "swque-lint-v1";

/// Serializes a scan plus its ratchet verdict as a `swque-lint-v3`
/// document.
pub fn report_json(scan: &Scan, counts: &BTreeMap<&'static str, u64>, baseline: &Baseline) -> Json {
    let ok = counts.iter().all(|(rule, &n)| n <= baseline.allowed(rule));
    let rules = RULES
        .iter()
        .map(|&rule| {
            Json::obj([
                ("rule", Json::from(rule)),
                ("count", Json::from(counts.get(rule).copied().unwrap_or(0))),
                ("baseline", Json::from(baseline.allowed(rule))),
            ])
        })
        .collect();
    let findings = scan
        .findings
        .iter()
        .map(|f| {
            Json::obj([
                ("rule", Json::from(f.rule)),
                ("rule_class", Json::from(rule_class(f.rule))),
                ("file", Json::from(f.file.as_str())),
                ("line", Json::from(u64::from(f.line))),
                ("col", Json::from(u64::from(f.col))),
                ("message", Json::from(f.message.as_str())),
                ("domain_from", Json::from(f.domain_from.as_str())),
                ("domain_to", Json::from(f.domain_to.as_str())),
                ("chain", Json::from(f.chain.as_str())),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::from(LINT_SCHEMA)),
        ("files_scanned", Json::from(scan.files_scanned as u64)),
        ("suppressed", Json::from(scan.suppressed as u64)),
        ("status", Json::from(if ok { "ok" } else { "baseline-exceeded" })),
        ("rules", Json::Arr(rules)),
        ("findings", Json::Arr(findings)),
    ])
}

/// Lifts a lint report to the current schema. A v3 document is returned
/// unchanged; a v2 document gets the empty `domain_from`/`domain_to`/
/// `chain` keys appended to each finding; a v1 document additionally
/// gets a `rule_class` derived from each finding's rule name (inserted
/// directly after `rule`, preserving current key order). Anything else
/// is an error.
pub fn migrate_report(doc: &Json) -> Result<Json, String> {
    let schema = doc.get("schema").and_then(Json::as_str);
    let (add_class, add_domains) = match schema {
        Some(LINT_SCHEMA) => return Ok(doc.clone()),
        Some(LINT_SCHEMA_V2) => (false, true),
        Some(LINT_SCHEMA_V1) => (true, true),
        other => {
            return Err(format!(
                "lint report schema {other:?}, expected {LINT_SCHEMA:?}, {LINT_SCHEMA_V2:?}, \
                 or {LINT_SCHEMA_V1:?}"
            ))
        }
    };
    let Json::Obj(pairs) = doc else {
        return Err("lint report is not an object".to_string());
    };
    let pairs = pairs
        .iter()
        .map(|(k, v)| {
            let v = match k.as_str() {
                "schema" => Json::from(LINT_SCHEMA),
                "findings" => {
                    let arr = v.as_arr().unwrap_or(&[]);
                    Json::Arr(arr.iter().map(|f| migrate_finding(f, add_class, add_domains)).collect())
                }
                _ => v.clone(),
            };
            (k.clone(), v)
        })
        .collect();
    Ok(Json::Obj(pairs))
}

/// Lifts one finding: optionally inserts the derived `rule_class` after
/// `rule`, then appends the empty v3 keys.
fn migrate_finding(f: &Json, add_class: bool, add_domains: bool) -> Json {
    let Json::Obj(pairs) = f else { return f.clone() };
    let class = f.get("rule").and_then(Json::as_str).map(rule_class).unwrap_or("token");
    let mut out = Vec::with_capacity(pairs.len() + 4);
    for (k, v) in pairs {
        out.push((k.clone(), v.clone()));
        if add_class && k == "rule" {
            out.push(("rule_class".to_string(), Json::from(class)));
        }
    }
    if add_domains {
        for key in ["domain_from", "domain_to", "chain"] {
            out.push((key.to_string(), Json::from("")));
        }
    }
    Json::Obj(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    const V3_FINDING_KEYS: [&str; 9] = [
        "rule",
        "rule_class",
        "file",
        "line",
        "col",
        "message",
        "domain_from",
        "domain_to",
        "chain",
    ];

    fn scan_with(findings: Vec<Finding>) -> Scan {
        Scan { findings, suppressed: 1, files_scanned: 3 }
    }

    #[test]
    fn report_shape_is_stable_and_parses() {
        let mut f = Finding::new(
            "wall-clock",
            "crates/core/src/x.rs".to_string(),
            4,
            9,
            "`Instant` outside the sanctioned timing harness".to_string(),
        );
        f.chain = String::new();
        let scan = scan_with(vec![f]);
        let doc = report_json(&scan, &scan.counts(), &Baseline::default());
        assert_eq!(
            doc.keys(),
            vec!["schema", "files_scanned", "suppressed", "status", "rules", "findings"],
        );
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(LINT_SCHEMA));
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("baseline-exceeded"));
        let rules = doc.get("rules").and_then(Json::as_arr).unwrap();
        assert_eq!(rules.len(), RULES.len());
        for r in rules {
            assert_eq!(r.keys(), vec!["rule", "count", "baseline"]);
        }
        let findings = doc.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(findings[0].keys(), V3_FINDING_KEYS.to_vec());
        assert_eq!(findings[0].get("rule_class").and_then(Json::as_str), Some("token"));
        assert_eq!(findings[0].get("domain_from").and_then(Json::as_str), Some(""));
        // Round-trips through the in-tree parser.
        let back = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn dataflow_findings_carry_their_domain_pair() {
        let mut f = Finding::new(
            "cross-domain-call",
            "crates/mem/src/hierarchy.rs".to_string(),
            360,
            40,
            "completion stamp passed as launch".to_string(),
        );
        f.domain_from = "CycleStamp(completion)".to_string();
        f.domain_to = "CycleStamp(launch)".to_string();
        let scan = scan_with(vec![f]);
        let doc = report_json(&scan, &scan.counts(), &Baseline::default());
        let j = &doc.get("findings").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(j.get("rule_class").and_then(Json::as_str), Some("dataflow"));
        assert_eq!(
            j.get("domain_from").and_then(Json::as_str),
            Some("CycleStamp(completion)")
        );
        assert_eq!(j.get("domain_to").and_then(Json::as_str), Some("CycleStamp(launch)"));
    }

    #[test]
    fn migrates_v1_and_v2_to_v3_and_v3_is_identity() {
        let v1 = Json::parse(
            r#"{"schema":"swque-lint-v1","files_scanned":1,"suppressed":0,
                "status":"baseline-exceeded",
                "rules":[{"rule":"panic-in-lib","count":1,"baseline":0}],
                "findings":[{"rule":"panic-in-lib","file":"crates/core/src/x.rs",
                             "line":3,"col":5,"message":"m"}]}"#,
        )
        .unwrap();
        let v3 = migrate_report(&v1).unwrap();
        assert_eq!(v3.get("schema").and_then(Json::as_str), Some(LINT_SCHEMA));
        let f = &v3.get("findings").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(f.keys(), V3_FINDING_KEYS.to_vec(), "v1 gains class + v3 keys");
        assert_eq!(f.get("rule_class").and_then(Json::as_str), Some("reachability"));
        assert_eq!(f.get("chain").and_then(Json::as_str), Some(""));

        let v2 = Json::parse(
            r#"{"schema":"swque-lint-v2","files_scanned":1,"suppressed":0,
                "status":"ok",
                "rules":[{"rule":"wall-clock","count":0,"baseline":0}],
                "findings":[{"rule":"wall-clock","rule_class":"token",
                             "file":"crates/core/src/x.rs",
                             "line":3,"col":5,"message":"m"}]}"#,
        )
        .unwrap();
        let lifted = migrate_report(&v2).unwrap();
        assert_eq!(lifted.get("schema").and_then(Json::as_str), Some(LINT_SCHEMA));
        let f = &lifted.get("findings").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(f.keys(), V3_FINDING_KEYS.to_vec(), "v2 gains exactly the v3 keys");

        // Migration is idempotent: a v3 document passes through unchanged.
        assert_eq!(migrate_report(&lifted).unwrap(), lifted);
        // Unknown schemas are an error, not a silent pass-through.
        let junk = Json::obj([("schema", Json::from("swque-lint-v0"))]);
        assert!(migrate_report(&junk).unwrap_err().contains("schema"));
    }

    #[test]
    fn status_ok_when_baseline_holds_the_debt() {
        let scan = scan_with(vec![Finding::new(
            "panic-in-lib",
            "crates/bench/src/output.rs".to_string(),
            1,
            1,
            "x".to_string(),
        )]);
        let counts = scan.counts();
        let baseline = Baseline::from_counts(&counts);
        let doc = report_json(&scan, &counts, &baseline);
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    }
}
