//! The versioned `swque-lint-v1` JSON report.
//!
//! Shape (all keys always present, validated by the `check_json` binary in
//! `swque-bench` and documented field-by-field in DESIGN.md §8):
//!
//! ```json
//! {
//!   "schema": "swque-lint-v1",
//!   "files_scanned": 123,
//!   "suppressed": 2,
//!   "status": "ok",
//!   "rules": [ {"rule": "no-unsafe", "count": 0, "baseline": 0}, … ],
//!   "findings": [ {"rule": "…", "file": "…", "line": 1, "col": 5,
//!                  "message": "…"}, … ]
//! }
//! ```
//!
//! `status` is `"ok"` when every rule is at or under its baseline and
//! `"baseline-exceeded"` otherwise; `rules` lists every known rule in
//! stable order with its current count and its baseline allowance.

use std::collections::BTreeMap;

use swque_trace::Json;

use crate::baseline::Baseline;
use crate::rules::RULES;
use crate::Scan;

/// Schema identifier written into every report.
pub const LINT_SCHEMA: &str = "swque-lint-v1";

/// Serializes a scan plus its ratchet verdict as a `swque-lint-v1`
/// document.
pub fn report_json(scan: &Scan, counts: &BTreeMap<&'static str, u64>, baseline: &Baseline) -> Json {
    let ok = counts.iter().all(|(rule, &n)| n <= baseline.allowed(rule));
    let rules = RULES
        .iter()
        .map(|&rule| {
            Json::obj([
                ("rule", Json::from(rule)),
                ("count", Json::from(counts.get(rule).copied().unwrap_or(0))),
                ("baseline", Json::from(baseline.allowed(rule))),
            ])
        })
        .collect();
    let findings = scan
        .findings
        .iter()
        .map(|f| {
            Json::obj([
                ("rule", Json::from(f.rule)),
                ("file", Json::from(f.file.as_str())),
                ("line", Json::from(u64::from(f.line))),
                ("col", Json::from(u64::from(f.col))),
                ("message", Json::from(f.message.as_str())),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::from(LINT_SCHEMA)),
        ("files_scanned", Json::from(scan.files_scanned as u64)),
        ("suppressed", Json::from(scan.suppressed as u64)),
        ("status", Json::from(if ok { "ok" } else { "baseline-exceeded" })),
        ("rules", Json::Arr(rules)),
        ("findings", Json::Arr(findings)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    fn scan_with(findings: Vec<Finding>) -> Scan {
        Scan { findings, suppressed: 1, files_scanned: 3 }
    }

    #[test]
    fn report_shape_is_stable_and_parses() {
        let scan = scan_with(vec![Finding {
            rule: "wall-clock",
            file: "crates/core/src/x.rs".to_string(),
            line: 4,
            col: 9,
            message: "`Instant` outside the sanctioned timing harness".to_string(),
        }]);
        let doc = report_json(&scan, &scan.counts(), &Baseline::default());
        assert_eq!(
            doc.keys(),
            vec!["schema", "files_scanned", "suppressed", "status", "rules", "findings"],
        );
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(LINT_SCHEMA));
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("baseline-exceeded"));
        let rules = doc.get("rules").and_then(Json::as_arr).unwrap();
        assert_eq!(rules.len(), RULES.len());
        for r in rules {
            assert_eq!(r.keys(), vec!["rule", "count", "baseline"]);
        }
        let findings = doc.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(findings[0].keys(), vec!["rule", "file", "line", "col", "message"]);
        // Round-trips through the in-tree parser.
        let back = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn status_ok_when_baseline_holds_the_debt() {
        let scan = scan_with(vec![Finding {
            rule: "panic-in-lib",
            file: "crates/bench/src/output.rs".to_string(),
            line: 1,
            col: 1,
            message: "x".to_string(),
        }]);
        let counts = scan.counts();
        let baseline = Baseline::from_counts(&counts);
        let doc = report_json(&scan, &counts, &baseline);
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    }
}
