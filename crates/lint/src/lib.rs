//! `swque-lint` — the workspace's determinism and hermeticity analyzer.
//!
//! The SWQUE reproduction's evidence — golden cycle pins, lockstep bitset
//! differentials, byte-identical parallel sweeps — rests on a contract the
//! compiler does not enforce: simulated-path code must not read the wall
//! clock, tap ambient randomness, iterate unordered containers, or consult
//! the environment. This crate enforces that contract statically:
//!
//! * [`lexer`] — a minimal, total Rust lexer (comments, string/char/raw
//!   literals, idents, punctuation) so rules see *code*, never prose.
//! * [`parser`] — a total recursive-descent parser over the token stream
//!   (items, blocks, expressions, method calls) giving rules structure:
//!   what is iterated, what is cast, what is reachable from public API.
//! * [`resolve`] — the workspace-wide program model: every file of every
//!   crate parsed into one structure with a cross-file, cross-crate call
//!   graph (crate identity derived from workspace paths, visibility- and
//!   import-scoped edges).
//! * [`domains`] — the cycle-domain dataflow pass: integer values
//!   classified (stamps vs deltas vs instruction counts vs …) from names
//!   and `// swque-domain:` annotations, propagated through bindings and
//!   calls, with cross-domain arithmetic/comparison/argument findings.
//! * [`rules`] — the AST-visitor rule engine with per-crate-class
//!   policies and reasoned `// swque-lint: allow(rule) — why` pragmas.
//! * [`baseline`] — the committed per-rule ratchet (`lint-baseline.json`):
//!   pre-existing debt is held exactly, new debt fails the build, paid-down
//!   debt nags until the baseline is tightened.
//! * [`report`] — the versioned `swque-lint-v3` JSON report (findings
//!   tagged with their `rule_class`, domain pair, and reachability chain)
//!   consumed by the `check_json` validator, plus the v1→v2→v3 migration
//!   shims for archived reports.
//!
//! The `swque-lint` binary (`src/main.rs`) drives a workspace scan;
//! `scripts/verify.sh` runs it as a hard gate. The rule table, policy
//! matrix, pragma grammar, and ratchet semantics are documented in
//! DESIGN.md §8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod domains;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod resolve;
pub mod rules;

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use rules::{scan_manifest, scan_sources, Finding, RULES};

/// Everything one workspace scan produced.
#[derive(Debug, Clone)]
pub struct Scan {
    /// Surviving (unsuppressed) findings, in path order.
    pub findings: Vec<Finding>,
    /// Findings silenced by a valid pragma.
    pub suppressed: usize,
    /// Files scanned (Rust sources plus manifests).
    pub files_scanned: usize,
}

impl Scan {
    /// Per-rule finding counts, with every known rule present (zeros
    /// included) so the ratchet and the report cover the full rule set.
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts: BTreeMap<&'static str, u64> = RULES.iter().map(|&r| (r, 0)).collect();
        for f in &self.findings {
            if let Some(n) = counts.get_mut(f.rule) {
                *n += 1;
            }
        }
        counts
    }
}

/// True for directories the walker must not descend into: build output,
/// VCS metadata, and anything hidden.
fn skip_dir(name: &str) -> bool {
    name == "target" || name.starts_with('.')
}

/// Collects every lintable file under `root`: `*.rs`, `Cargo.toml`, and
/// `Cargo.lock`, skipping `target/` and hidden directories. Paths come
/// back sorted so scans (and their reports) are deterministic.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !skip_dir(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") || name == "Cargo.toml" || name == "Cargo.lock" {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// The workspace-relative, forward-slash form of `path` used in policies
/// and diagnostics.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Scans every lintable file under `root`. Rust sources are collected
/// first and analyzed as **one program** (so reachability chains and
/// domain resolution cross file and crate boundaries); manifests keep
/// their per-file line rules.
pub fn scan_workspace(root: &Path) -> io::Result<Scan> {
    let mut scan = Scan { findings: Vec::new(), suppressed: 0, files_scanned: 0 };
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in collect_files(root)? {
        let rel = relative(root, &path);
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue; // non-UTF-8 file: nothing for a Rust lexer to do
        };
        scan.files_scanned += 1;
        if rel.ends_with(".rs") {
            sources.push((rel, src));
        } else {
            scan.findings.extend(scan_manifest(&rel, &src));
        }
    }
    let (findings, suppressed) = scan_sources(&sources);
    scan.findings.extend(findings);
    scan.suppressed += suppressed;
    // Manifest findings land before Rust findings above; restore global
    // path order so reports are stable whatever the mix.
    scan.findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
    });
    Ok(scan)
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_cover_every_rule_with_zeros() {
        let scan = Scan { findings: Vec::new(), suppressed: 0, files_scanned: 0 };
        let counts = scan.counts();
        assert_eq!(counts.len(), RULES.len());
        assert!(counts.values().all(|&v| v == 0));
    }

    #[test]
    fn walker_skips_target_and_hidden() {
        assert!(skip_dir("target"));
        assert!(skip_dir(".git"));
        assert!(!skip_dir("crates"));
        assert!(!skip_dir("src"));
    }

    #[test]
    fn scans_a_scratch_tree_deterministically() {
        let dir = std::env::temp_dir().join(format!("swque-lint-scan-{}", std::process::id()));
        let src_dir = dir.join("crates/core/src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("bad.rs"),
            "use std::collections::HashMap;\n\
             pub fn t(m: &HashMap<u64, u8>) -> usize { m.len() }\n\
             fn u() { let _ = std::time::Instant::now(); }\n",
        )
        .unwrap();
        std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
        let scan = scan_workspace(&dir).unwrap();
        let again = scan_workspace(&dir).unwrap();
        assert_eq!(scan.findings, again.findings);
        let counts = scan.counts();
        assert_eq!(counts["unordered-container"], 1);
        assert_eq!(counts["wall-clock"], 1);
        assert_eq!(find_workspace_root(&src_dir), Some(dir.clone()));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
