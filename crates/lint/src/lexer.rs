//! A minimal, loss-tolerant Rust lexer.
//!
//! The rule engine in [`crate::rules`] needs just enough token structure to
//! tell *code* apart from *comments and literals*: an ident `HashMap` in
//! code is a finding, the same word inside a doc comment or a fixture
//! string is not. This lexer provides exactly that — idents, lifetimes,
//! string/char/byte/raw-string literals, numbers, single-character
//! punctuation, and line/block comments (block comments nest, as in Rust).
//!
//! Two properties matter more than full fidelity to `rustc`'s grammar:
//!
//! 1. **Total**: lexing never panics and never loses text, whatever bytes
//!    it is fed. Malformed input (unterminated strings or comments)
//!    degrades to a single token running to end-of-file.
//! 2. **Span-exact**: every token records its byte span and 1-based
//!    line/column, and the tokens tile the non-whitespace source exactly —
//!    the property tests in `tests/prop_lexer.rs` hold the lexer to this.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (including raw idents like `r#mod`).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A string literal: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br##"…"##`.
    Str,
    /// A character or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A numeric literal (integers and floats, loosely).
    Num,
    /// A single punctuation character.
    Punct,
    /// A `//` line comment (doc comments included), excluding the newline.
    LineComment,
    /// A `/* … */` block comment, nesting respected.
    BlockComment,
}

/// One lexed token, borrowing its text from the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok<'a> {
    /// What the token is.
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: &'a str,
    /// Byte offset of the token start in the source.
    pub start: usize,
    /// 1-based line of the token start.
    pub line: u32,
    /// 1-based column (in characters) of the token start.
    pub col: u32,
}

impl Tok<'_> {
    /// True for line and block comments.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Character-indexed cursor over the source. All lookahead goes through
/// [`Cursor::peek`], so the lexer can never index out of bounds or split a
/// UTF-8 sequence.
struct Cursor<'a> {
    src: &'a str,
    /// `(byte_offset, char)` for every character, in order.
    chars: Vec<(usize, char)>,
    /// Index of the next unconsumed character in `chars`.
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor { src, chars: src.char_indices().collect(), i: 0, line: 1, col: 1 }
    }

    /// The character `k` positions ahead, if any.
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).map(|&(_, c)| c)
    }

    /// Byte offset of the next unconsumed character (or end of source).
    fn offset(&self) -> usize {
        self.chars.get(self.i).map_or(self.src.len(), |&(o, _)| o)
    }

    /// Consumes one character, maintaining line/column bookkeeping.
    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.i)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes characters while `pred` holds.
    fn bump_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a complete token stream.
///
/// The returned tokens are in source order, non-overlapping, and cover
/// every non-whitespace character of the input; unterminated literals or
/// comments extend to end-of-file rather than failing.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let mut cx = Cursor::new(src);
    let mut toks = Vec::new();
    while let Some(c) = cx.peek(0) {
        if c.is_whitespace() {
            cx.bump();
            continue;
        }
        let (start, line, col) = (cx.offset(), cx.line, cx.col);
        let kind = lex_one(&mut cx, c);
        let end = cx.offset();
        toks.push(Tok { kind, text: &src[start..end], start, line, col });
    }
    toks
}

/// Lexes exactly one token starting at `c`; the cursor is advanced past it.
fn lex_one(cx: &mut Cursor<'_>, c: char) -> TokKind {
    match c {
        '/' if cx.peek(1) == Some('/') => {
            cx.bump_while(|c| c != '\n');
            TokKind::LineComment
        }
        '/' if cx.peek(1) == Some('*') => {
            cx.bump();
            cx.bump();
            let mut depth = 1u32;
            while depth > 0 {
                match (cx.peek(0), cx.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cx.bump();
                        cx.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cx.bump();
                        cx.bump();
                    }
                    (Some(_), _) => {
                        cx.bump();
                    }
                    (None, _) => break, // unterminated: comment to EOF
                }
            }
            TokKind::BlockComment
        }
        'r' | 'b' if raw_string_hashes(cx).is_some() => {
            let hashes = raw_string_hashes(cx).unwrap_or(0);
            lex_raw_string(cx, hashes)
        }
        'r' if cx.peek(1) == Some('#') && cx.peek(2).is_some_and(is_ident_start) => {
            // Raw identifier: r#ident.
            cx.bump();
            cx.bump();
            cx.bump_while(is_ident_continue);
            TokKind::Ident
        }
        'b' if cx.peek(1) == Some('"') => {
            cx.bump();
            lex_string(cx)
        }
        'b' if cx.peek(1) == Some('\'') => {
            cx.bump();
            lex_char(cx)
        }
        '"' => lex_string(cx),
        '\'' => {
            // Lifetime if followed by an ident char that is not itself
            // closed by a quote ('a vs 'a').
            let one = cx.peek(1);
            let two = cx.peek(2);
            if one.is_some_and(is_ident_start) && two != Some('\'') {
                cx.bump();
                cx.bump_while(is_ident_continue);
                TokKind::Lifetime
            } else {
                lex_char(cx)
            }
        }
        c if is_ident_start(c) => {
            cx.bump_while(is_ident_continue);
            TokKind::Ident
        }
        c if c.is_ascii_digit() => {
            lex_number(cx);
            TokKind::Num
        }
        _ => {
            cx.bump();
            TokKind::Punct
        }
    }
}

/// If the cursor sits on the start of a raw string (`r"`, `r#"`, `br##"`,
/// …), returns the number of `#`s; otherwise `None`.
fn raw_string_hashes(cx: &Cursor<'_>) -> Option<u32> {
    let mut k = 1; // past the leading r or b
    if cx.peek(0) == Some('b') {
        if cx.peek(1) != Some('r') {
            return None;
        }
        k = 2;
    }
    let mut hashes = 0u32;
    while cx.peek(k) == Some('#') {
        hashes += 1;
        k += 1;
    }
    (cx.peek(k) == Some('"')).then_some(hashes)
}

/// Consumes a raw string with `hashes` delimiter hashes (prefix included).
fn lex_raw_string(cx: &mut Cursor<'_>, hashes: u32) -> TokKind {
    // Prefix (r / br), hashes, opening quote.
    cx.bump();
    if cx.peek(0) == Some('r') {
        cx.bump(); // the r of br
    }
    for _ in 0..hashes {
        cx.bump();
    }
    cx.bump(); // opening quote
    loop {
        match cx.bump() {
            None => return TokKind::Str, // unterminated: to EOF
            Some('"') => {
                let closes = (0..hashes as usize).all(|k| cx.peek(k) == Some('#'));
                if closes {
                    for _ in 0..hashes {
                        cx.bump();
                    }
                    return TokKind::Str;
                }
            }
            Some(_) => {}
        }
    }
}

/// Consumes a `"…"` string with `\` escapes; cursor is on the open quote.
fn lex_string(cx: &mut Cursor<'_>) -> TokKind {
    cx.bump();
    loop {
        match cx.bump() {
            None | Some('"') => return TokKind::Str,
            Some('\\') => {
                cx.bump(); // the escaped character (possibly the quote)
            }
            Some(_) => {}
        }
    }
}

/// Consumes a char/byte literal; cursor is on the open quote.
fn lex_char(cx: &mut Cursor<'_>) -> TokKind {
    cx.bump();
    match cx.bump() {
        None | Some('\'') => return TokKind::Char,
        Some('\\') => {
            // `\u{…}` spans multiple characters; consuming only the `u`
            // would leave `{…}'` behind and the trailing quote would eat
            // the next real token (this desynced the parser's paren
            // matching on `'\u{fffd}'`). Bounded by `}`/quote/newline so
            // soup stays total.
            if cx.peek(0) == Some('u') && cx.peek(1) == Some('{') {
                cx.bump();
                cx.bump();
                while cx.peek(0).is_some_and(|c| c != '}' && c != '\'' && c != '\n') {
                    cx.bump();
                }
                if cx.peek(0) == Some('}') {
                    cx.bump();
                }
            } else {
                cx.bump();
            }
        }
        Some(_) => {}
    }
    if cx.peek(0) == Some('\'') {
        cx.bump();
    }
    TokKind::Char
}

/// Consumes a numeric literal: leading digit, then ident-ish characters,
/// with `.`/exponent handling loose enough for ranges (`0..10` stays three
/// tokens) and floats (`1.5e-3` is one).
fn lex_number(cx: &mut Cursor<'_>) {
    cx.bump();
    loop {
        match cx.peek(0) {
            Some(c) if is_ident_continue(c) => {
                cx.bump();
                // Signed exponent: 1e-9, 2.5E+10.
                if (c == 'e' || c == 'E')
                    && matches!(cx.peek(0), Some('+') | Some('-'))
                    && cx.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    cx.bump();
                }
            }
            Some('.') if cx.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                cx.bump();
            }
            _ => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("use std::time;"),
            vec![
                (TokKind::Ident, "use"),
                (TokKind::Ident, "std"),
                (TokKind::Punct, ":"),
                (TokKind::Punct, ":"),
                (TokKind::Ident, "time"),
                (TokKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn comments_swallow_code_words() {
        let toks = kinds("x /* HashMap */ y // Instant");
        assert_eq!(toks[0], (TokKind::Ident, "x"));
        assert_eq!(toks[1], (TokKind::BlockComment, "/* HashMap */"));
        assert_eq!(toks[2], (TokKind::Ident, "y"));
        assert_eq!(toks[3], (TokKind::LineComment, "// Instant"));
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let src = "/* a /* b */ c */ z";
        let toks = kinds(src);
        assert_eq!(toks[0], (TokKind::BlockComment, "/* a /* b */ c */"));
        assert_eq!(toks[1], (TokKind::Ident, "z"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r##"body with "# inside"## ;"####;
        let toks = kinds(src);
        assert_eq!(toks[3], (TokKind::Str, r###"r##"body with "# inside"##"###));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(kinds(r#"b"x""#)[0].0, TokKind::Str);
        assert_eq!(kinds(r##"br#"x"#"##)[0].0, TokKind::Str);
        assert_eq!(kinds("b'q'")[0].0, TokKind::Char);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("&'a str; 'x'; '\\n'");
        assert!(toks.iter().any(|t| *t == (TokKind::Lifetime, "'a")));
        assert!(toks.iter().any(|t| *t == (TokKind::Char, "'x'")));
        assert!(toks.iter().any(|t| *t == (TokKind::Char, "'\\n'")));
    }

    #[test]
    fn unicode_escape_chars_are_one_token() {
        // Regression: `'\u{fffd}'` must not leave a stray trailing quote
        // that swallows the next delimiter (it desynced paren matching in
        // the parser on `unwrap_or('\u{fffd}'));`).
        let toks = kinds("f('\\u{fffd}'); g()");
        assert!(toks.iter().any(|t| *t == (TokKind::Char, "'\\u{fffd}'")), "{toks:?}");
        assert_eq!(toks.iter().filter(|t| t.1 == ")").count(), 2, "{toks:?}");
        assert!(toks.iter().any(|t| *t == (TokKind::Char, "'\\u{8}'") || t.1 == "g"));
    }

    #[test]
    fn string_escapes_do_not_end_the_string() {
        let toks = kinds(r#""a\"b" c"#);
        assert_eq!(toks[0], (TokKind::Str, r#""a\"b""#));
        assert_eq!(toks[1], (TokKind::Ident, "c"));
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(
            kinds("0..10"),
            vec![
                (TokKind::Num, "0"),
                (TokKind::Punct, "."),
                (TokKind::Punct, "."),
                (TokKind::Num, "10"),
            ]
        );
        assert_eq!(kinds("1.5e-3")[0], (TokKind::Num, "1.5e-3"));
        assert_eq!(kinds("0xFF_u64")[0], (TokKind::Num, "0xFF_u64"));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* abc", "r#\"abc", "'", "b\"", "r#"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
        }
    }

    #[test]
    fn line_and_col_are_one_based_and_utf8_aware() {
        let toks = lex("αβ x\n  y");
        let x = toks.iter().find(|t| t.text == "x").expect("x");
        assert_eq!((x.line, x.col), (1, 4));
        let y = toks.iter().find(|t| t.text == "y").expect("y");
        assert_eq!((y.line, y.col), (2, 3));
    }

    #[test]
    fn spans_tile_the_source() {
        let src = "fn main() { let s = \"// not a comment\"; }";
        let mut end = 0;
        for t in lex(src) {
            assert!(t.start >= end, "tokens ordered and disjoint");
            assert_eq!(&src[t.start..t.start + t.text.len()], t.text);
            end = t.start + t.text.len();
        }
    }
}
