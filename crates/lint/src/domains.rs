//! The cycle-domain dataflow pass.
//!
//! PR 8's headline bug was two `u64`s with different *meanings*: stream
//! prefetches launched at the demand's completion cycle (`done_at`)
//! instead of the L2 lookup cycle. The type system cannot see the
//! difference; this pass can. Every integer value is classified into a
//! **domain**:
//!
//! | domain | meaning | example |
//! |---|---|---|
//! | `CycleStamp` | an absolute point on the cycle axis | `pf_issue_at`, `now` |
//! | `CycleDelta` | a distance between two stamps | `latency`, `wait_cycles` |
//! | `InstCount` | a count of instructions | `insts_retired` |
//! | `IntervalIdx` | an interval/epoch ordinal | `epoch` |
//! | `ByteAddr` | a byte address | `line_addr` |
//! | `RequesterId` | a core/requester index | `requester` |
//! | `SlotTag` | a physical-register/slot tag | `dst_tag` |
//!
//! `CycleStamp` additionally carries an optional **qualifier** —
//! `launch` or `completion` — because the PR-8 bug was stamp-vs-stamp:
//! both `done_at` and `pf_issue_at` are cycle stamps, and only the
//! qualifier tells the *time a request is made* apart from the *time a
//! response arrives*.
//!
//! Domains are **seeded** from names (struct fields, fn parameters, let
//! bindings — see [`seed_name`] for the exact lexicon) and from explicit
//! annotations:
//!
//! ```text
//! // swque-domain: now: CycleStamp(launch), return: CycleStamp(completion)
//! pub fn request_from(&mut self, requester: usize, now: u64) -> u64 { … }
//! ```
//!
//! An annotation binds the named parameters (and `return`) of the `fn`
//! whose signature starts on the same or the next line; on a `let`
//! binding's line (or the line above) it binds that local. A comment
//! that mentions `swque-domain` but fails this grammar is a
//! `malformed-pragma` finding — a silently ignored annotation would be
//! worse than none.
//!
//! Domains then **propagate** through let-bindings, field accesses,
//! casts, and — via the call graph in [`crate::resolve`] — through calls
//! (a call site inherits the consensus return domain of every in-scope
//! callee with that name). Checks fire only when **both** sides are
//! known; an unknown operand is never a finding. Two rules report:
//!
//! * `cross-domain-arith` — `+`/`-` (and their `saturating_*` /
//!   `wrapping_*` / `checked_*` method forms) between incompatible
//!   bases: stamp+stamp, delta−stamp, count+delta, …. The legal algebra
//!   is stamp−stamp→delta, stamp±delta→stamp, and same-base for every
//!   other base. Comparisons (`==` `<` … and `min`/`max`) require equal
//!   bases, qualifiers ignored. `*` `/` `%` and bitwise ops erase the
//!   domain and are never flagged (`insts / cycles` is IPC, not a bug).
//! * `cross-domain-call` — an argument whose base differs from the
//!   parameter's seeded/annotated base, or whose `CycleStamp` qualifier
//!   contradicts an explicitly qualified stamp parameter (`done_at`
//!   passed where a `CycleStamp(launch)` is expected — the PR-8 bug).

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};
use crate::parser::{walk_exprs, Ast, Expr, ExprKind};
use crate::resolve::Program;
use crate::rules::{classify, Finding};

/// The base of a domain: what axis the integer lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base {
    /// An absolute point on the cycle axis.
    CycleStamp,
    /// A distance between two cycle stamps.
    CycleDelta,
    /// A count of instructions.
    InstCount,
    /// An interval/epoch ordinal.
    IntervalIdx,
    /// A byte address.
    ByteAddr,
    /// A core/requester index.
    RequesterId,
    /// A physical-register/slot tag.
    SlotTag,
}

impl Base {
    fn name(self) -> &'static str {
        match self {
            Base::CycleStamp => "CycleStamp",
            Base::CycleDelta => "CycleDelta",
            Base::InstCount => "InstCount",
            Base::IntervalIdx => "IntervalIdx",
            Base::ByteAddr => "ByteAddr",
            Base::RequesterId => "RequesterId",
            Base::SlotTag => "SlotTag",
        }
    }
}

/// The `CycleStamp` qualifier: which end of a request the stamp marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Qual {
    /// The cycle a request is made.
    Launch,
    /// The cycle a response arrives.
    Completion,
}

/// A domain: a base, plus an optional qualifier on `CycleStamp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domain {
    /// The axis.
    pub base: Base,
    /// `launch`/`completion`, only ever `Some` on [`Base::CycleStamp`].
    pub qual: Option<Qual>,
}

impl Domain {
    /// An unqualified domain.
    pub fn of(base: Base) -> Domain {
        Domain { base, qual: None }
    }

    /// Renders as the annotation grammar spells it: `CycleStamp(launch)`.
    pub fn render(self) -> String {
        match self.qual {
            Some(Qual::Launch) => format!("{}(launch)", self.base.name()),
            Some(Qual::Completion) => format!("{}(completion)", self.base.name()),
            None => self.base.name().to_string(),
        }
    }
}

/// Parses a domain spec from the annotation grammar: a base name,
/// optionally `CycleStamp(launch|completion)`.
pub fn parse_domain(s: &str) -> Option<Domain> {
    let s = s.trim();
    let (base_txt, qual_txt) = match s.find('(') {
        Some(i) => {
            let rest = s[i + 1..].strip_suffix(')')?;
            (&s[..i], Some(rest.trim()))
        }
        None => (s, None),
    };
    let base = match base_txt.trim() {
        "CycleStamp" => Base::CycleStamp,
        "CycleDelta" => Base::CycleDelta,
        "InstCount" => Base::InstCount,
        "IntervalIdx" => Base::IntervalIdx,
        "ByteAddr" => Base::ByteAddr,
        "RequesterId" => Base::RequesterId,
        "SlotTag" => Base::SlotTag,
        _ => return None,
    };
    let qual = match qual_txt {
        None => None,
        Some("launch") => Some(Qual::Launch),
        Some("completion") => Some(Qual::Completion),
        Some(_) => return None,
    };
    if qual.is_some() && base != Base::CycleStamp {
        return None;
    }
    Some(Domain { base, qual })
}

/// Seeds a domain from an identifier, or `None` when the name says
/// nothing. The lexicon, in match order (first hit wins):
///
/// 1. `CycleStamp`: suffix `_at`/`_until`/`_done`/`_cycle`, exact
///    `now`/`done`/`cycle`, or contains `horizon` — except `per_cycle`
///    rates, which are not stamps. Qualifier: contains `done`/`complete`
///    → `completion`; contains `issue`/`launch` → `launch` (deliberately
///    *not* `start`/`lookup`: `start` names the head of an MSHR wait in
///    the hierarchy, which is neither end of a request).
/// 2. `RequesterId`: exact `requester` or suffix `requester_id`.
/// 3. `SlotTag`: exact `tag` or suffix `_tag`.
/// 4. `InstCount`: contains `insts`/`retired`/`instret`.
/// 5. `ByteAddr`: contains `addr`.
/// 6. `CycleDelta`: contains `latency`/`penalty`/`delay`, suffix
///    `_cycles`, or exact `cycles` (plural = distance; singular = stamp).
/// 7. `IntervalIdx`: contains `epoch`, or `interval` + `idx`/`index`.
pub fn seed_name(name: &str) -> Option<Domain> {
    let l = name.to_ascii_lowercase();
    if l.is_empty() || !l.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_') {
        return None;
    }
    let stampish = (l.ends_with("_at")
        || l == "now"
        || l.ends_with("_until")
        || l == "done"
        || l.ends_with("_done")
        || l.contains("horizon")
        || l == "cycle"
        || l.ends_with("_cycle"))
        && !l.contains("per_cycle");
    if stampish {
        let qual = if l.contains("done") || l.contains("complete") {
            Some(Qual::Completion)
        } else if l.contains("issue") || l.contains("launch") {
            Some(Qual::Launch)
        } else {
            None
        };
        return Some(Domain { base: Base::CycleStamp, qual });
    }
    let base = if l == "requester" || l.ends_with("requester_id") {
        Base::RequesterId
    } else if l == "tag" || l.ends_with("_tag") {
        Base::SlotTag
    } else if l.contains("insts") || l.contains("retired") || l.contains("instret") {
        Base::InstCount
    } else if l.contains("addr") {
        Base::ByteAddr
    } else if l.contains("latency")
        || l.contains("penalty")
        || l.contains("delay")
        || l.ends_with("_cycles")
        || l == "cycles"
    {
        Base::CycleDelta
    } else if l.contains("epoch")
        || (l.contains("interval") && (l.contains("idx") || l.contains("index")))
    {
        Base::IntervalIdx
    } else {
        return None;
    };
    Some(Domain::of(base))
}

/// One parsed `// swque-domain:` annotation.
#[derive(Debug, Clone)]
pub struct Annot {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// `(name, domain)` bindings; `return` names the fn return value.
    pub binds: Vec<(String, Domain)>,
}

/// Extracts every `swque-domain` annotation from a raw (comment-bearing)
/// token stream. Comments that mention `swque-domain` but fail the
/// grammar come back as `malformed-pragma` findings.
pub fn collect_annotations(toks: &[Tok<'_>], rel: &str) -> (Vec<Annot>, Vec<Finding>) {
    let mut annots = Vec::new();
    let mut bad = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        // Mirrors pragma detection: only a comment whose body *starts*
        // with the marker is an annotation attempt; prose that merely
        // mentions `swque-domain` (docs, this file) is not.
        let body = t.text.trim_start_matches('/').trim_start_matches('!').trim_start();
        let Some(rest) = body.strip_prefix("swque-domain") else { continue };
        let Some(rest) = rest.trim_start().strip_prefix(':') else {
            bad.push(malformed(rel, t, "missing `:` after `swque-domain`"));
            continue;
        };
        let mut binds = Vec::new();
        let mut ok = true;
        for part in rest.split(',') {
            let Some((name, spec)) = part.split_once(':') else {
                ok = false;
                break;
            };
            let name = name.trim();
            let named_ok = !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
            let Some(dom) = parse_domain(spec) else {
                ok = false;
                break;
            };
            if !named_ok {
                ok = false;
                break;
            }
            binds.push((name.to_string(), dom));
        }
        if !ok || binds.is_empty() {
            bad.push(malformed(
                rel,
                t,
                "expected `name: Domain[, name: Domain]*` with Domain one of \
                 CycleStamp[(launch|completion)]/CycleDelta/InstCount/IntervalIdx/\
                 ByteAddr/RequesterId/SlotTag",
            ));
            continue;
        }
        annots.push(Annot { line: t.line, binds });
    }
    (annots, bad)
}

fn malformed(rel: &str, t: &Tok<'_>, why: &str) -> Finding {
    Finding::new(
        "malformed-pragma",
        rel.to_string(),
        t.line,
        t.col,
        format!("unparseable swque-domain annotation ({why})"),
    )
}

/// The domain signature of one function in the program: parameter
/// domains (receiver excluded) and the return domain.
#[derive(Debug, Clone, Default)]
pub struct FnSig {
    /// `(name, domain)` per value parameter, in order, `self` excluded.
    pub params: Vec<(String, Option<Domain>)>,
    /// True when the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Return domain, from a `return:` annotation or the fn name.
    pub ret: Option<Domain>,
}

/// Builds the [`FnSig`] table, parallel to `prog.fns`. Annotations in
/// `annots[unit]` bind a fn whose name line is the annotation's line or
/// the one after it.
pub fn fn_sigs(prog: &Program<'_>, annots: &[Vec<Annot>]) -> Vec<FnSig> {
    prog.fns
        .iter()
        .map(|f| {
            let ast = &prog.units[f.unit].ast;
            let mut sig = parse_sig(ast, f.sig);
            sig.ret = seed_name(&f.name);
            for a in &annots[f.unit] {
                if a.line != f.name_line && a.line + 1 != f.name_line {
                    continue;
                }
                for (name, dom) in &a.binds {
                    if name == "return" {
                        sig.ret = Some(*dom);
                        continue;
                    }
                    for p in sig.params.iter_mut().filter(|p| p.0 == *name) {
                        p.1 = Some(*dom);
                    }
                }
            }
            sig
        })
        .collect()
}

/// Parses the parameter list out of a signature token range: everything
/// between the first `(` and its match, split on depth-0 commas; each
/// segment's name is the first ident followed by a single `:`.
fn parse_sig(ast: &Ast<'_>, (lo, hi): (usize, usize)) -> FnSig {
    let mut sig = FnSig::default();
    let mut i = lo;
    while i < hi && ast.text(i) != "(" {
        i += 1;
    }
    if i >= hi {
        return sig;
    }
    i += 1;
    let (mut depth, mut angle) = (1i64, 0i64);
    let mut seg: Vec<usize> = Vec::new();
    let mut first = true;
    let flush = |seg: &mut Vec<usize>, first: &mut bool, sig: &mut FnSig| {
        if seg.iter().any(|&k| ast.text(k) == "self") {
            if *first {
                sig.has_self = true;
            }
        } else if !seg.is_empty() {
            let mut name = None;
            for w in 0..seg.len().saturating_sub(1) {
                let t = ast.text(seg[w]);
                if ast.tok(seg[w]).is_some_and(|t| t.kind == TokKind::Ident)
                    && t != "mut"
                    && ast.text(seg[w + 1]) == ":"
                    && (w + 2 >= seg.len() || ast.text(seg[w + 2]) != ":")
                {
                    name = Some(t.to_string());
                    break;
                }
            }
            if let Some(n) = name {
                let dom = seed_name(&n);
                sig.params.push((n, dom));
            } else {
                sig.params.push((String::new(), None));
            }
        }
        seg.clear();
        *first = false;
    };
    while i < hi {
        let t = ast.text(i);
        match t {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "<" => angle += 1,
            ">" => angle = (angle - 1).max(0),
            "," if depth == 1 && angle == 0 => {
                flush(&mut seg, &mut first, &mut sig);
                i += 1;
                continue;
            }
            _ => {}
        }
        seg.push(i);
        i += 1;
    }
    flush(&mut seg, &mut first, &mut sig);
    sig
}

/// What a `+`/`-` over two known domains yields.
enum Arith {
    /// Legal; the result's domain (None = result meaningless but legal).
    Ok(Option<Domain>),
    /// Cross-domain: illegal.
    Bad,
}

fn arith(op: char, l: Domain, r: Domain) -> Arith {
    use Base::{CycleDelta as D, CycleStamp as S};
    match (op, l.base, r.base) {
        ('+', S, S) => Arith::Bad,
        ('+', S, D) => Arith::Ok(Some(Domain { base: S, qual: l.qual })),
        ('+', D, S) => Arith::Ok(Some(Domain { base: S, qual: r.qual })),
        ('-', S, S) => Arith::Ok(Some(Domain::of(D))),
        ('-', S, D) => Arith::Ok(Some(Domain { base: S, qual: l.qual })),
        ('-', D, S) => Arith::Bad,
        (_, a, b) if a == b => Arith::Ok(Some(Domain::of(a))),
        _ => Arith::Bad,
    }
}

const SUB_METHODS: [&str; 3] = ["saturating_sub", "wrapping_sub", "checked_sub"];
const ADD_METHODS: [&str; 3] = ["saturating_add", "wrapping_add", "checked_add"];
const CMP_METHODS: [&str; 2] = ["min", "max"];

/// Per-function binding environment.
type Env = BTreeMap<String, Domain>;

struct Cx<'p, 'a> {
    prog: &'p Program<'a>,
    sigs: &'p [FnSig],
    unit: usize,
    fidx: usize,
}

impl Cx<'_, '_> {
    fn ast(&self) -> &Ast<'_> {
        &self.prog.units[self.unit].ast
    }

    /// Candidate callees for `name` visible from the current fn whose
    /// sigs all agree; used for both return and parameter consensus.
    fn consensus<T: PartialEq + Copy>(
        &self,
        name: &str,
        f: impl Fn(&FnSig) -> Option<T>,
    ) -> Option<T> {
        let cands = self.prog.candidates(self.fidx, name);
        let mut out: Option<T> = None;
        if cands.is_empty() {
            return None;
        }
        for g in cands {
            let v = f(&self.sigs[g])?;
            match out {
                None => out = Some(v),
                Some(prev) if prev == v => {}
                Some(_) => return None,
            }
        }
        out
    }

    /// Infers the domain of an expression. Pure: never emits findings —
    /// the visitor emits them exactly once per flagged node.
    fn dom(&self, e: &Expr, env: &Env) -> Option<Domain> {
        let ast = self.ast();
        match &e.kind {
            ExprKind::Path(segs) => {
                let last = ast.text(*segs.last()?);
                if segs.len() == 1 {
                    if last == "self" {
                        return None;
                    }
                    if let Some(d) = env.get(last) {
                        return Some(*d);
                    }
                }
                seed_name(last)
            }
            ExprKind::Field { name, .. } => seed_name(ast.text(*name)),
            ExprKind::Cast { expr, .. } | ExprKind::Unary { expr } => self.dom(expr, env),
            ExprKind::Group { exprs } if exprs.len() == 1 => self.dom(&exprs[0], env),
            ExprKind::Binary { op, lhs, rhs, .. } => {
                let c = match *op {
                    "+" => '+',
                    "-" => '-',
                    _ => return None,
                };
                let (l, r) = (self.dom(lhs, env)?, self.dom(rhs, env)?);
                match arith(c, l, r) {
                    Arith::Ok(d) => d,
                    Arith::Bad => None,
                }
            }
            ExprKind::MethodCall { recv, name, args } => {
                let mname = ast.text(*name);
                if SUB_METHODS.contains(&mname) || ADD_METHODS.contains(&mname) {
                    let c = if SUB_METHODS.contains(&mname) { '-' } else { '+' };
                    let (l, r) = (self.dom(recv, env)?, self.dom(args.first()?, env)?);
                    return match arith(c, l, r) {
                        Arith::Ok(d) => d,
                        Arith::Bad => None,
                    };
                }
                if CMP_METHODS.contains(&mname) && args.len() == 1 {
                    let (l, r) = (self.dom(recv, env)?, self.dom(&args[0], env)?);
                    if l.base == r.base {
                        let qual = if l.qual == r.qual { l.qual } else { None };
                        return Some(Domain { base: l.base, qual });
                    }
                    return None;
                }
                self.consensus(mname, |s| s.ret)
            }
            ExprKind::Call { callee, .. } => {
                if let ExprKind::Path(segs) = &callee.kind {
                    let last = ast.text(*segs.last()?);
                    return self.consensus(last, |s| s.ret);
                }
                None
            }
            _ => None,
        }
    }
}

/// Whether passing `arg` where `param` is expected is a cross-domain
/// error; `Some((from, to))` renders the finding's domain pair.
fn call_clash(arg: Domain, param: Domain) -> Option<(Domain, Domain)> {
    if arg.base != param.base {
        return Some((arg, param));
    }
    if let (Some(a), Some(p)) = (arg.qual, param.qual) {
        if a != p {
            return Some((arg, param));
        }
    }
    None
}

/// Runs the dataflow pass over every deterministic-crate library file of
/// the program, appending `cross-domain-arith` / `cross-domain-call`
/// findings. `annots[unit]` are that unit's parsed annotations (also
/// consulted for `let` bindings).
pub fn domain_rules(
    prog: &Program<'_>,
    sigs: &[FnSig],
    annots: &[Vec<Annot>],
    out: &mut Vec<Finding>,
) {
    for (u_idx, unit) in prog.units.iter().enumerate() {
        let policy = classify(unit.rel);
        if !policy.deterministic || policy.test_code {
            continue;
        }
        let lo_to_fn: BTreeMap<usize, usize> = prog
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.unit == u_idx)
            .map(|(i, f)| (f.lo, i))
            .collect();
        let mut envs: BTreeMap<usize, Env> = BTreeMap::new();
        let ast = &unit.ast;
        walk_exprs(ast, &ast.items, &mut |e, cx| {
            if cx.in_cfg_test {
                return;
            }
            let Some(item) = cx.enclosing_fn else { return };
            let Some(&fidx) = lo_to_fn.get(&item.lo) else { return };
            let env = envs.entry(fidx).or_insert_with(|| {
                sigs[fidx]
                    .params
                    .iter()
                    .filter_map(|(n, d)| Some((n.clone(), (*d)?)))
                    .collect()
            });
            let cx = Cx { prog, sigs, unit: u_idx, fidx };
            check_expr(&cx, e, env, unit.rel, &annots[u_idx], out);
        });
    }
}

/// The single-visit check for one expression node.
fn check_expr(
    cx: &Cx<'_, '_>,
    e: &Expr,
    env: &mut Env,
    rel: &str,
    annots: &[Annot],
    out: &mut Vec<Finding>,
) {
    let ast = cx.ast();
    match &e.kind {
        ExprKind::Let { name: Some(n), init, .. } => {
            let nm = ast.text(*n).to_string();
            let line = ast.pos(*n).0;
            let annotated = annots
                .iter()
                .filter(|a| a.line == line || a.line + 1 == line)
                .flat_map(|a| a.binds.iter())
                .find(|(bn, _)| *bn == nm)
                .map(|(_, d)| *d);
            let named = annotated.or_else(|| seed_name(&nm));
            let init_dom = init.as_ref().and_then(|i| cx.dom(i, env));
            if let (Some(nd), Some(id)) = (named, init_dom) {
                if nd.base != id.base {
                    out.push(cross(
                        "cross-domain-arith",
                        rel,
                        line,
                        ast.pos(*n).1,
                        format!(
                            "`{nm}` is {} but its initializer is {}",
                            nd.render(),
                            id.render()
                        ),
                        id,
                        nd,
                    ));
                }
            }
            // The binding's domain: explicit/name wins (it can carry a
            // qualifier); a same-base initializer donates its qualifier
            // to an unqualified name.
            let bound = match (named, init_dom) {
                (Some(nd), Some(id)) if nd.base == id.base && nd.qual.is_none() => {
                    Some(Domain { base: nd.base, qual: id.qual })
                }
                (Some(nd), _) => Some(nd),
                (None, id) => id,
            };
            if let Some(d) = bound {
                env.insert(nm, d);
            }
        }
        ExprKind::Binary { op, op_tok, lhs, rhs } => {
            let arith_op = match *op {
                "+" | "+=" => Some('+'),
                "-" | "-=" => Some('-'),
                _ => None,
            };
            let compare = matches!(*op, "==" | "!=" | "<" | "<=" | ">" | ">=");
            if arith_op.is_none() && !compare {
                return;
            }
            let (Some(l), Some(r)) = (cx.dom(lhs, env), cx.dom(rhs, env)) else {
                return;
            };
            let (line, col) = ast.pos(*op_tok);
            if let Some(c) = arith_op {
                if let Arith::Bad = arith(c, l, r) {
                    out.push(cross(
                        "cross-domain-arith",
                        rel,
                        line,
                        col,
                        format!("`{op}` mixes {} with {}", l.render(), r.render()),
                        l,
                        r,
                    ));
                }
            } else if l.base != r.base {
                out.push(cross(
                    "cross-domain-arith",
                    rel,
                    line,
                    col,
                    format!("`{op}` compares {} against {}", l.render(), r.render()),
                    l,
                    r,
                ));
            }
        }
        ExprKind::MethodCall { recv, name, args } => {
            let mname = ast.text(*name);
            let (line, col) = ast.pos(*name);
            if SUB_METHODS.contains(&mname) || ADD_METHODS.contains(&mname) {
                if args.len() != 1 {
                    return;
                }
                let c = if SUB_METHODS.contains(&mname) { '-' } else { '+' };
                let (Some(l), Some(r)) = (cx.dom(recv, env), cx.dom(&args[0], env)) else {
                    return;
                };
                if let Arith::Bad = arith(c, l, r) {
                    out.push(cross(
                        "cross-domain-arith",
                        rel,
                        line,
                        col,
                        format!("`{mname}` mixes {} with {}", l.render(), r.render()),
                        l,
                        r,
                    ));
                }
                return;
            }
            if CMP_METHODS.contains(&mname) && args.len() == 1 {
                let (Some(l), Some(r)) = (cx.dom(recv, env), cx.dom(&args[0], env)) else {
                    return;
                };
                if l.base != r.base {
                    out.push(cross(
                        "cross-domain-arith",
                        rel,
                        line,
                        col,
                        format!("`{mname}` compares {} against {}", l.render(), r.render()),
                        l,
                        r,
                    ));
                }
                return;
            }
            check_call_args(cx, mname, true, args, env, rel, (line, col), out);
        }
        ExprKind::Call { callee, args } => {
            if let ExprKind::Path(segs) = &callee.kind {
                if let Some(&last) = segs.last() {
                    let name = ast.text(last);
                    let (line, col) = ast.pos(last);
                    check_call_args(cx, name, false, args, env, rel, (line, col), out);
                }
            }
        }
        _ => {}
    }
}

/// Checks each argument of a call site against the consensus parameter
/// domain at that position across every in-scope callee candidate.
#[allow(clippy::too_many_arguments)]
fn check_call_args(
    cx: &Cx<'_, '_>,
    name: &str,
    is_method: bool,
    args: &[Expr],
    env: &Env,
    rel: &str,
    (line, col): (u32, u32),
    out: &mut Vec<Finding>,
) {
    let cands = cx.prog.candidates(cx.fidx, name);
    if cands.is_empty() {
        return;
    }
    // A free call to a method (Self::helper(self, …)) or a method call
    // resolving to a free fn would misalign positions: require agreement.
    if cands.iter().any(|&g| cx.sigs[g].has_self != is_method) {
        return;
    }
    for (k, arg) in args.iter().enumerate() {
        let Some(param) = cx.consensus(name, |s| s.params.get(k).and_then(|p| p.1)) else {
            continue;
        };
        let Some(adom) = cx.dom(arg, env) else { continue };
        if let Some((from, to)) = call_clash(adom, param) {
            let pname = cx
                .sigs
                .get(cands[0])
                .and_then(|s| s.params.get(k))
                .map(|p| p.0.clone())
                .unwrap_or_default();
            out.push(cross(
                "cross-domain-call",
                rel,
                line,
                col,
                format!(
                    "argument {} of `{name}` is {} but parameter `{pname}` expects {}",
                    k + 1,
                    from.render(),
                    to.render()
                ),
                from,
                to,
            ));
        }
    }
}

fn cross(
    rule: &'static str,
    rel: &str,
    line: u32,
    col: u32,
    message: String,
    from: Domain,
    to: Domain,
) -> Finding {
    let mut f = Finding::new(rule, rel.to_string(), line, col, message);
    f.domain_from = from.render();
    f.domain_to = to.render();
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_one(rel: &str, src: &str) -> Vec<Finding> {
        let sources = vec![(rel.to_string(), src.to_string())];
        let prog = Program::build(&sources);
        let toks = lex(src);
        let (annots, bad) = collect_annotations(&toks, rel);
        assert!(bad.is_empty(), "{bad:?}");
        let per_unit = vec![annots];
        let sigs = fn_sigs(&prog, &per_unit);
        let mut out = Vec::new();
        domain_rules(&prog, &sigs, &per_unit, &mut out);
        out
    }

    #[test]
    fn seeding_lexicon() {
        assert_eq!(seed_name("pf_issue_at").unwrap().render(), "CycleStamp(launch)");
        assert_eq!(seed_name("done_at").unwrap().render(), "CycleStamp(completion)");
        assert_eq!(seed_name("l2_lookup_at").unwrap().render(), "CycleStamp");
        assert_eq!(seed_name("now").unwrap().render(), "CycleStamp");
        assert_eq!(seed_name("arb_wait_cycles").unwrap().base, Base::CycleDelta);
        assert_eq!(seed_name("hit_latency").unwrap().base, Base::CycleDelta);
        assert_eq!(seed_name("insts_retired").unwrap().base, Base::InstCount);
        assert_eq!(seed_name("retired_at").unwrap().base, Base::CycleStamp);
        assert_eq!(seed_name("epoch").unwrap().base, Base::IntervalIdx);
        assert_eq!(seed_name("line_addr").unwrap().base, Base::ByteAddr);
        assert_eq!(seed_name("requester").unwrap().base, Base::RequesterId);
        assert_eq!(seed_name("dst_tag").unwrap().base, Base::SlotTag);
        assert_eq!(seed_name("bytes_per_cycle"), None);
        assert_eq!(seed_name("start"), None, "MSHR wait heads stay unseeded");
        assert_eq!(seed_name("x"), None);
    }

    #[test]
    fn stamp_algebra() {
        // stamp - stamp -> delta; stamp + delta -> stamp; stamp + stamp -> bad.
        let f = scan_one(
            "crates/mem/src/t.rs",
            "fn f(done_at: u64, issue_at: u64, latency: u64) -> u64 {\n\
             let wait_cycles = done_at - issue_at;\n\
             let retire_at = done_at + latency;\n\
             retire_at + wait_cycles\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
        let f = scan_one(
            "crates/mem/src/t.rs",
            "fn f(done_at: u64, issue_at: u64) -> u64 { done_at + issue_at }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "cross-domain-arith");
        assert_eq!(f[0].domain_from, "CycleStamp(completion)");
        assert_eq!(f[0].domain_to, "CycleStamp(launch)");
    }

    #[test]
    fn compares_require_equal_bases() {
        let f = scan_one(
            "crates/core/src/t.rs",
            "fn f(done_at: u64, latency: u64) -> bool { done_at < latency }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("compares"), "{}", f[0].message);
        let ok = scan_one(
            "crates/core/src/t.rs",
            "fn f(done_at: u64, now: u64) -> bool { done_at < now }\n",
        );
        assert!(ok.is_empty(), "qualifiers are ignored in compares: {ok:?}");
    }

    #[test]
    fn saturating_methods_follow_the_algebra() {
        let ok = scan_one(
            "crates/mem/src/t.rs",
            "fn f(start_at: u64, now: u64) -> u64 { start_at.saturating_sub(now) }\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let f = scan_one(
            "crates/mem/src/t.rs",
            "fn f(latency: u64, now: u64) -> u64 { latency.saturating_sub(now) }\n",
        );
        assert_eq!(f.len(), 1, "delta - stamp is the classic inversion: {f:?}");
    }

    #[test]
    fn unknown_operands_never_flag() {
        let f = scan_one(
            "crates/mem/src/t.rs",
            "fn f(x: u64, done_at: u64) -> u64 { x + done_at * 2 }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn annotated_qualifier_clash_at_a_call_site() {
        // The PR-8 shape: a completion stamp passed where the callee's
        // annotation demands a launch stamp.
        let src = "\
// swque-domain: now: CycleStamp(launch), return: CycleStamp(completion)
pub fn request(now: u64) -> u64 { now }
pub fn t(done_at: u64) -> u64 { request(done_at) }
pub fn ok(pf_issue_at: u64) -> u64 { request(pf_issue_at) }
pub fn ok2(l2_lookup_at: u64) -> u64 { request(l2_lookup_at) }
";
        let f = scan_one("crates/mem/src/t.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "cross-domain-call");
        assert_eq!(f[0].line, 3);
        assert_eq!(f[0].domain_from, "CycleStamp(completion)");
        assert_eq!(f[0].domain_to, "CycleStamp(launch)");
    }

    #[test]
    fn count_passed_as_stamp_flags() {
        let src = "\
pub fn at(now: u64) -> u64 { now }
pub fn t(insts_retired: u64) -> u64 { at(insts_retired) }
";
        let f = scan_one("crates/cpu/src/t.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].domain_from, "InstCount");
        assert_eq!(f[0].domain_to, "CycleStamp");
    }

    #[test]
    fn call_returns_propagate_through_lets() {
        let src = "\
// swque-domain: return: CycleStamp(completion)
pub fn request(now: u64) -> u64 { now }
// swque-domain: at: CycleStamp(launch)
pub fn launch(at: u64) {}
pub fn t(now: u64) { let t0 = request(now); launch(t0); }
";
        let f = scan_one("crates/mem/src/t.rs", src);
        assert_eq!(f.len(), 1, "the completion return reaches the launch arg: {f:?}");
        assert_eq!(f[0].rule, "cross-domain-call");
    }

    #[test]
    fn let_annotation_overrides_the_name() {
        let src = "\
pub fn t(now: u64, latency: u64) -> u64 {\n\
// swque-domain: fuel: CycleDelta\n\
let fuel = latency; now + fuel }\n";
        let f = scan_one("crates/mem/src/t.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn let_binding_base_mismatch_flags() {
        let f = scan_one(
            "crates/mem/src/t.rs",
            "pub fn t(latency: u64) -> u64 { let done_at = latency; done_at }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("initializer"), "{}", f[0].message);
    }

    #[test]
    fn malformed_annotation_is_a_finding() {
        let toks = lex("// swque-domain: now CycleStamp\nfn f() {}\n");
        let (annots, bad) = collect_annotations(&toks, "crates/mem/src/t.rs");
        assert!(annots.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "malformed-pragma");
        let toks = lex("// swque-domain: x: CycleDelta(launch)\n");
        let (annots, bad) = collect_annotations(&toks, "t.rs");
        assert!(annots.is_empty());
        assert_eq!(bad.len(), 1, "qualifier on a non-stamp base is malformed");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n#[test]\nfn t() { let done_at = 1u64; \
                   let issue_at = 2u64; assert_eq!(done_at + issue_at, 3); }\n}\n";
        let f = scan_one("crates/mem/src/t.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }
}
