//! The ratchet baseline: committed per-rule debt that may only shrink.
//!
//! `lint-baseline.json` (schema `swque-lint-baseline-v3`; the legacy `-v2`
//! and `-v1` schemas are still accepted on read and upgraded on the next
//! `--write-baseline`) records, per rule, how many findings the shipped
//! tree is allowed to contain. The
//! gate semantics are a one-way ratchet:
//!
//! * count **above** baseline → hard failure (new debt is rejected);
//! * count **below** baseline → nag (the baseline can and should be
//!   tightened with `--write-baseline`), but the build stays green;
//! * count **equal** → clean.
//!
//! A missing baseline file means zero debt everywhere — that is what makes
//! the negative self-check in `scripts/verify.sh` work: a scratch tree
//! with one injected violation and no baseline must fail.

use std::collections::BTreeMap;

use swque_trace::Json;

use crate::rules::is_known_rule;

/// Schema string written into the baseline file.
pub const BASELINE_SCHEMA: &str = "swque-lint-baseline-v3";

/// The previous baseline schema, still accepted on read so a tree carrying
/// a v2 file ratchets identically until `--write-baseline` rewrites it.
pub const BASELINE_SCHEMA_V2: &str = "swque-lint-baseline-v2";

/// The original baseline schema, likewise accepted on read.
pub const BASELINE_SCHEMA_V1: &str = "swque-lint-baseline-v1";

/// Per-rule allowed finding counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Rule name → allowed count. Rules absent from the map are held to
    /// zero. `BTreeMap` keeps serialization order deterministic.
    pub rules: BTreeMap<String, u64>,
}

impl Baseline {
    /// The allowed count for `rule` (zero if unlisted).
    pub fn allowed(&self, rule: &str) -> u64 {
        self.rules.get(rule).copied().unwrap_or(0)
    }

    /// Parses a baseline document. Unknown rule names are an error — a
    /// typo in the baseline would otherwise silently hold no debt.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = Json::parse(text).map_err(|e| format!("baseline parse error: {e}"))?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != BASELINE_SCHEMA && schema != BASELINE_SCHEMA_V2 && schema != BASELINE_SCHEMA_V1 {
            return Err(format!(
                "baseline schema {schema:?}, expected {BASELINE_SCHEMA:?} (or legacy \
                 {BASELINE_SCHEMA_V2:?} / {BASELINE_SCHEMA_V1:?})"
            ));
        }
        let entries = doc
            .get("rules")
            .and_then(Json::as_obj)
            .ok_or("baseline: `rules` is not an object")?;
        let mut rules = BTreeMap::new();
        for (name, count) in entries {
            if !is_known_rule(name) {
                return Err(format!("baseline names unknown rule {name:?}"));
            }
            let n = count
                .as_u64()
                .ok_or_else(|| format!("baseline rule {name:?}: count is not an integer"))?;
            rules.insert(name.clone(), n);
        }
        Ok(Baseline { rules })
    }

    /// Serializes the baseline (stable key order).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(BASELINE_SCHEMA)),
            (
                "rules",
                Json::Obj(
                    self.rules
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::from(v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Builds a baseline holding exactly `counts` (used by
    /// `--write-baseline`). Zero-count rules are recorded too, so the file
    /// documents the full rule set.
    pub fn from_counts(counts: &BTreeMap<&'static str, u64>) -> Baseline {
        Baseline {
            rules: counts.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
        }
    }
}

/// Outcome of comparing current counts against the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ratchet {
    /// Rules whose count exceeds the baseline: `(rule, count, allowed)`.
    pub exceeded: Vec<(String, u64, u64)>,
    /// Rules whose count dropped below the baseline: `(rule, count, allowed)`.
    pub slack: Vec<(String, u64, u64)>,
}

impl Ratchet {
    /// True when no rule exceeds its baseline.
    pub fn ok(&self) -> bool {
        self.exceeded.is_empty()
    }
}

/// Compares per-rule counts against the committed baseline.
pub fn ratchet(counts: &BTreeMap<&'static str, u64>, baseline: &Baseline) -> Ratchet {
    let mut out = Ratchet { exceeded: Vec::new(), slack: Vec::new() };
    for (&rule, &count) in counts {
        let allowed = baseline.allowed(rule);
        if count > allowed {
            out.exceeded.push((rule.to_string(), count, allowed));
        } else if count < allowed {
            out.slack.push((rule.to_string(), count, allowed));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&'static str, u64)]) -> BTreeMap<&'static str, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn round_trips_through_json() {
        let b = Baseline::from_counts(&counts(&[("panic-in-lib", 7), ("no-unsafe", 0)]));
        let back = Baseline::parse(&b.to_json().to_string()).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.allowed("panic-in-lib"), 7);
        assert_eq!(back.allowed("wall-clock"), 0, "unlisted rules are held to zero");
    }

    #[test]
    fn unknown_rule_or_schema_is_rejected() {
        let bad = r#"{"schema":"swque-lint-baseline-v3","rules":{"made-up":1}}"#;
        assert!(Baseline::parse(bad).unwrap_err().contains("unknown rule"));
        let bad = r#"{"schema":"v0","rules":{}}"#;
        assert!(Baseline::parse(bad).unwrap_err().contains("schema"));
    }

    #[test]
    fn legacy_baselines_are_accepted_verbatim() {
        let v1 = r#"{"schema":"swque-lint-baseline-v1","rules":{"panic-in-lib":70}}"#;
        let b = Baseline::parse(v1).unwrap();
        assert_eq!(b.allowed("panic-in-lib"), 70);
        // Rules that postdate v1 are simply held to zero.
        assert_eq!(b.allowed("truncating-cast"), 0);
        // Re-serializing writes the current schema: the migration is one-way.
        assert!(b.to_json().to_string().contains(BASELINE_SCHEMA));

        let v2 = r#"{"schema":"swque-lint-baseline-v2","rules":{"truncating-cast":3}}"#;
        let b = Baseline::parse(v2).unwrap();
        assert_eq!(b.allowed("truncating-cast"), 3);
        // Rules that postdate v2 (the dataflow pair) are held to zero.
        assert_eq!(b.allowed("cross-domain-arith"), 0);
        assert!(b.to_json().to_string().contains(BASELINE_SCHEMA));
    }

    #[test]
    fn ratchet_directions() {
        let base = Baseline::from_counts(&counts(&[("panic-in-lib", 5)]));
        let r = ratchet(&counts(&[("panic-in-lib", 6)]), &base);
        assert!(!r.ok());
        assert_eq!(r.exceeded, vec![("panic-in-lib".to_string(), 6, 5)]);
        let r = ratchet(&counts(&[("panic-in-lib", 3)]), &base);
        assert!(r.ok());
        assert_eq!(r.slack, vec![("panic-in-lib".to_string(), 3, 5)]);
        let r = ratchet(&counts(&[("panic-in-lib", 5)]), &base);
        assert!(r.ok() && r.slack.is_empty());
    }

    #[test]
    fn missing_baseline_means_zero_debt() {
        let r = ratchet(&counts(&[("wall-clock", 1)]), &Baseline::default());
        assert_eq!(r.exceeded, vec![("wall-clock".to_string(), 1, 0)]);
    }
}
