//! The determinism/hermeticity rule engine.
//!
//! Since PR 5 the engine is AST-driven: every file is parsed by
//! [`crate::parser`] (a total recursive-descent pass over the
//! [`crate::lexer`] token stream), so rules see *structure* — what is
//! iterated, what is cast, which function a panic lives in — instead of
//! token windows. Rules still honour a per-file **policy** derived from
//! the file's workspace path (see [`Policy`] and DESIGN.md §8 for the
//! crate-class matrix), and findings can be suppressed with an explicit,
//! reasoned pragma:
//!
//! ```text
//! // swque-lint: allow(env-read) — documented SWQUE_PROP_CASES knob
//! ```
//!
//! A pragma suppresses matching findings on its own line and on the line
//! directly below it (so both trailing and preceding-line styles work).
//! A pragma with an unknown rule name or a missing reason is itself a
//! finding (`malformed-pragma`): silent or unexplained suppressions are
//! exactly what the tool exists to prevent.
//!
//! Rules come in four classes (reported per finding as `rule_class`):
//!
//! * **token** — pattern over the lexed token stream (wall-clock, env
//!   reads, manifest hygiene). These predate the parser and need no
//!   structure.
//! * **ast** — judgement over parsed structure: is this `HashMap`
//!   *iterated* or merely probed? Is this `as` cast *narrowing* a cycle
//!   counter? Is the container part of the *public* API surface?
//! * **reachability** — the `panic-in-lib` pass walks the workspace-wide
//!   call graph of [`crate::resolve`] and attributes every panic site to
//!   the public item that reaches it — across files and crates since v3 —
//!   so the debt list reads as an API audit rather than a grep dump.
//! * **dataflow** — the cycle-domain pass of [`crate::domains`]
//!   classifies integer values (cycle stamps vs deltas vs instruction
//!   counts vs …) and flags cross-domain arithmetic, comparison, and
//!   argument passing.
//!
//! Since v3 the engine scans the workspace as **one program**: every file
//! is parsed into a [`crate::resolve::Program`], per-file passes run per
//! unit, and the reachability and dataflow passes run over the whole
//! model. [`scan_rust`] remains as the one-file wrapper the fixture
//! suite exercises.

use crate::domains;
use crate::lexer::{lex, Tok, TokKind};
use crate::parser::{walk_exprs, walk_items, Ast, Expr, ExprKind, ItemKind};
use crate::resolve::{self, Program};

/// Every rule the analyzer knows, in report order.
///
/// * `no-unsafe` — the `unsafe` keyword anywhere (the workspace is 100%
///   safe code and `#![forbid(unsafe_code)]` locks each crate root; this
///   rule catches the attribute being dropped).
/// * `unordered-container` — a `HashMap`/`HashSet` that *escapes through
///   the public API* of a deterministic crate (pub fn signature, pub
///   field): local analysis cannot prove such a container is never
///   iterated by a caller, so exposure itself is the hazard.
/// * `iterated-unordered` — actual iteration (a `for` loop or an
///   iterating method: `iter`, `keys`, `values`, `drain`, `retain`, …)
///   of a binding, field, or parameter known to hold a `HashMap`/
///   `HashSet` in a deterministic crate. This is the precise successor
///   of PR-4's blanket mention rule: probing by key is fine, consuming
///   in hash order is not.
/// * `wall-clock` — `std::time` / `Instant` / `SystemTime` anywhere
///   except the two sanctioned timing harness files.
/// * `ambient-rng` — `thread_rng` / `from_entropy` / `rand::` paths; all
///   randomness must flow through the pinned in-tree `swque-rng`.
/// * `panic-in-lib` — the panic family (`.unwrap(` / `.expect(` /
///   `panic!` / `assert!` / `assert_eq!` / `assert_ne!` /
///   `unreachable!` / `todo!` / `unimplemented!`) in non-test, non-bin
///   library code, attributed to the nearest public item via the
///   intra-file call graph. `debug_assert!` is exempt: it compiles out
///   of the release binaries that produce the paper's numbers.
/// * `env-read` — `std::env` outside the bench/bin harness layer.
/// * `truncating-cast` — a narrowing `as` cast (`u8`/`u16`/`u32`/`i8`/
///   `i16`/`i32` target) applied to a cycle/counter-named expression in
///   a deterministic crate: silent truncation of a 64-bit counter is
///   exactly the accounting bug that distorts IPC conclusions.
/// * `unchecked-arith` — bare `-` between two counter-named operands in
///   a deterministic crate; the workspace convention for counter deltas
///   is `saturating_sub` (an underflow wraps to ~2^64 and poisons every
///   statistic downstream).
/// * `interior-mutability` — `Cell`/`RefCell`/`UnsafeCell` or
///   `static mut` in a deterministic crate: hidden mutation channels
///   defeat the "same inputs, same trace" audit.
/// * `cross-domain-arith` — arithmetic or comparison that mixes cycle
///   domains (stamp+stamp, delta−stamp, a stamp compared against a
///   delta, a stamp-named binding initialized from a delta) in a
///   deterministic crate; see [`crate::domains`] for the algebra.
/// * `cross-domain-call` — an argument whose inferred domain contradicts
///   the parameter's seeded/annotated domain at a call site resolved
///   through the workspace call graph — including a `CycleStamp`
///   qualifier clash (`done_at` passed where a launch stamp is
///   expected), the exact shape of the PR-8 prefetch bug.
/// * `malformed-pragma` — a `swque-lint:` pragma or `swque-domain:`
///   annotation that fails to parse.
/// * `mc-replay` — a string literal that begins with the
///   `swque-mc-replay-v1` magic but fails `Replay::parse`. Replay
///   strings are executable counterexamples; a committed trace that no
///   longer parses is a dead test vector, so the grammar is enforced at
///   lint time, the same way pragmas are.
/// * `external-dep` — `rand`/`proptest`/`criterion` named in a manifest.
/// * `registry-source` — a `source =` entry in `Cargo.lock` (the lockfile
///   must stay path-only for the offline build guarantee).
pub const RULES: [&str; 16] = [
    "no-unsafe",
    "unordered-container",
    "iterated-unordered",
    "wall-clock",
    "ambient-rng",
    "panic-in-lib",
    "env-read",
    "truncating-cast",
    "unchecked-arith",
    "interior-mutability",
    "cross-domain-arith",
    "cross-domain-call",
    "malformed-pragma",
    "mc-replay",
    "external-dep",
    "registry-source",
];

/// True if `rule` is one of [`RULES`].
pub fn is_known_rule(rule: &str) -> bool {
    RULES.contains(&rule)
}

/// The engine class a rule belongs to — carried per finding in the
/// `swque-lint-v3` report as `rule_class`.
pub fn rule_class(rule: &str) -> &'static str {
    match rule {
        "unordered-container" | "iterated-unordered" | "truncating-cast" | "unchecked-arith"
        | "interior-mutability" => "ast",
        "panic-in-lib" => "reachability",
        "cross-domain-arith" | "cross-domain-call" => "dataflow",
        _ => "token",
    }
}

/// The rationale and a minimal bad/good example for a rule, as printed by
/// `swque-lint --explain <rule>`. `None` for unknown rule names.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "no-unsafe" => {
            "no-unsafe [token]\n\
             The workspace is 100% safe Rust and every crate root carries\n\
             #![forbid(unsafe_code)]; this rule catches the attribute being\n\
             dropped or an `unsafe` block sneaking in through generated code.\n\
             bad:  unsafe { *ptr }\n\
             fix:  restructure with safe indexing, or don't."
        }
        "unordered-container" => {
            "unordered-container [ast]\n\
             A HashMap/HashSet exposed through the public API surface of a\n\
             deterministic crate (pub fn parameter/return, pub field). A\n\
             caller in another crate could iterate it, leaking the host hash\n\
             seed into simulated behaviour — and intra-file analysis cannot\n\
             see that caller. Private fields and locals are fine (the\n\
             iterated-unordered rule watches those for actual iteration).\n\
             bad:  pub fn pages(&self) -> &HashMap<u64, Page>\n\
             fix:  return a BTreeMap, a sorted Vec, or a probe method."
        }
        "iterated-unordered" => {
            "iterated-unordered [ast]\n\
             Actual iteration of a HashMap/HashSet (for loop, .iter(),\n\
             .keys(), .values(), .drain(), .retain(), …) in a deterministic\n\
             crate. Iteration order depends on the host hash seed, so any\n\
             simulated-path decision derived from it breaks the golden\n\
             cycle pins. Probing by key is allowed — that is the point of\n\
             the rule being AST-based.\n\
             bad:  for (addr, page) in &self.pages { … }\n\
             fix:  keep a sorted index, or collect-and-sort before use."
        }
        "wall-clock" => {
            "wall-clock [token]\n\
             std::time / Instant / SystemTime outside the two sanctioned\n\
             harness files (crates/rng/src/timer.rs, perf_gate.rs). Reading\n\
             the clock on the simulated path makes runs irreproducible.\n\
             bad:  let t0 = std::time::Instant::now();\n\
             fix:  count cycles/events, or use swque_rng::timer in harness code."
        }
        "ambient-rng" => {
            "ambient-rng [token]\n\
             thread_rng / from_entropy / rand:: paths tap host entropy; every\n\
             stochastic choice must flow through the pinned swque-rng stream\n\
             so a (kernel, parameters) pair names one trace forever.\n\
             bad:  let x = rand::thread_rng().gen::<u64>();\n\
             fix:  let x = rng.next_u64(); // swque_rng::Rng, seeded"
        }
        "panic-in-lib" => {
            "panic-in-lib [reachability]\n\
             The panic family (.unwrap(, .expect(, panic!, assert!,\n\
             assert_eq!, assert_ne!, unreachable!, todo!, unimplemented!) in\n\
             library code. Each finding is attributed to its enclosing\n\
             function and, via the workspace-wide call graph (cross-file,\n\
             cross-crate since v3), to the nearest public item that reaches\n\
             it — so the debt reads as an API audit. debug_assert! is\n\
             exempt (compiled out of release binaries). Burn down by\n\
             bubbling a Result, saturating, or justifying the invariant\n\
             with a reasoned pragma.\n\
             bad:  pub fn ipc(&self) -> f64 { self.div().unwrap() }\n\
             fix:  pub fn ipc(&self) -> Option<f64> { self.div() }"
        }
        "env-read" => {
            "env-read [token]\n\
             std::env outside the bench/bin harness layer. Environment knobs\n\
             are config, and config flows in through constructors — a lib\n\
             that reads the environment behaves differently per shell.\n\
             bad:  let n = std::env::var(\"N\").unwrap();\n\
             fix:  take `n` as a parameter; parse env in the bin."
        }
        "truncating-cast" => {
            "truncating-cast [ast]\n\
             A narrowing `as` cast (target u8/u16/u32/i8/i16/i32) applied to\n\
             a cycle/counter-named expression in a deterministic crate.\n\
             Counters are u64 by convention; `as u32` silently truncates\n\
             after 4.2 billion cycles and the IPC numbers drift without a\n\
             single test failing.\n\
             bad:  let c = self.cycles as u32;\n\
             fix:  keep u64, or use u32::try_from(cycles) at a checked edge."
        }
        "unchecked-arith" => {
            "unchecked-arith [ast]\n\
             Bare `-` between two counter-named operands in a deterministic\n\
             crate. Counter deltas use saturating_sub by workspace\n\
             convention: an underflow wraps to ~2^64 and poisons every\n\
             derived statistic. Additions are exempt (u64 headroom).\n\
             bad:  let delta = end_cycle - start_cycle;\n\
             fix:  let delta = end_cycle.saturating_sub(start_cycle);"
        }
        "interior-mutability" => {
            "interior-mutability [ast]\n\
             Cell/RefCell/UnsafeCell or `static mut` in a deterministic\n\
             crate. Interior mutability is a hidden write channel: state\n\
             changes that don't appear in any &mut signature defeat the\n\
             \"same inputs, same trace\" audit the whole evaluation rests on.\n\
             bad:  stats: RefCell<Stats>\n\
             fix:  take &mut self, or move the state to the caller."
        }
        "cross-domain-arith" => {
            "cross-domain-arith [dataflow]\n\
             Arithmetic, comparison, or a let-binding that mixes cycle\n\
             domains in a deterministic crate. Values are classified\n\
             (CycleStamp, CycleDelta, InstCount, IntervalIdx, ByteAddr,\n\
             RequesterId, SlotTag) from names and `// swque-domain:`\n\
             annotations; the legal algebra is stamp−stamp→delta and\n\
             stamp±delta→stamp — adding two stamps, subtracting a stamp\n\
             from a delta, or comparing a stamp against a delta is a unit\n\
             error of exactly the kind behind the PR-8 prefetch bug.\n\
             `*`/`/`/`%` erase the domain (insts/cycles is IPC, not a bug)\n\
             and unknown operands never flag.\n\
             bad:  let budget = done_at + issue_at;\n\
             fix:  let budget = done_at - issue_at; // stamp - stamp = delta"
        }
        "cross-domain-call" => {
            "cross-domain-call [dataflow]\n\
             An argument whose inferred cycle domain contradicts the\n\
             parameter's domain (seeded from its name or pinned by a\n\
             `// swque-domain:` annotation on the callee signature), at a\n\
             call site resolved through the workspace-wide call graph.\n\
             CycleStamp qualifiers are enforced here: passing a\n\
             completion-qualified stamp (`done_at`) where the callee\n\
             declares `CycleStamp(launch)` re-creates the PR-8 bug of\n\
             launching prefetches at the demand's completion cycle.\n\
             bad:  dram.request_from(requester, done_at)\n\
             fix:  dram.request_from(requester, pf_issue_at)"
        }
        "malformed-pragma" => {
            "malformed-pragma [token]\n\
             A `// swque-lint: …` pragma or `// swque-domain: …` annotation\n\
             that fails to parse — unknown rule or domain name, missing\n\
             parens, or missing reason. Silent or unexplained suppressions\n\
             (and silently ignored annotations) are what the tool exists to\n\
             prevent, so a broken comment is itself a finding rather than a\n\
             silent no-op.\n\
             bad:  // swque-lint: allow(wall-clock)\n\
             fix:  // swque-lint: allow(wall-clock) — bench timer, documented"
        }
        "mc-replay" => {
            "mc-replay [token]\n\
             A string literal starting with the `swque-mc-replay-v1` magic\n\
             fails `swque_core::replay::Replay::parse`. Replay strings are\n\
             executable counterexamples: the corpus under\n\
             `crates/mc/tests/replays/` and every inline trace in a test\n\
             must stay re-runnable, so the grammar is enforced here the\n\
             same way pragma syntax is.\n\
             bad:  \"swque-mc-replay-v1 kind=CIRC cap=x width=2 …\"\n\
             fix:  render traces with `Replay::render`; build deliberately\n\
             broken parser fixtures with `format!(\"{REPLAY_MAGIC} …\")` so\n\
             the literal itself does not carry the magic."
        }
        "external-dep" => {
            "external-dep [token]\n\
             A manifest names rand/proptest/criterion. The workspace is\n\
             hermetic: every dependency is an in-tree path crate, and the\n\
             offline build on a clean machine is the CI-enforced path.\n\
             bad:  [dev-dependencies] proptest = \"1\"\n\
             fix:  use swque_rng::prop, the in-tree property harness."
        }
        "registry-source" => {
            "registry-source [token]\n\
             Cargo.lock contains a `source =` registry entry. The lockfile\n\
             must stay path-only so `cargo build --offline` succeeds on a\n\
             checkout with no network and no ~/.cargo cache.\n\
             bad:  source = \"registry+https://github.com/rust-lang/crates.io-index\"\n\
             fix:  remove the external dependency; vendor the code in-tree."
        }
        _ => return None,
    })
}

/// One diagnostic: a rule fired at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (an entry of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Dataflow rules: the domain the offending value actually has
    /// (rendered per the annotation grammar, e.g. `CycleStamp(completion)`).
    /// Empty for other rules.
    pub domain_from: String,
    /// Dataflow rules: the domain the context expects. Empty otherwise.
    pub domain_to: String,
    /// Reachability rules: the pub-to-site hop chain (`entry:12 →
    /// helper:40 (crates/cpu/src/core.rs)`). Empty when the site is
    /// directly public, at module scope, or the rule carries no chain.
    pub chain: String,
}

impl Finding {
    /// A finding with empty v3 extras (`domain_from`/`domain_to`/`chain`).
    pub fn new(rule: &'static str, file: String, line: u32, col: u32, message: String) -> Finding {
        Finding {
            rule,
            file,
            line,
            col,
            message,
            domain_from: String::new(),
            domain_to: String::new(),
            chain: String::new(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}: [{}] {}", self.file, self.line, self.col, self.rule, self.message)
    }
}

/// Which rules apply to a file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Policy {
    /// File lives in a test/bench/example tree (`tests/`, `benches/`,
    /// `examples/` path segment): relaxed determinism, panics allowed.
    pub test_code: bool,
    /// File is a binary target (`src/bin/…` or `src/main.rs`): harness
    /// layer, may read the environment and panic.
    pub bin: bool,
    /// Library code of a simulated-path crate: unordered containers,
    /// narrowing counter casts, and interior mutability banned.
    pub deterministic: bool,
    /// Sanctioned wall-clock site (the bench timer and the perf gate).
    pub wall_clock_allowed: bool,
    /// Sanctioned environment-read site (harness crate, bins, tests, and
    /// the bench timer).
    pub env_allowed: bool,
    /// Non-bin, non-test code under some `src/`: panic family banned.
    pub lib_code: bool,
}

/// Crates whose library code runs on the simulated path and therefore must
/// not observe host hash-seed nondeterminism. `branch` and `circuit` carry
/// no containers today but are simulated-path crates, so the ban applies
/// to them too; `swque` is the root facade. `mc` is not simulated-path but
/// its whole value is exhaustive reproducibility — the same determinism
/// contract applies to the checker itself.
const DETERMINISTIC_CRATES: [&str; 10] =
    ["core", "cpu", "mem", "isa", "workloads", "trace", "branch", "circuit", "swque", "mc"];

/// Files allowed to read the wall clock: the in-tree bench timer (the
/// workspace's only `Instant` abstraction) and the host-throughput gate.
const WALL_CLOCK_FILES: [&str; 2] =
    ["crates/rng/src/timer.rs", "crates/bench/src/bin/perf_gate.rs"];

/// Derives the rule policy for a workspace-relative path (forward-slash
/// separated, e.g. `crates/mem/src/hierarchy.rs`).
pub fn classify(rel: &str) -> Policy {
    let segs: Vec<&str> = rel.split('/').collect();
    let test_code = segs.iter().any(|s| matches!(*s, "tests" | "benches" | "examples"));
    let bin = rel.contains("src/bin/") || rel.ends_with("src/main.rs") || rel == "build.rs";
    let crate_name = if segs.first() == Some(&"crates") && segs.len() > 1 {
        segs[1]
    } else {
        "swque" // the root facade crate
    };
    let in_src = segs.iter().any(|s| *s == "src");
    let deterministic =
        DETERMINISTIC_CRATES.contains(&crate_name) && in_src && !test_code && !bin;
    let wall_clock_allowed = WALL_CLOCK_FILES.contains(&rel);
    let env_allowed =
        crate_name == "bench" || bin || test_code || rel == "crates/rng/src/timer.rs";
    let lib_code = in_src && !bin && !test_code;
    Policy { test_code, bin, deterministic, wall_clock_allowed, env_allowed, lib_code }
}

/// A parsed suppression pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Pragma {
    /// Line the pragma comment sits on.
    line: u32,
    /// The rules it suppresses.
    rules: Vec<String>,
}

/// Parses the body of one `swque-lint:` comment (the text after the
/// marker). Grammar: `allow(rule[, rule]*) <sep> <reason>` where `<sep>`
/// is `—`, `–`, `-`, or `:` and `<reason>` is non-empty.
fn parse_pragma_body(body: &str) -> Result<Vec<String>, String> {
    let body = body.trim();
    let rest = body
        .strip_prefix("allow")
        .map(str::trim_start)
        .ok_or("expected `allow(rule, …)` after `swque-lint:`")?;
    let rest = rest.strip_prefix('(').ok_or("expected `(` after `allow`")?;
    let close = rest.find(')').ok_or("unclosed `allow(` rule list")?;
    let (list, tail) = rest.split_at(close);
    let mut rules = Vec::new();
    for name in list.split(',') {
        let name = name.trim();
        if name.is_empty() {
            return Err("empty rule name in allow(...)".to_string());
        }
        if !is_known_rule(name) {
            return Err(format!("unknown rule {name:?} (known: {})", RULES.join(", ")));
        }
        rules.push(name.to_string());
    }
    let mut reason = tail[1..].trim_start(); // past the ')'
    for sep in ['\u{2014}', '\u{2013}', '-', ':'] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r.trim_start();
            break;
        }
    }
    if reason.is_empty() {
        return Err("pragma needs a reason: `allow(rule) — <why>`".to_string());
    }
    Ok(rules)
}

/// Extracts pragmas from comment tokens; malformed ones become findings.
fn collect_pragmas(toks: &[Tok<'_>], rel: &str) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for t in toks {
        if !t.is_comment() {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim_start_matches('!').trim_start();
        let Some(body) = body.strip_prefix("swque-lint:") else { continue };
        match parse_pragma_body(body) {
            Ok(rules) => pragmas.push(Pragma { line: t.line, rules }),
            Err(why) => {
                findings.push(Finding::new("malformed-pragma", rel.to_string(), t.line, t.col, why));
            }
        }
    }
    (pragmas, findings)
}

/// True when `line` falls inside any of the inclusive `regions`.
fn line_in(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| a <= line && line <= b)
}

/// Inclusive line ranges of `#[cfg(test)]` items, read off the AST.
/// Determinism rules do not apply inside: test code may use `HashMap`
/// models, `unwrap`, and friends freely.
fn test_regions(ast: &Ast<'_>) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    walk_items(ast, &ast.items, false, &mut |item, in_test| {
        if in_test {
            let (start, _) = ast.pos(item.lo);
            let end = item.hi.checked_sub(1).map_or(start, |i| ast.pos(i).0);
            regions.push((start, end.max(start)));
        }
    });
    regions
}

/// The unordered container type names the container rules watch.
fn is_unordered_ty(name: &str) -> bool {
    matches!(name, "HashMap" | "HashSet")
}

/// Methods that consume a container in iteration order.
const ITER_METHODS: [&str; 10] = [
    "iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "into_keys", "into_values",
    "drain", "retain",
];

/// Idents that name cycle/instruction counters — the lexicon behind
/// `truncating-cast` and `unchecked-arith`.
fn counterish(name: &str) -> bool {
    let l = name.to_ascii_lowercase();
    ["cycle", "tick", "retired", "epoch", "insts", "instret"].iter().any(|k| l.contains(k))
}

/// Narrow integer type names for `truncating-cast`. `usize` is excluded:
/// it is 64-bit on every supported target, so `u64 as usize` is not a
/// truncation hazard there, and flagging it would bury the real signal.
fn is_narrow_int(name: &str) -> bool {
    matches!(name, "u8" | "u16" | "u32" | "i8" | "i16" | "i32")
}

/// The macro names of the panic family. `debug_assert*` is deliberately
/// absent: it compiles out of release binaries, and the paper's numbers
/// come from release builds.
const PANIC_MACROS: [&str; 7] =
    ["panic", "assert", "assert_eq", "assert_ne", "unreachable", "todo", "unimplemented"];

// ---------------------------------------------------------------------------
// Token-class rules.
// ---------------------------------------------------------------------------

/// The token-window rules: wall-clock, ambient RNG, env reads, `unsafe`,
/// and interior-mutability type names. These need no structure beyond
/// "is a code token" (plus the AST-derived cfg(test) regions).
fn token_rules(
    ast: &Ast<'_>,
    policy: &Policy,
    regions: &[(u32, u32)],
    rel: &str,
    out: &mut Vec<Finding>,
) {
    let text_at = |k: usize| ast.tok(k).map(|t| t.text);
    let mut push = |rule: &'static str, t: &Tok<'_>, message: String| {
        out.push(Finding::new(rule, rel.to_string(), t.line, t.col, message));
    };
    for (i, t) in ast.toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = text_at(i + 1);
        let next2 = text_at(i + 2);
        let next3 = text_at(i + 3);
        match t.text {
            "unsafe" => {
                push("no-unsafe", t, "`unsafe` is banned workspace-wide".to_string());
            }
            "Instant" | "SystemTime" if !policy.wall_clock_allowed => {
                push(
                    "wall-clock",
                    t,
                    format!("`{}` outside the sanctioned timing harness", t.text),
                );
            }
            "std"
                if !policy.wall_clock_allowed
                    && next == Some(":")
                    && next2 == Some(":")
                    && next3 == Some("time") =>
            {
                push("wall-clock", t, "`std::time` outside the sanctioned timing harness".into());
            }
            "thread_rng" | "from_entropy" => {
                push(
                    "ambient-rng",
                    t,
                    format!("`{}` taps ambient entropy; seed a `swque_rng::Rng` instead", t.text),
                );
            }
            "rand" if next == Some(":") && next2 == Some(":") => {
                push("ambient-rng", t, "`rand::` path: the workspace PRNG is swque-rng".into());
            }
            "std"
                if !policy.env_allowed
                    && !line_in(regions, t.line)
                    && next == Some(":")
                    && next2 == Some(":")
                    && next3 == Some("env") =>
            {
                push("env-read", t, "`std::env` outside the bench/bin harness layer".to_string());
            }
            "Cell" | "RefCell" | "UnsafeCell"
                if policy.deterministic && !line_in(regions, t.line) =>
            {
                push(
                    "interior-mutability",
                    t,
                    format!(
                        "`{}` in a deterministic crate: hidden write channels defeat the \
                         same-inputs-same-trace audit",
                        t.text
                    ),
                );
            }
            _ => {}
        }
    }
}

/// The cooked content of a string-literal token (`"…"`, `b"…"`, `r#"…"#`)
/// with escapes resolved. `None` when the token is not a recoverable
/// string form. `\x`/`\u` escapes are kept verbatim: replay strings are
/// plain ASCII and a trace that needs them is malformed anyway.
fn str_literal_content(raw: &str) -> Option<String> {
    let rest = raw.strip_prefix('b').unwrap_or(raw);
    if let Some(rest) = rest.strip_prefix('r') {
        let hashes = rest.len() - rest.trim_start_matches('#').len();
        let rest = rest[hashes..].strip_prefix('"')?;
        let closer = format!("\"{}", "#".repeat(hashes));
        return Some(rest.strip_suffix(closer.as_str()).unwrap_or(rest).to_string());
    }
    let rest = rest.strip_prefix('"')?;
    let body = rest.strip_suffix('"').unwrap_or(rest);
    let mut out = String::new();
    let mut chars = body.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('0') => out.push('\0'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('\'') => out.push('\''),
            Some('\n') => {
                // Line continuation: swallow the newline and the next
                // line's leading indentation.
                while chars.peek().is_some_and(|c| c.is_whitespace()) {
                    chars.next();
                }
            }
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => {}
        }
    }
    Some(out)
}

/// `mc-replay`: every string literal that begins with the replay magic
/// must parse under the `swque-mc-replay-v1` grammar. Applies everywhere,
/// tests included — the committed counterexample corpus lives in test
/// code, and a trace that stopped parsing is a dead vector. A literal
/// holding the bare magic is a constant, not a trace, and is exempt.
fn replay_literal_rules(toks: &[Tok<'_>], rel: &str, out: &mut Vec<Finding>) {
    use swque_core::replay::{Replay, REPLAY_MAGIC};
    for t in toks {
        if t.kind != TokKind::Str {
            continue;
        }
        let Some(content) = str_literal_content(t.text) else { continue };
        let Some(rest) = content.strip_prefix(REPLAY_MAGIC) else { continue };
        if rest.is_empty() {
            continue;
        }
        if let Err(e) = Replay::parse(&content) {
            out.push(Finding::new(
                "mc-replay",
                rel.to_string(),
                t.line,
                t.col,
                format!("replay literal fails to parse: {}", e.message),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// AST-class rules.
// ---------------------------------------------------------------------------

/// Scans back from token `at` to the nearest field/param boundary (`,`,
/// `{`, `(`, `|`) after `lo`; returns the tokens of that segment as
/// `(index, text)` pairs up to and including `at`.
fn segment_before<'a>(ast: &Ast<'a>, lo: usize, at: usize) -> Vec<(usize, &'a str)> {
    let mut start = at;
    while start > lo {
        let prev = ast.text(start - 1);
        if matches!(prev, "," | "{" | "(" | "|" | ";") {
            break;
        }
        start -= 1;
    }
    (start..=at).map(|i| (i, ast.text(i))).collect()
}

/// The declared name of the field/param whose type mentions token `at`:
/// the ident directly before the first `:` of the segment.
fn segment_name<'a>(ast: &Ast<'a>, lo: usize, at: usize) -> Option<&'a str> {
    let seg = segment_before(ast, lo, at);
    seg.windows(2).find_map(|w| {
        let ((i, name), (_, colon)) = (w[0], w[1]);
        let is_ident = ast.tok(i).is_some_and(|t| t.kind == TokKind::Ident);
        (is_ident && colon == ":").then_some(name)
    })
}

/// True when the field/param segment holding token `at` carries `pub`.
fn segment_is_pub(ast: &Ast<'_>, lo: usize, at: usize) -> bool {
    segment_before(ast, lo, at).iter().any(|&(_, s)| s == "pub")
}

/// The "iteration root" of an expression: the name token a container
/// lookup resolves against. `&self.pages` → `pages`; `(m)` → `m`;
/// `map` → `map`. `None` when the expression has no stable name.
fn iter_root(e: &Expr) -> Option<usize> {
    match &e.kind {
        ExprKind::Path(segs) => segs.last().copied(),
        ExprKind::Field { name, .. } => Some(*name),
        ExprKind::Unary { expr } => iter_root(expr),
        ExprKind::Group { exprs } if exprs.len() == 1 => iter_root(&exprs[0]),
        _ => None,
    }
}

/// The container rules plus cast/arith rules — everything that needs the
/// parse tree. Only called for deterministic-crate files.
fn ast_rules(ast: &Ast<'_>, rel: &str, out: &mut Vec<Finding>) {
    // Pass 1: every name known to hold an unordered container — private
    // fields, fn params, and let-bindings (by type annotation or by a
    // `HashMap::…`/`HashSet::…` constructor initializer).
    let mut unordered_names: Vec<String> = Vec::new();
    let mut record = |name: &str| {
        if !name.is_empty() && !unordered_names.iter().any(|n| n == name) {
            unordered_names.push(name.to_string());
        }
    };
    walk_items(ast, &ast.items, false, &mut |item, in_test| {
        if in_test {
            return;
        }
        match &item.kind {
            ItemKind::Adt { .. } => {
                for i in item.lo..item.hi {
                    if is_unordered_ty(ast.text(i)) {
                        if let Some(name) = segment_name(ast, item.lo, i) {
                            record(name);
                        }
                    }
                }
            }
            ItemKind::Fn { sig, .. } => {
                for i in sig.0..sig.1 {
                    if is_unordered_ty(ast.text(i)) {
                        if let Some(name) = segment_name(ast, sig.0, i) {
                            record(name);
                        }
                    }
                }
            }
            _ => {}
        }
    });
    walk_exprs(ast, &ast.items, &mut |e, cx| {
        if cx.in_cfg_test {
            return;
        }
        if let ExprKind::Let { name: Some(n), ty, init } = &e.kind {
            let ty_unordered = ty
                .map(|(a, b)| (a..b).any(|i| is_unordered_ty(ast.text(i))))
                .unwrap_or(false);
            let init_unordered = init.as_deref().is_some_and(|init| {
                let root = match &init.kind {
                    ExprKind::Call { callee, .. } => callee,
                    _ => init,
                };
                matches!(&root.kind, ExprKind::Path(segs)
                    if segs.iter().any(|&s| is_unordered_ty(ast.text(s))))
            });
            if ty_unordered || init_unordered {
                let name = ast.text(*n).to_string();
                if !name.is_empty() && !unordered_names.iter().any(|x| *x == name) {
                    unordered_names.push(name);
                }
            }
        }
    });

    // Pass 2a: public-API escape (`unordered-container`). A pub fn whose
    // signature mentions the type, a pub field of a pub struct, or any
    // variant of a pub enum: a caller outside this file could iterate it.
    walk_items(ast, &ast.items, false, &mut |item, in_test| {
        if in_test || !item.vis_pub {
            return;
        }
        let mut fire = |i: usize, surface: &str| {
            let (line, col) = ast.pos(i);
            out.push(Finding::new(
                "unordered-container",
                rel.to_string(),
                line,
                col,
                format!(
                    "`{}` escapes through a public {surface} in a deterministic crate: a \
                     caller could iterate it in host hash order; expose a BTreeMap/BTreeSet, \
                     a sorted Vec, or a probe method instead",
                    ast.text(i)
                ),
            ));
        };
        match &item.kind {
            ItemKind::Fn { sig, .. } => {
                for i in sig.0..sig.1 {
                    if is_unordered_ty(ast.text(i)) {
                        fire(i, "fn signature");
                    }
                }
            }
            ItemKind::Adt { .. } => {
                let is_enum = (item.lo..item.hi).any(|i| ast.text(i) == "enum");
                for i in item.lo..item.hi {
                    if is_unordered_ty(ast.text(i))
                        && (is_enum || segment_is_pub(ast, item.lo, i))
                    {
                        fire(i, if is_enum { "enum variant" } else { "struct field" });
                    }
                }
            }
            _ => {}
        }
    });

    // Pass 2b: expression rules — iteration, narrowing casts, bare
    // counter subtraction.
    walk_exprs(ast, &ast.items, &mut |e, cx| {
        if cx.in_cfg_test {
            return;
        }
        match &e.kind {
            ExprKind::For { iter, .. } => {
                if let Some(root) = iter_root(iter) {
                    if unordered_names.iter().any(|n| n == ast.text(root)) {
                        let (line, col) = ast.pos(root);
                        out.push(Finding::new(
                            "iterated-unordered",
                            rel.to_string(),
                            line,
                            col,
                            format!(
                                "`for` loop iterates `{}` (a HashMap/HashSet) in a \
                                 deterministic crate: iteration order depends on the host \
                                 hash seed",
                                ast.text(root)
                            ),
                        ));
                    }
                }
            }
            ExprKind::MethodCall { recv, name, .. }
                if ITER_METHODS.contains(&ast.text(*name)) =>
            {
                if let Some(root) = iter_root(recv) {
                    if unordered_names.iter().any(|n| n == ast.text(root)) {
                        let (line, col) = ast.pos(*name);
                        out.push(Finding::new(
                            "iterated-unordered",
                            rel.to_string(),
                            line,
                            col,
                            format!(
                                "`.{}()` consumes `{}` (a HashMap/HashSet) in iteration \
                                 order in a deterministic crate",
                                ast.text(*name),
                                ast.text(root)
                            ),
                        ));
                    }
                }
            }
            ExprKind::Cast { expr, ty } => {
                let narrow = (ty.0..ty.1).find(|&i| is_narrow_int(ast.text(i)));
                let counter = (expr.lo..expr.hi).find(|&i| {
                    ast.tok(i).is_some_and(|t| t.kind == TokKind::Ident)
                        && counterish(ast.text(i))
                });
                if let (Some(ty_tok), Some(src_tok)) = (narrow, counter) {
                    let (line, col) = ast.pos(expr.lo);
                    out.push(Finding::new(
                        "truncating-cast",
                        rel.to_string(),
                        line,
                        col,
                        format!(
                            "`{} as {}` narrows a counter-typed expression in a \
                             deterministic crate; keep u64 or use try_from at a checked edge",
                            ast.text(src_tok),
                            ast.text(ty_tok)
                        ),
                    ));
                }
            }
            ExprKind::Binary { op: "-", op_tok, lhs, rhs } => {
                let counter_leaf = |side: &Expr| {
                    (side.lo..side.hi).any(|i| {
                        ast.tok(i).is_some_and(|t| t.kind == TokKind::Ident)
                            && counterish(ast.text(i))
                    })
                };
                if counter_leaf(lhs) && counter_leaf(rhs) {
                    let (line, col) = ast.pos(*op_tok);
                    out.push(Finding::new(
                        "unchecked-arith",
                        rel.to_string(),
                        line,
                        col,
                        "bare `-` between counters in a deterministic crate; the \
                         workspace convention for counter deltas is `saturating_sub`"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    });

    // `static mut` — the item-level half of interior-mutability.
    walk_items(ast, &ast.items, false, &mut |item, in_test| {
        if in_test {
            return;
        }
        if let ItemKind::Static { mutable: true } = item.kind {
            let (line, col) = ast.pos(item.lo);
            out.push(Finding::new(
                "interior-mutability",
                rel.to_string(),
                line,
                col,
                "`static mut` in a deterministic crate".to_string(),
            ));
        }
    });
}

// ---------------------------------------------------------------------------
// The panic-reachability pass (workspace-wide since v3).
// ---------------------------------------------------------------------------

/// The panic-family pass for one unit of the program: find every site
/// over the token stream (exact parity with the PR-4 token rule, so no
/// site is lost to a parse degradation), then attribute each to its
/// enclosing function and the nearest public item via the workspace-wide
/// call graph of [`crate::resolve`] — the chain may cross files and
/// crates, and foreign hops carry their file in the rendered chain.
fn panic_rules(
    prog: &Program<'_>,
    unit: usize,
    regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    let ast = &prog.units[unit].ast;
    let rel = prog.units[unit].rel;
    let text_at = |k: usize| ast.tok(k).map(|t| t.text);
    for (i, t) in ast.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || line_in(regions, t.line) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(text_at);
        let next = text_at(i + 1);
        let what = match t.text {
            "unwrap" | "expect" if prev == Some(".") && next == Some("(") => {
                format!("`.{}(`", t.text)
            }
            m if PANIC_MACROS.contains(&m) && next == Some("!") => format!("`{m}!`"),
            _ => continue,
        };
        let mut chain_text = String::new();
        let attribution = match prog.enclosing_fn(unit, i) {
            None => " at module scope".to_string(),
            Some(e) => match resolve::path_to_pub(prog, e) {
                Some(chain) if chain.len() == 1 => {
                    format!(" in pub fn `{}`", prog.fns[e].name)
                }
                Some(chain) => {
                    chain_text = resolve::format_chain(prog, &chain, unit);
                    format!(
                        " in `{}`, reachable from pub fn `{}` via {}",
                        prog.fns[e].name, prog.fns[chain[0]].name, chain_text
                    )
                }
                None => format!(
                    " in `{}` (no public caller found in the workspace)",
                    prog.fns[e].name
                ),
            },
        };
        let mut f = Finding::new(
            "panic-in-lib",
            rel.to_string(),
            t.line,
            t.col,
            format!(
                "{what} in library code{attribution}; bubble a Result, saturate, or justify \
                 the invariant with a pragma"
            ),
        );
        f.chain = chain_text;
        out.push(f);
    }
}

// ---------------------------------------------------------------------------
// Program entry points.
// ---------------------------------------------------------------------------

/// Scans a set of Rust sources as **one program**: per-file token/AST
/// rules, then the workspace passes (cross-file panic reachability and
/// the cycle-domain dataflow pass), then per-file pragma suppression.
/// Returns the surviving findings (sorted by file, line, col, rule) plus
/// the number of findings pragmas suppressed.
pub fn scan_sources(sources: &[(String, String)]) -> (Vec<Finding>, usize) {
    let prog = Program::build(sources);
    let mut raw: Vec<Finding> = Vec::new();
    // Malformed pragmas/annotations bypass suppression: no pragma may
    // suppress the finding that reports a broken pragma.
    let mut findings: Vec<Finding> = Vec::new();
    let mut pragmas_by_file: std::collections::BTreeMap<&str, Vec<Pragma>> = Default::default();
    let mut annots: Vec<Vec<domains::Annot>> = Vec::new();

    for (u, (rel, src)) in sources.iter().enumerate() {
        let policy = classify(rel);
        let raw_toks = lex(src);
        let (pragmas, mut malformed) = collect_pragmas(&raw_toks, rel);
        let (file_annots, mut bad_annots) = domains::collect_annotations(&raw_toks, rel);
        findings.append(&mut malformed);
        findings.append(&mut bad_annots);
        pragmas_by_file.insert(rel.as_str(), pragmas);
        annots.push(file_annots);

        let ast = &prog.units[u].ast;
        let regions = test_regions(ast);
        token_rules(ast, &policy, &regions, rel, &mut raw);
        replay_literal_rules(&raw_toks, rel, &mut raw);
        if policy.deterministic {
            ast_rules(ast, rel, &mut raw);
        }
        if policy.lib_code {
            panic_rules(&prog, u, &regions, &mut raw);
        }
    }

    let sigs = domains::fn_sigs(&prog, &annots);
    domains::domain_rules(&prog, &sigs, &annots, &mut raw);

    // One finding per (rule, file, line): a `use std::time::Instant`
    // should read as one diagnostic, not three.
    raw.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
    });
    raw.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.line == b.line);

    let mut suppressed = 0usize;
    for f in raw {
        let allowed = pragmas_by_file.get(f.file.as_str()).is_some_and(|pragmas| {
            pragmas.iter().any(|p| {
                (p.line == f.line || p.line + 1 == f.line) && p.rules.iter().any(|r| r == f.rule)
            })
        });
        if allowed {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
    });
    (findings, suppressed)
}

/// Scans one Rust source file as a single-unit program. The fixture
/// suite runs through this wrapper; its semantics are [`scan_sources`]
/// over one file (so reachability chains and domain resolution see only
/// this file, as in v2).
pub fn scan_rust(rel: &str, src: &str) -> (Vec<Finding>, usize) {
    let sources = vec![(rel.to_string(), src.to_string())];
    scan_sources(&sources)
}

/// Scans a manifest (`Cargo.toml`) or lockfile (`Cargo.lock`) with the
/// hermeticity line rules that used to live as `grep`s in `verify.sh`.
pub fn scan_manifest(rel: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lock = rel.ends_with("Cargo.lock");
    for (ln, line) in src.lines().enumerate() {
        let line_no = ln as u32 + 1;
        let trimmed = line.trim_start();
        let col = (line.chars().count() - trimmed.chars().count()) as u32 + 1;
        if lock {
            if trimmed.starts_with("source =") {
                findings.push(Finding::new(
                    "registry-source",
                    rel.to_string(),
                    line_no,
                    col,
                    "Cargo.lock names a registry source; the lockfile must stay \
                     path-only for the offline build"
                        .to_string(),
                ));
            }
            continue;
        }
        for dep in ["rand", "proptest", "criterion"] {
            let boundary_ok = trimmed
                .strip_prefix(dep)
                .is_some_and(|rest| !rest.starts_with(|c: char| c.is_alphanumeric() || c == '_'));
            if boundary_ok {
                findings.push(Finding::new(
                    "external-dep",
                    rel.to_string(),
                    line_no,
                    col,
                    format!(
                        "manifest names external dependency `{dep}`; the workspace is hermetic"
                    ),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn classify_matrix() {
        let det = classify("crates/mem/src/hierarchy.rs");
        assert!(det.deterministic && det.lib_code && !det.env_allowed);
        let bench = classify("crates/bench/src/harness.rs");
        assert!(!bench.deterministic && bench.env_allowed && bench.lib_code);
        let bin = classify("crates/bench/src/bin/perf_gate.rs");
        assert!(bin.bin && bin.wall_clock_allowed && !bin.lib_code);
        let timer = classify("crates/rng/src/timer.rs");
        assert!(timer.wall_clock_allowed && timer.env_allowed && timer.lib_code);
        let test = classify("crates/core/tests/proptest_queues.rs");
        assert!(test.test_code && !test.deterministic && test.env_allowed);
        let root = classify("src/lib.rs");
        assert!(root.deterministic && root.lib_code);
        let example = classify("examples/quickstart.rs");
        assert!(example.test_code, "examples are harness-class");
        let lint = classify("crates/lint/src/rules.rs");
        assert!(!lint.deterministic && lint.lib_code && !lint.env_allowed);
    }

    #[test]
    fn every_rule_has_a_class_and_an_explanation() {
        for rule in RULES {
            assert!(
                matches!(rule_class(rule), "token" | "ast" | "reachability" | "dataflow"),
                "{rule}: bad class"
            );
            let text = explain(rule).unwrap_or_else(|| panic!("{rule}: no explanation"));
            assert!(text.starts_with(rule), "{rule}: explanation must lead with the rule name");
            assert!(text.contains("bad:") && text.contains("fix:"), "{rule}: needs an example");
        }
        assert!(explain("not-a-rule").is_none());
        assert_eq!(rule_class("panic-in-lib"), "reachability");
        assert_eq!(rule_class("iterated-unordered"), "ast");
        assert_eq!(rule_class("wall-clock"), "token");
        assert_eq!(rule_class("cross-domain-arith"), "dataflow");
        assert_eq!(rule_class("cross-domain-call"), "dataflow");
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        let (findings, _) = scan_rust("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn dedupe_one_finding_per_line() {
        let src = "use std::time::Instant;\n";
        let (findings, _) = scan_rust("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "wall-clock");
    }

    #[test]
    fn pragma_suppresses_own_and_next_line() {
        let above = "// swque-lint: allow(wall-clock) — fixture\nuse std::time::Instant;\n";
        let (f, s) = scan_rust("crates/core/src/x.rs", above);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(s, 1);
        let trailing = "use std::time::Instant; // swque-lint: allow(wall-clock) — fixture\n";
        let (f, s) = scan_rust("crates/core/src/x.rs", trailing);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(s, 1);
    }

    #[test]
    fn pragma_does_not_leak_two_lines_down() {
        let src = "// swque-lint: allow(wall-clock) — fixture\n\nuse std::time::Instant;\n";
        let (f, _) = scan_rust("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn words_in_strings_and_comments_do_not_fire() {
        let src = "const X: &str = \"HashMap Instant unsafe\"; // HashMap\n/* unsafe */\n";
        let (f, _) = scan_rust("crates/core/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn expect_attribute_is_not_a_panic() {
        // #[expect(...)] has no leading dot; only `.expect(` fires.
        let src = "#[expect(dead_code)]\nfn f() {}\n";
        let (f, _) = scan_rust("crates/core/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn probed_private_hashmap_is_clean() {
        // The PR-4 engine flagged every mention; the AST engine only flags
        // public escape or actual iteration. A probed private field is the
        // legitimate use the old rule punished.
        let src = "use std::collections::HashMap;\n\
                   struct M { pages: HashMap<u64, u8> }\n\
                   impl M {\n\
                       fn read(&self, a: u64) -> Option<u8> { self.pages.get(&a).copied() }\n\
                   }\n";
        let (f, _) = scan_rust("crates/isa/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn pub_escape_fires_unordered_container() {
        let sig = "use std::collections::HashMap;\n\
                   pub fn dump(m: &HashMap<u64, u8>) -> usize { m.len() }\n";
        let (f, _) = scan_rust("crates/isa/src/x.rs", sig);
        assert_eq!(rules_fired(&f), ["unordered-container"], "{f:?}");
        let field = "use std::collections::HashMap;\n\
                     pub struct M { pub pages: HashMap<u64, u8> }\n";
        let (f, _) = scan_rust("crates/isa/src/x.rs", field);
        assert_eq!(rules_fired(&f), ["unordered-container"], "{f:?}");
        // Private field of a pub struct: no escape.
        let private = "use std::collections::HashMap;\n\
                       pub struct M { pages: HashMap<u64, u8> }\n";
        let (f, _) = scan_rust("crates/isa/src/x.rs", private);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn iteration_fires_iterated_unordered() {
        let m = "use std::collections::HashMap;\n\
                 struct M { pages: HashMap<u64, u8> }\n\
                 impl M {\n\
                     fn sum(&self) -> u64 { let mut s = 0; for v in self.pages.values() { s += u64::from(*v); } s }\n\
                 }\n";
        let (f, _) = scan_rust("crates/isa/src/x.rs", m);
        assert_eq!(rules_fired(&f), ["iterated-unordered"], "{f:?}");
        let local = "fn f() {\n\
                     let m = std::collections::HashMap::new();\n\
                     for (k, v) in &m { drop((k, v)); }\n\
                     }\n";
        let (f, _) = scan_rust("crates/core/src/x.rs", local);
        assert_eq!(rules_fired(&f), ["iterated-unordered"], "{f:?}");
    }

    #[test]
    fn truncating_cast_fires_on_counters_only() {
        let bad = "fn f(cycles: u64) -> u32 { cycles as u32 }\n";
        let (f, _) = scan_rust("crates/cpu/src/x.rs", bad);
        assert_eq!(rules_fired(&f), ["truncating-cast"], "{f:?}");
        // Widening, or a non-counter name: clean.
        let ok = "fn f(cycles: u32) -> u64 { cycles as u64 }\nfn g(mask: u64) -> u8 { mask as u8 }\n";
        let (f, _) = scan_rust("crates/cpu/src/x.rs", ok);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unchecked_arith_fires_on_counter_subtraction() {
        let bad = "fn f(end_cycle: u64, start_cycle: u64) -> u64 { end_cycle - start_cycle }\n";
        let (f, _) = scan_rust("crates/cpu/src/x.rs", bad);
        assert_eq!(rules_fired(&f), ["unchecked-arith"], "{f:?}");
        let ok = "fn f(end_cycle: u64, start_cycle: u64) -> u64 { end_cycle.saturating_sub(start_cycle) }\n\
                  fn g(hi: u64, lo: u64) -> u64 { hi - lo }\n";
        let (f, _) = scan_rust("crates/cpu/src/x.rs", ok);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn interior_mutability_fires_in_deterministic_crates_only() {
        let bad = "use std::cell::RefCell;\nstruct S { x: RefCell<u64> }\n";
        let (f, _) = scan_rust("crates/core/src/x.rs", bad);
        assert!(rules_fired(&f).iter().all(|&r| r == "interior-mutability"), "{f:?}");
        assert!(!f.is_empty());
        // The lint crate itself is not deterministic-class.
        let (f, _) = scan_rust("crates/lint/src/x.rs", bad);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn panic_reachability_names_the_public_entry() {
        let src = "fn inner(x: Option<u64>) -> u64 { x.unwrap() }\n\
                   fn mid(x: Option<u64>) -> u64 { inner(x) }\n\
                   pub fn entry(x: Option<u64>) -> u64 { mid(x) }\n";
        let (f, _) = scan_rust("crates/cpu/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "panic-in-lib");
        assert!(f[0].message.contains("reachable from pub fn `entry`"), "{}", f[0].message);
        assert!(f[0].message.contains("entry:3"), "{}", f[0].message);
        assert!(f[0].message.contains("inner"), "{}", f[0].message);
    }

    #[test]
    fn panic_in_pub_fn_and_unreachable_fn_are_labelled() {
        let direct = "pub fn f(x: Option<u64>) -> u64 { x.expect(\"set\") }\n";
        let (f, _) = scan_rust("crates/cpu/src/x.rs", direct);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("in pub fn `f`"), "{}", f[0].message);
        let dead = "fn orphan() { panic!(\"boom\") }\n";
        let (f, _) = scan_rust("crates/cpu/src/x.rs", dead);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no public caller"), "{}", f[0].message);
    }

    #[test]
    fn assert_family_counts_but_debug_assert_does_not() {
        let src = "pub fn f(a: u64, b: u64) {\n\
                       assert_eq!(a, b);\n\
                       debug_assert!(a <= b);\n\
                   }\n";
        let (f, _) = scan_rust("crates/cpu/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`assert_eq!`"), "{}", f[0].message);
    }

    #[test]
    fn manifest_rules_fire_with_word_boundary() {
        let toml = "[dependencies]\nrandomize = \"1\"\nrand = \"0.8\"\n";
        let f = scan_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), ("external-dep", 3));
        let lock = "[[package]]\nname = \"x\"\nsource = \"registry+https://x\"\n";
        let f = scan_manifest("Cargo.lock", lock);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "registry-source");
    }

    #[test]
    fn malformed_pragmas_are_findings() {
        for src in [
            "// swque-lint: allow(wall-clock)\n",     // no reason
            "// swque-lint: allow(not-a-rule) — x\n", // unknown rule
            "// swque-lint: allow wall-clock — x\n",  // no parens
        ] {
            let (f, _) = scan_rust("crates/core/src/x.rs", src);
            assert_eq!(f.len(), 1, "{src:?} -> {f:?}");
            assert_eq!(f[0].rule, "malformed-pragma");
        }
    }
}
