//! The determinism/hermeticity rule engine.
//!
//! Rules run over the token stream from [`crate::lexer`] (so words inside
//! comments and string literals never fire) with a per-file **policy**
//! derived from the file's workspace path (see [`Policy`] and DESIGN.md §8
//! for the crate-class matrix). Findings carry `file:line:col` diagnostics
//! and can be suppressed with an explicit, reasoned pragma:
//!
//! ```text
//! // swque-lint: allow(env-read) — documented SWQUE_PROP_CASES knob
//! ```
//!
//! A pragma suppresses matching findings on its own line and on the line
//! directly below it (so both trailing and preceding-line styles work).
//! A pragma with an unknown rule name or a missing reason is itself a
//! finding (`malformed-pragma`): silent or unexplained suppressions are
//! exactly what the tool exists to prevent.

use crate::lexer::{lex, Tok, TokKind};

/// Every rule the analyzer knows, in report order.
///
/// * `no-unsafe` — the `unsafe` keyword anywhere (the workspace is 100%
///   safe code and `#![forbid(unsafe_code)]` locks each crate root; this
///   rule catches the attribute being dropped).
/// * `unordered-container` — `HashMap`/`HashSet` in the library code of
///   the deterministic (simulated-path) crates; iteration order would leak
///   host hash seeds into simulated behaviour.
/// * `wall-clock` — `std::time` / `Instant` / `SystemTime` anywhere except
///   the two sanctioned timing harness files.
/// * `ambient-rng` — `thread_rng` / `from_entropy` / `rand::` paths; all
///   randomness must flow through the pinned in-tree `swque-rng`.
/// * `panic-in-lib` — `.unwrap(` / `.expect(` / `panic!` in non-test,
///   non-bin library code.
/// * `env-read` — `std::env` outside the bench/bin harness layer.
/// * `malformed-pragma` — a `swque-lint:` pragma that fails to parse.
/// * `external-dep` — `rand`/`proptest`/`criterion` named in a manifest.
/// * `registry-source` — a `source =` entry in `Cargo.lock` (the lockfile
///   must stay path-only for the offline build guarantee).
pub const RULES: [&str; 9] = [
    "no-unsafe",
    "unordered-container",
    "wall-clock",
    "ambient-rng",
    "panic-in-lib",
    "env-read",
    "malformed-pragma",
    "external-dep",
    "registry-source",
];

/// True if `rule` is one of [`RULES`].
pub fn is_known_rule(rule: &str) -> bool {
    RULES.contains(&rule)
}

/// One diagnostic: a rule fired at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (an entry of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}: [{}] {}", self.file, self.line, self.col, self.rule, self.message)
    }
}

/// Which rules apply to a file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Policy {
    /// File lives in a test/bench/example tree (`tests/`, `benches/`,
    /// `examples/` path segment): relaxed determinism, panics allowed.
    pub test_code: bool,
    /// File is a binary target (`src/bin/…` or `src/main.rs`): harness
    /// layer, may read the environment and panic.
    pub bin: bool,
    /// Library code of a simulated-path crate: `HashMap`/`HashSet` banned.
    pub deterministic: bool,
    /// Sanctioned wall-clock site (the bench timer and the perf gate).
    pub wall_clock_allowed: bool,
    /// Sanctioned environment-read site (harness crate, bins, tests, and
    /// the bench timer).
    pub env_allowed: bool,
    /// Non-bin, non-test code under some `src/`: panic family banned.
    pub lib_code: bool,
}

/// Crates whose library code runs on the simulated path and therefore must
/// not observe host hash-seed nondeterminism. `branch` and `circuit` carry
/// no containers today but are simulated-path crates, so the ban applies
/// to them too; `swque` is the root facade.
const DETERMINISTIC_CRATES: [&str; 9] =
    ["core", "cpu", "mem", "isa", "workloads", "trace", "branch", "circuit", "swque"];

/// Files allowed to read the wall clock: the in-tree bench timer (the
/// workspace's only `Instant` abstraction) and the host-throughput gate.
const WALL_CLOCK_FILES: [&str; 2] =
    ["crates/rng/src/timer.rs", "crates/bench/src/bin/perf_gate.rs"];

/// Derives the rule policy for a workspace-relative path (forward-slash
/// separated, e.g. `crates/mem/src/hierarchy.rs`).
pub fn classify(rel: &str) -> Policy {
    let segs: Vec<&str> = rel.split('/').collect();
    let test_code =
        segs.iter().any(|s| matches!(*s, "tests" | "benches" | "examples"));
    let bin = rel.contains("src/bin/") || rel.ends_with("src/main.rs") || rel == "build.rs";
    let crate_name = if segs.first() == Some(&"crates") && segs.len() > 1 {
        segs[1]
    } else {
        "swque" // the root facade crate
    };
    let in_src = segs.iter().any(|s| *s == "src");
    let deterministic = DETERMINISTIC_CRATES.contains(&crate_name)
        && in_src
        && !test_code
        && !bin;
    let wall_clock_allowed = WALL_CLOCK_FILES.contains(&rel);
    let env_allowed =
        crate_name == "bench" || bin || test_code || rel == "crates/rng/src/timer.rs";
    let lib_code = in_src && !bin && !test_code;
    Policy { test_code, bin, deterministic, wall_clock_allowed, env_allowed, lib_code }
}

/// A parsed suppression pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Pragma {
    /// Line the pragma comment sits on.
    line: u32,
    /// The rules it suppresses.
    rules: Vec<String>,
}

/// Parses the body of one `swque-lint:` comment (the text after the
/// marker). Grammar: `allow(rule[, rule]*) <sep> <reason>` where `<sep>`
/// is `—`, `–`, `-`, or `:` and `<reason>` is non-empty.
fn parse_pragma_body(body: &str) -> Result<Vec<String>, String> {
    let body = body.trim();
    let rest = body
        .strip_prefix("allow")
        .map(str::trim_start)
        .ok_or("expected `allow(rule, …)` after `swque-lint:`")?;
    let rest = rest.strip_prefix('(').ok_or("expected `(` after `allow`")?;
    let close = rest.find(')').ok_or("unclosed `allow(` rule list")?;
    let (list, tail) = rest.split_at(close);
    let mut rules = Vec::new();
    for name in list.split(',') {
        let name = name.trim();
        if name.is_empty() {
            return Err("empty rule name in allow(...)".to_string());
        }
        if !is_known_rule(name) {
            return Err(format!("unknown rule {name:?} (known: {})", RULES.join(", ")));
        }
        rules.push(name.to_string());
    }
    let mut reason = tail[1..].trim_start(); // past the ')'
    for sep in ['\u{2014}', '\u{2013}', '-', ':'] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r.trim_start();
            break;
        }
    }
    if reason.is_empty() {
        return Err("pragma needs a reason: `allow(rule) — <why>`".to_string());
    }
    Ok(rules)
}

/// Extracts pragmas from comment tokens; malformed ones become findings.
fn collect_pragmas(toks: &[Tok<'_>], rel: &str) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for t in toks {
        if !t.is_comment() {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim_start_matches('!').trim_start();
        let Some(body) = body.strip_prefix("swque-lint:") else { continue };
        match parse_pragma_body(body) {
            Ok(rules) => pragmas.push(Pragma { line: t.line, rules }),
            Err(why) => findings.push(Finding {
                rule: "malformed-pragma",
                file: rel.to_string(),
                line: t.line,
                col: t.col,
                message: why,
            }),
        }
    }
    (pragmas, findings)
}

/// Inclusive line ranges of `#[cfg(test)]` items (the conventional
/// `mod tests { … }` blocks). Determinism rules do not apply inside: test
/// code may use `HashMap` models, `unwrap`, and friends freely.
fn test_regions(code: &[&Tok<'_>]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < code.len() {
        let attr = ["#", "[", "cfg", "(", "test", ")", "]"];
        if (0..7).all(|k| code[i + k].text == attr[k]) {
            let start_line = code[i].line;
            let mut j = i + 7;
            // Skip any further attributes between cfg(test) and the item.
            while j + 1 < code.len() && code[j].text == "#" && code[j + 1].text == "[" {
                let mut depth = 0i32;
                j += 1;
                while j < code.len() {
                    match code[j].text {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            // The item body: first `{` brace-matched, or a `;` item.
            while j < code.len() && code[j].text != "{" && code[j].text != ";" {
                j += 1;
            }
            let mut end_line = code.get(j).map_or(start_line, |t| t.line);
            if code.get(j).is_some_and(|t| t.text == "{") {
                let mut depth = 0i32;
                while j < code.len() {
                    match code[j].text {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                end_line = code[j].line;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j == code.len() {
                    end_line = code.last().map_or(start_line, |t| t.line);
                }
            }
            regions.push((start_line, end_line));
            i = j.max(i + 7);
        } else {
            i += 1;
        }
    }
    regions
}

/// Scans one Rust source file. Returns the surviving findings plus the
/// number of findings a pragma suppressed.
pub fn scan_rust(rel: &str, src: &str) -> (Vec<Finding>, usize) {
    let policy = classify(rel);
    let toks = lex(src);
    let (pragmas, mut findings) = collect_pragmas(&toks, rel);
    let code: Vec<&Tok<'_>> = toks.iter().filter(|t| !t.is_comment()).collect();
    let regions = test_regions(&code);
    let in_test = |line: u32| regions.iter().any(|&(a, b)| a <= line && line <= b);

    let text_at = |k: usize| code.get(k).map(|t| t.text);
    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |rule: &'static str, t: &Tok<'_>, message: String| {
        raw.push(Finding { rule, file: rel.to_string(), line: t.line, col: t.col, message });
    };

    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).and_then(text_at);
        let next = text_at(i + 1);
        let next2 = text_at(i + 2);
        let next3 = text_at(i + 3);
        match t.text {
            "unsafe" => {
                push("no-unsafe", t, "`unsafe` is banned workspace-wide".to_string());
            }
            "HashMap" | "HashSet" if policy.deterministic && !in_test(t.line) => {
                push(
                    "unordered-container",
                    t,
                    format!(
                        "`{}` in a deterministic crate: iteration order depends on the \
                         host hash seed; use BTreeMap/BTreeSet or an index-keyed Vec",
                        t.text
                    ),
                );
            }
            "Instant" | "SystemTime" if !policy.wall_clock_allowed => {
                push(
                    "wall-clock",
                    t,
                    format!("`{}` outside the sanctioned timing harness", t.text),
                );
            }
            "std"
                if !policy.wall_clock_allowed
                    && next == Some(":")
                    && next2 == Some(":")
                    && next3 == Some("time") =>
            {
                push("wall-clock", t, "`std::time` outside the sanctioned timing harness".into());
            }
            "thread_rng" | "from_entropy" => {
                push(
                    "ambient-rng",
                    t,
                    format!("`{}` taps ambient entropy; seed a `swque_rng::Rng` instead", t.text),
                );
            }
            "rand" if next == Some(":") && next2 == Some(":") => {
                push("ambient-rng", t, "`rand::` path: the workspace PRNG is swque-rng".into());
            }
            "unwrap" | "expect"
                if policy.lib_code
                    && !in_test(t.line)
                    && prev == Some(".")
                    && next == Some("(") =>
            {
                push(
                    "panic-in-lib",
                    t,
                    format!("`.{}(` in library code; bubble a Result or document the invariant", t.text),
                );
            }
            "panic" if policy.lib_code && !in_test(t.line) && next == Some("!") => {
                push("panic-in-lib", t, "`panic!` in library code".to_string());
            }
            "std"
                if !policy.env_allowed
                    && !in_test(t.line)
                    && next == Some(":")
                    && next2 == Some(":")
                    && next3 == Some("env") =>
            {
                push(
                    "env-read",
                    t,
                    "`std::env` outside the bench/bin harness layer".to_string(),
                );
            }
            _ => {}
        }
    }

    // One finding per (rule, line): a `use std::time::Instant` should read
    // as one diagnostic, not three.
    raw.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    raw.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);

    let mut suppressed = 0usize;
    for f in raw {
        let allowed = pragmas.iter().any(|p| {
            (p.line == f.line || p.line + 1 == f.line)
                && p.rules.iter().any(|r| r == f.rule)
        });
        if allowed {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    (findings, suppressed)
}

/// Scans a manifest (`Cargo.toml`) or lockfile (`Cargo.lock`) with the
/// hermeticity line rules that used to live as `grep`s in `verify.sh`.
pub fn scan_manifest(rel: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lock = rel.ends_with("Cargo.lock");
    for (ln, line) in src.lines().enumerate() {
        let line_no = ln as u32 + 1;
        let trimmed = line.trim_start();
        let col = (line.chars().count() - trimmed.chars().count()) as u32 + 1;
        if lock {
            if trimmed.starts_with("source =") {
                findings.push(Finding {
                    rule: "registry-source",
                    file: rel.to_string(),
                    line: line_no,
                    col,
                    message: "Cargo.lock names a registry source; the lockfile must stay \
                              path-only for the offline build"
                        .to_string(),
                });
            }
            continue;
        }
        for dep in ["rand", "proptest", "criterion"] {
            let boundary_ok = trimmed
                .strip_prefix(dep)
                .is_some_and(|rest| !rest.starts_with(|c: char| c.is_alphanumeric() || c == '_'));
            if boundary_ok {
                findings.push(Finding {
                    rule: "external-dep",
                    file: rel.to_string(),
                    line: line_no,
                    col,
                    message: format!(
                        "manifest names external dependency `{dep}`; the workspace is hermetic"
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_matrix() {
        let det = classify("crates/mem/src/hierarchy.rs");
        assert!(det.deterministic && det.lib_code && !det.env_allowed);
        let bench = classify("crates/bench/src/harness.rs");
        assert!(!bench.deterministic && bench.env_allowed && bench.lib_code);
        let bin = classify("crates/bench/src/bin/perf_gate.rs");
        assert!(bin.bin && bin.wall_clock_allowed && !bin.lib_code);
        let timer = classify("crates/rng/src/timer.rs");
        assert!(timer.wall_clock_allowed && timer.env_allowed && timer.lib_code);
        let test = classify("crates/core/tests/proptest_queues.rs");
        assert!(test.test_code && !test.deterministic && test.env_allowed);
        let root = classify("src/lib.rs");
        assert!(root.deterministic && root.lib_code);
        let example = classify("examples/quickstart.rs");
        assert!(example.test_code, "examples are harness-class");
        let lint = classify("crates/lint/src/rules.rs");
        assert!(!lint.deterministic && lint.lib_code && !lint.env_allowed);
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let (findings, _) = scan_rust("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn dedupe_one_finding_per_line() {
        let src = "use std::time::Instant;\n";
        let (findings, _) = scan_rust("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "wall-clock");
    }

    #[test]
    fn pragma_suppresses_own_and_next_line() {
        let above = "// swque-lint: allow(wall-clock) — fixture\nuse std::time::Instant;\n";
        let (f, s) = scan_rust("crates/core/src/x.rs", above);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(s, 1);
        let trailing =
            "use std::time::Instant; // swque-lint: allow(wall-clock) — fixture\n";
        let (f, s) = scan_rust("crates/core/src/x.rs", trailing);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(s, 1);
    }

    #[test]
    fn pragma_does_not_leak_two_lines_down() {
        let src = "// swque-lint: allow(wall-clock) — fixture\n\nuse std::time::Instant;\n";
        let (f, _) = scan_rust("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn words_in_strings_and_comments_do_not_fire() {
        let src = "const X: &str = \"HashMap Instant unsafe\"; // HashMap\n/* unsafe */\n";
        let (f, _) = scan_rust("crates/core/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn expect_attribute_is_not_a_panic() {
        // #[expect(...)] has no leading dot; only `.expect(` fires.
        let src = "#[expect(dead_code)]\nfn f() {}\n";
        let (f, _) = scan_rust("crates/core/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn manifest_rules_fire_with_word_boundary() {
        let toml = "[dependencies]\nrandomize = \"1\"\nrand = \"0.8\"\n";
        let f = scan_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), ("external-dep", 3));
        let lock = "[[package]]\nname = \"x\"\nsource = \"registry+https://x\"\n";
        let f = scan_manifest("Cargo.lock", lock);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "registry-source");
    }

    #[test]
    fn malformed_pragmas_are_findings() {
        for src in [
            "// swque-lint: allow(wall-clock)\n",      // no reason
            "// swque-lint: allow(not-a-rule) — x\n",  // unknown rule
            "// swque-lint: allow wall-clock — x\n",   // no parens
        ] {
            let (f, _) = scan_rust("crates/core/src/x.rs", src);
            assert_eq!(f.len(), 1, "{src:?} -> {f:?}");
            assert_eq!(f[0].rule, "malformed-pragma");
        }
    }
}
